#include "isdl/parser.h"

#include <gtest/gtest.h>

#include "isdl/sema.h"
#include "test_machines.h"

namespace isdl {
namespace {

std::unique_ptr<Machine> parseOk(std::string_view src) {
  DiagnosticEngine diags;
  auto m = parseIsdl(src, diags);
  EXPECT_NE(m, nullptr) << diags.dump();
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  return m;
}

void expectParseError(std::string_view src, std::string_view needle) {
  DiagnosticEngine diags;
  auto m = parseIsdl(src, diags);
  EXPECT_EQ(m, nullptr);
  EXPECT_TRUE(diags.hasErrors());
  EXPECT_NE(diags.dump().find(needle), std::string::npos)
      << "expected error containing '" << needle << "', got:\n"
      << diags.dump();
}

TEST(Parser, MiniMachineStructure) {
  auto m = parseOk(testing::kMiniIsdl);
  EXPECT_EQ(m->name, "MINI");
  EXPECT_EQ(m->wordWidth, 32u);

  ASSERT_EQ(m->tokens.size(), 3u);
  EXPECT_EQ(m->tokens[0].name, "REG");
  EXPECT_EQ(m->tokens[0].kind, TokenKind::Enum);
  EXPECT_EQ(m->tokens[0].width, 3u);
  ASSERT_EQ(m->tokens[0].members.size(), 8u);
  EXPECT_EQ(m->tokens[0].members[5].syntax, "R5");
  EXPECT_EQ(m->tokens[0].members[5].value, 5u);
  EXPECT_EQ(m->tokens[1].kind, TokenKind::Immediate);
  EXPECT_FALSE(m->tokens[1].isSigned);
  EXPECT_TRUE(m->tokens[2].isSigned);

  ASSERT_EQ(m->nonTerminals.size(), 1u);
  const NonTerminal& nt = m->nonTerminals[0];
  EXPECT_EQ(nt.name, "SRC");
  EXPECT_EQ(nt.returnWidth, 9u);
  ASSERT_EQ(nt.options.size(), 2u);
  EXPECT_EQ(nt.options[0].params.size(), 1u);
  EXPECT_EQ(nt.options[0].params[0].kind, ParamKind::Token);
  EXPECT_NE(nt.options[0].value, nullptr);
  // Option 1 syntax: "#" then the parameter.
  ASSERT_EQ(nt.options[1].syntax.size(), 2u);
  EXPECT_TRUE(nt.options[1].syntax[0].isLiteral);
  EXPECT_EQ(nt.options[1].syntax[0].literal, "#");
  EXPECT_FALSE(nt.options[1].syntax[1].isLiteral);

  ASSERT_EQ(m->storages.size(), 5u);
  EXPECT_EQ(m->storages[0].kind, StorageKind::InstructionMemory);
  EXPECT_EQ(m->storages[2].kind, StorageKind::RegisterFile);
  EXPECT_EQ(m->storages[2].depth, 8u);
  ASSERT_EQ(m->aliases.size(), 2u);
  EXPECT_EQ(m->aliases[0].name, "CARRY");
  ASSERT_TRUE(m->aliases[0].slice.has_value());
  EXPECT_EQ(m->aliases[0].slice->first, 0u);
  ASSERT_TRUE(m->aliases[1].element.has_value());
  EXPECT_EQ(*m->aliases[1].element, 7u);

  ASSERT_EQ(m->fields.size(), 2u);
  EXPECT_EQ(m->fields[0].name, "EX");
  EXPECT_EQ(m->fields[0].operations.size(), 10u);
  EXPECT_EQ(m->fields[1].operations.size(), 3u);

  const Operation* add = m->fields[0].findOperation("add");
  ASSERT_NE(add, nullptr);
  EXPECT_EQ(add->params.size(), 3u);
  EXPECT_EQ(add->encode.size(), 4u);
  EXPECT_EQ(add->encode[0].src, EncodeAssign::Src::Const);
  EXPECT_EQ(add->encode[0].hi, 31u);
  EXPECT_EQ(add->encode[0].lo, 27u);
  EXPECT_EQ(add->encode[0].constValue.toUint64(), 1u);
  EXPECT_EQ(add->encode[1].src, EncodeAssign::Src::Param);
  EXPECT_EQ(add->action.size(), 1u);
  EXPECT_EQ(add->sideEffects.size(), 1u);
  // Default costs/timing.
  EXPECT_EQ(add->costs.cycle, 1u);
  EXPECT_EQ(add->costs.size, 1u);
  EXPECT_EQ(add->timing.latency, 1u);

  const Operation* ld = m->fields[0].findOperation("ld");
  ASSERT_NE(ld, nullptr);
  EXPECT_EQ(ld->costs.stall, 1u);
  EXPECT_EQ(ld->timing.latency, 2u);

  ASSERT_EQ(m->constraints.size(), 4u);
  EXPECT_EQ(m->constraints[0].ops.size(), 2u);
  EXPECT_EQ(m->constraints[0].ops[0].fieldIndex, 0u);
  EXPECT_EQ(m->constraints[0].text, "EX.addi & MV.mvi");

  EXPECT_EQ(m->optionalInfo.at("halt_operation"), "EX.halt");
}

TEST(Parser, MiniMachinePassesSema) {
  auto m = parseOk(testing::kMiniIsdl);
  DiagnosticEngine diags;
  EXPECT_TRUE(checkMachine(*m, diags)) << diags.dump();
  EXPECT_EQ(m->pcIndex, 3);
  EXPECT_EQ(m->imemIndex, 0);
  EXPECT_EQ(m->fields[0].nopIndex, 0);
  EXPECT_EQ(m->fields[1].nopIndex, 0);  // "mnop" has no params and no action
  EXPECT_EQ(m->nonTerminals[0].valueWidth, 16u);
  EXPECT_EQ(m->maxSizeWords(), 1u);
}

TEST(Parser, ExplicitTokenMemberList) {
  auto m = parseOk(R"(
machine T {
  section format { word_width = 16; }
  section storage {
    instruction_memory IM width 16 depth 4;
    program_counter PC width 4;
  }
  section global_definitions {
    token CC enum width 2 { "eq" = 0, "ne" = 1, "al" = 3 };
  }
  section instruction_set {
    field F { operation nop() { encode { inst[15] = 0; } } }
  }
}
)");
  ASSERT_EQ(m->tokens.size(), 1u);
  ASSERT_EQ(m->tokens[0].members.size(), 3u);
  EXPECT_EQ(m->tokens[0].memberValue("ne"), 1u);
  EXPECT_EQ(m->tokens[0].memberSyntax(3), "al");
  EXPECT_EQ(m->tokens[0].memberValue("xx"), std::nullopt);
  EXPECT_EQ(m->tokens[0].memberSyntax(2), std::nullopt);
}

TEST(Parser, ErrorUnknownSection) {
  expectParseError("machine M { section bogus { } }", "unknown section");
}

TEST(Parser, ErrorRedefinition) {
  expectParseError(R"(
machine M {
  section storage {
    register A width 8;
    register A width 8;
    instruction_memory IM width 8 depth 4;
    program_counter PC width 4;
  }
}
)",
                   "redefinition");
}

TEST(Parser, ErrorUnknownParamType) {
  expectParseError(R"(
machine M {
  section format { word_width = 8; }
  section instruction_set {
    field F { operation op(x: NOPE) { } }
  }
}
)",
                   "unknown token or non-terminal");
}

TEST(Parser, ErrorEncodeConstTooWide) {
  expectParseError(R"(
machine M {
  section format { word_width = 8; }
  section instruction_set {
    field F { operation op() { encode { inst[3:0] = 99; } } }
  }
}
)",
                   "does not fit");
}

TEST(Parser, ErrorEncodeParamWidthMismatch) {
  expectParseError(R"(
machine M {
  section format { word_width = 8; }
  section global_definitions { token U4 immediate unsigned width 4; }
  section instruction_set {
    field F { operation op(i: U4) { encode { inst[7:0] = i; } } }
  }
}
)",
                   "does not match bitfield width");
}

TEST(Parser, ParamSliceEncoding) {
  // Split immediate across two bitfields — the classic Axiom-1 test.
  auto m = parseOk(R"(
machine M {
  section format { word_width = 16; }
  section storage {
    instruction_memory IM width 16 depth 4;
    program_counter PC width 4;
  }
  section global_definitions { token U8 immediate unsigned width 8; }
  section instruction_set {
    field F {
      operation op(i: U8) {
        encode { inst[15:14] = 2'd1; inst[13:10] = i[7:4]; inst[3:0] = i[3:0]; }
      }
    }
  }
}
)");
  const Operation& op = m->fields[0].operations[0];
  ASSERT_EQ(op.encode.size(), 3u);
  EXPECT_EQ(op.encode[1].src, EncodeAssign::Src::ParamSlice);
  EXPECT_EQ(op.encode[1].paramHi, 7u);
  EXPECT_EQ(op.encode[1].paramLo, 4u);
}

TEST(Parser, ErrorConstraintUnknownOp) {
  expectParseError(R"(
machine M {
  section format { word_width = 8; }
  section instruction_set {
    field F { operation nop() { encode { inst[7] = 0; } } }
  }
  section constraints { never F.bogus & F.nop; }
}
)",
                   "unknown operation");
}

TEST(Parser, ErrorConstraintSingleOp) {
  expectParseError(R"(
machine M {
  section format { word_width = 8; }
  section instruction_set {
    field F { operation nop() { encode { inst[7] = 0; } } }
  }
  section constraints { never F.nop; }
}
)",
                   "at least two");
}

TEST(Parser, ErrorStrayDollar) {
  expectParseError("machine M { section format { $ } }", "stray '$'");
}

TEST(Parser, RtlExpressionPrecedence) {
  auto m = parseOk(R"(
machine M {
  section format { word_width = 8; }
  section storage {
    instruction_memory IM width 8 depth 4;
    program_counter PC width 4;
    register A width 8;
    register B width 8;
  }
  section instruction_set {
    field F {
      operation op() {
        encode { inst[7] = 1; }
        action { A <- A + B * A; }
      }
    }
  }
}
)");
  const auto& stmt = *m->fields[0].operations[0].action[0];
  ASSERT_EQ(stmt.kind, rtl::StmtKind::Assign);
  // Must parse as A + (B * A).
  ASSERT_EQ(stmt.value->kind, rtl::ExprKind::Binary);
  EXPECT_EQ(stmt.value->binOp, rtl::BinOp::Add);
  EXPECT_EQ(stmt.value->operands[1]->binOp, rtl::BinOp::Mul);
}

TEST(Parser, RtlTernaryAndBuiltins) {
  auto m = parseOk(R"(
machine M {
  section format { word_width = 8; }
  section storage {
    instruction_memory IM width 8 depth 4;
    program_counter PC width 4;
    register A width 8;
  }
  section instruction_set {
    field F {
      operation op() {
        encode { inst[7] = 1; }
        action { A <- (A == 8'd0) ? sext(A[3:0], 8) : ~A; }
      }
    }
  }
}
)");
  const auto& v = *m->fields[0].operations[0].action[0]->value;
  EXPECT_EQ(v.kind, rtl::ExprKind::Ternary);
  EXPECT_EQ(v.operands[1]->kind, rtl::ExprKind::SExt);
  EXPECT_EQ(v.operands[1]->operands[0]->kind, rtl::ExprKind::Slice);
  EXPECT_EQ(v.operands[2]->kind, rtl::ExprKind::Unary);
}

TEST(Parser, ErrorUnknownBuiltin) {
  expectParseError(R"(
machine M {
  section format { word_width = 8; }
  section storage {
    instruction_memory IM width 8 depth 4;
    program_counter PC width 4;
    register A width 8;
  }
  section instruction_set {
    field F {
      operation op() { encode { inst[7] = 1; } action { A <- frobnicate(A); } }
    }
  }
}
)",
                   "unknown builtin");
}

}  // namespace
}  // namespace isdl
