// Self-test of the conformance-fuzzing subsystem (src/testing): the machine
// generator's sema-clean promise, the retargeted assembly generator, the
// fuzz loop's determinism across worker counts, the seed plumbing, and the
// end-to-end fault-catching path — an injected uop-lowering bug must be
// found, shrunk to a tiny repro, and written to the corpus with its seed.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include "isdl/parser.h"
#include "isdl/sema.h"
#include "sim/uop.h"
#include "testing/fuzzer.h"
#include "testing/machinegen.h"
#include "testing/oracle.h"
#include "testing/programgen.h"

namespace isdl {
namespace {

// Restores the uop fault-injection flag (and the seed env var) no matter how
// a test exits.
struct FaultInjectionGuard {
  ~FaultInjectionGuard() { sim::uop::setTestFaultInjection(false); }
};

struct EnvGuard {
  ~EnvGuard() { ::unsetenv("ISDL_FUZZ_SEED"); }
};

TEST(MachineGenTest, EmittedDescriptionsAreAlwaysSemaClean) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    std::mt19937_64 rng(seed);
    testing::MachineSpec spec = testing::randomMachineSpec(rng);
    spec.seed = seed;
    std::string source = testing::emitIsdl(spec);

    DiagnosticEngine diags;
    auto machine = parseIsdl(source, diags);
    ASSERT_NE(machine, nullptr) << "seed " << seed << ":\n" << diags.dump();
    checkMachine(*machine, diags);
    EXPECT_FALSE(diags.hasErrors())
        << "seed " << seed << " generated a rejected description:\n"
        << diags.dump() << "\n--- source ---\n" << source;
  }
}

TEST(MachineGenTest, SameSeedSameDescription) {
  std::mt19937_64 a(7), b(7);
  EXPECT_EQ(testing::emitIsdl(testing::randomMachineSpec(a)),
            testing::emitIsdl(testing::randomMachineSpec(b)));
}

TEST(ProgramGenTest, RandomAssemblyProgramsAssembleAndAgree) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    std::mt19937_64 mrng(seed);
    testing::MachineSpec spec = testing::randomMachineSpec(mrng);
    spec.seed = seed;
    auto machine = parseAndCheckIsdl(testing::emitIsdl(spec));
    ASSERT_NE(machine, nullptr) << "seed " << seed;

    testing::DifferentialOracle oracle(*machine);
    sim::Assembler assembler(oracle.signatures());
    std::mt19937_64 prng(seed * 1000 + 1);
    auto lines =
        testing::randomAssemblyProgram(*machine, oracle.signatures(), prng, 12);
    ASSERT_FALSE(lines.empty()) << "seed " << seed;

    std::ostringstream src;
    for (const auto& line : lines) src << line << "\n";
    DiagnosticEngine diags;
    auto prog = assembler.assemble(src.str(), diags);
    ASSERT_TRUE(prog.has_value())
        << "seed " << seed << ":\n" << diags.dump() << "\n" << src.str();

    testing::OracleReport rep = oracle.run(*prog);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << "\n" << rep.summary();
  }
}

TEST(FuzzerTest, CleanRunFindsNoFailures) {
  testing::FuzzConfig cfg;
  cfg.seed = 2026;
  cfg.machines = 6;
  cfg.programsPerMachine = 3;
  cfg.programLength = 15;
  obs::Registry registry;
  testing::FuzzOutcome out = testing::runFuzz(cfg, &registry);

  EXPECT_TRUE(out.ok()) << out.failures.size() << " failures, "
                        << out.generatorErrors << " generator errors";
  EXPECT_EQ(out.machines, 6u);
  EXPECT_EQ(out.pairs, 18u);
  EXPECT_EQ(out.halted + out.trapped, out.pairs);
  EXPECT_EQ(registry.counter("fuzz/pairs").get(), 18u);
  EXPECT_EQ(registry.counter("fuzz/divergent_pairs").get(), 0u);
}

TEST(FuzzerTest, OutcomeIsIndependentOfWorkerCount) {
  testing::FuzzConfig cfg;
  cfg.seed = 4711;
  cfg.machines = 8;
  cfg.programsPerMachine = 2;
  cfg.programLength = 10;
  cfg.checkHardware = false;

  cfg.jobs = 1;
  testing::FuzzOutcome serial = testing::runFuzz(cfg);
  cfg.jobs = 2;
  testing::FuzzOutcome threaded = testing::runFuzz(cfg);

  EXPECT_EQ(serial.pairs, threaded.pairs);
  EXPECT_EQ(serial.halted, threaded.halted);
  EXPECT_EQ(serial.trapped, threaded.trapped);
  ASSERT_EQ(serial.failures.size(), threaded.failures.size());
  for (std::size_t i = 0; i < serial.failures.size(); ++i)
    EXPECT_EQ(serial.failures[i].machineSeed, threaded.failures[i].machineSeed);
}

TEST(FuzzerTest, InjectedFaultIsCaughtShrunkAndWrittenToCorpus) {
  FaultInjectionGuard guard;
  sim::uop::setTestFaultInjection(true);

  auto corpus = std::filesystem::temp_directory_path() /
                "isdl_fuzz_corpus_test";
  std::filesystem::remove_all(corpus);

  testing::FuzzConfig cfg;
  cfg.seed = 42;
  cfg.machines = 8;
  cfg.programsPerMachine = 3;
  cfg.programLength = 15;
  cfg.checkHardware = false;  // the fault is engine-vs-engine
  cfg.corpusDir = corpus.string();
  testing::FuzzOutcome out = testing::runFuzz(cfg);

  ASSERT_FALSE(out.failures.empty())
      << "broken uop lowering was not detected";
  for (const auto& f : out.failures) {
    EXPECT_NE(f.machineSeed, 0u);
    EXPECT_FALSE(f.divergence.empty());
    EXPECT_TRUE(f.shrunk.reproduced);
    // Acceptance bar: a minimal repro of at most 5 instructions (the last
    // line is the pinned halt).
    EXPECT_LE(f.shrunk.program.size(), 5u)
        << "shrinker left " << f.shrunk.program.size() << " lines";

    ASSERT_FALSE(f.reproPath.empty());
    std::ifstream repro(f.reproPath);
    ASSERT_TRUE(repro.good()) << f.reproPath;
    std::stringstream text;
    text << repro.rdbuf();
    EXPECT_NE(text.str().find(std::to_string(f.machineSeed)),
              std::string::npos)
        << "repro file does not record the machine seed";
    EXPECT_NE(text.str().find("isdl-fuzz --seed"), std::string::npos)
        << "repro file does not record the replay command";
  }

  std::filesystem::remove_all(corpus);
}

TEST(FuzzerTest, ShrunkReproReplaysThroughTheFrontEnd) {
  FaultInjectionGuard guard;
  sim::uop::setTestFaultInjection(true);

  testing::FuzzConfig cfg;
  cfg.seed = 42;
  cfg.machines = 8;
  cfg.programsPerMachine = 3;
  cfg.programLength = 15;
  cfg.checkHardware = false;
  testing::FuzzOutcome out = testing::runFuzz(cfg);
  ASSERT_FALSE(out.failures.empty());

  // The shrunk machine must still be a real, sema-clean description, and the
  // shrunk program must still diverge on it.
  const testing::FuzzFailure& f = out.failures.front();
  auto machine = parseAndCheckIsdl(testing::emitIsdl(f.shrunk.spec));
  ASSERT_NE(machine, nullptr);

  testing::OracleOptions opts;
  opts.checkHardware = false;
  testing::DifferentialOracle oracle(*machine, opts);
  sim::Assembler assembler(oracle.signatures());
  std::ostringstream src;
  for (const auto& line : f.shrunk.program) src << line << "\n";
  DiagnosticEngine diags;
  auto prog = assembler.assemble(src.str(), diags);
  ASSERT_TRUE(prog.has_value()) << diags.dump();
  EXPECT_FALSE(oracle.run(*prog).ok())
      << "shrunk repro no longer diverges:\n" << src.str();
}

TEST(SeedTest, EnvOverrideWinsOverFallback) {
  EnvGuard guard;
  ::setenv("ISDL_FUZZ_SEED", "777", 1);
  EXPECT_EQ(testing::seedFromEnv(1), 777u);
  ::setenv("ISDL_FUZZ_SEED", "not-a-number", 1);
  EXPECT_EQ(testing::seedFromEnv(5), 5u);
  ::unsetenv("ISDL_FUZZ_SEED");
  EXPECT_EQ(testing::seedFromEnv(9), 9u);
}

TEST(SeedTest, MixSeedGivesDistinctDeterministicLanes) {
  EXPECT_EQ(testing::mixSeed(1, 0), testing::mixSeed(1, 0));
  EXPECT_NE(testing::mixSeed(1, 0), testing::mixSeed(1, 1));
  EXPECT_NE(testing::mixSeed(1, 0), testing::mixSeed(2, 0));
}

}  // namespace
}  // namespace isdl
