// Unit tests for the word-level netlist IR: builders, topological ordering,
// cycle detection, common-subexpression elimination, dead-node sweeping, and
// the gate simulator's sequential semantics on hand-built circuits.

#include "hw/netlist.h"

#include <gtest/gtest.h>

#include "synth/gatesim.h"

namespace isdl::hw {
namespace {

using rtl::BinOp;
using rtl::UnOp;

TEST(Netlist, BuilderWidths) {
  Netlist nl;
  NetId a = nl.addInput("a", 8);
  NetId b = nl.addInput("b", 8);
  EXPECT_EQ(nl.widthOf(nl.addBinary(BinOp::Add, a, b)), 8u);
  EXPECT_EQ(nl.widthOf(nl.addBinary(BinOp::ULt, a, b)), 1u);
  EXPECT_EQ(nl.widthOf(nl.addUnary(UnOp::RedOr, a)), 1u);
  EXPECT_EQ(nl.widthOf(nl.addUnary(UnOp::BitNot, a)), 8u);
  EXPECT_EQ(nl.widthOf(nl.addSlice(a, 3, 1)), 3u);
  EXPECT_EQ(nl.widthOf(nl.addConcat({a, b})), 16u);
  EXPECT_EQ(nl.widthOf(nl.addExt(NodeKind::ZExt, a, 20)), 20u);
}

TEST(Netlist, ControlHelpersFoldConstants) {
  Netlist nl;
  NetId x = nl.addInput("x", 1);
  EXPECT_EQ(nl.andNet(nl.one(), x), x);
  EXPECT_EQ(nl.andNet(x, nl.zero()), nl.zero());
  EXPECT_EQ(nl.orNet(nl.zero(), x), x);
  EXPECT_EQ(nl.orNet(x, nl.one()), nl.one());
  EXPECT_EQ(nl.notNet(nl.one()), nl.zero());
  // Mux with equal branches folds away.
  EXPECT_EQ(nl.addMux(x, x, x), x);
}

TEST(Netlist, WithSliceComposesCorrectly) {
  Netlist nl;
  NetId base = nl.addConst(BitVector(16, 0x0000));
  NetId part = nl.addConst(BitVector(8, 0xAB));
  NetId out = nl.withSlice(base, 11, 4, part);
  nl.addOutput("o", out);
  synth::GateSim gs(nl);
  gs.step();
  EXPECT_EQ(gs.peekNet(out).toUint64(), 0x0AB0u);
  EXPECT_EQ(gs.peekNet(out).width(), 16u);
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  Netlist nl;
  NetId a = nl.addInput("a", 4);
  NetId b = nl.addBinary(BinOp::Add, a, a);
  NetId c = nl.addBinary(BinOp::Xor, b, a);
  auto order = nl.topoOrder();
  auto pos = [&](NetId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(a), pos(b));
  EXPECT_LT(pos(b), pos(c));
}

TEST(Netlist, CombinationalCycleIsRejected) {
  Netlist nl;
  NetId a = nl.addInput("a", 4);
  NetId add = nl.addBinary(BinOp::Add, a, a);
  // Forge a cycle: add reads itself.
  nl.nodes[add].ins[1] = add;
  EXPECT_THROW(nl.topoOrder(), IsdlError);
}

TEST(Netlist, RegistersBreakCycles) {
  // reg -> +1 -> reg is fine (the canonical counter).
  Netlist nl;
  NetId reg = nl.addReg("ctr", 8);
  NetId one = nl.addConst(BitVector(8, 1));
  NetId next = nl.addBinary(BinOp::Add, reg, one);
  nl.setRegInputs(reg, next);
  EXPECT_NO_THROW(nl.topoOrder());

  synth::GateSim gs(nl);
  gs.step();
  gs.step();
  gs.step();
  EXPECT_EQ(gs.peekNet(reg).toUint64(), 3u);
}

TEST(Netlist, RegisterEnableGates) {
  Netlist nl;
  NetId en = nl.addInput("en", 1);
  NetId reg = nl.addReg("r", 8);
  NetId one = nl.addConst(BitVector(8, 1));
  NetId next = nl.addBinary(BinOp::Add, reg, one);
  nl.setRegInputs(reg, next, en);
  synth::GateSim gs(nl);
  gs.setInput(en, BitVector(1, 0));
  gs.step();
  EXPECT_EQ(gs.peekNet(reg).toUint64(), 0u);
  gs.setInput(en, BitVector(1, 1));
  gs.step();
  gs.step();
  EXPECT_EQ(gs.peekNet(reg).toUint64(), 2u);
}

TEST(Netlist, MemoryWritePortPriorityIsPortOrder) {
  Netlist nl;
  int mem = nl.addMemory("m", 8, 16);
  NetId addr = nl.addConst(BitVector(4, 5));
  NetId v1 = nl.addConst(BitVector(8, 11));
  NetId v2 = nl.addConst(BitVector(8, 22));
  nl.addMemWrite(mem, nl.one(), addr, v1);
  nl.addMemWrite(mem, nl.one(), addr, v2);  // later port wins
  synth::GateSim gs(nl);
  gs.step();
  EXPECT_EQ(gs.peekMemory(mem, 5).toUint64(), 22u);
}

TEST(Netlist, GateSimTwoPhaseRegisterSwap) {
  // r1 <- r2; r2 <- r1 every clock: values swap, never merge.
  Netlist nl;
  NetId r1 = nl.addReg("r1", 8);
  NetId r2 = nl.addReg("r2", 8);
  nl.setRegInputs(r1, r2);
  nl.setRegInputs(r2, r1);
  synth::GateSim gs(nl);
  gs.pokeReg(r1, BitVector(8, 1));
  gs.pokeReg(r2, BitVector(8, 2));
  gs.step();
  EXPECT_EQ(gs.peekNet(r1).toUint64(), 2u);
  EXPECT_EQ(gs.peekNet(r2).toUint64(), 1u);
  gs.step();
  EXPECT_EQ(gs.peekNet(r1).toUint64(), 1u);
  EXPECT_EQ(gs.peekNet(r2).toUint64(), 2u);
}

TEST(Netlist, CseMergesStructuralDuplicates) {
  Netlist nl;
  NetId a = nl.addInput("a", 8);
  NetId b = nl.addInput("b", 8);
  NetId s1 = nl.addBinary(BinOp::Add, a, b);
  NetId s2 = nl.addBinary(BinOp::Add, a, b);  // duplicate
  NetId d = nl.addBinary(BinOp::Xor, s1, s2);
  nl.addOutput("o", d);
  std::size_t before = nl.nodes.size();
  auto remap = nl.cse();
  EXPECT_LT(nl.nodes.size(), before);
  // Both adders map to the same surviving net.
  EXPECT_EQ(remap[s1], remap[s2]);
  EXPECT_NE(remap[d], kNoNet);
  // Behaviour: a ^ a == 0 after merging — the xor of two identical nets.
  synth::GateSim gs(nl);
  gs.setInput(remap[a], BitVector(8, 3));
  gs.setInput(remap[b], BitVector(8, 4));
  gs.step();
  EXPECT_TRUE(gs.peekNet(nl.outputs[0].net).isZero());
}

TEST(Netlist, CseDistinguishesConstantsAndPayloads) {
  Netlist nl;
  NetId c1 = nl.addConst(BitVector(8, 1));
  NetId c2 = nl.addConst(BitVector(8, 2));
  NetId c1b = nl.addConst(BitVector(8, 1));
  NetId a = nl.addInput("a", 8);
  NetId s1 = nl.addSlice(a, 3, 0);
  NetId s2 = nl.addSlice(a, 4, 1);  // same width, different bounds
  nl.addOutput("x", nl.addConcat({c1, c2, c1b, s1, s2}));
  auto remap = nl.cse();
  EXPECT_EQ(remap[c1], remap[c1b]);
  EXPECT_NE(remap[c1], remap[c2]);
  EXPECT_NE(remap[s1], remap[s2]);
}

TEST(Netlist, SweepDeadRemovesUnreachable) {
  Netlist nl;
  NetId a = nl.addInput("a", 8);
  NetId used = nl.addUnary(UnOp::BitNot, a);
  NetId dead = nl.addBinary(BinOp::Add, a, a);
  (void)dead;
  nl.addOutput("o", used);
  auto remap = nl.sweepDead();
  EXPECT_EQ(remap[dead], kNoNet);
  EXPECT_NE(remap[used], kNoNet);
  EXPECT_EQ(nl.nodes.size(), 2u);  // input + not
  // Registers are always roots, even when nothing reads them.
  Netlist nl2;
  NetId r = nl2.addReg("r", 4);
  nl2.setRegInputs(r, nl2.addConst(BitVector(4, 1)));
  auto remap2 = nl2.sweepDead();
  EXPECT_NE(remap2[r], kNoNet);
  EXPECT_EQ(nl2.nodes.size(), 2u);
}

TEST(Netlist, ToggleCountingTracksActivity) {
  Netlist nl;
  NetId reg = nl.addReg("ctr", 8);
  NetId one = nl.addConst(BitVector(8, 1));
  nl.setRegInputs(reg, nl.addBinary(BinOp::Add, reg, one));
  synth::GateSim gs(nl);
  gs.enableToggleCounting(true);
  gs.step();
  std::uint64_t t1 = gs.toggleCount();
  gs.step();
  EXPECT_GT(gs.toggleCount(), t1);
}

}  // namespace
}  // namespace isdl::hw
