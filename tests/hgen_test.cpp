// Tests for HGEN's back half: Verilog emission, technology mapping, static
// timing and the end-to-end runHgen facade (the Table-2 generator).

#include "hw/hgen.h"

#include <gtest/gtest.h>

#include "archs/archs.h"
#include "sim/signature.h"

namespace isdl::hw {
namespace {

struct Built {
  std::unique_ptr<Machine> machine;
  std::unique_ptr<DiagnosticEngine> diags;
  std::unique_ptr<sim::SignatureTable> sigs;
};

Built load(std::unique_ptr<Machine> (*loader)()) {
  Built b;
  b.machine = loader();
  b.diags = std::make_unique<DiagnosticEngine>();
  b.sigs = std::make_unique<sim::SignatureTable>(*b.machine, *b.diags);
  EXPECT_TRUE(b.sigs->valid()) << b.diags->dump();
  return b;
}

TEST(Verilog, SrepEmitsWellFormedModule) {
  auto b = load(archs::loadSrep);
  HgenOutput out = runHgen(*b.machine, *b.sigs);
  const std::string& v = out.verilog;
  EXPECT_NE(v.find("module SREP_core("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("RF_mem"), std::string::npos);
  EXPECT_NE(v.find("output wire [0:0] halted_o"), std::string::npos);
  // Balanced begin/end usage is hard to check lexically; at minimum the
  // module has no unnamed placeholder and no stray kNoNet references.
  EXPECT_EQ(v.find("-1'"), std::string::npos);
  EXPECT_GT(countLines(v), 200u);
}

TEST(Verilog, SpamUsesFpMacroBlocks) {
  auto b = load(archs::loadSpam);
  HgenOutput out = runHgen(*b.machine, *b.sigs);
  EXPECT_NE(out.verilog.find("isdl_fadd32"), std::string::npos);
  EXPECT_NE(out.verilog.find("isdl_fdiv32"), std::string::npos);
  EXPECT_NE(out.verilog.find("module isdl_fadd32"), std::string::npos);
}

TEST(Mapper, WiringNodesAreFree) {
  Netlist nl;
  NetId in = nl.addInput("a", 16);
  NetId sl = nl.addSlice(in, 7, 0);
  NetId cc = nl.addConcat({sl, sl});
  EXPECT_EQ(synth::costOfNode(nl, sl).area, 0.0);
  EXPECT_EQ(synth::costOfNode(nl, cc).delay, 0.0);
}

TEST(Mapper, AdderCostsScaleWithWidth) {
  Netlist nl;
  NetId a8 = nl.addInput("a8", 8);
  NetId b8 = nl.addInput("b8", 8);
  NetId s8 = nl.addBinary(rtl::BinOp::Add, a8, b8);
  NetId a32 = nl.addInput("a32", 32);
  NetId b32 = nl.addInput("b32", 32);
  NetId s32 = nl.addBinary(rtl::BinOp::Add, a32, b32);
  auto c8 = synth::costOfNode(nl, s8);
  auto c32 = synth::costOfNode(nl, s32);
  EXPECT_EQ(c32.area, 4 * c8.area);
  EXPECT_GT(c32.delay, c8.delay);
  // Multipliers dwarf adders.
  NetId m32 = nl.addBinary(rtl::BinOp::Mul, a32, b32);
  EXPECT_GT(synth::costOfNode(nl, m32).area, 10 * c32.area);
}

TEST(Mapper, TimingFindsCriticalPath) {
  // reg -> add -> mul -> reg is longer than reg -> add -> reg.
  Netlist nl;
  NetId r1 = nl.addReg("r1", 16);
  NetId r2 = nl.addReg("r2", 16);
  NetId sum = nl.addBinary(rtl::BinOp::Add, r1, r2);
  NetId prod = nl.addBinary(rtl::BinOp::Mul, sum, r2);
  nl.setRegInputs(r1, sum);
  nl.setRegInputs(r2, prod);
  auto t = synth::analyzeTiming(nl);
  const auto& lib = synth::defaultLibrary();
  double expected = lib.dffClkToQ + synth::costOfNode(nl, sum).delay +
                    synth::costOfNode(nl, prod).delay + lib.dffSetup;
  EXPECT_DOUBLE_EQ(t.criticalPathNs, expected);
  // The reported path walks source -> sink.
  ASSERT_GE(t.criticalPath.size(), 2u);
  EXPECT_EQ(t.criticalPath.back(), prod);
}

TEST(Hgen, Table2ShapeSpamVsSpam2) {
  auto bSpam = load(archs::loadSpam);
  auto bSpam2 = load(archs::loadSpam2);
  HgenOutput spam = runHgen(*bSpam.machine, *bSpam.sigs);
  HgenOutput spam2 = runHgen(*bSpam2.machine, *bSpam2.sigs);

  // The paper's qualitative Table 2: SPAM is the bigger, slower-clocked
  // machine; SPAM2 is the reduced one.
  EXPECT_GT(spam.stats.dieSizeGridCells, spam2.stats.dieSizeGridCells);
  EXPECT_GT(spam.stats.verilogLines, spam2.stats.verilogLines);
  EXPECT_GE(spam.stats.cycleNs, spam2.stats.cycleNs);
  EXPECT_GT(spam.stats.cycleNs, 0.0);
  EXPECT_GT(spam.stats.synthesisSeconds, 0.0);
}

TEST(Hgen, SharingShrinksDieSize) {
  auto b1 = load(archs::loadSpam);
  HgenOptions shared;
  HgenOptions naive;
  naive.share = false;
  HgenOutput with = runHgen(*b1.machine, *b1.sigs, shared);
  auto b2 = load(archs::loadSpam);
  HgenOutput without = runHgen(*b2.machine, *b2.sigs, naive);
  EXPECT_LT(with.stats.area.logicArea, without.stats.area.logicArea);
  EXPECT_GT(with.stats.sharing.cliquesUsed, 0u);
}

TEST(Hgen, PowerEstimateIsMonotonicInActivity) {
  double p1 = synth::estimatePowerMw(1000, 10.0);
  double p2 = synth::estimatePowerMw(2000, 10.0);
  double p3 = synth::estimatePowerMw(1000, 5.0);  // faster clock
  EXPECT_GT(p2, p1);
  EXPECT_GT(p3, p1);
  EXPECT_EQ(synth::estimatePowerMw(1000, 0.0), 0.0);
}

}  // namespace
}  // namespace isdl::hw
