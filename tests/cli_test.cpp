// Tests for the XSIM command-line / batch interface (paper §3.1), including
// attached commands and execution-trace files.

#include "sim/cli.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "isdl/parser.h"
#include "support/strings.h"
#include "test_machines.h"

namespace isdl::sim {
namespace {

class CliTest : public ::testing::Test {
 protected:
  CliTest()
      : machine_(parseAndCheckIsdl(testing::kMiniIsdl)),
        sim_(*machine_),
        cli_(sim_, out_) {}

  void loadInline(const char* asmText) {
    Assembler assembler(sim_.signatures());
    DiagnosticEngine diags;
    auto prog = assembler.assemble(asmText, diags);
    ASSERT_TRUE(prog.has_value()) << diags.dump();
    std::string err;
    ASSERT_TRUE(sim_.loadProgram(*prog, &err)) << err;
  }

  std::string takeOutput() {
    std::string s = out_.str();
    out_.str("");
    return s;
  }

  std::unique_ptr<Machine> machine_;
  Xsim sim_;
  std::ostringstream out_;
  Cli cli_;
};

TEST_F(CliTest, EchoAndComments) {
  cli_.runScript("echo hello world\n# a comment\n; another\necho done\n");
  EXPECT_EQ(takeOutput(), "hello world\ndone\n");
  EXPECT_EQ(cli_.errorCount(), 0u);
}

TEST_F(CliTest, RunAndExamine) {
  loadInline("li R1, 42\nhalt\n");
  cli_.runScript("run\nx RF 1\nx PC\n");
  std::string out = takeOutput();
  EXPECT_NE(out.find("stopped: halted"), std::string::npos);
  EXPECT_NE(out.find("RF[1] = 0x002a (42)"), std::string::npos);
  EXPECT_NE(out.find("PC = "), std::string::npos);
}

TEST_F(CliTest, SetAndExamineAlias) {
  loadInline("halt\n");
  cli_.runScript("set RF 3 0x7f\nx RF 3\nset CARRY 1\nx CARRY\n");
  std::string out = takeOutput();
  EXPECT_NE(out.find("RF[3] = 0x007f"), std::string::npos);
  EXPECT_NE(out.find("CC = "), std::string::npos);  // alias resolves to CC
  EXPECT_EQ(cli_.errorCount(), 0u);
}

TEST_F(CliTest, StepAndDisasm) {
  loadInline("li R1, 1\nli R2, 2\nadd R3, R1, R2\nhalt\n");
  cli_.runScript("step 2\ndisasm 0 3\n");
  std::string out = takeOutput();
  EXPECT_NE(out.find("pc 2"), std::string::npos);
  EXPECT_NE(out.find("0: { li R1, 1 | mnop }"), std::string::npos);
  EXPECT_NE(out.find("2: { add R3, R1, R2 | mnop }"), std::string::npos);
}

TEST_F(CliTest, BreakpointWithAttachedCommand) {
  loadInline("li R1, 1\nli R2, 2\nadd R3, R1, R2\nhalt\n");
  cli_.runScript("break 2 echo hit-breakpoint\nrun\n");
  std::string out = takeOutput();
  // The attached command runs when the breakpoint is hit (paper: "attached
  // commands... dispatched back to the user interface").
  EXPECT_NE(out.find("hit-breakpoint"), std::string::npos);
  EXPECT_NE(out.find("stopped: breakpoint"), std::string::npos);
  cli_.runScript("delete 2\nrun\n");
  EXPECT_NE(takeOutput().find("stopped: halted"), std::string::npos);
}

TEST_F(CliTest, MonitorPrintsChanges) {
  loadInline("li R1, 5\nli R1, 6\nhalt\n");
  cli_.runScript("monitor RF 1\nrun\n");
  std::string out = takeOutput();
  EXPECT_NE(out.find("monitor: RF[1] 0x0000 -> 0x0005"), std::string::npos);
  EXPECT_NE(out.find("monitor: RF[1] 0x0005 -> 0x0006"), std::string::npos);
}

TEST_F(CliTest, TraceToFile) {
  loadInline("li R1, 1\njmp 3\nnop\nhalt\n");
  const char* path = "cli_trace_test.tmp";
  cli_.runScript(cat("trace ", path, "\nrun\ntrace off\n"));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  in.close();
  std::remove(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "0");
  EXPECT_EQ(lines[1], "1");
  EXPECT_EQ(lines[2], "3");
}

TEST_F(CliTest, StatsReport) {
  loadInline("li R1, 1\nadd R2, R1, R1\nhalt\n");
  cli_.runScript("run\nstats\n");
  std::string out = takeOutput();
  EXPECT_NE(out.find("cycles 3 instructions 3"), std::string::npos);
  EXPECT_NE(out.find("field EX utilization 3/3"), std::string::npos);
  EXPECT_NE(out.find("add 1"), std::string::npos);
}

TEST_F(CliTest, ResetRestoresInitialState) {
  loadInline("li R1, 9\nhalt\n");
  cli_.runScript("run\nreset\nx RF 1\n");
  EXPECT_NE(takeOutput().find("RF[1] = 0x0000"), std::string::npos);
}

TEST_F(CliTest, ErrorsAreCountedAndReported) {
  loadInline("halt\n");
  cli_.runScript("bogus\nx NOPE\nset RF\n");
  EXPECT_EQ(cli_.errorCount(), 3u);
  std::string out = takeOutput();
  EXPECT_NE(out.find("unknown command"), std::string::npos);
  EXPECT_NE(out.find("unknown storage"), std::string::npos);
}

TEST_F(CliTest, QuitStopsScript) {
  loadInline("halt\n");
  cli_.runScript("echo one\nquit\necho two\n");
  EXPECT_EQ(takeOutput(), "one\n");
}

TEST_F(CliTest, AsmFromFile) {
  const char* path = "cli_asm_test.tmp";
  {
    std::ofstream f(path);
    f << "li R1, 7\nhalt\n";
  }
  cli_.runScript(cat("asm ", path, "\nrun\nx RF 1\n"));
  std::remove(path);
  std::string out = takeOutput();
  EXPECT_NE(out.find("loaded 2 words"), std::string::npos);
  EXPECT_NE(out.find("RF[1] = 0x0007"), std::string::npos);
}

}  // namespace
}  // namespace isdl::sim
