// Unit and property tests for BitVector: the bit-true value type every other
// component builds on. Properties are cross-checked against native 64-bit
// arithmetic at widths 1..64 and against hand-computed values above 64.

#include "support/bitvector.h"

#include <gtest/gtest.h>

#include <random>

namespace isdl {
namespace {

TEST(BitVector, DefaultIsInvalid) {
  BitVector v;
  EXPECT_FALSE(v.valid());
  EXPECT_EQ(v.width(), 0u);
}

TEST(BitVector, ZeroWidthConstructionThrows) {
  EXPECT_THROW(BitVector(0), std::invalid_argument);
}

TEST(BitVector, ValueConstructionTruncates) {
  BitVector v(4, 0xAB);
  EXPECT_EQ(v.toUint64(), 0xBu);
  EXPECT_EQ(v.width(), 4u);
}

TEST(BitVector, BitAccess) {
  BitVector v(8, 0b10110010);
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_TRUE(v.bit(7));
  EXPECT_THROW(v.bit(8), std::out_of_range);
  v.setBit(0, true);
  EXPECT_EQ(v.toUint64(), 0b10110011u);
  v.setBit(7, false);
  EXPECT_EQ(v.toUint64(), 0b00110011u);
}

TEST(BitVector, WideValuesCrossWordBoundary) {
  BitVector v(128);
  v.setBit(0, true);
  v.setBit(64, true);
  v.setBit(127, true);
  EXPECT_EQ(v.popcount(), 3u);
  EXPECT_TRUE(v.bit(64));
  BitVector shifted = v.shl(1);
  EXPECT_TRUE(shifted.bit(1));
  EXPECT_TRUE(shifted.bit(65));
  EXPECT_FALSE(shifted.bit(127));  // msb shifted out
  EXPECT_EQ(shifted.popcount(), 2u);
}

TEST(BitVector, HeapWidths) {
  // > 128 bits spills to the heap; exercise copy/move/assign.
  BitVector a = BitVector::allOnes(200);
  BitVector b = a;  // copy
  EXPECT_EQ(a, b);
  BitVector c = std::move(a);
  EXPECT_EQ(c, b);
  EXPECT_TRUE(c.isAllOnes());
  c.setBit(199, false);
  EXPECT_FALSE(c.isAllOnes());
  EXPECT_NE(c, b);
  b = c;  // copy-assign heap -> heap
  EXPECT_EQ(b, c);
  b = BitVector(8, 1);  // heap -> inline
  EXPECT_EQ(b.width(), 8u);
}

TEST(BitVector, FromStringHex) {
  EXPECT_EQ(BitVector::fromString(16, "0xBEEF").toUint64(), 0xBEEFu);
  EXPECT_EQ(BitVector::fromString(8, "0xF").toUint64(), 0xFu);
  EXPECT_EQ(BitVector::fromString(4, "0xBEEF").toUint64(), 0xFu);  // truncates
  EXPECT_THROW(BitVector::fromString(8, "0xZZ"), std::invalid_argument);
}

TEST(BitVector, FromStringBinaryAndDecimal) {
  EXPECT_EQ(BitVector::fromString(8, "0b1010").toUint64(), 10u);
  EXPECT_EQ(BitVector::fromString(8, "255").toUint64(), 255u);
  EXPECT_EQ(BitVector::fromString(8, "256").toUint64(), 0u);  // wraps mod 2^8
  EXPECT_EQ(BitVector::fromString(8, "-1").toUint64(), 255u);
  EXPECT_THROW(BitVector::fromString(8, ""), std::invalid_argument);
  EXPECT_THROW(BitVector::fromString(8, "12a"), std::invalid_argument);
}

TEST(BitVector, FromStringWide) {
  BitVector v = BitVector::fromString(128, "0xffffffffffffffffffffffffffffffff");
  EXPECT_TRUE(v.isAllOnes());
  BitVector d = BitVector::fromString(80, "1208925819614629174706176");  // 2^80
  EXPECT_TRUE(d.isZero());  // wraps
}

TEST(BitVector, DecimalRoundTrip) {
  BitVector v = BitVector::fromString(100, "1267650600228229401496703205375");
  EXPECT_EQ(v.toUnsignedDecimalString(), "1267650600228229401496703205375");
  EXPECT_EQ(BitVector(8, 0).toUnsignedDecimalString(), "0");
}

TEST(BitVector, ToInt64SignExtends) {
  EXPECT_EQ(BitVector(4, 0xF).toInt64(), -1);
  EXPECT_EQ(BitVector(4, 0x7).toInt64(), 7);
  EXPECT_EQ(BitVector(64, ~0ull).toInt64(), -1);
}

TEST(BitVector, FromIntSignExtendsAcrossWords) {
  BitVector v = BitVector::fromInt(100, -1);
  EXPECT_TRUE(v.isAllOnes());
  BitVector w = BitVector::fromInt(100, -2);
  EXPECT_FALSE(w.bit(0));
  EXPECT_TRUE(w.bit(99));
}

TEST(BitVector, Extensions) {
  BitVector v(4, 0b1010);
  EXPECT_EQ(v.zext(8).toUint64(), 0b1010u);
  EXPECT_EQ(v.sext(8).toUint64(), 0b11111010u);
  EXPECT_EQ(BitVector(4, 0b0101).sext(8).toUint64(), 0b0101u);
  EXPECT_EQ(BitVector(8, 0xAB).trunc(4).toUint64(), 0xBu);
  EXPECT_THROW(v.zext(2), std::invalid_argument);
  EXPECT_THROW(v.trunc(8), std::invalid_argument);
  EXPECT_EQ(v.resize(8).toUint64(), 0b1010u);
  EXPECT_EQ(BitVector(8, 0xAB).resize(4).toUint64(), 0xBu);
}

TEST(BitVector, SextAcrossWordBoundary) {
  BitVector v(32, 0x80000000u);
  BitVector w = v.sext(96);
  for (unsigned i = 31; i < 96; ++i) EXPECT_TRUE(w.bit(i)) << i;
  EXPECT_FALSE(w.bit(0));
}

TEST(BitVector, SliceBasic) {
  BitVector v(16, 0xABCD);
  EXPECT_EQ(v.slice(7, 0).toUint64(), 0xCDu);
  EXPECT_EQ(v.slice(15, 8).toUint64(), 0xABu);
  EXPECT_EQ(v.slice(11, 4).toUint64(), 0xBCu);
  EXPECT_EQ(v.slice(0, 0).width(), 1u);
  EXPECT_THROW(v.slice(16, 0), std::out_of_range);
  EXPECT_THROW(v.slice(3, 5), std::out_of_range);
}

TEST(BitVector, SliceAcrossWordBoundary) {
  BitVector v(128);
  v.insertSlice(71, 56, BitVector(16, 0xBEEF));
  EXPECT_EQ(v.slice(71, 56).toUint64(), 0xBEEFu);
  EXPECT_EQ(v.slice(63, 56).toUint64(), 0xEFu);
  EXPECT_EQ(v.slice(71, 64).toUint64(), 0xBEu);
}

TEST(BitVector, InsertSliceChecksWidths) {
  BitVector v(16);
  EXPECT_THROW(v.insertSlice(7, 0, BitVector(4, 1)), std::invalid_argument);
  EXPECT_THROW(v.insertSlice(16, 9, BitVector(8, 1)), std::out_of_range);
  BitVector w = v.withSlice(11, 4, BitVector(8, 0xFF));
  EXPECT_EQ(w.toUint64(), 0x0FF0u);
  EXPECT_EQ(v.toUint64(), 0u);  // withSlice does not mutate
}

TEST(BitVector, Concat) {
  BitVector hi(8, 0xAB);
  BitVector lo(4, 0xC);
  BitVector c = hi.concat(lo);
  EXPECT_EQ(c.width(), 12u);
  EXPECT_EQ(c.toUint64(), 0xABCu);
}

TEST(BitVector, AddCarryOverflow) {
  BitVector a(8, 200), b(8, 100);
  auto r = a.addWithCarry(b, false);
  EXPECT_EQ(r.sum.toUint64(), 44u);  // 300 mod 256
  EXPECT_TRUE(r.carryOut);
  // 200 = -56 signed, 100 signed: -56+100 = 44, no signed overflow.
  EXPECT_FALSE(r.overflow);

  BitVector c(8, 100), d(8, 100);
  auto r2 = c.addWithCarry(d, false);
  EXPECT_EQ(r2.sum.toUint64(), 200u);
  EXPECT_FALSE(r2.carryOut);
  EXPECT_TRUE(r2.overflow);  // 100+100 = 200 = -56 signed

  auto r3 = BitVector(8, 255).addWithCarry(BitVector(8, 0), true);
  EXPECT_EQ(r3.sum.toUint64(), 0u);
  EXPECT_TRUE(r3.carryOut);
}

TEST(BitVector, DivisionByZeroConventions) {
  BitVector x(8, 42), zero(8, 0);
  EXPECT_TRUE(x.udiv(zero).isAllOnes());
  EXPECT_EQ(x.urem(zero), x);
  EXPECT_TRUE(x.sdiv(zero).isAllOnes());
  EXPECT_EQ(x.srem(zero), x);
}

TEST(BitVector, SignedDivision) {
  auto sd = [](int a, int b) {
    return BitVector::fromInt(8, a).sdiv(BitVector::fromInt(8, b)).toInt64();
  };
  auto sr = [](int a, int b) {
    return BitVector::fromInt(8, a).srem(BitVector::fromInt(8, b)).toInt64();
  };
  EXPECT_EQ(sd(7, 2), 3);
  EXPECT_EQ(sd(-7, 2), -3);   // truncating division
  EXPECT_EQ(sd(7, -2), -3);
  EXPECT_EQ(sd(-7, -2), 3);
  EXPECT_EQ(sr(-7, 2), -1);   // remainder takes dividend's sign
  EXPECT_EQ(sr(7, -2), 1);
}

TEST(BitVector, Shifts) {
  BitVector v(8, 0b10010110);
  EXPECT_EQ(v.shl(2).toUint64(), 0b01011000u);
  EXPECT_EQ(v.lshr(2).toUint64(), 0b00100101u);
  EXPECT_EQ(v.ashr(2).toUint64(), 0b11100101u);
  EXPECT_EQ(BitVector(8, 0b00010110).ashr(2).toUint64(), 0b00000101u);
  EXPECT_TRUE(v.shl(8).isZero());
  EXPECT_TRUE(v.lshr(8).isZero());
  EXPECT_TRUE(v.ashr(8).isAllOnes());
  EXPECT_TRUE(v.ashr(200).isAllOnes());
}

TEST(BitVector, Comparisons) {
  BitVector a(8, 0x80), b(8, 0x7F);
  EXPECT_TRUE(b.ult(a));
  EXPECT_TRUE(a.slt(b));  // -128 < 127
  EXPECT_TRUE(a.sle(a));
  EXPECT_TRUE(a.ule(a));
  EXPECT_FALSE(a.ult(a));
  EXPECT_THROW(a.ult(BitVector(16, 0)), std::invalid_argument);
}

TEST(BitVector, EqualityRequiresSameWidth) {
  EXPECT_NE(BitVector(8, 5), BitVector(16, 5));
  EXPECT_EQ(BitVector(8, 5), BitVector(8, 5));
}

TEST(BitVector, Reductions) {
  EXPECT_TRUE(BitVector::allOnes(9).reduceAnd());
  EXPECT_FALSE(BitVector(9, 0xFF).reduceAnd());
  EXPECT_TRUE(BitVector(9, 1).reduceOr());
  EXPECT_FALSE(BitVector(9, 0).reduceOr());
  EXPECT_TRUE(BitVector(9, 0b111).reduceXor());
  EXPECT_FALSE(BitVector(9, 0b11).reduceXor());
}

TEST(BitVector, HashConsistentWithEquality) {
  BitVector a(70, 1234), b(70, 1234);
  EXPECT_EQ(a.hash(), b.hash());
}

// --- property sweep: cross-check against native arithmetic at width 1..64 ---

class BitVectorPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitVectorPropertyTest, MatchesNativeArithmetic) {
  const unsigned width = GetParam();
  const std::uint64_t mask =
      width == 64 ? ~0ull : ((1ull << width) - 1);
  std::mt19937_64 rng(width * 7919u + 13);
  for (int iter = 0; iter < 400; ++iter) {
    std::uint64_t xa = rng() & mask;
    std::uint64_t xb = rng() & mask;
    BitVector a(width, xa), b(width, xb);

    EXPECT_EQ(a.add(b).toUint64(), (xa + xb) & mask);
    EXPECT_EQ(a.sub(b).toUint64(), (xa - xb) & mask);
    EXPECT_EQ(a.mul(b).toUint64(), (xa * xb) & mask);
    if (xb != 0) {
      EXPECT_EQ(a.udiv(b).toUint64(), (xa / xb) & mask);
      EXPECT_EQ(a.urem(b).toUint64(), (xa % xb) & mask);
    }
    EXPECT_EQ(a.and_(b).toUint64(), xa & xb);
    EXPECT_EQ(a.or_(b).toUint64(), xa | xb);
    EXPECT_EQ(a.xor_(b).toUint64(), xa ^ xb);
    EXPECT_EQ(a.not_().toUint64(), ~xa & mask);
    EXPECT_EQ(a.neg().toUint64(), (~xa + 1) & mask);

    unsigned sh = unsigned(rng() % (width + 1));
    EXPECT_EQ(a.shl(sh).toUint64(), sh >= width ? 0 : (xa << sh) & mask);
    EXPECT_EQ(a.lshr(sh).toUint64(), sh >= width ? 0 : xa >> sh);

    EXPECT_EQ(a.ult(b), xa < xb);
    EXPECT_EQ(a.ule(b), xa <= xb);
    std::int64_t sa = BitVector(width, xa).toInt64();
    std::int64_t sb = BitVector(width, xb).toInt64();
    EXPECT_EQ(a.slt(b), sa < sb);
    EXPECT_EQ(a.sle(b), sa <= sb);

    // Round trips.
    EXPECT_EQ(BitVector::fromString(width, a.toHexString()), a);
    EXPECT_EQ(BitVector::fromString(width, a.toBinaryString()), a);
    EXPECT_EQ(BitVector::fromString(width, a.toUnsignedDecimalString()), a);

    // slice/concat inverse: splitting at k and re-concatenating is identity.
    if (width >= 2) {
      unsigned k = 1 + unsigned(rng() % (width - 1));
      BitVector hi = a.slice(width - 1, k);
      BitVector lo = a.slice(k - 1, 0);
      EXPECT_EQ(hi.concat(lo), a);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVectorPropertyTest,
                         ::testing::Values(1u, 3u, 8u, 13u, 16u, 31u, 32u,
                                           33u, 48u, 63u, 64u));

// --- wide-width properties: algebraic identities at >64 bits ----------------

class BitVectorWideTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitVectorWideTest, AlgebraicIdentities) {
  const unsigned width = GetParam();
  std::mt19937_64 rng(width);
  auto randomBv = [&] {
    BitVector v(width);
    for (unsigned i = 0; i < width; i += 64) {
      unsigned hi = std::min(i + 63, width - 1);
      v.insertSlice(hi, i, BitVector(hi - i + 1, rng()));
    }
    return v;
  };
  for (int iter = 0; iter < 60; ++iter) {
    BitVector a = randomBv(), b = randomBv();
    EXPECT_EQ(a.add(b), b.add(a));
    EXPECT_EQ(a.add(b).sub(b), a);
    EXPECT_EQ(a.sub(b).add(b), a);
    EXPECT_EQ(a.xor_(b).xor_(b), a);
    EXPECT_EQ(a.not_().not_(), a);
    EXPECT_EQ(a.neg().neg(), a);
    EXPECT_EQ(a.add(a), a.shl(1));
    EXPECT_EQ(a.mul(b), b.mul(a));
    EXPECT_TRUE(a.sub(a).isZero());
    // Division identity: a = (a/b)*b + a%b.
    if (!b.isZero()) {
      EXPECT_EQ(a.udiv(b).mul(b).add(a.urem(b)), a);
    }
    unsigned sh = unsigned(rng() % width);
    EXPECT_EQ(a.shl(sh).lshr(sh).shl(sh), a.shl(sh));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVectorWideTest,
                         ::testing::Values(65u, 100u, 128u, 129u, 256u, 300u));

}  // namespace
}  // namespace isdl
