// Directed tests for the micro-op compilation layer (sim/uop.h): table
// construction over all example architectures, engine parity on the real
// benchmark kernels (cycles, stalls and final state — the fuzz suite covers
// random programs), run-time engine switching, and the CLI `engine` command.

#include "sim/uop.h"

#include <gtest/gtest.h>

#include <sstream>

#include "archs/archs.h"
#include "isdl/parser.h"
#include "sim/cli.h"
#include "sim/xsim.h"
#include "test_machines.h"

namespace isdl::sim {
namespace {

struct ArchCase {
  const char* name;
  std::unique_ptr<Machine> (*loader)();
  std::vector<archs::Benchmark> (*benchmarks)();
};

const ArchCase kArchs[] = {
    {"SPAM", archs::loadSpam, archs::spamBenchmarks},
    {"SPAM2", archs::loadSpam2, archs::spam2Benchmarks},
    {"SREP", archs::loadSrep, archs::srepBenchmarks},
    {"TDSP", archs::loadTdsp, archs::tdspBenchmarks},
};

TEST(UopTable, CompilesEveryOperationOfEveryArch) {
  for (const ArchCase& a : kArchs) {
    SCOPED_TRACE(a.name);
    auto m = a.loader();
    uop::UopTable table(*m);
    EXPECT_GT(table.totalUops(), 0u);
    for (std::size_t f = 0; f < m->fields.size(); ++f) {
      for (std::size_t o = 0; o < m->fields[f].operations.size(); ++o) {
        const Operation& op = m->fields[f].operations[o];
        const uop::OpPrograms& p = table.at(unsigned(f), unsigned(o));
        // An operation with statements must compile to a non-empty program.
        if (!op.action.empty()) {
          EXPECT_FALSE(p.action.empty()) << op.name;
        }
      }
    }
  }
}

TEST(UopTable, ToStringIsReadable) {
  auto m = parseAndCheckIsdl(testing::kMiniIsdl);
  uop::UopTable table(*m);
  std::string all;
  for (std::size_t f = 0; f < m->fields.size(); ++f)
    for (std::size_t o = 0; o < m->fields[f].operations.size(); ++o)
      all += uop::toString(table.at(unsigned(f), unsigned(o)).action);
  // Some operation writes architectural state, so a stage-write uop and a
  // parameter load must appear somewhere in the listings.
  EXPECT_NE(all.find("stage"), std::string::npos);
  EXPECT_NE(all.find("ldparam"), std::string::npos);
}

void expectSameRun(Xsim& a, Xsim& b, const Machine& m) {
  EXPECT_EQ(a.stats().cycles, b.stats().cycles);
  EXPECT_EQ(a.stats().instructions, b.stats().instructions);
  EXPECT_EQ(a.stats().dataStallCycles, b.stats().dataStallCycles);
  EXPECT_EQ(a.stats().structStallCycles, b.stats().structStallCycles);
  EXPECT_EQ(a.stats().dataStallsByStorage, b.stats().dataStallsByStorage);
  EXPECT_EQ(a.stats().structStallsByField, b.stats().structStallsByField);
  EXPECT_EQ(a.stats().opCount, b.stats().opCount);
  for (std::size_t si = 0; si < m.storages.size(); ++si)
    for (std::uint64_t e = 0; e < m.storages[si].depth; ++e)
      EXPECT_EQ(a.state().read(unsigned(si), e),
                b.state().read(unsigned(si), e))
          << m.storages[si].name << "[" << e << "]";
}

TEST(UopEngine, BenchmarkKernelsMatchInterpreter) {
  for (const ArchCase& a : kArchs) {
    auto m = a.loader();
    for (const archs::Benchmark& bench : a.benchmarks()) {
      SCOPED_TRACE(::testing::Message() << a.name << "/" << bench.name);
      Xsim uop(*m);
      Xsim interp(*m);
      interp.setUopEnabled(false);

      Assembler assembler(uop.signatures());
      DiagnosticEngine diags;
      auto prog = assembler.assemble(bench.source, diags);
      ASSERT_TRUE(prog.has_value()) << diags.dump();

      std::string err;
      ASSERT_TRUE(uop.loadProgram(*prog, &err)) << err;
      ASSERT_TRUE(interp.loadProgram(*prog, &err)) << err;
      ASSERT_EQ(uop.run(bench.maxCycles).reason, StopReason::Halted);
      ASSERT_EQ(interp.run(bench.maxCycles).reason, StopReason::Halted);
      uop.drainPipeline();
      interp.drainPipeline();
      expectSameRun(uop, interp, *m);
    }
  }
}

TEST(UopEngine, SwitchingEnginesMidSessionIsConsistent) {
  auto m = archs::loadTdsp();  // exercises option lvalues + side effects
  const archs::Benchmark bench = archs::tdspBenchmarks()[0];
  Xsim xsim(*m);
  Assembler assembler(xsim.signatures());
  DiagnosticEngine diags;
  auto prog = assembler.assemble(bench.source, diags);
  ASSERT_TRUE(prog.has_value()) << diags.dump();
  std::string err;
  ASSERT_TRUE(xsim.loadProgram(*prog, &err)) << err;

  ASSERT_EQ(xsim.run(bench.maxCycles).reason, StopReason::Halted);
  std::uint64_t uopCycles = xsim.stats().cycles;

  xsim.setUopEnabled(false);
  xsim.reset();
  ASSERT_EQ(xsim.run(bench.maxCycles).reason, StopReason::Halted);
  EXPECT_EQ(xsim.stats().cycles, uopCycles);

  xsim.setUopEnabled(true);
  xsim.reset();
  ASSERT_EQ(xsim.run(bench.maxCycles).reason, StopReason::Halted);
  EXPECT_EQ(xsim.stats().cycles, uopCycles);
}

TEST(UopEngine, CliEngineCommandSwitches) {
  auto m = parseAndCheckIsdl(testing::kMiniIsdl);
  Xsim xsim(*m);
  std::ostringstream out;
  Cli cli(xsim, out);
  EXPECT_TRUE(xsim.uopEnabled());
  cli.execute("engine interp");
  EXPECT_FALSE(xsim.uopEnabled());
  cli.execute("engine uop");
  EXPECT_TRUE(xsim.uopEnabled());
  EXPECT_EQ(cli.errorCount(), 0u);
  cli.execute("engine warp");
  EXPECT_EQ(cli.errorCount(), 1u);
  EXPECT_NE(out.str().find("micro-op"), std::string::npos);
}

}  // namespace
}  // namespace isdl::sim
