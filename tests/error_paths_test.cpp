// Error-path coverage for the assembler and the XSIM batch CLI: malformed
// input must produce a clean diagnostic (never a crash, never a silently
// wrong program). Each assembler case pins the exact message; the CLI cases
// assert the error counter and the printed message for malformed batch
// scripts.

#include <gtest/gtest.h>

#include <sstream>

#include "isdl/parser.h"
#include "sim/assembler.h"
#include "sim/cli.h"
#include "sim/xsim.h"
#include "test_machines.h"

namespace isdl {
namespace {

// --- assembler ---------------------------------------------------------------

class AsmErrorTest : public ::testing::Test {
 protected:
  AsmErrorTest()
      : machine_(parseAndCheckIsdl(testing::kMiniIsdl)),
        xsim_(*machine_),
        assembler_(xsim_.signatures()) {}

  /// Assembles a bad program and returns the diagnostics; asserts failure.
  std::string reject(const std::string& source) {
    DiagnosticEngine diags;
    auto prog = assembler_.assemble(source, diags);
    EXPECT_FALSE(prog.has_value()) << "bad source was accepted:\n" << source;
    EXPECT_TRUE(diags.hasErrors());
    return diags.dump();
  }

  void expectDiag(const std::string& source, const std::string& message) {
    std::string dump = reject(source);
    EXPECT_NE(dump.find(message), std::string::npos)
        << "expected:\n  " << message << "\ngot:\n" << dump;
  }

  std::unique_ptr<Machine> machine_;
  sim::Xsim xsim_;
  sim::Assembler assembler_;
};

TEST_F(AsmErrorTest, UnknownMnemonic) {
  expectDiag("frobnicate R1, R2\nhalt\n",
             "unknown operation 'frobnicate'");
}

TEST_F(AsmErrorTest, OperandsDontMatchSyntax) {
  expectDiag("add R1, R2\nhalt\n", "operands do not match the syntax of 'add'");
}

TEST_F(AsmErrorTest, BadRegisterName) {
  expectDiag("add R1, R2, R9\nhalt\n",
             "operands do not match the syntax of 'add'");
}

TEST_F(AsmErrorTest, ImmediateOutOfRange) {
  // S8 is signed 8-bit; the assembler admits [-128, 256) so hex bit
  // patterns still work, but 300 is out of range under any reading.
  expectDiag("li R1, 300\nhalt\n",
             "immediate 300 out of range for a 8-bit");
}

TEST_F(AsmErrorTest, ConstraintViolatingBundle) {
  // MINI: never EX.add & MV.mvi.
  expectDiag("{ add R1, R2, R3 | mvi R4, 5 }\nhalt\n",
             "instruction violates constraint: never EX.add & MV.mvi");
}

TEST_F(AsmErrorTest, MalformedBundleMissingBrace) {
  expectDiag("{ add R1, R2, R3 \nhalt\n", "expected '}' or '|'");
}

TEST_F(AsmErrorTest, DoubleOccupiedField) {
  expectDiag("{ add R1, R2, R3 | sub R4, R5, R6 }\nhalt\n",
             "unknown operation 'sub' (or its field is already occupied)");
}

TEST_F(AsmErrorTest, DuplicateLabel) {
  expectDiag("loop: add R1, R2, R3\nloop: halt\n", "duplicate label 'loop'");
}

TEST_F(AsmErrorTest, UndefinedLabel) {
  expectDiag("beq R1, R2, nowhere\nhalt\n", "undefined label 'nowhere'");
}

TEST_F(AsmErrorTest, TrailingJunk) {
  expectDiag("halt garbage\n", "trailing junk 'garbage'");
}

TEST_F(AsmErrorTest, OrgBackwards) {
  expectDiag(".org 4\nhalt\n.org 2\nhalt\n", ".org cannot move backwards");
}

TEST_F(AsmErrorTest, OrgWithoutNumber) {
  expectDiag(".org next\nhalt\n", "expected a number");
}

TEST_F(AsmErrorTest, ErrorsCarryLineNumbers) {
  DiagnosticEngine diags;
  auto prog = assembler_.assemble("add R1, R2, R3\nbogus\nhalt\n", diags);
  EXPECT_FALSE(prog.has_value());
  ASSERT_FALSE(diags.all().empty());
  EXPECT_EQ(diags.all()[0].loc.line, 2u);
}

TEST_F(AsmErrorTest, FailFastReportsTheFirstError) {
  // Pass 1 is fail-fast: exactly one diagnostic, for the first bad line.
  DiagnosticEngine diags;
  auto prog = assembler_.assemble("bogus1\nbogus2\nhalt\n", diags);
  EXPECT_FALSE(prog.has_value());
  EXPECT_EQ(diags.errorCount(), 1u);
  EXPECT_NE(diags.dump().find("bogus1"), std::string::npos);
}

// --- batch CLI ---------------------------------------------------------------

class CliErrorTest : public ::testing::Test {
 protected:
  CliErrorTest() : machine_(parseAndCheckIsdl(testing::kMiniIsdl)) {}

  /// Runs a batch script and returns {errors, output}.
  std::pair<unsigned, std::string> runScript(const std::string& script) {
    sim::Xsim xsim(*machine_);
    std::ostringstream out;
    sim::Cli cli(xsim, out);
    unsigned errors = cli.runScript(script);
    return {errors, out.str()};
  }

  std::unique_ptr<Machine> machine_;
};

TEST_F(CliErrorTest, UnknownCommand) {
  auto [errors, out] = runScript("frobnicate\n");
  EXPECT_EQ(errors, 1u);
  EXPECT_NE(out.find("unknown command 'frobnicate'"), std::string::npos);
}

TEST_F(CliErrorTest, ExamineUnknownStorage) {
  auto [errors, out] = runScript("x BOGUS\n");
  EXPECT_EQ(errors, 1u);
  EXPECT_NE(out.find("unknown storage 'BOGUS'"), std::string::npos);
}

TEST_F(CliErrorTest, ExamineRegisterFileWithoutIndex) {
  auto [errors, out] = runScript("x RF\n");
  EXPECT_EQ(errors, 1u);
  EXPECT_NE(out.find("needs an index"), std::string::npos);
}

TEST_F(CliErrorTest, AsmMissingFile) {
  auto [errors, out] = runScript("asm\n");
  EXPECT_EQ(errors, 1u);
  EXPECT_NE(out.find("asm needs a file name"), std::string::npos);
}

TEST_F(CliErrorTest, AsmUnreadableFile) {
  auto [errors, out] = runScript("asm /nonexistent/path.s\n");
  EXPECT_EQ(errors, 1u);
  EXPECT_NE(out.find("cannot open"), std::string::npos);
}

TEST_F(CliErrorTest, BadEngineSelection) {
  auto [errors, out] = runScript("engine bogus\n");
  EXPECT_EQ(errors, 1u);
  EXPECT_NE(out.find("unknown engine 'bogus' (expected 'uop' or 'interp')"),
            std::string::npos);
}

TEST_F(CliErrorTest, SetWithoutValue) {
  auto [errors, out] = runScript("set PC\n");
  EXPECT_EQ(errors, 1u);
  EXPECT_NE(out.find("set needs a value"), std::string::npos);
}

TEST_F(CliErrorTest, BreakWithoutAddress) {
  auto [errors, out] = runScript("break\n");
  EXPECT_EQ(errors, 1u);
  EXPECT_NE(out.find("break needs an address"), std::string::npos);
}

TEST_F(CliErrorTest, MalformedScriptAccumulatesErrors) {
  auto [errors, out] = runScript("frobnicate\nx BOGUS\nengine bogus\n");
  EXPECT_EQ(errors, 3u);
}

TEST_F(CliErrorTest, ErrorsDoNotAbortTheScript) {
  // A bad command must not stop the batch: the final good command runs.
  auto [errors, out] = runScript("frobnicate\nx PC\n");
  EXPECT_EQ(errors, 1u);
  EXPECT_NE(out.find("PC"), std::string::npos);
}

}  // namespace
}  // namespace isdl
