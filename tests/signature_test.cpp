// Tests for operation signatures (paper Figure 3) and the decodability
// validation that underpins the Figure-4 disassembly algorithm.

#include "sim/signature.h"

#include <gtest/gtest.h>

#include "isdl/parser.h"
#include "isdl/sema.h"
#include "test_machines.h"

namespace isdl::sim {
namespace {

std::unique_ptr<Machine> mini() {
  auto m = parseAndCheckIsdl(testing::kMiniIsdl);
  return m;
}

TEST(Signature, ConstantAndParamBits) {
  auto m = mini();
  DiagnosticEngine diags;
  SignatureTable table(*m, diags);
  ASSERT_TRUE(table.valid()) << diags.dump();

  // EX.add: inst[31:27]=1, d=[26:24], a=[23:21], b=[20:18].
  const Signature& add = table.operation(0, 1);
  EXPECT_EQ(add.widthBits(), 32u);
  for (unsigned b = 27; b <= 31; ++b) EXPECT_TRUE(add.careMask().bit(b));
  EXPECT_TRUE(add.constBits().bit(27));
  EXPECT_FALSE(add.constBits().bit(28));
  for (unsigned b = 18; b <= 26; ++b) {
    EXPECT_FALSE(add.careMask().bit(b));
    EXPECT_TRUE(add.paramMask().bit(b));
  }
  EXPECT_FALSE(add.careMask().bit(0));
  EXPECT_FALSE(add.paramMask().bit(0));
}

TEST(Signature, ToStringRendersFigure3Style) {
  auto m = mini();
  DiagnosticEngine diags;
  SignatureTable table(*m, diags);
  const Signature& add = table.operation(0, 1);
  std::string s = add.toString();
  ASSERT_EQ(s.size(), 32u);
  EXPECT_EQ(s.substr(0, 5), "00001");   // opcode
  EXPECT_EQ(s.substr(5, 3), "aaa");     // d
  EXPECT_EQ(s.substr(8, 3), "bbb");     // a
  EXPECT_EQ(s.substr(11, 3), "ccc");    // b
  EXPECT_EQ(s.substr(14), std::string(18, 'x'));  // don't cares
}

TEST(Signature, AssembleExtractRoundTrip) {
  auto m = mini();
  DiagnosticEngine diags;
  SignatureTable table(*m, diags);
  const Signature& add = table.operation(0, 1);

  std::vector<BitVector> params = {BitVector(3, 5), BitVector(3, 2),
                                   BitVector(3, 7)};
  BitVector word(32);
  add.assemble(word, params);
  EXPECT_TRUE(add.matches(word));
  EXPECT_EQ(add.extractParam(0, word), params[0]);
  EXPECT_EQ(add.extractParam(1, word), params[1]);
  EXPECT_EQ(add.extractParam(2, word), params[2]);
  // Other operations must not match (decodability).
  EXPECT_FALSE(table.operation(0, 0).matches(word));  // nop
  EXPECT_FALSE(table.operation(0, 3).matches(word));  // sub
}

TEST(Signature, SplitParamEncoding) {
  // A parameter scattered across two disjoint bit ranges must reassemble.
  auto m = parseAndCheckIsdl(R"(
machine M {
  section format { word_width = 16; }
  section storage {
    instruction_memory IM width 16 depth 4;
    program_counter PC width 4;
  }
  section global_definitions { token U8 immediate unsigned width 8; }
  section instruction_set {
    field F {
      operation op(i: U8) {
        encode { inst[15:14] = 2'd1; inst[13:10] = i[7:4]; inst[3:0] = i[3:0]; }
      }
    }
  }
}
)");
  DiagnosticEngine diags;
  SignatureTable table(*m, diags);
  ASSERT_TRUE(table.valid());
  const Signature& sig = table.operation(0, 0);
  std::vector<BitVector> params = {BitVector(8, 0xA5)};
  BitVector word(16);
  sig.assemble(word, params);
  EXPECT_EQ(word.slice(13, 10).toUint64(), 0xAu);
  EXPECT_EQ(word.slice(3, 0).toUint64(), 0x5u);
  EXPECT_EQ(sig.extractParam(0, word).toUint64(), 0xA5u);
}

TEST(Signature, UndistinguishableOpsRejected) {
  DiagnosticEngine parseDiags;
  auto m = parseIsdl(R"(
machine M {
  section format { word_width = 8; }
  section storage {
    instruction_memory IM width 8 depth 4;
    program_counter PC width 4;
  }
  section global_definitions { token U4 immediate unsigned width 4; }
  section instruction_set {
    field F {
      operation a(i: U4) { encode { inst[7] = 1; inst[3:0] = i; } }
      operation b(i: U4) { encode { inst[7] = 1; inst[4:1] = i; } }
    }
  }
}
)",
                     parseDiags);
  ASSERT_NE(m, nullptr) << parseDiags.dump();
  checkMachine(*m, parseDiags);
  DiagnosticEngine diags;
  SignatureTable table(*m, diags);
  EXPECT_FALSE(table.valid());
  EXPECT_NE(diags.dump().find("not distinguishable"), std::string::npos)
      << diags.dump();
}

TEST(Signature, NonTerminalOptionSignatures) {
  auto m = mini();
  DiagnosticEngine diags;
  SignatureTable table(*m, diags);
  // SRC option reg: $$[8]=0, $$[7:3]=0, $$[2:0]=r.
  const Signature& reg = table.ntOption(0, 0);
  EXPECT_EQ(reg.widthBits(), 9u);
  EXPECT_TRUE(reg.careMask().bit(8));
  EXPECT_FALSE(reg.constBits().bit(8));
  // imm: $$[8]=1, $$[7:0]=i.
  const Signature& imm = table.ntOption(0, 1);
  EXPECT_TRUE(imm.constBits().bit(8));
  EXPECT_TRUE(distinguishable(reg, imm));

  BitVector v(9);
  imm.assemble(v, {BitVector(8, 0x5A)});
  EXPECT_TRUE(v.bit(8));
  EXPECT_FALSE(reg.matches(v));
  EXPECT_TRUE(imm.matches(v));
  EXPECT_EQ(imm.extractParam(0, v).toUint64(), 0x5Au);
}

TEST(Signature, MatchesIgnoresWiderWordTail) {
  auto m = mini();
  DiagnosticEngine diags;
  SignatureTable table(*m, diags);
  const Signature& add = table.operation(0, 1);
  BitVector wide(64);
  add.assemble(wide, {BitVector(3, 1), BitVector(3, 2), BitVector(3, 3)});
  wide.setBit(63, true);  // junk beyond the signature's width
  EXPECT_TRUE(add.matches(wide));
}

// Property: every operation of MINI assembles and round-trips its parameters
// for a sweep of parameter values.
class SignatureRoundTrip
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(SignatureRoundTrip, AllParamsRecoverable) {
  auto m = mini();
  DiagnosticEngine diags;
  SignatureTable table(*m, diags);
  auto [f, o] = GetParam();
  const Operation& op = m->fields[f].operations[o];
  const Signature& sig = table.operation(f, o);

  for (unsigned seed = 0; seed < 16; ++seed) {
    std::vector<BitVector> params;
    for (const auto& p : op.params) {
      unsigned w = m->paramEncodingWidth(p);
      std::uint64_t v = (seed * 2654435761u) & ((1ull << std::min(w, 63u)) - 1);
      if (p.kind == ParamKind::Token &&
          m->tokens[p.index].kind == TokenKind::Enum)
        v %= m->tokens[p.index].members.size();
      if (p.kind == ParamKind::NonTerminal) {
        // Use the imm option of SRC: bit 8 set, payload in [7:0].
        v = (1u << 8) | (v & 0xFF);
      }
      params.emplace_back(w, v);
    }
    BitVector word(sig.widthBits());
    sig.assemble(word, params);
    ASSERT_TRUE(sig.matches(word));
    for (std::size_t p = 0; p < params.size(); ++p)
      EXPECT_EQ(sig.extractParam(static_cast<unsigned>(p), word), params[p]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MiniOps, SignatureRoundTrip,
    ::testing::Values(std::pair{0u, 0u}, std::pair{0u, 1u}, std::pair{0u, 2u},
                      std::pair{0u, 3u}, std::pair{0u, 4u}, std::pair{0u, 5u},
                      std::pair{0u, 6u}, std::pair{0u, 7u}, std::pair{0u, 8u},
                      std::pair{0u, 9u}, std::pair{1u, 0u}, std::pair{1u, 1u},
                      std::pair{1u, 2u}));

}  // namespace
}  // namespace isdl::sim
