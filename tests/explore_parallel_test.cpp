// Tests for the parallel sharded exploration driver (explore/pool.h and the
// jobs > 1 path of ExplorationDriver::run). The contract under test: any
// jobs value changes wall clock only — the Step history, the acceptance
// decisions, and the serialized JSON summary are byte-identical to a serial
// run; and one failing candidate is isolated to its own Step instead of
// poisoning the batch.

#include "explore/pool.h"

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "explore/spamfamily.h"

namespace isdl::explore {
namespace {

// --- WorkerPool ------------------------------------------------------------

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.jobs(), 4u);
  std::vector<std::atomic<int>> hits(100);
  pool.forEach(hits.size(), [&](std::size_t i, unsigned worker) {
    EXPECT_LT(worker, 4u);
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, ReusableAcrossBatchesOfVaryingSize) {
  WorkerPool pool(3);
  for (std::size_t count : {5u, 0u, 1u, 17u, 2u}) {
    std::atomic<std::size_t> ran{0};
    pool.forEach(count, [&](std::size_t, unsigned) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), count);
  }
}

TEST(WorkerPool, SingleJobRunsInlineInOrder) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.jobs(), 1u);
  std::vector<std::size_t> order;
  std::thread::id caller = std::this_thread::get_id();
  pool.forEach(8, [&](std::size_t i, unsigned worker) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(worker, 0u);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(WorkerPool, ZeroMeansAllHardwareThreads) {
  EXPECT_GE(effectiveJobs(0), 1u);
  EXPECT_EQ(effectiveJobs(3), 3u);
  WorkerPool pool(0);
  EXPECT_EQ(pool.jobs(), effectiveJobs(0));
}

TEST(WorkerPool, RethrowsLowestIndexExceptionAfterDrainingBatch) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(32);
  try {
    pool.forEach(hits.size(), [&](std::size_t i, unsigned) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
      if (i == 7 || i == 20) throw std::runtime_error("boom " +
                                                      std::to_string(i));
    });
    FAIL() << "expected the worker exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 7");  // lowest index wins, like a serial loop
  }
  // The batch still drained: the failure did not strand later indices.
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// --- determinism: jobs=N is byte-identical to jobs=1 ------------------------

ExplorationDriver::Result runSpamExploration(unsigned jobs) {
  EvaluateOptions options;
  options.jobs = jobs;
  ExplorationDriver driver(options);
  return driver.run(makeSpamVariant({1, 2}), spamFamilyGenerator,
                    ExplorationDriver::areaDelayObjective, 8);
}

TEST(ParallelExploration, StepHistoryMatchesSerialRun) {
  ExplorationDriver::Result serial = runSpamExploration(1);
  ExplorationDriver::Result parallel = runSpamExploration(4);

  EXPECT_EQ(serial.best.name, parallel.best.name);
  EXPECT_EQ(serial.iterations, parallel.iterations);
  ASSERT_EQ(serial.history.size(), parallel.history.size());
  for (std::size_t i = 0; i < serial.history.size(); ++i) {
    const auto& s = serial.history[i];
    const auto& p = parallel.history[i];
    SCOPED_TRACE(::testing::Message() << "step " << i << " (" <<
                 s.candidateName << ")");
    EXPECT_EQ(s.iteration, p.iteration);
    EXPECT_EQ(s.candidateName, p.candidateName);
    EXPECT_EQ(s.objective, p.objective);
    EXPECT_EQ(s.cycles, p.cycles);
    EXPECT_EQ(s.accepted, p.accepted);
    EXPECT_EQ(s.failed, p.failed);
    EXPECT_EQ(s.error, p.error);
  }
}

TEST(ParallelExploration, WriteJsonIsByteIdenticalAcrossJobCounts) {
  std::ostringstream serial, parallel;
  runSpamExploration(1).writeJson(serial);
  runSpamExploration(4).writeJson(parallel);
  EXPECT_EQ(serial.str(), parallel.str());
  // And the summary really is a pure function of the run: no wall-clock
  // counter leaked into it.
  EXPECT_EQ(serial.str().find("_ns"), std::string::npos);
}

TEST(ParallelExploration, AggregatedCountersAreJobCountIndependent) {
  ExplorationDriver::Result serial = runSpamExploration(1);
  ExplorationDriver::Result parallel = runSpamExploration(4);
  auto find = [](const ExplorationDriver::Result& r, const std::string& key) {
    for (const auto& [name, value] : r.counters)
      if (name == key) return value;
    return std::uint64_t{0};
  };
  EXPECT_EQ(find(serial, "explore/candidates"),
            std::uint64_t{serial.history.size()});
  EXPECT_EQ(find(serial, "explore/candidates"),
            find(parallel, "explore/candidates"));
  EXPECT_EQ(find(serial, "sim/runs"), find(parallel, "sim/runs"));
  EXPECT_EQ(find(serial, "explore/iterations"), serial.iterations);
  // Wall-clock totals exist programmatically (they are only filtered from
  // the serialized summary).
  EXPECT_GT(find(serial, "eval/total_ns"), 0u);
  EXPECT_GT(find(parallel, "explore/worker_ns"), 0u);
}

// --- failure isolation ------------------------------------------------------

// Generator emitting one malformed-ISDL candidate and one genuine
// improvement in the same batch, once.
std::vector<Candidate> oneBadOneGoodGenerator(const Candidate&,
                                              const Evaluation&,
                                              unsigned iteration) {
  if (iteration > 1) return {};
  Candidate bad;
  bad.name = "broken";
  bad.isdlSource = "this is not ISDL at all {";
  bad.appSource = "";
  // alu1_mov0 improves on the alu1_mov2 start (fewer move units, same
  // cycles, smaller die).
  return {bad, makeSpamVariant({1, 0})};
}

TEST(ParallelExploration, OneBadCandidateDoesNotPoisonTheBatch) {
  for (unsigned jobs : {1u, 4u}) {
    SCOPED_TRACE(::testing::Message() << "jobs=" << jobs);
    EvaluateOptions options;
    options.jobs = jobs;
    ExplorationDriver driver(options);
    ExplorationDriver::Result result;
    ASSERT_NO_THROW(result = driver.run(makeSpamVariant({1, 2}),
                                        oneBadOneGoodGenerator,
                                        ExplorationDriver::areaDelayObjective,
                                        4));
    ASSERT_EQ(result.history.size(), 3u);  // initial + bad + good
    const auto& bad = result.history[1];
    EXPECT_EQ(bad.candidateName, "broken");
    EXPECT_TRUE(bad.failed);
    EXPECT_FALSE(bad.accepted);
    EXPECT_FALSE(bad.error.empty()) << "diagnostic lost on failure";
    const auto& good = result.history[2];
    EXPECT_EQ(good.candidateName, "alu1_mov0");
    EXPECT_FALSE(good.failed);
    EXPECT_TRUE(good.accepted);
    EXPECT_EQ(result.best.name, "alu1_mov0");
  }
}

TEST(ParallelExploration, FailedStepErrorReachesTheJson) {
  EvaluateOptions options;
  options.jobs = 2;
  ExplorationDriver driver(options);
  auto result = driver.run(makeSpamVariant({1, 2}), oneBadOneGoodGenerator,
                           ExplorationDriver::areaDelayObjective, 4);
  std::ostringstream out;
  result.writeJson(out);
  EXPECT_NE(out.str().find("\"failed\": true"), std::string::npos);
  EXPECT_NE(out.str().find("\"error\": "), std::string::npos);
}

}  // namespace
}  // namespace isdl::explore
