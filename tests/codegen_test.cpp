// Tests for the compiled-code simulator generator (§6.2 future work): the
// generated C++ is compiled with the host compiler and executed; its final
// state must match the interpreted XSIM run bit for bit, and its cycle
// counter must satisfy the stall identity.

#include "sim/codegen.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "archs/archs.h"
#include "isdl/parser.h"
#include "support/strings.h"
#include "sim/xsim.h"

namespace isdl::sim {
namespace {

/// Compiles and runs generated simulator source; returns stdout (empty on
/// failure). Skips gracefully when no host compiler is available. Scratch
/// file names carry the pid: ctest runs each TEST as its own process in a
/// shared working directory, and fixed names race under `ctest -j`.
std::string compileAndRun(const std::string& source, bool* available) {
  *available = std::system("c++ --version > /dev/null 2>&1") == 0;
  if (!*available) return {};
  std::string tag = cat("codegen_test_", ::getpid());
  std::string srcPath = tag + "_sim.cpp";
  std::string binPath = "./" + tag + "_sim.bin";
  std::string errPath = tag + "_err.txt";
  std::string outPath = tag + "_out.txt";
  {
    std::ofstream f(srcPath);
    f << source;
  }
  std::string cmd = cat("c++ -O1 -std=c++17 -o ", binPath, " ", srcPath,
                        " 2> ", errPath);
  if (std::system(cmd.c_str()) != 0) {
    std::ifstream err(errPath);
    std::stringstream ss;
    ss << err.rdbuf();
    ADD_FAILURE() << "generated simulator failed to compile:\n" << ss.str();
    return {};
  }
  if (std::system(cat(binPath, " > ", outPath).c_str()) != 0) {
    ADD_FAILURE() << "generated simulator exited with an error";
    return {};
  }
  std::ifstream out(outPath);
  std::stringstream ss;
  ss << out.rdbuf();
  std::remove(srcPath.c_str());
  std::remove(binPath.c_str());
  std::remove(outPath.c_str());
  std::remove(errPath.c_str());
  return ss.str();
}

struct ParsedOutput {
  std::uint64_t cycles = 0, instructions = 0;
  /// (storage name, element) -> value
  std::map<std::pair<std::string, std::uint64_t>, std::uint64_t> state;
};

ParsedOutput parseOutput(const std::string& text) {
  ParsedOutput p;
  std::istringstream is(text);
  std::string word;
  while (is >> word) {
    if (word == "cycles") {
      is >> p.cycles;
    } else if (word == "instructions") {
      is >> p.instructions;
    } else if (word == "seconds") {
      double ignore;
      is >> ignore;
    } else {
      std::uint64_t element, value;
      is >> element >> std::hex >> value >> std::dec;
      p.state[{word, element}] = value;
    }
  }
  return p;
}

void checkBenchmark(std::unique_ptr<Machine> (*loader)(),
                    const archs::Benchmark& bench) {
  SCOPED_TRACE(bench.name);
  auto m = loader();
  Xsim xsim(*m);
  Assembler assembler(xsim.signatures());
  DiagnosticEngine diags;
  auto prog = assembler.assemble(bench.source, diags);
  ASSERT_TRUE(prog.has_value()) << diags.dump();

  // Interpreted reference.
  std::string err;
  ASSERT_TRUE(xsim.loadProgram(*prog, &err)) << err;
  ASSERT_EQ(xsim.run(bench.maxCycles).reason, StopReason::Halted);
  xsim.drainPipeline();

  // Generated compiled-code simulator.
  std::string source = generateCompiledSim(*m, xsim.signatures(), *prog);
  bool available = false;
  std::string output = compileAndRun(source, &available);
  if (!available) GTEST_SKIP() << "no host C++ compiler";
  ASSERT_FALSE(output.empty());
  ParsedOutput parsed = parseOutput(output);

  EXPECT_EQ(parsed.instructions, xsim.stats().instructions);
  EXPECT_EQ(xsim.stats().cycles,
            parsed.cycles + xsim.stats().dataStallCycles +
                xsim.stats().structStallCycles);

  // Every non-zero architectural value must match (generated output prints
  // only non-zero locations).
  for (std::size_t si = 0; si < m->storages.size(); ++si) {
    if (static_cast<int>(si) == m->imemIndex) continue;
    const StorageDef& st = m->storages[si];
    for (std::uint64_t e = 0; e < st.depth; ++e) {
      std::uint64_t expected =
          xsim.state().read(static_cast<unsigned>(si), e).toUint64();
      auto it = parsed.state.find({st.name, e});
      std::uint64_t got = it == parsed.state.end() ? 0 : it->second;
      EXPECT_EQ(got, expected) << st.name << "[" << e << "]";
    }
  }
}

TEST(Codegen, SrepFibMatchesInterpreter) {
  checkBenchmark(archs::loadSrep, archs::srepBenchmarks()[0]);
}

TEST(Codegen, SrepDotMatchesInterpreter) {
  checkBenchmark(archs::loadSrep, archs::srepBenchmarks()[1]);
}

TEST(Codegen, Spam2DotMatchesInterpreter) {
  checkBenchmark(archs::loadSpam2, archs::spam2Benchmarks()[0]);
}

TEST(Codegen, TdspFirMatchesInterpreter) {
  // Exercises non-terminal value inlining, lvalue options and option side
  // effects in generated code.
  checkBenchmark(archs::loadTdsp, archs::tdspBenchmarks()[0]);
}

TEST(Codegen, SpamFloatDotMatchesInterpreter) {
  // 128-bit instruction words are fine: compiled execution never touches
  // the instruction memory.
  checkBenchmark(archs::loadSpam, archs::spamBenchmarks()[0]);
}

TEST(Codegen, RejectsWideArchitecturalState) {
  auto m = isdl::parseAndCheckIsdl(R"(
machine W {
  section format { word_width = 8; }
  section storage {
    instruction_memory IM width 8 depth 4;
    program_counter PC width 4;
    register BIG width 100;
  }
  section instruction_set { field F { operation nop() { encode { inst[7] = 0; } } } }
}
)");
  DiagnosticEngine diags;
  SignatureTable sigs(*m, diags);
  AssembledProgram prog;
  prog.words.push_back(BitVector(8, 0));
  EXPECT_THROW(generateCompiledSim(*m, sigs, prog), IsdlError);
}

}  // namespace
}  // namespace isdl::sim
