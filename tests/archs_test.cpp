// Integration tests: every built-in architecture parses, checks, and builds
// a decodeable simulator; every benchmark kernel assembles, runs to halt,
// and produces values matching a C++ mirror of the computation.

#include "archs/archs.h"

#include <gtest/gtest.h>

#include <bit>

#include "sim/xsim.h"

namespace isdl::archs {
namespace {

using sim::Assembler;
using sim::StopReason;
using sim::Xsim;

/// Assembles and runs `src` on `machine` to completion; returns the sim.
std::unique_ptr<Xsim> runProgram(const Machine& machine, const char* src,
                                 std::uint64_t maxCycles) {
  auto xs = std::make_unique<Xsim>(machine);
  Assembler assembler(xs->signatures());
  DiagnosticEngine diags;
  auto prog = assembler.assemble(src, diags);
  EXPECT_TRUE(prog.has_value()) << diags.dump();
  if (!prog) return xs;
  std::string err;
  EXPECT_TRUE(xs->loadProgram(*prog, &err)) << err;
  sim::RunResult r = xs->run(maxCycles);
  EXPECT_EQ(r.reason, StopReason::Halted) << r.message;
  xs->drainPipeline();
  return xs;
}

std::uint64_t dmWord(Xsim& xs, std::uint64_t addr) {
  int dm = xs.machine().findStorage("DM");
  return xs.state().read(static_cast<unsigned>(dm), addr).toUint64();
}

float dmFloat(Xsim& xs, std::uint64_t addr) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(dmWord(xs, addr)));
}

TEST(Archs, AllMachinesParseAndBuildSimulators) {
  for (auto loader : {loadSpam, loadSpam2, loadSrep, loadTdsp}) {
    auto m = loader();
    ASSERT_NE(m, nullptr);
    EXPECT_NO_THROW({ Xsim sim(*m); });
  }
}

TEST(Archs, SpamShape) {
  auto m = loadSpam();
  EXPECT_EQ(m->wordWidth, 128u);
  ASSERT_EQ(m->fields.size(), 7u);  // 4 operations + 3 parallel moves
  EXPECT_EQ(m->fields[0].name, "U0");
  EXPECT_EQ(m->fields[6].name, "M2");
  EXPECT_EQ(m->constraints.size(), 7u);
}

TEST(Archs, SpamDotProduct) {
  auto m = loadSpam();
  auto xs = runProgram(*m, spamBenchmarks()[0].source,
                       spamBenchmarks()[0].maxCycles);
  float expected = 0.0f;
  for (int i = 0; i < 64; ++i) expected += float(i) * float(2 * i);
  EXPECT_EQ(dmFloat(*xs, 128), expected);
  EXPECT_GT(xs->stats().dataStallCycles, 0u);  // load-use interlocks fire
}

TEST(Archs, SpamSaxpy) {
  auto m = loadSpam();
  auto xs = runProgram(*m, spamBenchmarks()[1].source,
                       spamBenchmarks()[1].maxCycles);
  for (int i = 0; i < 64; ++i) {
    float x = float(i), y = float(i + 64);
    EXPECT_EQ(dmFloat(*xs, 64 + i), 2.5f * x + y) << "i=" << i;
  }
}

TEST(Archs, SpamFir) {
  auto m = loadSpam();
  auto xs = runProgram(*m, spamBenchmarks()[2].source,
                       spamBenchmarks()[2].maxCycles);
  for (int n = 7; n < 64; ++n) {
    float acc = 0.0f;
    for (int k = 0; k < 8; ++k) acc += float(k + 1) * float(n - k);
    EXPECT_EQ(dmFloat(*xs, 80 + n), acc) << "n=" << n;
  }
}

TEST(Archs, SpamGatherWithIndexedAddressing) {
  auto m = loadSpam();
  auto xs = runProgram(*m, spamBenchmarks()[3].source, 10000);
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(dmWord(*xs, 300 + i), std::uint64_t(2 * i)) << "i=" << i;
}

TEST(Archs, SpamMatrixMultiply4x4) {
  auto m = loadSpam();
  auto xs = runProgram(*m, spamBenchmarks()[4].source,
                       spamBenchmarks()[4].maxCycles);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      float expected = 0.0f;
      for (int k = 0; k < 4; ++k)
        expected += float(i * 4 + k) * float(k * 4 + j + 1);
      EXPECT_EQ(dmFloat(*xs, 32 + i * 4 + j), expected)
          << "C[" << i << "][" << j << "]";
    }
  }
}

TEST(Archs, SpamIndexedMemoryBorrowsU1Adder) {
  // The ldx/stx address adder is constrained against U1.add: bundling them
  // must be rejected, matching the shared-unit hardware.
  auto m = loadSpam();
  Xsim xs(*m);
  Assembler assembler(xs.signatures());
  DiagnosticEngine diags;
  EXPECT_FALSE(assembler
                   .assemble("{ ldx R1, R2, R3 | U1.add R4, R5, R6 }\n",
                             diags)
                   .has_value());
  EXPECT_NE(diags.dump().find("violates constraint"), std::string::npos);
  // U2's adder is not part of the shared unit: the bundle is legal there.
  DiagnosticEngine diags2;
  EXPECT_TRUE(assembler
                  .assemble("{ ldx R1, R2, R3 | U2.add R4, R5, R6 }\n",
                            diags2)
                  .has_value())
      << diags2.dump();
}

TEST(Archs, SpamVliwUtilization) {
  // The dot kernel keeps U1/U2 busy via the 3-wide add bundles.
  auto m = loadSpam();
  auto xs = runProgram(*m, spamBenchmarks()[0].source, 100000);
  EXPECT_GT(xs->stats().fieldUtilization[1], 0u);  // U1
  EXPECT_GT(xs->stats().fieldUtilization[2], 0u);  // U2
}

TEST(Archs, Spam2DotProduct) {
  auto m = loadSpam2();
  auto xs = runProgram(*m, spam2Benchmarks()[0].source, 100000);
  std::uint64_t expected = 0;
  for (int i = 0; i < 64; ++i) expected += std::uint64_t(i) * (2 * i);
  EXPECT_EQ(dmWord(*xs, 128), expected);
}

TEST(Archs, Spam2VecSum) {
  auto m = loadSpam2();
  auto xs = runProgram(*m, spam2Benchmarks()[1].source, 100000);
  std::uint64_t expected = 0;
  for (int i = 0; i < 64; ++i) expected += 3 * i + 1;
  EXPECT_EQ(dmWord(*xs, 200), expected);
}

TEST(Archs, SrepFib) {
  auto m = loadSrep();
  auto xs = runProgram(*m, srepBenchmarks()[0].source, 10000);
  EXPECT_EQ(dmWord(*xs, 0), 6765u);  // fib(20)
}

TEST(Archs, SrepDot) {
  auto m = loadSrep();
  auto xs = runProgram(*m, srepBenchmarks()[1].source, 100000);
  EXPECT_EQ(dmWord(*xs, 128), 170688u);
}

TEST(Archs, SrepGcd) {
  auto m = loadSrep();
  auto xs = runProgram(*m, srepBenchmarks()[2].source, 10000);
  EXPECT_EQ(dmWord(*xs, 1), 21u);
}

TEST(Archs, TdspFirWithPostIncrement) {
  auto m = loadTdsp();
  auto xs = runProgram(*m, tdspBenchmarks()[0].source, 10000);
  std::uint64_t expected = 0;
  for (int k = 0; k < 8; ++k) expected += std::uint64_t(k + 1) * (2 * (k + 1));
  EXPECT_EQ(dmWord(*xs, 32), expected & 0xFFFF);
  // Post-increment side effects must have advanced both address registers.
  int ar = m->findStorage("AR");
  EXPECT_EQ(xs->state().read(static_cast<unsigned>(ar), 0).toUint64(), 8u);
  EXPECT_EQ(xs->state().read(static_cast<unsigned>(ar), 1).toUint64(), 24u);
}

TEST(Archs, TdspMemcpy) {
  auto m = loadTdsp();
  auto xs = runProgram(*m, tdspBenchmarks()[1].source, 10000);
  const std::uint64_t vals[] = {11, 22, 33, 44, 55, 66, 77, 88};
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(dmWord(*xs, 40 + i), vals[i]) << "i=" << i;
}

TEST(Archs, TdspIndirectModeAddsCycle) {
  // `add D0, (A0)` must cost one cycle more than `add D0, D1` (the ind
  // option's extra cycle cost).
  auto m = loadTdsp();
  auto run = [&](const char* body) {
    auto xs = runProgram(*m, body, 1000);
    return xs->stats().cycles;
  };
  std::uint64_t regCycles = run("li D0, 1\nli D1, 2\nadd D0, D1\nhalt\n");
  std::uint64_t indCycles = run("li D0, 1\nlar A0, 5\nadd D0, (A0)\nhalt\n");
  EXPECT_EQ(indCycles, regCycles + 1);
}

TEST(Archs, SpamConstraintEnforced) {
  auto m = loadSpam();
  Xsim xs(*m);
  Assembler assembler(xs.signatures());
  DiagnosticEngine diags;
  EXPECT_FALSE(
      assembler.assemble("{ ld R1, R2 | M2.mov R3, R4 }\n", diags).has_value());
  EXPECT_NE(diags.dump().find("violates constraint"), std::string::npos);
  // The same move on M0 is legal.
  DiagnosticEngine diags2;
  EXPECT_TRUE(
      assembler.assemble("{ ld R1, R2 | M0.mov R3, R4 }\n", diags2).has_value())
      << diags2.dump();
}

TEST(Archs, RoundTripAllBenchmarks) {
  // Every benchmark instruction must survive asm -> bin -> disasm -> asm ->
  // bin with identical words.
  struct Case {
    std::unique_ptr<Machine> m;
    std::vector<Benchmark> benches;
  };
  Case cases[] = {{loadSpam(), spamBenchmarks()},
                  {loadSpam2(), spam2Benchmarks()},
                  {loadSrep(), srepBenchmarks()},
                  {loadTdsp(), tdspBenchmarks()}};
  for (auto& c : cases) {
    DiagnosticEngine sigDiags;
    sim::SignatureTable sigs(*c.m, sigDiags);
    ASSERT_TRUE(sigs.valid()) << sigDiags.dump();
    Assembler assembler(sigs);
    sim::Disassembler disasm(sigs);
    for (const auto& b : c.benches) {
      DiagnosticEngine diags;
      auto prog = assembler.assemble(b.source, diags);
      ASSERT_TRUE(prog.has_value()) << c.m->name << "/" << b.name << "\n"
                                    << diags.dump();
      std::string rendered;
      for (std::uint64_t a = 0; a < prog->words.size();) {
        auto inst = disasm.decodeAt(prog->words, a);
        ASSERT_TRUE(inst.has_value()) << c.m->name << "/" << b.name
                                      << " word " << a;
        rendered += disasm.render(*inst) + "\n";
        a += inst->sizeWords;
      }
      DiagnosticEngine diags2;
      auto prog2 = assembler.assemble(rendered, diags2);
      ASSERT_TRUE(prog2.has_value()) << c.m->name << "/" << b.name << "\n"
                                     << diags2.dump() << "\n" << rendered;
      ASSERT_EQ(prog->words.size(), prog2->words.size());
      for (std::size_t i = 0; i < prog->words.size(); ++i)
        EXPECT_EQ(prog->words[i], prog2->words[i])
            << c.m->name << "/" << b.name << " word " << i;
    }
  }
}

}  // namespace
}  // namespace isdl::archs
