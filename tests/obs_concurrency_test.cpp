// Concurrency stress tests for the XTRACE obs layer: many threads hammering
// one shared Registry (the documented cross-thread use) and the per-worker
// registry-merge aggregation path the parallel exploration driver relies on.
// These tests are labelled `concurrency` in ctest and are the ones CI runs
// under ThreadSanitizer (.github/workflows/ci.yml, `tsan` job).
//
// Sharing contract under test (docs/OBSERVABILITY.md): Registry and Counter
// are thread-safe — registration under a mutex, bumps as relaxed atomic
// adds. TraceBuffer and StorageHeatmap are deliberately thread-confined (one
// owner thread each, like the Xsim that owns them); the merge()/snapshot()
// paths are how confined data crosses threads after a barrier.

#include "obs/registry.h"

#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace isdl::obs {
namespace {

constexpr unsigned kThreads = 8;
constexpr std::uint64_t kIters = 50'000;

TEST(RegistryConcurrency, ConcurrentAddsSumExactly) {
  Registry reg;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&reg, t] {
      // Every thread resolves the shared counter itself (concurrent
      // registration of the same name must yield the same cell), then bumps
      // it plus a per-thread counter.
      Counter& shared = reg.counter("stress/shared");
      Counter& mine = reg.counter("stress/thread" + std::to_string(t));
      for (std::uint64_t i = 0; i < kIters; ++i) {
        shared.add(1);
        ++mine;
      }
    });
  for (auto& th : threads) th.join();

  EXPECT_EQ(reg.counter("stress/shared").get(), kThreads * kIters);
  std::uint64_t perThread = 0;
  for (const auto& [name, value] : reg.snapshot())
    if (name != "stress/shared") perThread += value;
  EXPECT_EQ(perThread, kThreads * kIters);
}

TEST(RegistryConcurrency, RegistrationRacesResolveToOneCellPerName) {
  Registry reg;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&reg] {
      // All threads race to create the same 64 names; each add must land in
      // the one cell that name resolved to.
      for (unsigned n = 0; n < 64; ++n)
        reg.counter("race/" + std::to_string(n)).add(1);
    });
  for (auto& th : threads) th.join();

  auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 64u);
  for (const auto& [name, value] : snap)
    EXPECT_EQ(value, kThreads) << name;
}

TEST(RegistryConcurrency, SnapshotAndWriteJsonDuringWrites) {
  Registry reg;
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < kThreads; ++t)
    writers.emplace_back([&reg] {
      Counter& c = reg.counter("stress/live");
      for (std::uint64_t i = 0; i < kIters; ++i) c.add(1);
    });
  // Readers overlap the writers: snapshots must be well-formed (monotone
  // counts, stable names), never torn.
  std::uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    for (const auto& [name, value] : reg.snapshot()) {
      EXPECT_EQ(name, "stress/live");
      EXPECT_GE(value, last);
      last = value;
    }
    std::ostringstream out;
    reg.writeJson(out, /*pretty=*/false);
  }
  for (auto& th : writers) th.join();
  EXPECT_EQ(reg.counter("stress/live").get(), kThreads * kIters);
}

TEST(RegistryConcurrency, PerWorkerRegistriesMergeToExactTotals) {
  // The exploration driver's aggregation shape: each worker owns a private
  // registry on the hot path; after the join barrier they merge into one.
  std::vector<Registry> workers(kThreads);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&workers, t] {
      Counter& work = workers[t].counter("merge/work");
      for (std::uint64_t i = 0; i < kIters; ++i) work.add(1);
      workers[t].counter("merge/worker_id_sum").add(t);
    });
  for (auto& th : threads) th.join();

  Registry total;
  for (const Registry& w : workers) total.merge(w);
  EXPECT_EQ(total.counter("merge/work").get(), kThreads * kIters);
  EXPECT_EQ(total.counter("merge/worker_id_sum").get(),
            std::uint64_t{kThreads} * (kThreads - 1) / 2);
}

TEST(RegistryConcurrency, ConcurrentMergesIntoOneTarget) {
  // merge() itself may race with other merges and live writers on the
  // target; sums must still be exact.
  Registry target;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&target] {
      Registry mine;
      mine.counter("merged").add(kIters);
      target.merge(mine);
      target.counter("direct").add(kIters);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(target.counter("merged").get(), kThreads * kIters);
  EXPECT_EQ(target.counter("direct").get(), kThreads * kIters);
}

TEST(RegistryConcurrency, ScopedTimersFromManyThreads) {
  Registry reg;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&reg] {
      for (int i = 0; i < 200; ++i) ScopedTimer timer = reg.time("stress_ns");
    });
  for (auto& th : threads) th.join();
  EXPECT_GT(reg.counter("stress_ns").get(), 0u);
}

TEST(TraceConcurrency, ThreadConfinedBuffersAggregateAfterJoin) {
  // TraceBuffer is thread-confined by contract: each thread fills its own
  // ring, and aggregation happens after the join — the same barrier pattern
  // the driver uses for registries. The accounting (size/dropped) must add
  // up exactly across workers.
  std::vector<TraceBuffer> buffers;
  for (unsigned t = 0; t < kThreads; ++t) buffers.emplace_back(256);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&buffers, t] {
      TraceEvent e;
      e.field = static_cast<std::uint16_t>(t);
      for (std::uint64_t i = 0; i < 1000; ++i) {
        e.cycle = i;
        buffers[t].record(e);
      }
    });
  for (auto& th : threads) th.join();

  std::uint64_t retained = 0, dropped = 0, seen = 0;
  for (unsigned t = 0; t < kThreads; ++t) {
    retained += buffers[t].size();
    dropped += buffers[t].dropped();
    buffers[t].forEach([&](const TraceEvent& e) {
      EXPECT_EQ(e.field, t);  // no cross-thread bleed
      ++seen;
    });
  }
  EXPECT_EQ(retained, std::uint64_t{kThreads} * 256);
  EXPECT_EQ(dropped, std::uint64_t{kThreads} * (1000 - 256));
  EXPECT_EQ(seen, retained);
}

}  // namespace
}  // namespace isdl::obs
