// Tests for the Figure-1 exploration loop: candidate evaluation, the
// SPAM-family generator, and iterative improvement converging to a local
// optimum that drops useless hardware and balances units against runtime.

#include "explore/spamfamily.h"

#include <gtest/gtest.h>

#include "archs/archs.h"

namespace isdl::explore {
namespace {

TEST(Evaluate, SrepFibProducesAllFigures) {
  auto m = archs::loadSrep();
  Evaluation ev = evaluate(*m, archs::srepBenchmarks()[0].source);
  ASSERT_TRUE(ev.ok) << ev.error;
  EXPECT_GT(ev.cycles, 0u);
  EXPECT_GT(ev.instructions, 0u);
  EXPECT_GT(ev.cycleNs, 0.0);
  EXPECT_GT(ev.dieSizeGridCells, 0.0);
  EXPECT_GT(ev.verilogLines, 0u);
  EXPECT_GT(ev.runtimeUs(), 0.0);
  EXPECT_EQ(ev.powerMw, 0.0);  // not requested
}

TEST(Evaluate, PowerMeasurement) {
  auto m = archs::loadSrep();
  EvaluateOptions opts;
  opts.measurePower = true;
  opts.powerClocks = 2000;
  Evaluation ev = evaluate(*m, archs::srepBenchmarks()[0].source, opts);
  ASSERT_TRUE(ev.ok) << ev.error;
  EXPECT_GT(ev.powerMw, 0.0);
}

TEST(Evaluate, ReportsAssemblyErrors) {
  auto m = archs::loadSrep();
  Evaluation ev = evaluate(*m, "frobnicate R1\n");
  EXPECT_FALSE(ev.ok);
  EXPECT_NE(ev.error.find("assembly failed"), std::string::npos);
}

TEST(Evaluate, ReportsNonHaltingApps) {
  auto m = archs::loadSrep();
  EvaluateOptions opts;
  opts.maxCycles = 200;
  Evaluation ev = evaluate(*m, "loop: jmp loop\n", opts);
  EXPECT_FALSE(ev.ok);
  EXPECT_NE(ev.error.find("did not halt"), std::string::npos);
}

TEST(SpamFamily, VariantsEvaluateAndScale) {
  // More ALU units => fewer cycles but more area.
  Candidate narrow = makeSpamVariant({1, 0});
  Candidate wide = makeSpamVariant({3, 0});
  Evaluation evNarrow = evaluateIsdl(narrow.isdlSource, narrow.appSource);
  Evaluation evWide = evaluateIsdl(wide.isdlSource, wide.appSource);
  ASSERT_TRUE(evNarrow.ok) << evNarrow.error;
  ASSERT_TRUE(evWide.ok) << evWide.error;
  EXPECT_GT(evNarrow.cycles, evWide.cycles);
  EXPECT_LT(evNarrow.dieSizeGridCells, evWide.dieSizeGridCells);
}

TEST(SpamFamily, MoveUnitsArePureOverheadForThisWorkload) {
  Candidate plain = makeSpamVariant({2, 0});
  Candidate moves = makeSpamVariant({2, 2});
  Evaluation evPlain = evaluateIsdl(plain.isdlSource, plain.appSource);
  Evaluation evMoves = evaluateIsdl(moves.isdlSource, moves.appSource);
  ASSERT_TRUE(evPlain.ok) << evPlain.error;
  ASSERT_TRUE(evMoves.ok) << evMoves.error;
  EXPECT_EQ(evPlain.cycles, evMoves.cycles);
  EXPECT_LT(evPlain.dieSizeGridCells, evMoves.dieSizeGridCells);
}

TEST(SpamFamily, EveryParameterPointIsAValidMachine) {
  // All 16 points of the search space must produce a parse-clean,
  // decodeable, runnable candidate (the driver depends on it).
  for (unsigned alu = 1; alu <= 4; ++alu) {
    for (unsigned mov = 0; mov <= 3; ++mov) {
      SCOPED_TRACE(::testing::Message() << "alu" << alu << "_mov" << mov);
      Candidate c = makeSpamVariant({alu, mov});
      Evaluation ev = evaluateIsdl(c.isdlSource, c.appSource);
      EXPECT_TRUE(ev.ok) << ev.error;
      EXPECT_GT(ev.cycles, 0u);
    }
  }
}

TEST(SpamFamily, NeighbourhoodIsSingleTweaks) {
  auto n = spamNeighbours({2, 1});
  // +-1 alu, +-1 move = 4 neighbours.
  EXPECT_EQ(n.size(), 4u);
  auto n2 = spamNeighbours({1, 0});
  // only +1 alu and +1 move remain valid.
  EXPECT_EQ(n2.size(), 2u);
}

TEST(Exploration, IterativeImprovementTrimsUselessMoves) {
  // Start with an over-provisioned machine: exploration must remove the
  // unused move units and settle on a local optimum of the area-delay
  // objective (Figure 1's termination condition: no further improvement).
  ExplorationDriver driver;
  Candidate initial = makeSpamVariant({1, 2});
  ExplorationDriver::Result result = driver.run(
      initial, spamFamilyGenerator, ExplorationDriver::areaDelayObjective, 8);

  SpamVariantParams best;
  ASSERT_EQ(std::sscanf(result.best.name.c_str(), "alu%u_mov%u",
                        &best.aluUnits, &best.moveUnits),
            2);
  EXPECT_EQ(best.moveUnits, 0u) << "exploration kept useless move units";
  EXPECT_GE(result.iterations, 2u);
  EXPECT_TRUE(result.bestEval.ok);
  // The accepted trajectory is monotonically improving.
  double prev = -1;
  for (const auto& step : result.history) {
    if (!step.accepted) continue;
    if (prev >= 0) {
      EXPECT_LT(step.objective, prev);
    }
    prev = step.objective;
  }
}

}  // namespace
}  // namespace isdl::explore
