#include "isdl/sema.h"

#include <gtest/gtest.h>

#include "isdl/parser.h"
#include "support/strings.h"

namespace isdl {
namespace {

/// Wraps `body` sections in a machine that already has the mandatory storage.
std::string machineWith(std::string_view body) {
  return cat(R"(
machine M {
  section format { word_width = 16; }
  section storage {
    instruction_memory IM width 16 depth 16;
    program_counter PC width 4;
    register_file RF width 8 depth 4;
    register A width 8;
  }
)",
             body, "\n}\n");
}

void expectSemaError(const std::string& src, std::string_view needle) {
  DiagnosticEngine diags;
  auto m = parseIsdl(src, diags);
  ASSERT_NE(m, nullptr) << diags.dump();
  EXPECT_FALSE(checkMachine(*m, diags));
  EXPECT_NE(diags.dump().find(needle), std::string::npos)
      << "expected error containing '" << needle << "', got:\n"
      << diags.dump();
}

void expectSemaOk(const std::string& src) {
  DiagnosticEngine diags;
  auto m = parseIsdl(src, diags);
  ASSERT_NE(m, nullptr) << diags.dump();
  EXPECT_TRUE(checkMachine(*m, diags)) << diags.dump();
}

TEST(Sema, MissingWordWidth) {
  expectSemaError(R"(
machine M {
  section storage {
    instruction_memory IM width 16 depth 16;
    program_counter PC width 4;
  }
  section instruction_set {
    field F { operation nop() { } }
  }
}
)",
                  "word_width");
}

TEST(Sema, MissingProgramCounter) {
  expectSemaError(R"(
machine M {
  section format { word_width = 16; }
  section storage { instruction_memory IM width 16 depth 16; }
  section instruction_set { field F { operation nop() { } } }
}
)",
                  "program_counter");
}

TEST(Sema, DuplicateProgramCounter) {
  expectSemaError(R"(
machine M {
  section format { word_width = 16; }
  section storage {
    instruction_memory IM width 16 depth 16;
    program_counter PC width 4;
    program_counter PC2 width 4;
  }
  section instruction_set { field F { operation nop() { } } }
}
)",
                  "multiple program_counter");
}

TEST(Sema, InstructionMemoryWidthMustMatchWordWidth) {
  expectSemaError(R"(
machine M {
  section format { word_width = 16; }
  section storage {
    instruction_memory IM width 8 depth 16;
    program_counter PC width 4;
  }
  section instruction_set { field F { operation nop() { } } }
}
)",
                  "must equal word_width");
}

TEST(Sema, EmptyInstructionSet) {
  expectSemaError(machineWith("section instruction_set { }"),
                  "at least one field");
}

TEST(Sema, AssignmentWidthMismatch) {
  expectSemaError(machineWith(R"(
  section instruction_set {
    field F {
      operation op() {
        encode { inst[15] = 1; }
        action { A <- PC; }
      }
    }
  }
)"),
                  "width mismatch");
}

TEST(Sema, UnsizedConstantNeedsContext) {
  expectSemaError(machineWith(R"(
  section instruction_set {
    field F {
      operation op() {
        encode { inst[15] = 1; }
        action { if (3 == 3) { A <- 8'd1; } }
      }
    }
  }
)"),
                  "cannot infer");
}

TEST(Sema, ConstantTooWideForContext) {
  expectSemaError(machineWith(R"(
  section instruction_set {
    field F {
      operation op() {
        encode { inst[15] = 1; }
        action { A <- A + 999; }
      }
    }
  }
)"),
                  "does not fit");
}

TEST(Sema, OperandWidthMismatchRequiresExplicitConversion) {
  expectSemaError(machineWith(R"(
  section instruction_set {
    field F {
      operation op() {
        encode { inst[15] = 1; }
        action { A <- A + PC; }
      }
    }
  }
)"),
                  "zext/sext/trunc");
}

TEST(Sema, SliceOutOfRange) {
  expectSemaError(machineWith(R"(
  section instruction_set {
    field F {
      operation op() {
        encode { inst[15] = 1; }
        action { A <- zext(A[9:2], 8); }
      }
    }
  }
)"),
                  "out of range");
}

TEST(Sema, ParamBitNeverEncodedIsUndisassemblable) {
  expectSemaError(machineWith(R"(
  section global_definitions { token U8 immediate unsigned width 8; }
  section instruction_set {
    field F {
      operation op(i: U8) {
        encode { inst[15] = 1; inst[3:0] = i[3:0]; }
      }
    }
  }
)"),
                  "never appears in the encoding");
}

TEST(Sema, EncodeBitAssignedTwice) {
  expectSemaError(machineWith(R"(
  section instruction_set {
    field F {
      operation op() {
        encode { inst[15:8] = 8'd1; inst[9] = 1; }
      }
    }
  }
)"),
                  "assigned more than once");
}

TEST(Sema, ZeroCycleCostRejected) {
  expectSemaError(machineWith(R"(
  section instruction_set {
    field F {
      operation op() { encode { inst[15] = 1; } costs { cycle = 0; } }
    }
  }
)"),
                  "cycle cost");
}

TEST(Sema, ZeroLatencyRejected) {
  expectSemaError(machineWith(R"(
  section instruction_set {
    field F {
      operation op() { encode { inst[15] = 1; } timing { latency = 0; } }
    }
  }
)"),
                  "latency");
}

TEST(Sema, NonTerminalValueWidthsMustAgree) {
  expectSemaError(machineWith(R"(
  section global_definitions {
    token REG enum width 2 prefix "R" range 0 .. 3;
    nonterminal X returns width 3 {
      option a(r: REG) { encode { $$[2] = 0; $$[1:0] = r; } value { RF[r] } }
      option b(r: REG) { encode { $$[2] = 1; $$[1:0] = r; } value { zext(RF[r], 9) } }
    }
  }
  section instruction_set {
    field F { operation nop() { encode { inst[15] = 0; } } }
  }
)"),
                  "disagree on value width");
}

TEST(Sema, NonTerminalWithoutValueCannotBeRead) {
  expectSemaError(machineWith(R"(
  section global_definitions {
    token REG enum width 2 prefix "R" range 0 .. 3;
    nonterminal X returns width 2 {
      option a(r: REG) { encode { $$[1:0] = r; } }
    }
  }
  section instruction_set {
    field F {
      operation op(x: X) {
        encode { inst[15] = 1; inst[1:0] = x; }
        action { A <- A + zext(x, 8); }
      }
    }
  }
)"),
                  "has no runtime value");
}

TEST(Sema, LvalueNonTerminalAssignment) {
  expectSemaOk(machineWith(R"(
  section global_definitions {
    token REG enum width 2 prefix "R" range 0 .. 3;
    nonterminal DST returns width 2 {
      option reg(r: REG) {
        encode { $$[1:0] = r; }
        value { RF[r] }
        lvalue { RF[r] }
      }
    }
  }
  section instruction_set {
    field F {
      operation inc(d: DST) {
        encode { inst[15] = 1; inst[1:0] = d; }
        action { d <- d + 8'd1; }
      }
    }
  }
)"));
}

TEST(Sema, NonLvalueParamCannotBeAssigned) {
  expectSemaError(machineWith(R"(
  section global_definitions {
    token REG enum width 2 prefix "R" range 0 .. 3;
  }
  section instruction_set {
    field F {
      operation op(r: REG) {
        encode { inst[15] = 1; inst[1:0] = r; }
        action { r <- 2'd1; }
      }
    }
  }
)"),
                  "cannot be assigned");
}

TEST(Sema, TernaryConditionMustBeOneBit) {
  expectSemaError(machineWith(R"(
  section instruction_set {
    field F {
      operation op() {
        encode { inst[15] = 1; }
        action { A <- A ? A : A; }
      }
    }
  }
)"),
                  "1 bit");
}

TEST(Sema, LogicalOpsRequireOneBitOperands) {
  expectSemaError(machineWith(R"(
  section instruction_set {
    field F {
      operation op() {
        encode { inst[15] = 1; }
        action { if (A && (A == 8'd1)) { A <- 8'd0; } }
      }
    }
  }
)"),
                  "1-bit operands");
}

TEST(Sema, FloatWidthRestriction) {
  expectSemaError(machineWith(R"(
  section instruction_set {
    field F {
      operation op() {
        encode { inst[15] = 1; }
        action { A <- fadd(A, A); }
      }
    }
  }
)"),
                  "32 or 64");
}

TEST(Sema, MultiWordInstructionEncodingAllowed) {
  // size = 2 permits encoding bits in the second word.
  expectSemaOk(machineWith(R"(
  section global_definitions { token U16 immediate unsigned width 16; }
  section instruction_set {
    field F {
      operation limm(i: U16) {
        encode { inst[15:12] = 4'd9; inst[31:16] = i; }
        action { A <- i[7:0]; }
        costs { size = 2; }
      }
    }
  }
)"));
}

TEST(Sema, EncodeBitBeyondInstructionSize) {
  expectSemaError(machineWith(R"(
  section global_definitions { token U16 immediate unsigned width 16; }
  section instruction_set {
    field F {
      operation limm(i: U16) {
        encode { inst[15:12] = 4'd9; inst[31:16] = i; }
      }
    }
  }
)"),
                  "exceeds instruction size");
}

TEST(Sema, WarnOnInstructionMemoryWrite) {
  DiagnosticEngine diags;
  auto m = parseIsdl(machineWith(R"(
  section instruction_set {
    field F {
      operation smc() {
        encode { inst[15] = 1; }
        action { IM[PC] <- 16'd0; }
      }
    }
  }
)"),
                     diags);
  ASSERT_NE(m, nullptr) << diags.dump();
  EXPECT_TRUE(checkMachine(*m, diags));
  EXPECT_NE(diags.dump().find("off-line"), std::string::npos);
}

}  // namespace
}  // namespace isdl
