#include "isdl/lexer.h"

#include <gtest/gtest.h>

namespace isdl {
namespace {

std::vector<Token> lexOk(std::string_view src) {
  DiagnosticEngine diags;
  auto toks = lex(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.dump();
  return toks;
}

TEST(Lexer, EmptyInput) {
  auto toks = lexOk("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_TRUE(toks[0].is(Tok::EndOfFile));
}

TEST(Lexer, IdentifiersAndPunctuation) {
  auto toks = lexOk("machine M { section format }");
  ASSERT_EQ(toks.size(), 7u);
  EXPECT_TRUE(toks[0].isIdent("machine"));
  EXPECT_TRUE(toks[1].isIdent("M"));
  EXPECT_TRUE(toks[2].is(Tok::LBrace));
  EXPECT_TRUE(toks[3].isIdent("section"));
  EXPECT_TRUE(toks[5].is(Tok::RBrace));
}

TEST(Lexer, Comments) {
  auto toks = lexOk("a // line comment\nb # hash comment\nc /* block\n */ d");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_TRUE(toks[0].isIdent("a"));
  EXPECT_TRUE(toks[1].isIdent("b"));
  EXPECT_TRUE(toks[2].isIdent("c"));
  EXPECT_TRUE(toks[3].isIdent("d"));
}

TEST(Lexer, UnterminatedBlockComment) {
  DiagnosticEngine diags;
  lex("a /* never ends", diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Lexer, IntegerForms) {
  auto toks = lexOk("42 0x2A 0b101010 1_000");
  EXPECT_EQ(toks[0].intValue, 42u);
  EXPECT_EQ(toks[1].intValue, 42u);
  EXPECT_EQ(toks[2].intValue, 42u);
  EXPECT_EQ(toks[3].intValue, 1000u);
}

TEST(Lexer, SizedIntegers) {
  auto toks = lexOk("8'd255 4'b1010 16'hBEEF 12'hABC");
  ASSERT_TRUE(toks[0].is(Tok::SizedInt));
  EXPECT_EQ(toks[0].sizedValue.width(), 8u);
  EXPECT_EQ(toks[0].sizedValue.toUint64(), 255u);
  EXPECT_EQ(toks[1].sizedValue.width(), 4u);
  EXPECT_EQ(toks[1].sizedValue.toUint64(), 10u);
  EXPECT_EQ(toks[2].sizedValue.toUint64(), 0xBEEFu);
  EXPECT_EQ(toks[3].sizedValue.width(), 12u);
}

TEST(Lexer, SizedIntegerBadBase) {
  DiagnosticEngine diags;
  lex("8'q12", diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Lexer, MultiCharOperators) {
  auto toks = lexOk("<- << >> >>> == != <= >= && || .. $$ < > = ! & |");
  Tok expected[] = {Tok::Arrow, Tok::Shl, Tok::Shr, Tok::AShr, Tok::EqEq,
                    Tok::BangEq, Tok::Le, Tok::Ge, Tok::AmpAmp, Tok::PipePipe,
                    Tok::DotDot, Tok::Dollar2, Tok::Lt, Tok::Gt, Tok::Assign,
                    Tok::Bang, Tok::Amp, Tok::Pipe};
  ASSERT_EQ(toks.size(), std::size(expected) + 1);
  for (std::size_t i = 0; i < std::size(expected); ++i)
    EXPECT_TRUE(toks[i].is(expected[i])) << "token " << i;
}

TEST(Lexer, StringsWithEscapes) {
  auto toks = lexOk(R"("hello" "a\"b" "tab\tend")");
  EXPECT_EQ(toks[0].text, "hello");
  EXPECT_EQ(toks[1].text, "a\"b");
  EXPECT_EQ(toks[2].text, "tab\tend");
}

TEST(Lexer, UnterminatedString) {
  DiagnosticEngine diags;
  lex("\"never ends", diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Lexer, SourceLocations) {
  auto toks = lexOk("a\n  b");
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[0].loc.col, 1u);
  EXPECT_EQ(toks[1].loc.line, 2u);
  EXPECT_EQ(toks[1].loc.col, 3u);
}

TEST(Lexer, UnexpectedCharacterRecovers) {
  DiagnosticEngine diags;
  auto toks = lex("a @ b", diags);
  EXPECT_TRUE(diags.hasErrors());
  // Both identifiers still arrive.
  ASSERT_GE(toks.size(), 3u);
  EXPECT_TRUE(toks[0].isIdent("a"));
  EXPECT_TRUE(toks[1].isIdent("b"));
}

}  // namespace
}  // namespace isdl
