// End-to-end tests of the XSIM simulator: two-phase VLIW semantics, latency
// and stall behaviour, bypass forwarding, branches, breakpoints, monitors,
// traces and statistics (paper §3).

#include "sim/xsim.h"

#include <gtest/gtest.h>

#include "isdl/parser.h"
#include "test_machines.h"

namespace isdl::sim {
namespace {

class XsimTest : public ::testing::Test {
 protected:
  XsimTest() : machine_(parseAndCheckIsdl(testing::kMiniIsdl)), sim_(*machine_) {}

  void load(std::string_view asmText) {
    Assembler assembler(sim_.signatures());
    DiagnosticEngine diags;
    auto prog = assembler.assemble(asmText, diags);
    ASSERT_TRUE(prog.has_value()) << diags.dump();
    std::string err;
    ASSERT_TRUE(sim_.loadProgram(*prog, &err)) << err;
  }

  std::uint64_t reg(unsigned i) {
    int rf = machine_->findStorage("RF");
    return sim_.state().read(static_cast<unsigned>(rf), i).toUint64();
  }
  std::uint64_t dm(unsigned i) {
    int dmIdx = machine_->findStorage("DM");
    return sim_.state().read(static_cast<unsigned>(dmIdx), i).toUint64();
  }

  std::unique_ptr<Machine> machine_;
  Xsim sim_;
};

TEST_F(XsimTest, BasicArithmeticAndHalt) {
  load(R"(
li R1, 5
li R2, 7
add R3, R1, R2
halt
)");
  RunResult r = sim_.run(1000);
  EXPECT_EQ(r.reason, StopReason::Halted) << r.message;
  sim_.drainPipeline();
  EXPECT_EQ(reg(3), 12u);
  EXPECT_EQ(sim_.stats().instructions, 4u);
  EXPECT_EQ(sim_.stats().cycles, 4u);  // four single-cycle instructions
  EXPECT_EQ(sim_.stats().dataStallCycles, 0u);
}

TEST_F(XsimTest, TwoPhaseVliwSemanticsReadBeforeWrite) {
  // Both operations read the pre-cycle state: add sees old R1/R2, mv copies
  // the OLD R1 into R2 even though add writes R1 in the same instruction.
  load(R"(
li R1, 1
li R2, 2
{ add R1, R1, R2 | mv R2, R1 }
halt
)");
  EXPECT_EQ(sim_.run(1000).reason, StopReason::Halted);
  sim_.drainPipeline();
  EXPECT_EQ(reg(1), 3u);  // 1 + 2
  EXPECT_EQ(reg(2), 1u);  // old R1
}

TEST_F(XsimTest, SideEffectsComputeFlagsFromOperands) {
  // add's side effect sets CARRY from the pre-cycle operands (side effects
  // read the same state as actions; their WRITES commit after action
  // writes): carry(0xFFFF, 1) = 1.
  load(R"(
li R1, -1
li R2, 1
add R3, R1, R2
halt
)");
  EXPECT_EQ(sim_.run(1000).reason, StopReason::Halted);
  sim_.drainPipeline();
  EXPECT_EQ(reg(3), 0u);
  int cc = machine_->findStorage("CC");
  EXPECT_EQ(sim_.state().read(static_cast<unsigned>(cc)).toUint64() & 1u, 1u);
}

TEST_F(XsimTest, MemoryLoadStoreAndDataInit) {
  load(R"(
.dm 3 77
li R1, 3
ld R2, R1
nop
li R4, 9
st R4, R2
halt
)");
  EXPECT_EQ(sim_.run(1000).reason, StopReason::Halted);
  sim_.drainPipeline();
  EXPECT_EQ(reg(2), 77u);
  EXPECT_EQ(dm(9), 77u);
}

TEST_F(XsimTest, LoadUseInterlockStallsExactly) {
  // ld: latency 2, stall 1 -> an immediately dependent add stalls 1 cycle.
  load(R"(
.dm 3 77
li R1, 3
ld R2, R1
add R3, R2, R2
halt
)");
  EXPECT_EQ(sim_.run(1000).reason, StopReason::Halted);
  sim_.drainPipeline();
  EXPECT_EQ(reg(3), 154u);  // stall guarantees the NEW value is read
  EXPECT_EQ(sim_.stats().dataStallCycles, 1u);
  // li(1) + ld(1) + stall(1) + add(1) + halt(1) = 5 cycles.
  EXPECT_EQ(sim_.stats().cycles, 5u);
}

TEST_F(XsimTest, IndependentInstructionHidesLoadLatency) {
  load(R"(
.dm 3 77
li R1, 3
ld R2, R1
li R5, 1
add R3, R2, R2
halt
)");
  EXPECT_EQ(sim_.run(1000).reason, StopReason::Halted);
  sim_.drainPipeline();
  EXPECT_EQ(reg(3), 154u);
  EXPECT_EQ(sim_.stats().dataStallCycles, 0u);  // latency fully hidden
}

TEST_F(XsimTest, BranchLoopAndTakenBranchSemantics) {
  load(R"(
      li R1, 0
      li R2, 3
loop: addi R1, #1
      beq R1, R2, done
      jmp loop
done: halt
)");
  RunResult r = sim_.run(10000);
  EXPECT_EQ(r.reason, StopReason::Halted) << r.message;
  sim_.drainPipeline();
  EXPECT_EQ(reg(1), 3u);
  // addi executed 3 times, beq 3 times, jmp twice.
  const Operation* addi = machine_->fields[0].findOperation("addi");
  (void)addi;
  EXPECT_EQ(sim_.stats().opCount[0][2], 3u);  // addi
  EXPECT_EQ(sim_.stats().opCount[0][7], 3u);  // beq
  EXPECT_EQ(sim_.stats().opCount[0][8], 2u);  // jmp
}

TEST_F(XsimTest, NonTerminalRegAndImmOptionsExecute) {
  load(R"(
li R1, 10
li R2, 5
addi R1, R2
addi R1, #200
halt
)");
  EXPECT_EQ(sim_.run(1000).reason, StopReason::Halted);
  sim_.drainPipeline();
  EXPECT_EQ(reg(1), 215u);
}

TEST_F(XsimTest, MultiCycleOperationsAdvanceCycleCounter) {
  load("jmp 1\nhalt\n");  // jmp: cycle = 2
  EXPECT_EQ(sim_.run(1000).reason, StopReason::Halted);
  EXPECT_EQ(sim_.stats().cycles, 3u);  // 2 (jmp) + 1 (halt)
}

TEST_F(XsimTest, PcOutOfRangeStops) {
  load("jmp 100\n");
  RunResult r = sim_.run(1000);
  EXPECT_EQ(r.reason, StopReason::PcOutOfRange);
}

TEST_F(XsimTest, IllegalInstructionStops) {
  // Opcode 20 in EX is unassigned: 20 << 27 = 0xA0000000.
  load("nop\n.word 0xA0000000\n");
  RunResult r = sim_.run(1000);
  EXPECT_EQ(r.reason, StopReason::IllegalInstruction);
  EXPECT_NE(r.message.find("illegal instruction"), std::string::npos);
}

TEST_F(XsimTest, BreakpointsStopBeforeExecutionAndResume) {
  load(R"(
li R1, 1
li R2, 2
add R3, R1, R2
halt
)");
  sim_.addBreakpoint(2);
  std::uint64_t hookAddr = 99;
  sim_.setBreakpointHook([&](std::uint64_t a) { hookAddr = a; });
  RunResult r = sim_.run(1000);
  EXPECT_EQ(r.reason, StopReason::Breakpoint);
  EXPECT_EQ(hookAddr, 2u);
  EXPECT_EQ(sim_.state().pc(), 2u);
  sim_.drainPipeline();
  EXPECT_EQ(reg(3), 0u);  // add not yet executed
  // Resume: the breakpointed instruction now executes.
  r = sim_.run(1000);
  EXPECT_EQ(r.reason, StopReason::Halted);
  sim_.drainPipeline();
  EXPECT_EQ(reg(3), 3u);
}

TEST_F(XsimTest, SteppingIgnoresBreakpoints) {
  load("li R1, 1\nli R2, 2\nadd R3, R1, R2\nhalt\n");
  sim_.addBreakpoint(1);
  RunResult r = sim_.step(3);
  EXPECT_EQ(r.reason, StopReason::MaxInstructions);
  EXPECT_EQ(sim_.state().pc(), 3u);
}

TEST_F(XsimTest, ExecutionAddressTrace) {
  load(R"(
      li R1, 1
      jmp skip
      nop
skip: halt
)");
  std::vector<std::uint64_t> trace;
  sim_.setTraceCallback([&](std::uint64_t a) { trace.push_back(a); });
  EXPECT_EQ(sim_.run(1000).reason, StopReason::Halted);
  EXPECT_EQ(trace, (std::vector<std::uint64_t>{0, 1, 3}));
}

TEST_F(XsimTest, MonitorsFireOnChangesOnly) {
  load("li R1, 5\nli R1, 5\nli R1, 6\nhalt\n");
  int rf = machine_->findStorage("RF");
  std::vector<std::pair<std::uint64_t, std::uint64_t>> events;
  sim_.monitors().add(static_cast<unsigned>(rf), 1u,
                      [&](const WriteEvent& ev) {
                        events.emplace_back(ev.oldValue.toUint64(),
                                            ev.newValue.toUint64());
                      });
  EXPECT_EQ(sim_.run(1000).reason, StopReason::Halted);
  sim_.drainPipeline();
  // 0->5 then 5->6; the redundant write of 5 fires nothing.
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], (std::pair<std::uint64_t, std::uint64_t>{0, 5}));
  EXPECT_EQ(events[1], (std::pair<std::uint64_t, std::uint64_t>{5, 6}));
}

TEST_F(XsimTest, MonitorElementFilter) {
  load("li R1, 5\nli R2, 9\nhalt\n");
  int rf = machine_->findStorage("RF");
  int fires = 0;
  sim_.monitors().add(static_cast<unsigned>(rf), 2u,
                      [&](const WriteEvent&) { ++fires; });
  EXPECT_EQ(sim_.run(1000).reason, StopReason::Halted);
  sim_.drainPipeline();
  EXPECT_EQ(fires, 1);
}

TEST_F(XsimTest, ResetReloadsProgramAndState) {
  load("li R1, 5\nhalt\n");
  EXPECT_EQ(sim_.run(1000).reason, StopReason::Halted);
  sim_.drainPipeline();
  EXPECT_EQ(reg(1), 5u);
  sim_.reset();
  EXPECT_EQ(sim_.state().pc(), 0u);
  EXPECT_EQ(reg(1), 0u);
  EXPECT_EQ(sim_.stats().instructions, 0u);
  EXPECT_EQ(sim_.run(1000).reason, StopReason::Halted);
  sim_.drainPipeline();
  EXPECT_EQ(reg(1), 5u);
}

TEST_F(XsimTest, FieldUtilizationStatistics) {
  load(R"(
{ add R1, R1, R2 | mv R3, R4 }
add R1, R1, R2
halt
)");
  EXPECT_EQ(sim_.run(1000).reason, StopReason::Halted);
  // EX used in all 3 instructions (halt counts: it is not EX's nop).
  EXPECT_EQ(sim_.stats().fieldUtilization[0], 3u);
  // MV used only in the first.
  EXPECT_EQ(sim_.stats().fieldUtilization[1], 1u);
}

TEST_F(XsimTest, RunWithCycleBudgetStops) {
  load("jmp 0\n");  // infinite loop
  RunResult r = sim_.run(50);
  EXPECT_EQ(r.reason, StopReason::MaxCycles);
  EXPECT_GE(sim_.stats().cycles, 50u);
}

// --- bypass (Stall == 0, Latency > 1) vs interlock (Stall > 0) --------------

TEST(XsimBypass, FullBypassForwardsWithoutStalls) {
  // mul: latency 3, stall 0 => dependent consumer gets the value bypassed
  // with zero stall cycles. Identical code with an interlocked producer
  // (stall 2) pays 2 stall cycles. Same final values either way.
  const char* archTemplate = R"(
machine B {
  section format { word_width = 32; }
  section storage {
    instruction_memory IM width 32 depth 64;
    register_file RF width 16 depth 8;
    program_counter PC width 16;
  }
  section global_definitions {
    token REG enum width 3 prefix "R" range 0 .. 7;
    token S8 immediate signed width 8;
  }
  section instruction_set {
    field EX {
      operation nop() { encode { inst[31:27] = 5'd0; } }
      operation li(d: REG, i: S8) {
        encode { inst[31:27] = 5'd6; inst[26:24] = d; inst[23:16] = i; }
        action { RF[d] <- sext(i, 16); }
      }
      operation mul(d: REG, a: REG, b: REG) {
        encode { inst[31:27] = 5'd9; inst[26:24] = d; inst[23:21] = a;
                 inst[20:18] = b; }
        action { RF[d] <- RF[a] * RF[b]; }
        costs { stall = STALLVAL; }
        timing { latency = 3; }
      }
      operation halt() { encode { inst[31:27] = 5'd31; } }
    }
  }
  section optional { halt_operation = "EX.halt"; }
}
)";
  auto runWith = [&](const char* stall, std::uint64_t* stallsOut) {
    std::string src = archTemplate;
    src.replace(src.find("STALLVAL"), 8, stall);
    auto m = parseAndCheckIsdl(src);
    Xsim sim(*m);
    Assembler assembler(sim.signatures());
    DiagnosticEngine diags;
    auto prog = assembler.assemble(R"(
li R1, 3
li R2, 4
mul R3, R1, R2
mul R4, R3, R1
halt
)",
                                   diags);
    EXPECT_TRUE(prog.has_value()) << diags.dump();
    std::string err;
    EXPECT_TRUE(sim.loadProgram(*prog, &err)) << err;
    EXPECT_EQ(sim.run(1000).reason, StopReason::Halted);
    sim.drainPipeline();
    *stallsOut = sim.stats().dataStallCycles;
    int rf = m->findStorage("RF");
    return sim.state().read(static_cast<unsigned>(rf), 4).toUint64();
  };

  std::uint64_t bypassStalls = 0, interlockStalls = 0;
  EXPECT_EQ(runWith("0", &bypassStalls), 36u);     // (3*4)*3, forwarded
  EXPECT_EQ(runWith("2", &interlockStalls), 36u);  // same value, stalled
  EXPECT_EQ(bypassStalls, 0u);
  EXPECT_EQ(interlockStalls, 2u);
}

// --- structural hazards (Usage) -----------------------------------------------

TEST(XsimStructural, UsageKeepsUnitBusy) {
  auto m = parseAndCheckIsdl(R"(
machine U {
  section format { word_width = 32; }
  section storage {
    instruction_memory IM width 32 depth 64;
    register_file RF width 16 depth 8;
    program_counter PC width 16;
  }
  section global_definitions {
    token REG enum width 3 prefix "R" range 0 .. 7;
    token S8 immediate signed width 8;
  }
  section instruction_set {
    field EX {
      operation nop() { encode { inst[31:27] = 5'd0; } }
      operation slow(d: REG, i: S8) {
        encode { inst[31:27] = 5'd1; inst[26:24] = d; inst[23:16] = i; }
        action { RF[d] <- sext(i, 16); }
        timing { usage = 3; }
      }
      operation halt() { encode { inst[31:27] = 5'd31; } }
    }
  }
  section optional { halt_operation = "EX.halt"; }
}
)");
  Xsim sim(*m);
  Assembler assembler(sim.signatures());
  DiagnosticEngine diags;
  auto prog = assembler.assemble("slow R1, 1\nslow R2, 2\nhalt\n", diags);
  ASSERT_TRUE(prog.has_value()) << diags.dump();
  std::string err;
  ASSERT_TRUE(sim.loadProgram(*prog, &err)) << err;
  EXPECT_EQ(sim.run(1000).reason, StopReason::Halted);
  // slow issues at 0; unit busy until 3; second slow stalls 2 cycles.
  EXPECT_EQ(sim.stats().structStallCycles, 4u);  // 2 (slow2) + 2 (halt)
  sim.drainPipeline();
  int rf = m->findStorage("RF");
  EXPECT_EQ(sim.state().read(static_cast<unsigned>(rf), 2).toUint64(), 2u);
}

// --- multi-word instructions ---------------------------------------------------

TEST(XsimMultiWord, TwoWordInstructionFetchesAndAdvances) {
  auto m = parseAndCheckIsdl(R"(
machine W {
  section format { word_width = 16; }
  section storage {
    instruction_memory IM width 16 depth 64;
    register_file RF width 16 depth 4;
    program_counter PC width 16;
  }
  section global_definitions {
    token REG enum width 2 prefix "R" range 0 .. 3;
    token U16 immediate unsigned width 16;
    token S4 immediate signed width 4;
  }
  section instruction_set {
    field EX {
      operation nop() { encode { inst[15:12] = 4'd0; } }
      operation limm(d: REG, i: U16) {
        encode { inst[15:12] = 4'd1; inst[11:10] = d; inst[31:16] = i; }
        action { RF[d] <- i; }
        costs { size = 2; }
      }
      operation li(d: REG, i: S4) {
        encode { inst[15:12] = 4'd2; inst[11:10] = d; inst[9:6] = i; }
        action { RF[d] <- sext(i, 16); }
      }
      operation halt() { encode { inst[15:12] = 4'd15; } }
    }
  }
  section optional { halt_operation = "EX.halt"; }
}
)");
  Xsim sim(*m);
  Assembler assembler(sim.signatures());
  DiagnosticEngine diags;
  auto prog = assembler.assemble("limm R1, 0xBEEF\nli R2, 3\nhalt\n", diags);
  ASSERT_TRUE(prog.has_value()) << diags.dump();
  ASSERT_EQ(prog->words.size(), 4u);
  EXPECT_EQ(prog->words[1].toUint64(), 0xBEEFu);  // extension word
  std::string err;
  ASSERT_TRUE(sim.loadProgram(*prog, &err)) << err;
  EXPECT_EQ(sim.run(1000).reason, StopReason::Halted);
  sim.drainPipeline();
  int rf = m->findStorage("RF");
  EXPECT_EQ(sim.state().read(static_cast<unsigned>(rf), 1).toUint64(),
            0xBEEFu);
  EXPECT_EQ(sim.state().read(static_cast<unsigned>(rf), 2).toUint64(), 3u);
  EXPECT_EQ(sim.stats().instructions, 3u);
}

}  // namespace
}  // namespace isdl::sim
