// Coverage for the remaining ISDL storage kinds (paper §2.1.2): stack and
// memory-mapped I/O, exercised through a small machine with push/pop and
// port-write operations, on both the simulator and the hardware model.

#include <gtest/gtest.h>

#include "hw/datapath.h"
#include "isdl/parser.h"
#include "sim/xsim.h"
#include "synth/gatesim.h"

namespace isdl {
namespace {

const char* kStackIsdl = R"ISDL(
machine STACKY {
  section format { word_width = 16; }

  section storage {
    instruction_memory IM width 16 depth 64;
    stack ST width 16 depth 16;          # the stack storage kind
    memory_mapped_io IO width 16 depth 4;
    register SP width 4;                 # stack pointer (explicit state)
    register ACC width 16;
    program_counter PC width 8;
  }

  section global_definitions {
    token S8 immediate signed width 8;
    token PORT enum width 2 { "port0" = 0, "port1" = 1, "status" = 3 };
  }

  section instruction_set {
    field EX {
      operation nop() { encode { inst[15:12] = 4'd0; } }
      operation lit(i: S8) {
        encode { inst[15:12] = 4'd1; inst[7:0] = i; }
        action { ACC <- sext(i, 16); }
      }
      operation push() {
        encode { inst[15:12] = 4'd2; }
        action { ST[SP] <- ACC; SP <- SP + 4'd1; }
      }
      operation pop() {
        encode { inst[15:12] = 4'd3; }
        action { ACC <- ST[SP - 4'd1]; SP <- SP - 4'd1; }
      }
      operation addtop() {
        encode { inst[15:12] = 4'd4; }
        action { ACC <- ACC + ST[SP - 4'd1]; }
      }
      operation out(p: PORT) {
        encode { inst[15:12] = 4'd5; inst[11:10] = p; }
        action { IO[p] <- ACC; }
      }
      operation in(p: PORT) {
        encode { inst[15:12] = 4'd6; inst[11:10] = p; }
        action { ACC <- IO[p]; }
      }
      operation halt() { encode { inst[15:12] = 4'd15; } }
    }
  }

  section optional { halt_operation = "EX.halt"; }
}
)ISDL";

TEST(StorageKinds, StackAndMmioSimulate) {
  auto m = parseAndCheckIsdl(kStackIsdl);
  EXPECT_EQ(m->storages[1].kind, StorageKind::Stack);
  EXPECT_EQ(m->storages[2].kind, StorageKind::MemoryMappedIO);

  sim::Xsim xsim(*m);
  sim::Assembler assembler(xsim.signatures());
  DiagnosticEngine diags;
  // (3 + 4) via the stack, result to port1; 4 left in ACC after pop.
  auto prog = assembler.assemble(R"(
lit 3
push
lit 4
push
pop
addtop
out port1
halt
)",
                                 diags);
  ASSERT_TRUE(prog.has_value()) << diags.dump();
  std::string err;
  ASSERT_TRUE(xsim.loadProgram(*prog, &err)) << err;
  ASSERT_EQ(xsim.run(1000).reason, sim::StopReason::Halted);
  xsim.drainPipeline();

  int io = m->findStorage("IO");
  int st = m->findStorage("ST");
  int sp = m->findStorage("SP");
  EXPECT_EQ(xsim.state().read(io, 1).toUint64(), 7u);  // 3 + 4
  EXPECT_EQ(xsim.state().read(st, 0).toUint64(), 3u);  // bottom of stack
  EXPECT_EQ(xsim.state().read(sp).toUint64(), 1u);     // one entry left

  // The hardware model implements the same machine.
  hw::HwModel model = hw::buildDatapath(*m, xsim.signatures());
  synth::GateSim gs(model.netlist);
  gs.loadMemory(model.storage[m->imemIndex].mem, prog->words);
  ASSERT_TRUE(gs.runUntil(model.haltedReg, 1000));
  EXPECT_EQ(gs.peekMemory(model.storage[io].mem, 1).toUint64(), 7u);
  EXPECT_EQ(gs.peekMemory(model.storage[st].mem, 0).toUint64(), 3u);
  EXPECT_EQ(gs.peekNet(model.storage[sp].reg).toUint64(), 1u);
}

TEST(StorageKinds, EnumTokenWithSparseValues) {
  // PORT skips value 2; disassembling an instruction carrying the hole must
  // be an illegal instruction, not a crash.
  auto m = parseAndCheckIsdl(kStackIsdl);
  DiagnosticEngine diags;
  sim::SignatureTable sigs(*m, diags);
  sim::Disassembler disasm(sigs);
  // out with p = 2 (not a member): opcode 5, p bits [11:10] = 2.
  std::vector<BitVector> mem = {BitVector(16, (5u << 12) | (2u << 10))};
  std::string err;
  EXPECT_FALSE(disasm.decodeAt(mem, 0, &err).has_value());
  EXPECT_NE(err.find("not a member"), std::string::npos);
  // p = 3 ("status") decodes fine.
  mem[0] = BitVector(16, (5u << 12) | (3u << 10));
  auto inst = disasm.decodeAt(mem, 0, &err);
  ASSERT_TRUE(inst.has_value()) << err;
  EXPECT_EQ(disasm.render(*inst), "out status");
}

TEST(StorageKinds, StackOverflowTrapsAtRuntime) {
  auto m = parseAndCheckIsdl(kStackIsdl);
  sim::Xsim xsim(*m);
  sim::Assembler assembler(xsim.signatures());
  DiagnosticEngine diags;
  // Pop from an empty stack: SP-1 wraps to 15 — legal index, reads zero; but
  // a runaway push loop cannot overflow the 16-deep stack silently either
  // (SP wraps, overwriting — architectural behaviour, not a trap). What DOES
  // trap is out-of-range access, covered by MINI's DM tests; here we verify
  // the wrap semantics explicitly.
  auto prog = assembler.assemble("pop\nhalt\n", diags);
  ASSERT_TRUE(prog.has_value()) << diags.dump();
  std::string err;
  ASSERT_TRUE(xsim.loadProgram(*prog, &err)) << err;
  ASSERT_EQ(xsim.run(100).reason, sim::StopReason::Halted);
  xsim.drainPipeline();
  int sp = m->findStorage("SP");
  EXPECT_EQ(xsim.state().read(sp).toUint64(), 15u);  // 0 - 1 wraps mod 16
}

}  // namespace
}  // namespace isdl
