// Tests for the RTL evaluator and constant folder, driven through parsed
// operation actions so the whole front-end pipeline is exercised.

#include "rtl/eval.h"

#include <gtest/gtest.h>

#include <cmath>

#include "isdl/parser.h"
#include "rtl/fold.h"
#include "support/strings.h"

namespace isdl {
namespace {

using rtl::BinOp;
using rtl::EvalContext;
using rtl::Expr;
using rtl::UnOp;

/// Minimal context with a few fixed params and storages for direct IR tests.
class FixtureContext final : public EvalContext {
 public:
  std::vector<BitVector> params;
  std::vector<BitVector> regs;

  BitVector paramValue(unsigned i) const override { return params.at(i); }
  BitVector readStorage(unsigned i) const override { return regs.at(i); }
  BitVector readElement(unsigned i, const BitVector& idx) const override {
    return regs.at(i + idx.toUint64());
  }
};

TEST(RtlEval, BinaryOperatorsBitTrue) {
  BitVector a(8, 0xF0), b(8, 0x3C);
  EXPECT_EQ(rtl::applyBinOp(BinOp::Add, a, b).toUint64(), 0x2Cu);
  EXPECT_EQ(rtl::applyBinOp(BinOp::Sub, a, b).toUint64(), 0xB4u);
  EXPECT_EQ(rtl::applyBinOp(BinOp::And, a, b).toUint64(), 0x30u);
  EXPECT_EQ(rtl::applyBinOp(BinOp::Or, a, b).toUint64(), 0xFCu);
  EXPECT_EQ(rtl::applyBinOp(BinOp::Xor, a, b).toUint64(), 0xCCu);
  EXPECT_EQ(rtl::applyBinOp(BinOp::Mul, a, b).toUint64(), (0xF0u * 0x3Cu) & 0xFF);
  EXPECT_EQ(rtl::applyBinOp(BinOp::Eq, a, a).toUint64(), 1u);
  EXPECT_EQ(rtl::applyBinOp(BinOp::SLt, a, b).toUint64(), 1u);  // -16 < 60
  EXPECT_EQ(rtl::applyBinOp(BinOp::ULt, a, b).toUint64(), 0u);
}

TEST(RtlEval, ShiftAmountSaturation) {
  BitVector a(8, 0x81);
  EXPECT_EQ(rtl::applyBinOp(BinOp::Shl, a, BitVector(16, 300)).toUint64(), 0u);
  EXPECT_EQ(rtl::applyBinOp(BinOp::LShr, a, BitVector(4, 9)).toUint64(), 0u);
  EXPECT_TRUE(rtl::applyBinOp(BinOp::AShr, a, BitVector(8, 200)).isAllOnes());
  EXPECT_EQ(rtl::applyBinOp(BinOp::Shl, a, BitVector(8, 1)).toUint64(), 0x02u);
}

TEST(RtlEval, UnaryOperators) {
  BitVector a(4, 0b1010);
  EXPECT_EQ(rtl::applyUnOp(UnOp::BitNot, a).toUint64(), 0b0101u);
  EXPECT_EQ(rtl::applyUnOp(UnOp::Neg, a).toUint64(), 0b0110u);
  EXPECT_EQ(rtl::applyUnOp(UnOp::LogNot, a).toUint64(), 0u);
  EXPECT_EQ(rtl::applyUnOp(UnOp::LogNot, BitVector(4, 0)).toUint64(), 1u);
  EXPECT_EQ(rtl::applyUnOp(UnOp::RedXor, a).toUint64(), 0u);
  EXPECT_EQ(rtl::applyUnOp(UnOp::RedOr, a).toUint64(), 1u);
  EXPECT_EQ(rtl::applyUnOp(UnOp::RedAnd, a).toUint64(), 0u);
  EXPECT_EQ(rtl::applyUnOp(UnOp::RedAnd, BitVector::allOnes(4)).toUint64(), 1u);
}

TEST(RtlEval, Float32RoundTrip) {
  auto f32 = [](float f) {
    return BitVector(32, std::bit_cast<std::uint32_t>(f));
  };
  BitVector sum = rtl::floatBinOp(BinOp::FAdd, f32(1.5f), f32(2.25f));
  EXPECT_EQ(std::bit_cast<float>(std::uint32_t(sum.toUint64())), 3.75f);
  BitVector prod = rtl::floatBinOp(BinOp::FMul, f32(-2.0f), f32(3.0f));
  EXPECT_EQ(std::bit_cast<float>(std::uint32_t(prod.toUint64())), -6.0f);
  EXPECT_EQ(rtl::floatBinOp(BinOp::FLt, f32(-1.0f), f32(1.0f)).toUint64(), 1u);
  EXPECT_EQ(rtl::floatBinOp(BinOp::FEq, f32(2.0f), f32(2.0f)).toUint64(), 1u);
}

TEST(RtlEval, IntFloatConversions) {
  BitVector f = rtl::intToFloat(BitVector::fromInt(16, -42), 32);
  EXPECT_EQ(std::bit_cast<float>(std::uint32_t(f.toUint64())), -42.0f);
  BitVector i = rtl::floatToInt(f, 16);
  EXPECT_EQ(i.toInt64(), -42);
  // NaN converts to zero; out-of-range clamps.
  BitVector nan(32, std::bit_cast<std::uint32_t>(std::nanf("")));
  EXPECT_TRUE(rtl::floatToInt(nan, 16).isZero());
  BitVector big(32, std::bit_cast<std::uint32_t>(1e9f));
  EXPECT_EQ(rtl::floatToInt(big, 16).toInt64(), 32767);
  BitVector neg(32, std::bit_cast<std::uint32_t>(-1e9f));
  EXPECT_EQ(rtl::floatToInt(neg, 16).toInt64(), -32768);
}

TEST(RtlEval, ExprTreeEvaluation) {
  // (p0 + S0)[3:0] with p0 = 0x0F, S0 = 0x01.
  FixtureContext ctx;
  ctx.params.push_back(BitVector(8, 0x0F));
  ctx.regs.push_back(BitVector(8, 0x01));
  auto e = Expr::makeSlice(
      Expr::makeBinary(BinOp::Add, Expr::makeParam(0), Expr::makeRead(0)), 3,
      0);
  EXPECT_EQ(rtl::evalExpr(*e, ctx).toUint64(), 0x0u);
  EXPECT_EQ(rtl::evalExpr(*e, ctx).width(), 4u);
}

TEST(RtlEval, TernarySelectsLazily) {
  FixtureContext ctx;
  ctx.regs.push_back(BitVector(8, 7));
  auto e = Expr::makeTernary(Expr::makeConst(BitVector(1, 1)),
                             Expr::makeRead(0),
                             Expr::makeConst(BitVector(8, 99)));
  EXPECT_EQ(rtl::evalExpr(*e, ctx).toUint64(), 7u);
  auto e2 = Expr::makeTernary(Expr::makeConst(BitVector(1, 0)),
                              Expr::makeRead(0),
                              Expr::makeConst(BitVector(8, 99)));
  EXPECT_EQ(rtl::evalExpr(*e2, ctx).toUint64(), 99u);
}

TEST(RtlEval, CarryOverflowBorrow) {
  FixtureContext ctx;
  auto mk = [](rtl::ExprKind k, std::uint64_t a, std::uint64_t b) {
    auto e = std::make_unique<Expr>(k, SourceLoc{});
    e->operands.push_back(Expr::makeConst(BitVector(8, a)));
    e->operands.push_back(Expr::makeConst(BitVector(8, b)));
    e->width = 1;
    return e;
  };
  EXPECT_EQ(rtl::evalExpr(*mk(rtl::ExprKind::Carry, 200, 100), ctx).toUint64(), 1u);
  EXPECT_EQ(rtl::evalExpr(*mk(rtl::ExprKind::Carry, 1, 2), ctx).toUint64(), 0u);
  EXPECT_EQ(rtl::evalExpr(*mk(rtl::ExprKind::Overflow, 100, 100), ctx).toUint64(), 1u);
  EXPECT_EQ(rtl::evalExpr(*mk(rtl::ExprKind::Borrow, 1, 2), ctx).toUint64(), 1u);
  EXPECT_EQ(rtl::evalExpr(*mk(rtl::ExprKind::Borrow, 2, 1), ctx).toUint64(), 0u);
}

TEST(RtlFold, FoldsConstantSubtrees) {
  // (4'd2 + 4'd3) * p0 -> 4'd5 * p0
  auto e = Expr::makeBinary(
      BinOp::Mul,
      Expr::makeBinary(BinOp::Add, Expr::makeConst(BitVector(4, 2)),
                       Expr::makeConst(BitVector(4, 3))),
      Expr::makeParam(0));
  auto folded = rtl::foldExpr(*e);
  ASSERT_EQ(folded->kind, rtl::ExprKind::Binary);
  EXPECT_TRUE(rtl::isConstValue(*folded->operands[0], 5));
  EXPECT_EQ(folded->operands[1]->kind, rtl::ExprKind::Param);
}

TEST(RtlFold, AlgebraicIdentities) {
  auto param = [] { return Expr::makeParam(0); };
  auto zero = [] { return Expr::makeConst(BitVector(8, 0)); };
  auto one = [] { return Expr::makeConst(BitVector(8, 1)); };

  auto addZero = rtl::foldExpr(*Expr::makeBinary(BinOp::Add, param(), zero()));
  EXPECT_EQ(addZero->kind, rtl::ExprKind::Param);

  auto mulOne = rtl::foldExpr(*Expr::makeBinary(BinOp::Mul, one(), param()));
  EXPECT_EQ(mulOne->kind, rtl::ExprKind::Param);

  auto mulZero = rtl::foldExpr(*Expr::makeBinary(BinOp::Mul, param(), zero()));
  EXPECT_TRUE(rtl::isConstValue(*mulZero, 0));

  auto andOnes = rtl::foldExpr(*Expr::makeBinary(
      BinOp::And, param(), Expr::makeConst(BitVector::allOnes(8))));
  EXPECT_EQ(andOnes->kind, rtl::ExprKind::Param);

  auto ternConst = rtl::foldExpr(*Expr::makeTernary(
      Expr::makeConst(BitVector(1, 1)), param(), zero()));
  EXPECT_EQ(ternConst->kind, rtl::ExprKind::Param);
}

TEST(RtlFold, DoesNotFoldStateReads) {
  auto e = Expr::makeBinary(BinOp::Add, Expr::makeRead(0),
                            Expr::makeConst(BitVector(8, 0)));
  auto folded = rtl::foldExpr(*e);
  EXPECT_EQ(folded->kind, rtl::ExprKind::Read);  // x+0 identity still applies
}

TEST(RtlFold, FoldsThroughParsedAction) {
  // The action computes A <- A + (2+3)*1; folding the parsed tree should
  // leave A + 5.
  DiagnosticEngine diags;
  auto m = parseIsdl(R"(
machine M {
  section format { word_width = 8; }
  section storage {
    instruction_memory IM width 8 depth 4;
    program_counter PC width 4;
    register A width 8;
  }
  section instruction_set {
    field F {
      operation op() {
        encode { inst[7] = 1; }
        action { A <- A + (8'd2 + 8'd3) * 8'd1; }
      }
    }
  }
}
)",
                     diags);
  ASSERT_NE(m, nullptr) << diags.dump();
  const auto& stmt = *m->fields[0].operations[0].action[0];
  auto folded = rtl::foldExpr(*stmt.value);
  ASSERT_EQ(folded->kind, rtl::ExprKind::Binary);
  EXPECT_EQ(folded->binOp, BinOp::Add);
  EXPECT_TRUE(rtl::isConstValue(*folded->operands[1], 5));
}

TEST(RtlIr, CloneIsDeep) {
  auto e = Expr::makeBinary(BinOp::Add, Expr::makeParam(0),
                            Expr::makeConst(BitVector(8, 3)));
  auto c = e->clone();
  EXPECT_NE(c->operands[0].get(), e->operands[0].get());
  EXPECT_EQ(c->binOp, e->binOp);
  EXPECT_EQ(rtl::toString(*c), rtl::toString(*e));
}

TEST(RtlIr, ToStringRenders) {
  auto e = Expr::makeBinary(BinOp::Add, Expr::makeParam(1),
                            Expr::makeConst(BitVector(8, 3)));
  EXPECT_EQ(rtl::toString(*e), "($1 + 0x03)");
}

}  // namespace
}  // namespace isdl
