// Tests for the retargetable assembler and its round trip through the
// signature-based disassembler (paper Figure 4).

#include "sim/assembler.h"

#include <gtest/gtest.h>

#include "isdl/parser.h"
#include "sim/disasm.h"
#include "test_machines.h"

namespace isdl::sim {
namespace {

class AssemblerTest : public ::testing::Test {
 protected:
  AssemblerTest()
      : machine_(parseAndCheckIsdl(testing::kMiniIsdl)),
        sigs_(*machine_, sigDiags_),
        assembler_(sigs_),
        disasm_(sigs_) {
    EXPECT_TRUE(sigs_.valid()) << sigDiags_.dump();
  }

  AssembledProgram assembleOk(std::string_view src) {
    DiagnosticEngine diags;
    auto prog = assembler_.assemble(src, diags);
    EXPECT_TRUE(prog.has_value()) << diags.dump();
    return prog.value_or(AssembledProgram{});
  }

  void expectAsmError(std::string_view src, std::string_view needle) {
    DiagnosticEngine diags;
    auto prog = assembler_.assemble(src, diags);
    EXPECT_FALSE(prog.has_value());
    EXPECT_NE(diags.dump().find(needle), std::string::npos)
        << "expected error containing '" << needle << "', got:\n"
        << diags.dump();
  }

  /// Disassembles word `addr` of a program and renders it back to text.
  std::string roundTrip(const AssembledProgram& prog, std::uint64_t addr) {
    auto inst = disasm_.decodeAt(prog.words, addr);
    EXPECT_TRUE(inst.has_value());
    if (!inst) return {};
    return disasm_.render(*inst);
  }

  std::unique_ptr<Machine> machine_;
  DiagnosticEngine sigDiags_;
  SignatureTable sigs_;
  Assembler assembler_;
  Disassembler disasm_;
};

TEST_F(AssemblerTest, SingleOpInstruction) {
  auto prog = assembleOk("add R3, R1, R2\n");
  ASSERT_EQ(prog.words.size(), 1u);
  const BitVector& w = prog.words[0];
  EXPECT_EQ(w.slice(31, 27).toUint64(), 1u);  // add opcode
  EXPECT_EQ(w.slice(26, 24).toUint64(), 3u);
  EXPECT_EQ(w.slice(23, 21).toUint64(), 1u);
  EXPECT_EQ(w.slice(20, 18).toUint64(), 2u);
  EXPECT_EQ(w.slice(8, 6).toUint64(), 0u);  // MV field filled with mnop
}

TEST_F(AssemblerTest, VliwInstruction) {
  auto prog = assembleOk("{ add R3, R1, R2 | mv R4, R5 }\n");
  ASSERT_EQ(prog.words.size(), 1u);
  const BitVector& w = prog.words[0];
  EXPECT_EQ(w.slice(31, 27).toUint64(), 1u);
  EXPECT_EQ(w.slice(8, 6).toUint64(), 1u);  // mv
  EXPECT_EQ(w.slice(5, 3).toUint64(), 4u);
  EXPECT_EQ(w.slice(2, 0).toUint64(), 5u);
}

TEST_F(AssemblerTest, FieldQualifiedMnemonic) {
  auto prog = assembleOk("{ EX.nop | MV.mv R1, R2 }\n");
  EXPECT_EQ(prog.words[0].slice(8, 6).toUint64(), 1u);
}

TEST_F(AssemblerTest, NonTerminalOptions) {
  auto prog = assembleOk("addi R1, R2\naddi R1, #42\n");
  ASSERT_EQ(prog.words.size(), 2u);
  // reg option: s bits [23:15], msb ($$[8]) clear, r in low bits.
  EXPECT_EQ(prog.words[0].slice(23, 23).toUint64(), 0u);
  EXPECT_EQ(prog.words[0].slice(17, 15).toUint64(), 2u);
  // imm option: msb set, payload 42.
  EXPECT_EQ(prog.words[1].slice(23, 23).toUint64(), 1u);
  EXPECT_EQ(prog.words[1].slice(22, 15).toUint64(), 42u);
}

TEST_F(AssemblerTest, SignedImmediates) {
  auto prog = assembleOk("li R1, -5\nli R2, 127\nli R3, -128\n");
  EXPECT_EQ(prog.words[0].slice(23, 16).toUint64(), 0xFBu);  // -5 two's compl
  EXPECT_EQ(prog.words[1].slice(23, 16).toUint64(), 127u);
  EXPECT_EQ(prog.words[2].slice(23, 16).toUint64(), 0x80u);
}

TEST_F(AssemblerTest, ImmediateRangeErrors) {
  expectAsmError("li R1, 300\n", "out of range");
  expectAsmError("li R1, -129\n", "out of range");
  expectAsmError("addi R1, #256\n", "out of range");
  expectAsmError("jmp 256\n", "out of range");
}

TEST_F(AssemblerTest, LabelsForwardAndBackward) {
  auto prog = assembleOk(R"(
start:  li R1, 0
loop:   addi R1, #1
        beq R1, R2, done
        jmp loop
done:   halt
)");
  EXPECT_EQ(prog.symbols.at("start"), 0u);
  EXPECT_EQ(prog.symbols.at("loop"), 1u);
  EXPECT_EQ(prog.symbols.at("done"), 4u);
  // beq at word 2 encodes target "done" = 4 in bits [20:13].
  EXPECT_EQ(prog.words[2].slice(20, 13).toUint64(), 4u);
  // jmp at word 3 encodes "loop" = 1 in bits [26:19].
  EXPECT_EQ(prog.words[3].slice(26, 19).toUint64(), 1u);
}

TEST_F(AssemblerTest, UndefinedAndDuplicateLabels) {
  expectAsmError("jmp nowhere\n", "undefined label");
  expectAsmError("x: nop\nx: nop\n", "duplicate label");
}

TEST_F(AssemblerTest, OrgAndWordDirectives) {
  auto prog = assembleOk(".org 2\nentry: nop\n.word 0xDEADBEEF\n");
  ASSERT_EQ(prog.words.size(), 4u);
  EXPECT_EQ(prog.symbols.at("entry"), 2u);
  EXPECT_TRUE(prog.words[0].isZero());
  EXPECT_EQ(prog.words[3].toUint64(), 0xDEADBEEFu);
  expectAsmError("nop\n.org 0\nnop\n", "backwards");
}

TEST_F(AssemblerTest, DataMemoryRecords) {
  auto prog = assembleOk(".dm 5 1234\n.dm 6 0xFFFF\nnop\n");
  ASSERT_EQ(prog.dataInit.size(), 2u);
  EXPECT_EQ(prog.dataInit[0].first, 5u);
  EXPECT_EQ(prog.dataInit[0].second.toUint64(), 1234u);
  EXPECT_EQ(prog.dataInit[1].second.toUint64(), 0xFFFFu);
  EXPECT_EQ(prog.dataInit[1].second.width(), 16u);  // data memory width
}

TEST_F(AssemblerTest, ConstraintViolationRejected) {
  // EX.add & MV.mvi is forbidden by a pure architectural constraint.
  expectAsmError("{ add R1, R2, R3 | mvi R4, 7 }\n", "violates constraint");
  // The same ops individually are fine.
  assembleOk("add R1, R2, R3\nmvi R4, 7\n");
}

TEST_F(AssemblerTest, UnknownMnemonicAndJunk) {
  expectAsmError("frob R1\n", "unknown operation");
  expectAsmError("nop extra\n", "trailing junk");
  expectAsmError("{ nop | nop }\n", "already occupied");
}

TEST_F(AssemblerTest, RoundTripThroughDisassembler) {
  auto prog = assembleOk(R"(
{ add R3, R1, R2 | mv R4, R5 }
addi R1, #42
addi R2, R7
li R5, -3
{ ld R2, R6 | mv R0, R1 }
st R6, R2
beq R1, R2, 0
jmp 7
halt
)");
  const char* expected[] = {
      "{ add R3, R1, R2 | mv R4, R5 }",
      "{ addi R1, # 42 | mnop }",
      "{ addi R2, R7 | mnop }",
      "{ li R5, -3 | mnop }",
      "{ ld R2, R6 | mv R0, R1 }",
      "{ st R6, R2 | mnop }",
      "{ beq R1, R2, 0 | mnop }",
      "{ jmp 7 | mnop }",
      "{ halt | mnop }",
  };
  for (std::size_t i = 0; i < std::size(expected); ++i)
    EXPECT_EQ(roundTrip(prog, i), expected[i]) << "word " << i;
}

TEST_F(AssemblerTest, ReassemblyOfRenderedTextIsStable) {
  // asm -> bin -> text -> bin must reproduce identical words.
  const char* src = R"(
{ add R3, R1, R2 | mv R4, R5 }
addi R1, #42
li R5, -3
st R6, R2
)";
  auto prog1 = assembleOk(src);
  std::string rendered;
  for (std::size_t i = 0; i < prog1.words.size(); ++i)
    rendered += roundTrip(prog1, i) + "\n";
  auto prog2 = assembleOk(rendered);
  ASSERT_EQ(prog1.words.size(), prog2.words.size());
  for (std::size_t i = 0; i < prog1.words.size(); ++i)
    EXPECT_EQ(prog1.words[i], prog2.words[i]) << "word " << i;
}

TEST_F(AssemblerTest, CommentsAndBlankLines) {
  auto prog = assembleOk(R"(
; full-line comment
   // and another

nop   ; trailing comment
nop   // trailing slashes
)");
  EXPECT_EQ(prog.words.size(), 2u);
}

TEST(AssemblerConflict, OverlappingUnconstrainedBitsReported) {
  // Two fields whose operations share instruction bits without a constraint:
  // the assembler must reject the combination with a pointed message.
  auto m = parseAndCheckIsdl(R"(
machine M {
  section format { word_width = 16; }
  section storage {
    instruction_memory IM width 16 depth 16;
    program_counter PC width 4;
  }
  section global_definitions { token U8 immediate unsigned width 8; }
  section instruction_set {
    field A {
      operation anop() { encode { inst[15:14] = 2'd0; } }
      operation big(i: U8) { encode { inst[15:14] = 2'd1; inst[11:4] = i; } }
    }
    field B {
      operation bnop() { encode { inst[1:0] = 2'd0; } }
      operation also(i: U8) { encode { inst[1:0] = 2'd1; inst[9:2] = i; } }
    }
  }
}
)");
  DiagnosticEngine sigDiags;
  SignatureTable sigs(*m, sigDiags);
  ASSERT_TRUE(sigs.valid());
  Assembler assembler(sigs);
  DiagnosticEngine diags;
  EXPECT_FALSE(assembler.assemble("{ big 5 | also 9 }\n", diags).has_value());
  EXPECT_NE(diags.dump().find("add a constraint"), std::string::npos)
      << diags.dump();
  // Individually both work.
  DiagnosticEngine diags2;
  EXPECT_TRUE(assembler.assemble("big 5\nalso 9\n", diags2).has_value())
      << diags2.dump();
}

}  // namespace
}  // namespace isdl::sim
