// Co-simulation: the HGEN-generated hardware model and the GENSIM-generated
// XSIM simulator must agree. For every benchmark of every built-in
// architecture we run the same binary on both and compare
//   * final register and memory state (bit-true equivalence),
//   * retired instruction counts, and
//   * the cycle identity: XSIM cycles == hardware cycle_count + XSIM stalls
//     (the hardware model charges each instruction's static Cycle cost;
//     stalls are the ILS's dynamic-performance contribution).
//
// This is the strongest statement the paper makes implicitly in footnote 8:
// "the synthesizable Verilog model is itself a simulator" — both are
// generated from one ISDL description, so they must implement the same
// machine.

#include <gtest/gtest.h>

#include "archs/archs.h"
#include "hw/datapath.h"
#include "sim/xsim.h"
#include "support/strings.h"
#include "testing/oracle.h"

namespace isdl {
namespace {

struct CosimCase {
  const char* archName;
  std::unique_ptr<Machine> (*loader)();
  std::vector<archs::Benchmark> (*benches)();
};

class CosimTest : public ::testing::TestWithParam<CosimCase> {};

TEST_P(CosimTest, HardwareModelMatchesXsim) {
  const CosimCase& c = GetParam();
  auto machine = c.loader();
  ASSERT_NE(machine, nullptr);

  sim::Xsim xsim(*machine);
  hw::HwModel model = hw::buildDatapath(*machine, xsim.signatures());
  sim::Assembler assembler(xsim.signatures());

  for (const auto& bench : c.benches()) {
    SCOPED_TRACE(std::string(c.archName) + "/" + bench.name);

    DiagnosticEngine diags;
    auto prog = assembler.assemble(bench.source, diags);
    ASSERT_TRUE(prog.has_value()) << diags.dump();

    // --- reference: XSIM ---------------------------------------------------
    std::string err;
    ASSERT_TRUE(xsim.loadProgram(*prog, &err)) << err;
    sim::RunResult r = xsim.run(bench.maxCycles);
    ASSERT_EQ(r.reason, sim::StopReason::Halted) << r.message;
    xsim.drainPipeline();

    // --- device under test: the generated hardware model -------------------
    // One comparator, shared with fuzz_diff_test and the isdl-fuzz driver:
    // storage bits, retired instructions, the cycle identity and the
    // illegal-decode net (see testing/oracle.h).
    std::vector<std::string> divergences;
    testing::compareWithHardware(*machine, xsim, model, *prog,
                                 bench.maxCycles, divergences);
    EXPECT_TRUE(divergences.empty()) << join(divergences, "\n");
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllArchs, CosimTest,
    ::testing::Values(
        CosimCase{"SPAM", archs::loadSpam, archs::spamBenchmarks},
        CosimCase{"SPAM2", archs::loadSpam2, archs::spam2Benchmarks},
        CosimCase{"SREP", archs::loadSrep, archs::srepBenchmarks},
        CosimCase{"TDSP", archs::loadTdsp, archs::tdspBenchmarks}),
    [](const ::testing::TestParamInfo<CosimCase>& info) {
      return info.param.archName;
    });

}  // namespace
}  // namespace isdl
