// Co-simulation: the HGEN-generated hardware model and the GENSIM-generated
// XSIM simulator must agree. For every benchmark of every built-in
// architecture we run the same binary on both and compare
//   * final register and memory state (bit-true equivalence),
//   * retired instruction counts, and
//   * the cycle identity: XSIM cycles == hardware cycle_count + XSIM stalls
//     (the hardware model charges each instruction's static Cycle cost;
//     stalls are the ILS's dynamic-performance contribution).
//
// This is the strongest statement the paper makes implicitly in footnote 8:
// "the synthesizable Verilog model is itself a simulator" — both are
// generated from one ISDL description, so they must implement the same
// machine.

#include <gtest/gtest.h>

#include "archs/archs.h"
#include "hw/datapath.h"
#include "sim/xsim.h"
#include "synth/gatesim.h"

namespace isdl {
namespace {

struct CosimCase {
  const char* archName;
  std::unique_ptr<Machine> (*loader)();
  std::vector<archs::Benchmark> (*benches)();
};

class CosimTest : public ::testing::TestWithParam<CosimCase> {};

TEST_P(CosimTest, HardwareModelMatchesXsim) {
  const CosimCase& c = GetParam();
  auto machine = c.loader();
  ASSERT_NE(machine, nullptr);

  sim::Xsim xsim(*machine);
  hw::HwModel model = hw::buildDatapath(*machine, xsim.signatures());
  sim::Assembler assembler(xsim.signatures());

  for (const auto& bench : c.benches()) {
    SCOPED_TRACE(std::string(c.archName) + "/" + bench.name);

    DiagnosticEngine diags;
    auto prog = assembler.assemble(bench.source, diags);
    ASSERT_TRUE(prog.has_value()) << diags.dump();

    // --- reference: XSIM ---------------------------------------------------
    std::string err;
    ASSERT_TRUE(xsim.loadProgram(*prog, &err)) << err;
    sim::RunResult r = xsim.run(bench.maxCycles);
    ASSERT_EQ(r.reason, sim::StopReason::Halted) << r.message;
    xsim.drainPipeline();

    // --- device under test: the generated hardware model -------------------
    synth::GateSim gs(model.netlist);
    gs.loadMemory(model.storage[machine->imemIndex].mem, prog->words);
    int dmIndex = -1;
    for (std::size_t si = 0; si < machine->storages.size(); ++si)
      if (machine->storages[si].kind == StorageKind::DataMemory)
        dmIndex = static_cast<int>(si);
    for (const auto& [addr, value] : prog->dataInit)
      gs.pokeMemory(model.storage[dmIndex].mem, addr, value);
    ASSERT_TRUE(gs.runUntil(model.haltedReg, bench.maxCycles))
        << "hardware model did not halt";

    // --- architectural state must match bit for bit ------------------------
    for (std::size_t si = 0; si < machine->storages.size(); ++si) {
      const StorageDef& st = machine->storages[si];
      const auto& map = model.storage[si];
      if (map.isMem) {
        for (std::uint64_t e = 0; e < st.depth; ++e) {
          EXPECT_EQ(gs.peekMemory(map.mem, e),
                    xsim.state().read(static_cast<unsigned>(si), e))
              << st.name << "[" << e << "]";
        }
      } else {
        EXPECT_EQ(gs.peekNet(map.reg),
                  xsim.state().read(static_cast<unsigned>(si)))
            << st.name;
      }
    }

    // --- instruction count and the cycle identity ---------------------------
    EXPECT_EQ(gs.peekNet(model.instrCountReg).toUint64(),
              xsim.stats().instructions);
    std::uint64_t hwCycles = gs.peekNet(model.cycleCountReg).toUint64();
    EXPECT_EQ(xsim.stats().cycles,
              hwCycles + xsim.stats().dataStallCycles +
                  xsim.stats().structStallCycles);
    EXPECT_FALSE(gs.peekNet(model.illegalNet).toUint64());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllArchs, CosimTest,
    ::testing::Values(
        CosimCase{"SPAM", archs::loadSpam, archs::spamBenchmarks},
        CosimCase{"SPAM2", archs::loadSpam2, archs::spam2Benchmarks},
        CosimCase{"SREP", archs::loadSrep, archs::srepBenchmarks},
        CosimCase{"TDSP", archs::loadTdsp, archs::tdspBenchmarks}),
    [](const ::testing::TestParamInfo<CosimCase>& info) {
      return info.param.archName;
    });

}  // namespace
}  // namespace isdl
