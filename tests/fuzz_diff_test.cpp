// Differential fuzzing: random constraint-respecting straight-line programs
// are executed on the generated interpreter (XSIM) and on the generated
// hardware model (with resource sharing applied), and the final
// architectural state must agree bit for bit. This is the strongest
// automated check of "both tools implement the same machine" the repo has —
// it routinely covers operand/option combinations no hand-written kernel
// uses.

#include <gtest/gtest.h>

#include <random>

#include "archs/archs.h"
#include "hw/datapath.h"
#include "hw/sharing.h"
#include "isdl/parser.h"
#include "sim/xsim.h"
#include "synth/gatesim.h"
#include "test_machines.h"

namespace isdl {
namespace {

/// Builds a random straight-line program: `length` instructions made of
/// randomly chosen non-control operations with random operands, then halt.
/// Instructions are assembled per-field via signatures, so every operand
/// pattern (not just assembler-reachable ones) is exercised.
sim::AssembledProgram randomProgram(const Machine& m,
                                    const sim::SignatureTable& sigs,
                                    std::mt19937& rng, unsigned length) {
  // Operations that redirect control or halt are excluded; everything else
  // (arithmetic, loads, stores, moves, non-terminal operands) is fair game.
  auto touchesPc = [&](const Operation& op) {
    bool touches = false;
    auto scan = [&](const rtl::Stmt& s, auto&& self) -> void {
      if (s.kind == rtl::StmtKind::Assign) {
        if (!s.dest.isParam &&
            static_cast<int>(s.dest.storageIndex) == m.pcIndex)
          touches = true;
        return;
      }
      for (const auto& t : s.thenStmts) self(*t, self);
      for (const auto& t : s.elseStmts) self(*t, self);
    };
    for (const auto& s : op.action) scan(*s, scan);
    for (const auto& s : op.sideEffects) scan(*s, scan);
    return touches;
  };

  std::string haltOpName;
  if (auto it = m.optionalInfo.find("halt_operation");
      it != m.optionalInfo.end())
    haltOpName = it->second.substr(it->second.find('.') + 1);

  // Random encoded value for one parameter (recursing into non-terminals).
  std::function<BitVector(const Param&)> randomParam =
      [&](const Param& p) -> BitVector {
    if (p.kind == ParamKind::Token) {
      const TokenDef& tok = m.tokens[p.index];
      if (tok.kind == TokenKind::Enum) {
        const TokenMember& member =
            tok.members[rng() % tok.members.size()];
        return BitVector(tok.width, member.value);
      }
      return BitVector(tok.width, rng());
    }
    const NonTerminal& nt = m.nonTerminals[p.index];
    unsigned o = unsigned(rng() % nt.options.size());
    const NtOption& opt = nt.options[o];
    std::vector<BitVector> sub;
    for (const auto& q : opt.params) sub.push_back(randomParam(q));
    BitVector ret(nt.returnWidth);
    sigs.ntOption(p.index, o).assemble(ret, sub);
    return ret;
  };

  sim::AssembledProgram prog;
  const unsigned wordWidth = m.wordWidth;
  for (unsigned i = 0; i < length; ++i) {
    // Retry until a constraint-satisfying, conflict-free combination lands.
    for (int attempt = 0; attempt < 100; ++attempt) {
      std::vector<int> choice(m.fields.size());
      bool ok = true;
      for (std::size_t f = 0; f < m.fields.size() && ok; ++f) {
        for (int tries = 0; tries < 50; ++tries) {
          int o = int(rng() % m.fields[f].operations.size());
          const Operation& op = m.fields[f].operations[o];
          if (op.name == haltOpName || touchesPc(op) ||
              op.costs.size != 1)
            continue;
          choice[f] = o;
          goto fieldDone;
        }
        ok = false;
      fieldDone:;
      }
      if (!ok || !m.satisfiesConstraints(choice)) continue;

      // Paint, rejecting cross-field bit conflicts.
      BitVector word(wordWidth);
      BitVector painted(wordWidth);
      bool conflict = false;
      for (std::size_t f = 0; f < m.fields.size() && !conflict; ++f) {
        const Operation& op = m.fields[f].operations[choice[f]];
        const sim::Signature& sig =
            sigs.operation(unsigned(f), unsigned(choice[f]));
        BitVector mask = sig.careMask().or_(sig.paramMask());
        if (!mask.and_(painted).isZero()) {
          conflict = true;
          break;
        }
        std::vector<BitVector> params;
        for (const auto& p : op.params) params.push_back(randomParam(p));
        sig.assemble(word, params);
        painted = painted.or_(mask);
      }
      if (conflict) continue;
      prog.words.push_back(word);
      break;
    }
  }
  // Terminate: assemble the halt instruction via nops + halt op.
  {
    BitVector word(wordWidth);
    for (std::size_t f = 0; f < m.fields.size(); ++f) {
      int o = m.fields[f].nopIndex;
      for (std::size_t k = 0; k < m.fields[f].operations.size(); ++k)
        if (m.fields[f].operations[k].name == haltOpName)
          o = static_cast<int>(k);
      sigs.operation(unsigned(f), unsigned(o)).assemble(word, {});
    }
    prog.words.push_back(word);
  }
  return prog;
}

struct FuzzCase {
  const char* name;
  std::unique_ptr<Machine> (*loader)();
};

class FuzzDiffTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FuzzDiffTest, RandomProgramsAgreeWithHardwareModel) {
  auto machine = GetParam().loader();
  sim::Xsim xsim(*machine);
  hw::HwModel model = hw::buildDatapath(*machine, xsim.signatures());
  hw::shareResources(model, *machine);

  std::mt19937 rng(12345);
  for (int trial = 0; trial < 25; ++trial) {
    SCOPED_TRACE(::testing::Message() << "trial " << trial);
    sim::AssembledProgram prog =
        randomProgram(*machine, xsim.signatures(), rng, 40);

    std::string err;
    ASSERT_TRUE(xsim.loadProgram(prog, &err)) << err;
    sim::RunResult r = xsim.run(100000);
    if (r.reason == sim::StopReason::RuntimeError) continue;  // e.g. traps
    ASSERT_EQ(r.reason, sim::StopReason::Halted) << r.message;
    xsim.drainPipeline();

    synth::GateSim gs(model.netlist);
    gs.loadMemory(model.storage[machine->imemIndex].mem, prog.words);
    ASSERT_TRUE(gs.runUntil(model.haltedReg, 100000));

    for (std::size_t si = 0; si < machine->storages.size(); ++si) {
      const StorageDef& st = machine->storages[si];
      const auto& map = model.storage[si];
      if (map.isMem) {
        for (std::uint64_t e = 0; e < st.depth; ++e)
          ASSERT_EQ(gs.peekMemory(map.mem, e),
                    xsim.state().read(unsigned(si), e))
              << st.name << "[" << e << "]";
      } else {
        ASSERT_EQ(gs.peekNet(map.reg), xsim.state().read(unsigned(si)))
            << st.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, FuzzDiffTest,
    ::testing::Values(
        FuzzCase{"MINI",
                 +[]() { return parseAndCheckIsdl(testing::kMiniIsdl); }},
        FuzzCase{"SPAM", archs::loadSpam},
        FuzzCase{"SPAM2", archs::loadSpam2},
        FuzzCase{"TDSP", archs::loadTdsp}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return info.param.name;
    });

// Engine differential: the micro-op compiled core (sim/uop.h) against the
// tree-walking interpreter it replaced. Unlike the hardware-model diff above,
// runtime traps are NOT skipped — the two engines must trap on the same
// programs with the same message, and stall/latency attribution must match
// cycle for cycle, because the compiler is required to preserve interpreter
// evaluation order exactly.
class UopDiffTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(UopDiffTest, UopEngineMatchesInterpreter) {
  auto machine = GetParam().loader();
  sim::Xsim uop(*machine);
  sim::Xsim interp(*machine);
  interp.setUopEnabled(false);
  ASSERT_TRUE(uop.uopEnabled());
  ASSERT_FALSE(interp.uopEnabled());

  std::mt19937 rng(98765);
  for (int trial = 0; trial < 25; ++trial) {
    SCOPED_TRACE(::testing::Message() << "trial " << trial);
    sim::AssembledProgram prog =
        randomProgram(*machine, uop.signatures(), rng, 40);

    std::string err;
    ASSERT_TRUE(uop.loadProgram(prog, &err)) << err;
    ASSERT_TRUE(interp.loadProgram(prog, &err)) << err;
    sim::RunResult ru = uop.run(100000);
    sim::RunResult ri = interp.run(100000);
    ASSERT_EQ(ru.reason, ri.reason) << ru.message << " vs " << ri.message;
    ASSERT_EQ(ru.message, ri.message);
    uop.drainPipeline();
    interp.drainPipeline();

    // Cycle counts and stall attribution must agree, not just final values.
    const sim::Stats& su = uop.stats();
    const sim::Stats& si = interp.stats();
    ASSERT_EQ(su.cycles, si.cycles);
    ASSERT_EQ(su.instructions, si.instructions);
    ASSERT_EQ(su.dataStallCycles, si.dataStallCycles);
    ASSERT_EQ(su.structStallCycles, si.structStallCycles);
    ASSERT_EQ(su.dataStallsByStorage, si.dataStallsByStorage);
    ASSERT_EQ(su.structStallsByField, si.structStallsByField);

    for (std::size_t s = 0; s < machine->storages.size(); ++s) {
      const StorageDef& st = machine->storages[s];
      for (std::uint64_t e = 0; e < st.depth; ++e)
        ASSERT_EQ(uop.state().read(unsigned(s), e),
                  interp.state().read(unsigned(s), e))
            << st.name << "[" << e << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, UopDiffTest,
    ::testing::Values(
        FuzzCase{"MINI",
                 +[]() { return parseAndCheckIsdl(testing::kMiniIsdl); }},
        FuzzCase{"SPAM", archs::loadSpam},
        FuzzCase{"SPAM2", archs::loadSpam2},
        FuzzCase{"SREP", archs::loadSrep},
        FuzzCase{"TDSP", archs::loadTdsp}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace isdl
