// Differential fuzzing over the bundled architectures: random
// constraint-respecting straight-line programs are executed on the two
// software engines and on the generated hardware model, and everything
// observable must agree. The generators and comparators live in src/testing
// (shared with the isdl-fuzz driver, which additionally fuzzes the machine
// description itself); this suite pins them to the four hand-written archs.
//
// Every trial logs its RNG seed; set ISDL_FUZZ_SEED to replay a failure.

#include <gtest/gtest.h>

#include <random>

#include "archs/archs.h"
#include "isdl/parser.h"
#include "support/strings.h"
#include "test_machines.h"
#include "testing/fuzzer.h"
#include "testing/oracle.h"
#include "testing/programgen.h"

namespace isdl {
namespace {

struct FuzzCase {
  const char* name;
  std::unique_ptr<Machine> (*loader)();
};

class FuzzDiffTest : public ::testing::TestWithParam<FuzzCase> {};

// Full three-way oracle: interp vs uop exactly (traps included), plus the
// HGEN->netlist->gatesim leg on halting runs.
TEST_P(FuzzDiffTest, RandomProgramsAgreeAcrossAllEngines) {
  auto machine = GetParam().loader();
  testing::DifferentialOracle oracle(*machine);

  const std::uint64_t seed = testing::seedFromEnv(12345);
  std::mt19937 rng(static_cast<std::uint32_t>(seed));
  for (int trial = 0; trial < 25; ++trial) {
    SCOPED_TRACE(::testing::Message()
                 << "trial " << trial << " seed=" << seed
                 << " (set ISDL_FUZZ_SEED to override)");
    sim::AssembledProgram prog =
        testing::randomEncodedProgram(*machine, oracle.signatures(), rng, 40);
    testing::OracleReport rep = oracle.run(prog);
    EXPECT_TRUE(rep.ok()) << rep.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, FuzzDiffTest,
    ::testing::Values(
        FuzzCase{"MINI",
                 +[]() { return parseAndCheckIsdl(testing::kMiniIsdl); }},
        FuzzCase{"SPAM", archs::loadSpam},
        FuzzCase{"SPAM2", archs::loadSpam2},
        FuzzCase{"SREP", archs::loadSrep},
        FuzzCase{"TDSP", archs::loadTdsp}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return info.param.name;
    });

// Engine-only differential with a distinct seed stream: the micro-op
// compiled core against the tree-walking interpreter, stop reason, stall
// attribution and state all exact — runtime traps are NOT skipped.
class UopDiffTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(UopDiffTest, UopEngineMatchesInterpreter) {
  auto machine = GetParam().loader();
  testing::OracleOptions opts;
  opts.checkHardware = false;
  testing::DifferentialOracle oracle(*machine, opts);

  const std::uint64_t seed = testing::seedFromEnv(98765);
  std::mt19937 rng(static_cast<std::uint32_t>(seed));
  for (int trial = 0; trial < 25; ++trial) {
    SCOPED_TRACE(::testing::Message()
                 << "trial " << trial << " seed=" << seed
                 << " (set ISDL_FUZZ_SEED to override)");
    sim::AssembledProgram prog =
        testing::randomEncodedProgram(*machine, oracle.signatures(), rng, 40);
    testing::OracleReport rep = oracle.run(prog);
    EXPECT_TRUE(rep.ok()) << rep.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, UopDiffTest,
    ::testing::Values(
        FuzzCase{"MINI",
                 +[]() { return parseAndCheckIsdl(testing::kMiniIsdl); }},
        FuzzCase{"SPAM", archs::loadSpam},
        FuzzCase{"SPAM2", archs::loadSpam2},
        FuzzCase{"SREP", archs::loadSrep},
        FuzzCase{"TDSP", archs::loadTdsp}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace isdl
