// Tests for the resource-sharing pass (paper §4.1, Figure 5): the
// Bron–Kerbosch clique enumerator, the compatibility rules, the
// constraint-derived refinement, and — most importantly — that the rewritten
// netlist still co-simulates bit-true against XSIM.

#include "hw/sharing.h"

#include <gtest/gtest.h>

#include "archs/archs.h"
#include "isdl/parser.h"
#include "sim/xsim.h"
#include "synth/gatesim.h"

namespace isdl::hw {
namespace {

TEST(MaximalCliques, Triangle) {
  // 0-1, 1-2, 0-2 plus isolated 3.
  std::vector<std::vector<bool>> adj(4, std::vector<bool>(4, false));
  auto edge = [&](unsigned a, unsigned b) { adj[a][b] = adj[b][a] = true; };
  edge(0, 1);
  edge(1, 2);
  edge(0, 2);
  auto cliques = maximalCliques(adj);
  ASSERT_EQ(cliques.size(), 2u);
  bool foundTriangle = false, foundSingleton = false;
  for (auto& c : cliques) {
    std::sort(c.begin(), c.end());
    if (c == std::vector<unsigned>{0, 1, 2}) foundTriangle = true;
    if (c == std::vector<unsigned>{3}) foundSingleton = true;
  }
  EXPECT_TRUE(foundTriangle);
  EXPECT_TRUE(foundSingleton);
}

TEST(MaximalCliques, PathGraph) {
  // 0-1-2: maximal cliques {0,1} and {1,2}.
  std::vector<std::vector<bool>> adj(3, std::vector<bool>(3, false));
  adj[0][1] = adj[1][0] = true;
  adj[1][2] = adj[2][1] = true;
  auto cliques = maximalCliques(adj);
  EXPECT_EQ(cliques.size(), 2u);
  for (auto& c : cliques) EXPECT_EQ(c.size(), 2u);
}

TEST(MaximalCliques, CompleteGraph) {
  std::vector<std::vector<bool>> adj(5, std::vector<bool>(5, true));
  for (unsigned i = 0; i < 5; ++i) adj[i][i] = false;
  auto cliques = maximalCliques(adj);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0].size(), 5u);
}

struct BuiltModel {
  std::unique_ptr<Machine> machine;
  std::unique_ptr<sim::Xsim> xsim;
  HwModel model;
};

BuiltModel buildFor(std::unique_ptr<Machine> m) {
  BuiltModel out;
  out.machine = std::move(m);
  out.xsim = std::make_unique<sim::Xsim>(*out.machine);
  out.model = buildDatapath(*out.machine, out.xsim->signatures());
  return out;
}

TEST(Sharing, SrepMergesAluAdders) {
  // SREP's single field has many mutually exclusive 32-bit add/sub users:
  // add, sub, addi, the carry side effect... all must collapse (rule R3).
  auto b = buildFor(archs::loadSrep());
  std::size_t addersBefore = 0;
  for (const auto& [net, tag] : b.model.operatorTags) {
    const Node& n = b.model.netlist.nodes[net];
    if (n.kind == NodeKind::Binary &&
        (n.binOp == rtl::BinOp::Add || n.binOp == rtl::BinOp::Sub) &&
        n.width == 32)
      ++addersBefore;
  }
  // add, sub and addi each instantiate a 32-bit adder/subtractor (the carry
  // side effect's adder is 33 bits wide and forms its own class).
  EXPECT_GE(addersBefore, 3u);
  SharingReport report = shareResources(b.model, *b.machine);
  EXPECT_GT(report.cliquesUsed, 0u);
  EXPECT_LT(report.unitsAfter, report.unitsBefore);
  // All 32-bit architectural adders of the field share one AddSub unit.
  EXPECT_GE(b.model.netlist.countNodes(NodeKind::AddSub), 1u);
  // The netlist stays acyclic.
  EXPECT_NO_THROW(b.model.netlist.topoOrder());
}

TEST(Sharing, ConstraintsEnableCrossFieldSharing) {
  // Two fields with an exclusive-by-constraint op pair: their multipliers
  // may share only when constraints are honoured (rule R4).
  const char* src = R"(
machine X {
  section format { word_width = 32; }
  section storage {
    instruction_memory IM width 32 depth 16;
    register_file RF width 16 depth 4;
    program_counter PC width 8;
  }
  section global_definitions { token REG enum width 2 prefix "R" range 0 .. 3; }
  section instruction_set {
    field A {
      operation anop() { encode { inst[31:28] = 4'd0; } }
      operation amul(d: REG, a: REG, b: REG) {
        encode { inst[31:28] = 4'd1; inst[27:26] = d; inst[25:24] = a;
                 inst[23:22] = b; }
        action { RF[d] <- RF[a] * RF[b]; }
      }
    }
    field B {
      operation bnop() { encode { inst[15:12] = 4'd0; } }
      operation bmul(d: REG, a: REG, b: REG) {
        encode { inst[15:12] = 4'd1; inst[11:10] = d; inst[9:8] = a;
                 inst[7:6] = b; }
        action { RF[d] <- RF[a] * RF[b]; }
      }
    }
  }
  section constraints { never A.amul & B.bmul; }
}
)";
  auto m1 = parseAndCheckIsdl(src);
  auto b1 = buildFor(std::move(m1));
  SharingReport withCon = shareResources(b1.model, *b1.machine, {true});
  EXPECT_EQ(withCon.cliquesUsed, 1u);  // the two multipliers merge
  EXPECT_EQ(b1.model.netlist.countNodes(NodeKind::Binary) -
                b1.model.netlist.countNodes(NodeKind::Binary),
            0u);  // sanity

  auto m2 = parseAndCheckIsdl(src);
  auto b2 = buildFor(std::move(m2));
  SharingReport withoutCon = shareResources(b2.model, *b2.machine, {false});
  EXPECT_EQ(withoutCon.cliquesUsed, 0u);  // naive scheme: no merge possible
}

TEST(Sharing, NeverCreatesACombinationalCycleAcrossSharedUnits) {
  // Found by isdl-fuzz (seed 7413975438838165915, shrunk): ma's multiplier
  // reads ma's subtractor, while mb's subtractor reads mb's multiplier. The
  // Mul pair and the AddSub pair are each same-field/different-op (rule R3:
  // compatible) and internally dependency-free — but merging BOTH routes
  // the shared multiplier and the shared adder/subtractor into each other's
  // operand muxes. The exclusive decode lines make that loop false
  // dynamically, yet the netlist must stay structurally acyclic: GateSim
  // construction topo-sorts and throws on a cycle.
  auto b = buildFor(parseAndCheckIsdl(R"(
machine CYC {
  section format { word_width = 16; }
  section storage {
    instruction_memory IM width 16 depth 32;
    register_file RF width 12 depth 4;
    program_counter PC width 12;
  }
  section global_definitions {
    token REG enum width 2 prefix "R" range 0 .. 3;
  }
  section instruction_set {
    field F {
      operation nop() { encode { inst[15:12] = 4'd0; } }
      operation ma(d: REG, a: REG, b: REG) {
        encode { inst[15:12] = 4'd1; inst[11:10] = d; inst[9:8] = a;
                 inst[7:6] = b; }
        action { RF[d] <- RF[a] * (12'd100 - RF[b]); }
      }
      operation mb(d: REG, a: REG, b: REG) {
        encode { inst[15:12] = 4'd2; inst[11:10] = d; inst[9:8] = a;
                 inst[7:6] = b; }
        action { RF[d] <- (RF[a] * RF[b]) - 12'd7; }
      }
      operation halt() { encode { inst[15:12] = 4'd15; } }
    }
  }
  section optional { halt_operation = "F.halt"; }
}
)"));
  shareResources(b.model, *b.machine);
  EXPECT_NO_THROW(synth::GateSim gs(b.model.netlist));
}

TEST(Sharing, ReportAccounting) {
  auto b = buildFor(archs::loadSpam());
  SharingReport r = shareResources(b.model, *b.machine);
  EXPECT_EQ(r.unitsBefore, r.shareableNodes);
  EXPECT_LE(r.unitsAfter, r.unitsBefore);
  EXPECT_GT(r.maximalCliques, 0u);
}

// Co-simulation after sharing: the rewrite must not change behaviour.
struct ShareCosimCase {
  const char* archName;
  std::unique_ptr<Machine> (*loader)();
  std::vector<archs::Benchmark> (*benches)();
};

class SharingCosimTest : public ::testing::TestWithParam<ShareCosimCase> {};

TEST_P(SharingCosimTest, SharedNetlistStillMatchesXsim) {
  const auto& c = GetParam();
  auto machine = c.loader();
  sim::Xsim xsim(*machine);
  HwModel model = buildDatapath(*machine, xsim.signatures());
  std::size_t nodesBefore = model.netlist.nodes.size();
  SharingReport report = shareResources(model, *machine);
  (void)nodesBefore;
  (void)report;
  sim::Assembler assembler(xsim.signatures());

  for (const auto& bench : c.benches()) {
    SCOPED_TRACE(std::string(c.archName) + "/" + bench.name);
    DiagnosticEngine diags;
    auto prog = assembler.assemble(bench.source, diags);
    ASSERT_TRUE(prog.has_value()) << diags.dump();
    std::string err;
    ASSERT_TRUE(xsim.loadProgram(*prog, &err)) << err;
    ASSERT_EQ(xsim.run(bench.maxCycles).reason, sim::StopReason::Halted);
    xsim.drainPipeline();

    synth::GateSim gs(model.netlist);
    gs.loadMemory(model.storage[machine->imemIndex].mem, prog->words);
    for (std::size_t si = 0; si < machine->storages.size(); ++si)
      if (machine->storages[si].kind == StorageKind::DataMemory)
        for (const auto& [addr, value] : prog->dataInit)
          gs.pokeMemory(model.storage[si].mem, addr, value);
    ASSERT_TRUE(gs.runUntil(model.haltedReg, bench.maxCycles));

    for (std::size_t si = 0; si < machine->storages.size(); ++si) {
      const StorageDef& st = machine->storages[si];
      const auto& map = model.storage[si];
      if (map.isMem) {
        for (std::uint64_t e = 0; e < st.depth; ++e)
          ASSERT_EQ(gs.peekMemory(map.mem, e),
                    xsim.state().read(static_cast<unsigned>(si), e))
              << st.name << "[" << e << "]";
      } else {
        EXPECT_EQ(gs.peekNet(map.reg),
                  xsim.state().read(static_cast<unsigned>(si)))
            << st.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllArchs, SharingCosimTest,
    ::testing::Values(
        ShareCosimCase{"SPAM", archs::loadSpam, archs::spamBenchmarks},
        ShareCosimCase{"SPAM2", archs::loadSpam2, archs::spam2Benchmarks},
        ShareCosimCase{"SREP", archs::loadSrep, archs::srepBenchmarks},
        ShareCosimCase{"TDSP", archs::loadTdsp, archs::tdspBenchmarks}),
    [](const ::testing::TestParamInfo<ShareCosimCase>& info) {
      return info.param.archName;
    });

}  // namespace
}  // namespace isdl::hw
