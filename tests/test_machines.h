// Shared ISDL sources used across the test suite. MINI is a small two-field
// VLIW that exercises every language feature: enum and immediate tokens, a
// non-terminal with register and immediate options, aliases, all storage
// kinds the simulator cares about, side effects, costs/timing and a
// constraint.

#ifndef ISDL_TESTS_TEST_MACHINES_H
#define ISDL_TESTS_TEST_MACHINES_H

namespace isdl::testing {

inline constexpr const char* kMiniIsdl = R"ISDL(
machine MINI {
  section format { word_width = 32; }

  section storage {
    instruction_memory IM width 32 depth 256;
    data_memory DM width 16 depth 256;
    register_file RF width 16 depth 8;
    program_counter PC width 16;
    control_register CC width 2;
    alias CARRY = CC[0:0];
    alias SP = RF[7];
  }

  section global_definitions {
    token REG enum width 3 prefix "R" range 0 .. 7;
    token U8 immediate unsigned width 8;
    token S8 immediate signed width 8;

    nonterminal SRC returns width 9 {
      option reg(r: REG) {
        syntax r;
        encode { $$[8] = 0; $$[7:3] = 5'd0; $$[2:0] = r; }
        value { RF[r] }
      }
      option imm(i: U8) {
        syntax "#" i;
        encode { $$[8] = 1; $$[7:0] = i; }
        value { zext(i, 16) }
      }
    }
  }

  section instruction_set {
    field EX {
      operation nop() {
        encode { inst[31:27] = 5'd0; }
      }
      operation add(d: REG, a: REG, b: REG) {
        encode { inst[31:27] = 5'd1; inst[26:24] = d; inst[23:21] = a;
                 inst[20:18] = b; }
        action { RF[d] <- RF[a] + RF[b]; }
        side_effect { CARRY <- carry(RF[a], RF[b]); }
      }
      operation addi(d: REG, s: SRC) {
        encode { inst[31:27] = 5'd2; inst[26:24] = d; inst[23:15] = s; }
        action { RF[d] <- RF[d] + s; }
      }
      operation sub(d: REG, a: REG, b: REG) {
        encode { inst[31:27] = 5'd3; inst[26:24] = d; inst[23:21] = a;
                 inst[20:18] = b; }
        action { RF[d] <- RF[a] - RF[b]; }
      }
      operation ld(d: REG, a: REG) {
        encode { inst[31:27] = 5'd4; inst[26:24] = d; inst[23:21] = a; }
        action { RF[d] <- DM[RF[a][7:0]]; }
        costs { cycle = 1; stall = 1; }
        timing { latency = 2; }
      }
      operation st(a: REG, v: REG) {
        encode { inst[31:27] = 5'd5; inst[26:24] = a; inst[23:21] = v; }
        action { DM[RF[a][7:0]] <- RF[v]; }
      }
      operation li(d: REG, i: S8) {
        encode { inst[31:27] = 5'd6; inst[26:24] = d; inst[23:16] = i; }
        action { RF[d] <- sext(i, 16); }
      }
      operation beq(a: REG, b: REG, t: U8) {
        encode { inst[31:27] = 5'd7; inst[26:24] = a; inst[23:21] = b;
                 inst[20:13] = t; }
        action { if (RF[a] == RF[b]) { PC <- zext(t, 16); } }
        costs { cycle = 2; }
      }
      operation jmp(t: U8) {
        encode { inst[31:27] = 5'd8; inst[26:19] = t; }
        action { PC <- zext(t, 16); }
        costs { cycle = 2; }
      }
      operation halt() {
        encode { inst[31:27] = 5'd31; }
      }
    }
    field MV {
      operation mnop() {
        encode { inst[8:6] = 3'd0; }
      }
      operation mv(d: REG, a: REG) {
        encode { inst[8:6] = 3'd1; inst[5:3] = d; inst[2:0] = a; }
        action { RF[d] <- RF[a]; }
      }
      operation mvi(d: REG, i: S8) {
        encode { inst[8:6] = 3'd2; inst[5:3] = d; inst[16:9] = i; }
        action { RF[d] <- sext(i, 16); }
      }
    }
  }

  section constraints {
    // Encoding conflicts: these pairs set overlapping instruction bits.
    never EX.addi & MV.mvi;
    never EX.li & MV.mvi;
    never EX.beq & MV.mvi;
    // Pure architectural restriction (no encoding conflict): exercises
    // constraint checking independent of bit collisions.
    never EX.add & MV.mvi;
  }

  section optional {
    halt_operation = "EX.halt";
    description = "two-field test VLIW";
  }
}
)ISDL";

}  // namespace isdl::testing

#endif  // ISDL_TESTS_TEST_MACHINES_H
