// Table-driven negative tests for the ISDL front end: each case is an
// invalid description and the exact diagnostic the parser or semantic
// analysis must emit for it. The fuzz generator (src/testing/machinegen)
// promises to emit only sema-clean descriptions, so this suite is what
// documents — and pins — the rejection behaviour for everything outside
// that space: width discipline, encoding reversibility, storage shape
// rules, and reference resolution.

#include <gtest/gtest.h>

#include "isdl/parser.h"
#include "isdl/sema.h"
#include "support/strings.h"

namespace isdl {
namespace {

/// Parses + checks an intentionally invalid description and returns every
/// diagnostic. The description must NOT be accepted.
std::string reject(const std::string& source) {
  DiagnosticEngine diags;
  auto machine = parseIsdl(source, diags);
  if (machine && !diags.hasErrors()) checkMachine(*machine, diags);
  EXPECT_TRUE(diags.hasErrors())
      << "description was accepted:\n" << source;
  return diags.dump();
}

/// A valid minimal machine with one substitutable operation body; cases
/// inject their fault into `op` (or replace other sections via the full
/// tables below).
std::string withOp(const std::string& op) {
  return cat(R"(
machine T {
  section format { word_width = 16; }
  section storage {
    instruction_memory IM width 16 depth 32;
    data_memory DM width 8 depth 16;
    register_file RF width 8 depth 4;
    program_counter PC width 12;
  }
  section global_definitions {
    token REG enum width 2 prefix "R" range 0 .. 3;
    token U4 immediate unsigned width 4;
  }
  section instruction_set {
    field F {
      operation nop() { encode { inst[15:12] = 4'd0; } }
)",
             "      ", op, R"(
    }
  }
}
)");
}

struct RejectCase {
  const char* name;
  std::string source;
  const char* expected;  ///< exact diagnostic text (message part)
};

class SemaRejectTest : public ::testing::TestWithParam<RejectCase> {};

TEST_P(SemaRejectTest, EmitsExactDiagnostic) {
  const RejectCase& c = GetParam();
  std::string dump = reject(c.source);
  EXPECT_NE(dump.find(c.expected), std::string::npos)
      << "expected diagnostic:\n  " << c.expected << "\ngot:\n" << dump;
}

const char* kTwoPcs = R"(
machine T {
  section format { word_width = 16; }
  section storage {
    instruction_memory IM width 16 depth 32;
    register_file RF width 8 depth 4;
    program_counter PC width 12;
    program_counter PC2 width 12;
  }
  section instruction_set {
    field F { operation nop() { encode { inst[15:12] = 4'd0; } } }
  }
}
)";

const char* kImemWidthMismatch = R"(
machine T {
  section format { word_width = 16; }
  section storage {
    instruction_memory IM width 8 depth 32;
    register_file RF width 8 depth 4;
    program_counter PC width 12;
  }
  section instruction_set {
    field F { operation nop() { encode { inst[15:12] = 4'd0; } } }
  }
}
)";

const char* kNoWordWidth = R"(
machine T {
  section format { }
  section storage {
    instruction_memory IM width 16 depth 32;
    register_file RF width 8 depth 4;
    program_counter PC width 12;
  }
  section instruction_set {
    field F { operation nop() { encode { inst[15:12] = 4'd0; } } }
  }
}
)";

const char* kEmptyField = R"(
machine T {
  section format { word_width = 16; }
  section storage {
    instruction_memory IM width 16 depth 32;
    register_file RF width 8 depth 4;
    program_counter PC width 12;
  }
  section instruction_set {
    field F { operation nop() { encode { inst[15:12] = 4'd0; } } }
    field F2 { }
  }
}
)";

const char* kDupStorage = R"(
machine T {
  section format { word_width = 16; }
  section storage {
    instruction_memory IM width 16 depth 32;
    register_file RF width 8 depth 4;
    register_file RF width 8 depth 4;
    program_counter PC width 12;
  }
  section instruction_set {
    field F { operation nop() { encode { inst[15:12] = 4'd0; } } }
  }
}
)";

const char* kNtDisagree = R"(
machine T {
  section format { word_width = 16; }
  section storage {
    instruction_memory IM width 16 depth 32;
    register_file RF width 8 depth 4;
    program_counter PC width 12;
  }
  section global_definitions {
    token REG enum width 2 prefix "R" range 0 .. 3;
    token U4 immediate unsigned width 4;
    nonterminal S returns width 5 {
      option reg(r: REG) {
        syntax r;
        encode { $$[4] = 0; $$[3:2] = 2'd0; $$[1:0] = r; }
        value { RF[r] }
      }
      option imm(i: U4) {
        syntax "#" i;
        encode { $$[4] = 1; $$[3:0] = i; }
        value { zext(i, 16) }
      }
    }
  }
  section instruction_set {
    field F { operation nop() { encode { inst[15:12] = 4'd0; } } }
  }
}
)";

INSTANTIATE_TEST_SUITE_P(
    InvalidDescriptions, SemaRejectTest,
    ::testing::Values(
        // --- description / section level ---------------------------------
        RejectCase{"NoWordWidth", kNoWordWidth,
                   "format section must set word_width"},
        RejectCase{"TwoProgramCounters", kTwoPcs,
                   "multiple program_counter storages defined"},
        RejectCase{"ImemWidthMismatch", kImemWidthMismatch,
                   "instruction memory width 8 must equal word_width 16"},
        RejectCase{"EmptyField", kEmptyField, "field 'F2' has no operations"},
        RejectCase{"DuplicateStorage", kDupStorage, "redefinition of 'RF'"},
        RejectCase{"NtOptionsDisagreeOnValueWidth", kNtDisagree,
                   "options of non-terminal 'S' disagree on value width "
                   "(8 vs 16)"},
        // --- encoding ----------------------------------------------------
        RejectCase{"EncodeBitTwice",
                   withOp("operation a(d: REG) { encode { inst[15:12] = 4'd1;"
                          " inst[12] = 1; inst[11:10] = d; } }"),
                   "bit 12 assigned more than once"},
        RejectCase{"ParamBitNotEncoded",
                   withOp("operation a(d: REG) { encode { inst[15:12] = 4'd1;"
                          " inst[11] = d[0:0]; }"
                          " action { RF[d] <- RF[d]; } }"),
                   "bit 1 of parameter 'd' never appears in the encoding, "
                   "so the assembly function is not reversible"},
        // --- costs -------------------------------------------------------
        RejectCase{"ZeroCycleCost",
                   withOp("operation a() { encode { inst[15:12] = 4'd1; }"
                          " costs { cycle = 0; } }"),
                   "cycle cost must be >= 1"},
        RejectCase{"UnknownCost",
                   withOp("operation a() { encode { inst[15:12] = 4'd1; }"
                          " costs { bogus = 1; } }"),
                   "unknown cost 'bogus' (expected cycle, stall or size)"},
        // --- width discipline --------------------------------------------
        RejectCase{"OperandWidthsDiffer",
                   withOp("operation a(d: REG) { encode { inst[15:12] = 4'd1;"
                          " inst[11:10] = d; }"
                          " action { RF[d] <- RF[d] + PC; } }"),
                   "operand widths differ: 8 vs 12 (use zext/sext/trunc to "
                   "convert explicitly)"},
        RejectCase{"AssignmentWidthMismatch",
                   withOp("operation a(d: REG) { encode { inst[15:12] = 4'd1;"
                          " inst[11:10] = d; }"
                          " action { RF[d] <- zext(RF[d], 12); } }"),
                   "assignment width mismatch: destination is 8 bits, value "
                   "is 12 bits (use zext/sext/trunc)"},
        RejectCase{"UnsizedConstantNoContext",
                   withOp("operation a(d: REG) { encode { inst[15:12] = 4'd1;"
                          " inst[11:10] = d; }"
                          " action { if (255 == 255)"
                          " { RF[d] <- RF[d]; } } }"),
                   "cannot infer the width of this constant; use a sized "
                   "literal like 8'd255"},
        RejectCase{"ConstantTooWideForContext",
                   withOp("operation a(d: REG) { encode { inst[15:12] = 4'd1;"
                          " inst[11:10] = d; }"
                          " action { RF[d] <- 300; } }"),
                   "constant 300 does not fit in 8 bits"},
        RejectCase{"SliceOutOfRange",
                   withOp("operation a(d: REG) { encode { inst[15:12] = 4'd1;"
                          " inst[11:10] = d; }"
                          " action { RF[d] <- RF[d][9:2]; } }"),
                   "slice bit 9 out of range for width 8"},
        RejectCase{"TernaryConditionNotOneBit",
                   withOp("operation a(d: REG) { encode { inst[15:12] = 4'd1;"
                          " inst[11:10] = d; }"
                          " action { RF[d] <- RF[d] ? RF[d] : RF[d]; } }"),
                   "ternary condition must be 1 bit wide, got 8"},
        RejectCase{"LogicalAndOnWideOperands",
                   withOp("operation a(d: REG) { encode { inst[15:12] = 4'd1;"
                          " inst[11:10] = d; }"
                          " action { RF[d] <- (RF[d] && RF[d]) ? RF[d]"
                          " : RF[d]; } }"),
                   "&& and || require 1-bit operands (use comparisons)"},
        RejectCase{"IfConditionNotOneBit",
                   withOp("operation a(d: REG) { encode { inst[15:12] = 4'd1;"
                          " inst[11:10] = d; }"
                          " action { if (RF[d]) { RF[d] <- RF[d]; } } }"),
                   "if condition must be 1 bit wide, got 8"},
        RejectCase{"FtoiOperandWidth",
                   withOp("operation a(d: REG) { encode { inst[15:12] = 4'd1;"
                          " inst[11:10] = d; }"
                          " action { RF[d] <- trunc(ftoi(RF[d], 32), 8);"
                          " } }"),
                   "ftoi operand must be 32 or 64 bits, got 8"},
        // --- storage / reference resolution ------------------------------
        // The parser itself demands the index for addressed storages, so a
        // bare RF read is a parse-time rejection.
        RejectCase{"RegisterFileNotIndexed",
                   withOp("operation a(d: REG) { encode { inst[15:12] = 4'd1;"
                          " inst[11:10] = d; }"
                          " action { RF[d] <- RF; } }"),
                   "expected '[', found ';'"},
        RejectCase{"UnknownStorageInAction",
                   withOp("operation a(d: REG) { encode { inst[15:12] = 4'd1;"
                          " inst[11:10] = d; }"
                          " action { RF[d] <- XYZZY; } }"),
                   "unknown name 'XYZZY' (not a parameter, storage, alias or "
                   "builtin)"},
        RejectCase{"UnknownParamType",
                   withOp("operation a(d: NOPE) { encode { inst[15:12] ="
                          " 4'd1; } }"),
                   "unknown token or non-terminal 'NOPE'"},
        RejectCase{"AssignToTokenParam",
                   withOp("operation a(d: REG) { encode { inst[15:12] = 4'd1;"
                          " inst[11:10] = d; }"
                          " action { d <- 2'd0; } }"),
                   "cannot be assigned"}),
    [](const ::testing::TestParamInfo<RejectCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace isdl
