// Tests for the XTRACE observability subsystem (obs/): the JSON writer,
// the counter registry, the event ring buffer, and the simulator-level
// integration — op counts, field utilization, stall attribution, heatmaps,
// and the Chrome trace / metrics JSON exports.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>

#include "isdl/parser.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/xsim.h"
#include "test_machines.h"

namespace isdl {
namespace {

// --- a minimal JSON validity checker ------------------------------------------
//
// Recursive-descent acceptor for RFC 8259 JSON. The exporters promise
// syntactic validity by construction; this is the independent check.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == s_.size();
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;

  bool eof() const { return pos_ >= s_.size(); }
  char peek() const { return s_[pos_]; }
  void skipWs() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos_;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (!eof() && peek() == '}') { ++pos_; return true; }
    for (;;) {
      skipWs();
      if (eof() || peek() != '"' || !string()) return false;
      skipWs();
      if (eof() || peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (eof()) return false;
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skipWs();
    if (!eof() && peek() == ']') { ++pos_; return true; }
    for (;;) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (eof()) return false;
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    ++pos_;  // '"'
    while (!eof()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c == '\\') {
        if (eof()) return false;
        char e = s_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i)
            if (eof() || !std::isxdigit(static_cast<unsigned char>(s_[pos_++])))
              return false;
        } else if (!std::strchr("\"\\/bfnrt", e)) {
          return false;
        }
      }
    }
    return false;
  }

  bool number() {
    std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                      peek() == '.' || peek() == 'e' || peek() == 'E' ||
                      peek() == '+' || peek() == '-'))
      ++pos_;
    return pos_ > start;
  }
};

bool isValidJson(const std::string& s) { return JsonChecker(s).valid(); }

// --- JsonWriter ----------------------------------------------------------------

TEST(JsonWriter, NestedObjectsAndArraysCompact) {
  std::ostringstream os;
  obs::JsonWriter w(os, /*pretty=*/false);
  w.beginObject()
      .field("name", "x")
      .key("list")
      .beginArray()
      .value(std::uint64_t{1})
      .value(std::uint64_t{2})
      .endArray()
      .key("nested")
      .beginObject()
      .field("ok", true)
      .endObject()
      .endObject();
  EXPECT_TRUE(w.done());
  EXPECT_EQ(os.str(), R"({"name":"x","list":[1,2],"nested":{"ok":true}})");
  EXPECT_TRUE(isValidJson(os.str()));
}

TEST(JsonWriter, EscapesStringsPerRfc8259) {
  EXPECT_EQ(obs::jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(obs::jsonEscape(std::string_view("\x01", 1)), "\\u0001");
  std::ostringstream os;
  obs::JsonWriter w(os, false);
  w.beginObject().field("k\"ey", "v\nal").endObject();
  EXPECT_TRUE(isValidJson(os.str()));
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  obs::JsonWriter w(os, false);
  w.beginArray()
      .value(std::nan(""))
      .value(std::numeric_limits<double>::infinity())
      .value(1.5)
      .endArray();
  EXPECT_EQ(os.str(), "[null,null,1.5]");
}

TEST(JsonWriter, PrettyOutputIsStillValid) {
  std::ostringstream os;
  obs::JsonWriter w(os, /*pretty=*/true);
  w.beginObject()
      .key("a")
      .beginArray()
      .beginObject()
      .field("x", 1)
      .endObject()
      .endArray()
      .endObject();
  EXPECT_TRUE(w.done());
  EXPECT_TRUE(isValidJson(os.str()));
}

// --- Registry ------------------------------------------------------------------

TEST(Registry, SameNameResolvesToSameCell) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("sim/stalls");
  obs::Counter& b = reg.counter("sim/stalls");
  EXPECT_EQ(&a, &b);
  ++a;
  a.add(4);
  EXPECT_EQ(b.get(), 5u);
}

TEST(Registry, SnapshotIsSortedAndResetZeroes) {
  obs::Registry reg;
  reg.counter("z/last").add(3);
  reg.counter("a/first").add(1);
  reg.counter("m/mid").add(2);
  auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, "a/first");
  EXPECT_EQ(snap[1].first, "m/mid");
  EXPECT_EQ(snap[2].first, "z/last");
  obs::Counter& handle = reg.counter("a/first");
  reg.reset();
  EXPECT_EQ(handle.get(), 0u);  // handle survives reset
  for (const auto& [name, v] : reg.snapshot()) EXPECT_EQ(v, 0u) << name;
}

TEST(Registry, ScopedTimerAccumulatesNanoseconds) {
  obs::Registry reg;
  { obs::ScopedTimer t = reg.time("work_ns"); }
  { obs::ScopedTimer t = reg.time("work_ns"); }
  // Wall clock is monotone; two scopes recorded something >= 0 without
  // clobbering each other (the cell accumulates).
  EXPECT_GE(reg.counter("work_ns").get(), 0u);
}

TEST(Registry, WriteJsonIsValid) {
  obs::Registry reg;
  reg.counter("sim/runs").add(2);
  reg.counter("needs\"escaping").add(1);
  std::ostringstream os;
  reg.writeJson(os);
  EXPECT_TRUE(isValidJson(os.str())) << os.str();
  EXPECT_NE(os.str().find("sim/runs"), std::string::npos);
}

// --- TraceBuffer ---------------------------------------------------------------

TEST(TraceBuffer, RingOverwritesOldestAndCountsDrops) {
  obs::TraceBuffer buf(4);
  for (std::uint64_t c = 0; c < 6; ++c)
    buf.record({.kind = obs::EventKind::Issue, .cycle = c});
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.capacity(), 4u);
  EXPECT_EQ(buf.dropped(), 2u);
  std::vector<std::uint64_t> cycles;
  buf.forEach([&](const obs::TraceEvent& e) { cycles.push_back(e.cycle); });
  EXPECT_EQ(cycles, (std::vector<std::uint64_t>{2, 3, 4, 5}));
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.dropped(), 0u);
}

// --- simulator integration -----------------------------------------------------

class ObsSimTest : public ::testing::Test {
 protected:
  ObsSimTest()
      : machine_(parseAndCheckIsdl(testing::kMiniIsdl)), sim_(*machine_) {}

  void load(std::string_view asmText) {
    sim::Assembler assembler(sim_.signatures());
    DiagnosticEngine diags;
    auto prog = assembler.assemble(asmText, diags);
    ASSERT_TRUE(prog.has_value()) << diags.dump();
    std::string err;
    ASSERT_TRUE(sim_.loadProgram(*prog, &err)) << err;
  }

  unsigned field(std::string_view n) {
    int f = machine_->findField(n);
    EXPECT_GE(f, 0);
    return static_cast<unsigned>(f);
  }
  unsigned storage(std::string_view n) {
    int si = machine_->findStorage(n);
    EXPECT_GE(si, 0);
    return static_cast<unsigned>(si);
  }
  unsigned op(unsigned f, std::string_view n) {
    const auto& ops = machine_->fields[f].operations;
    for (std::size_t o = 0; o < ops.size(); ++o)
      if (ops[o].name == n) return static_cast<unsigned>(o);
    ADD_FAILURE() << "no op " << n;
    return 0;
  }

  std::unique_ptr<Machine> machine_;
  sim::Xsim sim_;
};

TEST_F(ObsSimTest, OpCountsAndFieldUtilizationOnHandScheduledVliw) {
  // Four instructions; only the third uses the MV slot.
  load(R"(
li R1, 5
li R2, 7
{ add R3, R1, R2 | mv R4, R1 }
halt
)");
  EXPECT_EQ(sim_.run(1000).reason, sim::StopReason::Halted);
  const sim::Stats& s = sim_.stats();
  unsigned ex = field("EX"), mv = field("MV");
  EXPECT_EQ(s.instructions, 4u);
  EXPECT_EQ(s.opCount[ex][op(ex, "li")], 2u);
  EXPECT_EQ(s.opCount[ex][op(ex, "add")], 1u);
  EXPECT_EQ(s.opCount[ex][op(ex, "halt")], 1u);
  EXPECT_EQ(s.opCount[ex][op(ex, "nop")], 0u);
  EXPECT_EQ(s.opCount[mv][op(mv, "mv")], 1u);
  EXPECT_EQ(s.opCount[mv][op(mv, "mnop")], 3u);
  // Utilization counts non-nop issues: EX busy every instruction, MV once.
  EXPECT_EQ(s.fieldUtilization[ex], 4u);
  EXPECT_EQ(s.fieldUtilization[mv], 1u);
}

TEST_F(ObsSimTest, DataStallAttributedToProducerStorage) {
  // ld (latency 2, stall 1) followed by a dependent add: the one interlock
  // bubble is charged to the storage holding the in-flight write — RF.
  load(R"(
.dm 3 77
li R1, 3
ld R2, R1
add R3, R2, R2
halt
)");
  EXPECT_EQ(sim_.run(1000).reason, sim::StopReason::Halted);
  const sim::Stats& s = sim_.stats();
  EXPECT_EQ(s.dataStallCycles, 1u);
  EXPECT_EQ(s.dataStallsByStorage[storage("RF")], 1u);
  for (std::size_t si = 0; si < s.dataStallsByStorage.size(); ++si) {
    if (si == storage("RF")) continue;
    EXPECT_EQ(s.dataStallsByStorage[si], 0u) << si;
  }
}

TEST(ObsStructural, StructStallAttributedToBusyField) {
  auto m = parseAndCheckIsdl(R"(
machine U {
  section format { word_width = 32; }
  section storage {
    instruction_memory IM width 32 depth 64;
    register_file RF width 16 depth 8;
    program_counter PC width 16;
  }
  section global_definitions {
    token REG enum width 3 prefix "R" range 0 .. 7;
    token S8 immediate signed width 8;
  }
  section instruction_set {
    field EX {
      operation nop() { encode { inst[31:27] = 5'd0; } }
      operation slow(d: REG, i: S8) {
        encode { inst[31:27] = 5'd1; inst[26:24] = d; inst[23:16] = i; }
        action { RF[d] <- sext(i, 16); }
        timing { usage = 3; }
      }
      operation halt() { encode { inst[31:27] = 5'd31; } }
    }
  }
  section optional { halt_operation = "EX.halt"; }
}
)");
  sim::Xsim sim(*m);
  sim::Assembler assembler(sim.signatures());
  DiagnosticEngine diags;
  auto prog = assembler.assemble("slow R1, 1\nslow R2, 2\nhalt\n", diags);
  ASSERT_TRUE(prog.has_value()) << diags.dump();
  std::string err;
  ASSERT_TRUE(sim.loadProgram(*prog, &err)) << err;
  EXPECT_EQ(sim.run(1000).reason, sim::StopReason::Halted);
  // All 4 structural bubbles come from the busy EX unit.
  EXPECT_EQ(sim.stats().structStallCycles, 4u);
  ASSERT_EQ(sim.stats().structStallsByField.size(), 1u);
  EXPECT_EQ(sim.stats().structStallsByField[0], 4u);
  // ...and the metrics report names it.
  obs::MetricsReport rep = sim.metricsReport();
  ASSERT_EQ(rep.structStallsByField.size(), 1u);
  EXPECT_EQ(rep.structStallsByField[0].producer, "EX");
  EXPECT_EQ(rep.structStallsByField[0].cycles, 4u);
}

TEST_F(ObsSimTest, MetricsReportAndJsonExport) {
  sim_.enableProfile();
  load(R"(
.dm 3 77
li R1, 3
ld R2, R1
add R3, R2, R2
halt
)");
  EXPECT_EQ(sim_.run(1000).reason, sim::StopReason::Halted);
  sim_.drainPipeline();

  obs::MetricsReport rep = sim_.metricsReport();
  EXPECT_EQ(rep.arch, "MINI");
  EXPECT_EQ(rep.cycles, sim_.stats().cycles);
  EXPECT_EQ(rep.instructions, 4u);
  EXPECT_EQ(rep.dataStallCycles, 1u);
  EXPECT_GT(rep.stallFraction(), 0.0);

  bool sawAdd = false;
  for (const auto& oc : rep.opCounts)
    if (oc.field == "EX" && oc.op == "add") {
      sawAdd = true;
      EXPECT_EQ(oc.count, 1u);
    }
  EXPECT_TRUE(sawAdd);

  ASSERT_EQ(rep.dataStallsByProducer.size(), 1u);
  EXPECT_EQ(rep.dataStallsByProducer[0].producer, "RF");

  // Heatmap: R1 read by ld and (twice) nothing else reads R3; RF writes to
  // R1, R2, R3 all changed value.
  const obs::MetricsReport::Heat* rf = nullptr;
  for (const auto& h : rep.heatmaps)
    if (h.storage == "RF") rf = &h;
  ASSERT_NE(rf, nullptr);
  EXPECT_GT(rf->reads[1], 0u);   // R1 is ld's address operand
  EXPECT_GT(rf->writes[2], 0u);  // R2 written by ld
  EXPECT_GT(rf->writes[3], 0u);  // R3 written by add

  // Registry counters ride along.
  bool sawRuns = false;
  for (const auto& [name, v] : rep.counters)
    if (name == "sim/runs") {
      sawRuns = true;
      EXPECT_EQ(v, 1u);
    }
  EXPECT_TRUE(sawRuns);

  std::ostringstream os;
  sim_.writeMetricsJson(os);
  EXPECT_TRUE(isValidJson(os.str())) << os.str();
  EXPECT_NE(os.str().find("\"op_counts\""), std::string::npos);
  EXPECT_NE(os.str().find("\"storage_heatmaps\""), std::string::npos);
  EXPECT_NE(os.str().find("\"stalls\""), std::string::npos);
}

TEST_F(ObsSimTest, ChromeTraceExportIsValidJsonWithExpectedPhases) {
  sim_.enableTrace(256);
  load(R"(
.dm 3 77
li R1, 3
ld R2, R1
add R3, R2, R2
halt
)");
  EXPECT_EQ(sim_.run(1000).reason, sim::StopReason::Halted);
  sim_.drainPipeline();
  ASSERT_NE(sim_.trace(), nullptr);
  EXPECT_GT(sim_.trace()->size(), 0u);

  std::ostringstream os;
  sim_.writeChromeTrace(os);
  std::string json = os.str();
  EXPECT_TRUE(isValidJson(json)) << json;
  // The golden structural facts: a traceEvents array, metadata naming the
  // rows, complete events for issues/stalls, instant events for write-backs.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  // Issue events carry the op name; the data stall names its producer.
  EXPECT_NE(json.find("add"), std::string::npos);
  EXPECT_NE(json.find("stall"), std::string::npos);

  sim_.disableTrace();
  EXPECT_EQ(sim_.trace(), nullptr);
}

TEST_F(ObsSimTest, TracingDisabledByDefaultAndExportStillValid) {
  load("li R1, 1\nhalt\n");
  EXPECT_EQ(sim_.run(1000).reason, sim::StopReason::Halted);
  EXPECT_EQ(sim_.trace(), nullptr);
  std::ostringstream os;
  sim_.writeChromeTrace(os);  // no buffer -> empty but valid document
  EXPECT_TRUE(isValidJson(os.str())) << os.str();
}

TEST_F(ObsSimTest, ResetClearsTraceAndHeatmaps) {
  sim_.enableTrace(64);
  sim_.enableProfile();
  load("li R1, 1\nhalt\n");
  EXPECT_EQ(sim_.run(1000).reason, sim::StopReason::Halted);
  EXPECT_GT(sim_.trace()->size(), 0u);
  sim_.reset();
  EXPECT_EQ(sim_.trace()->size(), 0u);
  obs::MetricsReport rep = sim_.metricsReport();
  EXPECT_EQ(rep.cycles, 0u);
  // reset() reloads the program image, so IM writes are expected; execution
  // traffic (RF) must be gone.
  for (const auto& h : rep.heatmaps)
    EXPECT_NE(h.storage, "RF") << "execution heatmap survived reset";
}

}  // namespace
}  // namespace isdl
