file(REMOVE_RECURSE
  "CMakeFiles/rtl_eval_test.dir/rtl_eval_test.cpp.o"
  "CMakeFiles/rtl_eval_test.dir/rtl_eval_test.cpp.o.d"
  "rtl_eval_test"
  "rtl_eval_test.pdb"
  "rtl_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
