# Empty compiler generated dependencies file for rtl_eval_test.
# This may be replaced when dependencies are built.
