# Empty compiler generated dependencies file for sema_test.
# This may be replaced when dependencies are built.
