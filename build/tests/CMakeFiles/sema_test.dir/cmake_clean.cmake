file(REMOVE_RECURSE
  "CMakeFiles/sema_test.dir/sema_test.cpp.o"
  "CMakeFiles/sema_test.dir/sema_test.cpp.o.d"
  "sema_test"
  "sema_test.pdb"
  "sema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
