# Empty dependencies file for sema_test.
# This may be replaced when dependencies are built.
