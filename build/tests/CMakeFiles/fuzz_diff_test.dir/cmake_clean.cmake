file(REMOVE_RECURSE
  "CMakeFiles/fuzz_diff_test.dir/fuzz_diff_test.cpp.o"
  "CMakeFiles/fuzz_diff_test.dir/fuzz_diff_test.cpp.o.d"
  "fuzz_diff_test"
  "fuzz_diff_test.pdb"
  "fuzz_diff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
