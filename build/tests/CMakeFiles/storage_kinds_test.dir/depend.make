# Empty dependencies file for storage_kinds_test.
# This may be replaced when dependencies are built.
