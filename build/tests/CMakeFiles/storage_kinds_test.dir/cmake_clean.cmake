file(REMOVE_RECURSE
  "CMakeFiles/storage_kinds_test.dir/storage_kinds_test.cpp.o"
  "CMakeFiles/storage_kinds_test.dir/storage_kinds_test.cpp.o.d"
  "storage_kinds_test"
  "storage_kinds_test.pdb"
  "storage_kinds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_kinds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
