file(REMOVE_RECURSE
  "CMakeFiles/archs_test.dir/archs_test.cpp.o"
  "CMakeFiles/archs_test.dir/archs_test.cpp.o.d"
  "archs_test"
  "archs_test.pdb"
  "archs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
