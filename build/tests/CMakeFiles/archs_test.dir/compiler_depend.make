# Empty compiler generated dependencies file for archs_test.
# This may be replaced when dependencies are built.
