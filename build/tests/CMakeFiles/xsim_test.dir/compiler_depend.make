# Empty compiler generated dependencies file for xsim_test.
# This may be replaced when dependencies are built.
