file(REMOVE_RECURSE
  "CMakeFiles/xsim_test.dir/xsim_test.cpp.o"
  "CMakeFiles/xsim_test.dir/xsim_test.cpp.o.d"
  "xsim_test"
  "xsim_test.pdb"
  "xsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
