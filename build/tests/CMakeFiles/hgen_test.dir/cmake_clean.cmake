file(REMOVE_RECURSE
  "CMakeFiles/hgen_test.dir/hgen_test.cpp.o"
  "CMakeFiles/hgen_test.dir/hgen_test.cpp.o.d"
  "hgen_test"
  "hgen_test.pdb"
  "hgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
