# Empty dependencies file for hgen_test.
# This may be replaced when dependencies are built.
