file(REMOVE_RECURSE
  "CMakeFiles/explore_test.dir/explore_test.cpp.o"
  "CMakeFiles/explore_test.dir/explore_test.cpp.o.d"
  "explore_test"
  "explore_test.pdb"
  "explore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
