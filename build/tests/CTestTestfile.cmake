# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bitvector_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/sema_test[1]_include.cmake")
include("/root/repo/build/tests/rtl_eval_test[1]_include.cmake")
include("/root/repo/build/tests/signature_test[1]_include.cmake")
include("/root/repo/build/tests/assembler_test[1]_include.cmake")
include("/root/repo/build/tests/xsim_test[1]_include.cmake")
include("/root/repo/build/tests/archs_test[1]_include.cmake")
include("/root/repo/build/tests/cosim_test[1]_include.cmake")
include("/root/repo/build/tests/sharing_test[1]_include.cmake")
include("/root/repo/build/tests/hgen_test[1]_include.cmake")
include("/root/repo/build/tests/explore_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_diff_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/storage_kinds_test[1]_include.cmake")
