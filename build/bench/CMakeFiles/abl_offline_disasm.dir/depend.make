# Empty dependencies file for abl_offline_disasm.
# This may be replaced when dependencies are built.
