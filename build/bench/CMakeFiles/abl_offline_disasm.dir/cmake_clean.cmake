file(REMOVE_RECURSE
  "CMakeFiles/abl_offline_disasm.dir/abl_offline_disasm.cpp.o"
  "CMakeFiles/abl_offline_disasm.dir/abl_offline_disasm.cpp.o.d"
  "abl_offline_disasm"
  "abl_offline_disasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_offline_disasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
