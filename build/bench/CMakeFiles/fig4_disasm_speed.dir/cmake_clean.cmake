file(REMOVE_RECURSE
  "CMakeFiles/fig4_disasm_speed.dir/fig4_disasm_speed.cpp.o"
  "CMakeFiles/fig4_disasm_speed.dir/fig4_disasm_speed.cpp.o.d"
  "fig4_disasm_speed"
  "fig4_disasm_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_disasm_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
