# Empty dependencies file for fig4_disasm_speed.
# This may be replaced when dependencies are built.
