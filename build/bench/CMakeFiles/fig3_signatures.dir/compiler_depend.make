# Empty compiler generated dependencies file for fig3_signatures.
# This may be replaced when dependencies are built.
