file(REMOVE_RECURSE
  "CMakeFiles/fig3_signatures.dir/fig3_signatures.cpp.o"
  "CMakeFiles/fig3_signatures.dir/fig3_signatures.cpp.o.d"
  "fig3_signatures"
  "fig3_signatures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
