# Empty dependencies file for abl_monitors.
# This may be replaced when dependencies are built.
