file(REMOVE_RECURSE
  "CMakeFiles/abl_monitors.dir/abl_monitors.cpp.o"
  "CMakeFiles/abl_monitors.dir/abl_monitors.cpp.o.d"
  "abl_monitors"
  "abl_monitors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_monitors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
