file(REMOVE_RECURSE
  "CMakeFiles/fig5_sharing.dir/fig5_sharing.cpp.o"
  "CMakeFiles/fig5_sharing.dir/fig5_sharing.cpp.o.d"
  "fig5_sharing"
  "fig5_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
