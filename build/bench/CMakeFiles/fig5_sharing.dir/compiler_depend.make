# Empty compiler generated dependencies file for fig5_sharing.
# This may be replaced when dependencies are built.
