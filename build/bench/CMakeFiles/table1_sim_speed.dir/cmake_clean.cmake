file(REMOVE_RECURSE
  "CMakeFiles/table1_sim_speed.dir/table1_sim_speed.cpp.o"
  "CMakeFiles/table1_sim_speed.dir/table1_sim_speed.cpp.o.d"
  "table1_sim_speed"
  "table1_sim_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sim_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
