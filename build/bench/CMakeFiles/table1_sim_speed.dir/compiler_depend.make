# Empty compiler generated dependencies file for table1_sim_speed.
# This may be replaced when dependencies are built.
