# Empty compiler generated dependencies file for fig1_exploration.
# This may be replaced when dependencies are built.
