file(REMOVE_RECURSE
  "CMakeFiles/fig1_exploration.dir/fig1_exploration.cpp.o"
  "CMakeFiles/fig1_exploration.dir/fig1_exploration.cpp.o.d"
  "fig1_exploration"
  "fig1_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
