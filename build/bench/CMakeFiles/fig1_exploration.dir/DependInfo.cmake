
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig1_exploration.cpp" "bench/CMakeFiles/fig1_exploration.dir/fig1_exploration.cpp.o" "gcc" "bench/CMakeFiles/fig1_exploration.dir/fig1_exploration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/explore/CMakeFiles/isdl_explore.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/isdl_hgen.dir/DependInfo.cmake"
  "/root/repo/build/src/archs/CMakeFiles/isdl_archs.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/isdl_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/isdl_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/isdl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isdl/CMakeFiles/isdl_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/isdl_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/isdl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
