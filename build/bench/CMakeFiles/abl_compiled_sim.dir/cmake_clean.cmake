file(REMOVE_RECURSE
  "CMakeFiles/abl_compiled_sim.dir/abl_compiled_sim.cpp.o"
  "CMakeFiles/abl_compiled_sim.dir/abl_compiled_sim.cpp.o.d"
  "abl_compiled_sim"
  "abl_compiled_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_compiled_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
