# Empty dependencies file for abl_compiled_sim.
# This may be replaced when dependencies are built.
