file(REMOVE_RECURSE
  "CMakeFiles/table2_hgen_stats.dir/table2_hgen_stats.cpp.o"
  "CMakeFiles/table2_hgen_stats.dir/table2_hgen_stats.cpp.o.d"
  "table2_hgen_stats"
  "table2_hgen_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_hgen_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
