# Empty dependencies file for table2_hgen_stats.
# This may be replaced when dependencies are built.
