# Empty compiler generated dependencies file for custom_dsp.
# This may be replaced when dependencies are built.
