file(REMOVE_RECURSE
  "CMakeFiles/custom_dsp.dir/custom_dsp.cpp.o"
  "CMakeFiles/custom_dsp.dir/custom_dsp.cpp.o.d"
  "custom_dsp"
  "custom_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
