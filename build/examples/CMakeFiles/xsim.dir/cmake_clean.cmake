file(REMOVE_RECURSE
  "CMakeFiles/xsim.dir/xsim.cpp.o"
  "CMakeFiles/xsim.dir/xsim.cpp.o.d"
  "xsim"
  "xsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
