# Empty dependencies file for hwgen.
# This may be replaced when dependencies are built.
