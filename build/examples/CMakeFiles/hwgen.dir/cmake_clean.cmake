file(REMOVE_RECURSE
  "CMakeFiles/hwgen.dir/hwgen.cpp.o"
  "CMakeFiles/hwgen.dir/hwgen.cpp.o.d"
  "hwgen"
  "hwgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
