# Empty compiler generated dependencies file for hwgen.
# This may be replaced when dependencies are built.
