# Empty dependencies file for isdl_explore.
# This may be replaced when dependencies are built.
