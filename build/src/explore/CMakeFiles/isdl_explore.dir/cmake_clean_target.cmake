file(REMOVE_RECURSE
  "libisdl_explore.a"
)
