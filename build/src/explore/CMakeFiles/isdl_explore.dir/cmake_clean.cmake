file(REMOVE_RECURSE
  "CMakeFiles/isdl_explore.dir/driver.cpp.o"
  "CMakeFiles/isdl_explore.dir/driver.cpp.o.d"
  "CMakeFiles/isdl_explore.dir/evaluate.cpp.o"
  "CMakeFiles/isdl_explore.dir/evaluate.cpp.o.d"
  "CMakeFiles/isdl_explore.dir/spamfamily.cpp.o"
  "CMakeFiles/isdl_explore.dir/spamfamily.cpp.o.d"
  "libisdl_explore.a"
  "libisdl_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isdl_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
