
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/datapath.cpp" "src/hw/CMakeFiles/isdl_hw.dir/datapath.cpp.o" "gcc" "src/hw/CMakeFiles/isdl_hw.dir/datapath.cpp.o.d"
  "/root/repo/src/hw/decode.cpp" "src/hw/CMakeFiles/isdl_hw.dir/decode.cpp.o" "gcc" "src/hw/CMakeFiles/isdl_hw.dir/decode.cpp.o.d"
  "/root/repo/src/hw/netlist.cpp" "src/hw/CMakeFiles/isdl_hw.dir/netlist.cpp.o" "gcc" "src/hw/CMakeFiles/isdl_hw.dir/netlist.cpp.o.d"
  "/root/repo/src/hw/sharing.cpp" "src/hw/CMakeFiles/isdl_hw.dir/sharing.cpp.o" "gcc" "src/hw/CMakeFiles/isdl_hw.dir/sharing.cpp.o.d"
  "/root/repo/src/hw/verilog.cpp" "src/hw/CMakeFiles/isdl_hw.dir/verilog.cpp.o" "gcc" "src/hw/CMakeFiles/isdl_hw.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/isdl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isdl/CMakeFiles/isdl_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/isdl_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/isdl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
