file(REMOVE_RECURSE
  "libisdl_hw.a"
)
