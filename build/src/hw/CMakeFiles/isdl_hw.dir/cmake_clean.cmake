file(REMOVE_RECURSE
  "CMakeFiles/isdl_hw.dir/datapath.cpp.o"
  "CMakeFiles/isdl_hw.dir/datapath.cpp.o.d"
  "CMakeFiles/isdl_hw.dir/decode.cpp.o"
  "CMakeFiles/isdl_hw.dir/decode.cpp.o.d"
  "CMakeFiles/isdl_hw.dir/netlist.cpp.o"
  "CMakeFiles/isdl_hw.dir/netlist.cpp.o.d"
  "CMakeFiles/isdl_hw.dir/sharing.cpp.o"
  "CMakeFiles/isdl_hw.dir/sharing.cpp.o.d"
  "CMakeFiles/isdl_hw.dir/verilog.cpp.o"
  "CMakeFiles/isdl_hw.dir/verilog.cpp.o.d"
  "libisdl_hw.a"
  "libisdl_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isdl_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
