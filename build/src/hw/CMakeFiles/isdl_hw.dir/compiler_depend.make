# Empty compiler generated dependencies file for isdl_hw.
# This may be replaced when dependencies are built.
