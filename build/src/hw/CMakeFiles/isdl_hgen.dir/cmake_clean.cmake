file(REMOVE_RECURSE
  "CMakeFiles/isdl_hgen.dir/hgen.cpp.o"
  "CMakeFiles/isdl_hgen.dir/hgen.cpp.o.d"
  "libisdl_hgen.a"
  "libisdl_hgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isdl_hgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
