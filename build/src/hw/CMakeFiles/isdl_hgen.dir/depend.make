# Empty dependencies file for isdl_hgen.
# This may be replaced when dependencies are built.
