file(REMOVE_RECURSE
  "libisdl_hgen.a"
)
