file(REMOVE_RECURSE
  "CMakeFiles/isdl_rtl.dir/eval.cpp.o"
  "CMakeFiles/isdl_rtl.dir/eval.cpp.o.d"
  "CMakeFiles/isdl_rtl.dir/fold.cpp.o"
  "CMakeFiles/isdl_rtl.dir/fold.cpp.o.d"
  "CMakeFiles/isdl_rtl.dir/ir.cpp.o"
  "CMakeFiles/isdl_rtl.dir/ir.cpp.o.d"
  "libisdl_rtl.a"
  "libisdl_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isdl_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
