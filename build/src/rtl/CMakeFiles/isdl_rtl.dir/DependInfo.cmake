
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/eval.cpp" "src/rtl/CMakeFiles/isdl_rtl.dir/eval.cpp.o" "gcc" "src/rtl/CMakeFiles/isdl_rtl.dir/eval.cpp.o.d"
  "/root/repo/src/rtl/fold.cpp" "src/rtl/CMakeFiles/isdl_rtl.dir/fold.cpp.o" "gcc" "src/rtl/CMakeFiles/isdl_rtl.dir/fold.cpp.o.d"
  "/root/repo/src/rtl/ir.cpp" "src/rtl/CMakeFiles/isdl_rtl.dir/ir.cpp.o" "gcc" "src/rtl/CMakeFiles/isdl_rtl.dir/ir.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/isdl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
