# Empty dependencies file for isdl_rtl.
# This may be replaced when dependencies are built.
