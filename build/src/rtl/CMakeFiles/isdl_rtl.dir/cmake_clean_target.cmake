file(REMOVE_RECURSE
  "libisdl_rtl.a"
)
