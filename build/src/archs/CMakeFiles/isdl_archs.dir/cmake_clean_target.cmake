file(REMOVE_RECURSE
  "libisdl_archs.a"
)
