file(REMOVE_RECURSE
  "CMakeFiles/isdl_archs.dir/programs.cpp.o"
  "CMakeFiles/isdl_archs.dir/programs.cpp.o.d"
  "CMakeFiles/isdl_archs.dir/spam.cpp.o"
  "CMakeFiles/isdl_archs.dir/spam.cpp.o.d"
  "CMakeFiles/isdl_archs.dir/spam2.cpp.o"
  "CMakeFiles/isdl_archs.dir/spam2.cpp.o.d"
  "CMakeFiles/isdl_archs.dir/srep.cpp.o"
  "CMakeFiles/isdl_archs.dir/srep.cpp.o.d"
  "CMakeFiles/isdl_archs.dir/tdsp.cpp.o"
  "CMakeFiles/isdl_archs.dir/tdsp.cpp.o.d"
  "libisdl_archs.a"
  "libisdl_archs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isdl_archs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
