# Empty compiler generated dependencies file for isdl_archs.
# This may be replaced when dependencies are built.
