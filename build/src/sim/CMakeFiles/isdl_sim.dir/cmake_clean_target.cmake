file(REMOVE_RECURSE
  "libisdl_sim.a"
)
