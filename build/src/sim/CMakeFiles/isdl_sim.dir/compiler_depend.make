# Empty compiler generated dependencies file for isdl_sim.
# This may be replaced when dependencies are built.
