file(REMOVE_RECURSE
  "CMakeFiles/isdl_sim.dir/assembler.cpp.o"
  "CMakeFiles/isdl_sim.dir/assembler.cpp.o.d"
  "CMakeFiles/isdl_sim.dir/cli.cpp.o"
  "CMakeFiles/isdl_sim.dir/cli.cpp.o.d"
  "CMakeFiles/isdl_sim.dir/codegen.cpp.o"
  "CMakeFiles/isdl_sim.dir/codegen.cpp.o.d"
  "CMakeFiles/isdl_sim.dir/core.cpp.o"
  "CMakeFiles/isdl_sim.dir/core.cpp.o.d"
  "CMakeFiles/isdl_sim.dir/disasm.cpp.o"
  "CMakeFiles/isdl_sim.dir/disasm.cpp.o.d"
  "CMakeFiles/isdl_sim.dir/signature.cpp.o"
  "CMakeFiles/isdl_sim.dir/signature.cpp.o.d"
  "CMakeFiles/isdl_sim.dir/state.cpp.o"
  "CMakeFiles/isdl_sim.dir/state.cpp.o.d"
  "CMakeFiles/isdl_sim.dir/xsim.cpp.o"
  "CMakeFiles/isdl_sim.dir/xsim.cpp.o.d"
  "libisdl_sim.a"
  "libisdl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isdl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
