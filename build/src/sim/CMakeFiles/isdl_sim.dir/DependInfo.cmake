
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/assembler.cpp" "src/sim/CMakeFiles/isdl_sim.dir/assembler.cpp.o" "gcc" "src/sim/CMakeFiles/isdl_sim.dir/assembler.cpp.o.d"
  "/root/repo/src/sim/cli.cpp" "src/sim/CMakeFiles/isdl_sim.dir/cli.cpp.o" "gcc" "src/sim/CMakeFiles/isdl_sim.dir/cli.cpp.o.d"
  "/root/repo/src/sim/codegen.cpp" "src/sim/CMakeFiles/isdl_sim.dir/codegen.cpp.o" "gcc" "src/sim/CMakeFiles/isdl_sim.dir/codegen.cpp.o.d"
  "/root/repo/src/sim/core.cpp" "src/sim/CMakeFiles/isdl_sim.dir/core.cpp.o" "gcc" "src/sim/CMakeFiles/isdl_sim.dir/core.cpp.o.d"
  "/root/repo/src/sim/disasm.cpp" "src/sim/CMakeFiles/isdl_sim.dir/disasm.cpp.o" "gcc" "src/sim/CMakeFiles/isdl_sim.dir/disasm.cpp.o.d"
  "/root/repo/src/sim/signature.cpp" "src/sim/CMakeFiles/isdl_sim.dir/signature.cpp.o" "gcc" "src/sim/CMakeFiles/isdl_sim.dir/signature.cpp.o.d"
  "/root/repo/src/sim/state.cpp" "src/sim/CMakeFiles/isdl_sim.dir/state.cpp.o" "gcc" "src/sim/CMakeFiles/isdl_sim.dir/state.cpp.o.d"
  "/root/repo/src/sim/xsim.cpp" "src/sim/CMakeFiles/isdl_sim.dir/xsim.cpp.o" "gcc" "src/sim/CMakeFiles/isdl_sim.dir/xsim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isdl/CMakeFiles/isdl_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/isdl_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/isdl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
