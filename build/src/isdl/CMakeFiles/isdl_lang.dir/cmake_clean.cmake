file(REMOVE_RECURSE
  "CMakeFiles/isdl_lang.dir/lexer.cpp.o"
  "CMakeFiles/isdl_lang.dir/lexer.cpp.o.d"
  "CMakeFiles/isdl_lang.dir/model.cpp.o"
  "CMakeFiles/isdl_lang.dir/model.cpp.o.d"
  "CMakeFiles/isdl_lang.dir/parser.cpp.o"
  "CMakeFiles/isdl_lang.dir/parser.cpp.o.d"
  "CMakeFiles/isdl_lang.dir/sema.cpp.o"
  "CMakeFiles/isdl_lang.dir/sema.cpp.o.d"
  "libisdl_lang.a"
  "libisdl_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isdl_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
