file(REMOVE_RECURSE
  "libisdl_lang.a"
)
