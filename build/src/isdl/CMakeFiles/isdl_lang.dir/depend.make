# Empty dependencies file for isdl_lang.
# This may be replaced when dependencies are built.
