file(REMOVE_RECURSE
  "libisdl_support.a"
)
