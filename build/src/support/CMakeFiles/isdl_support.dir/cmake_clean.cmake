file(REMOVE_RECURSE
  "CMakeFiles/isdl_support.dir/bitvector.cpp.o"
  "CMakeFiles/isdl_support.dir/bitvector.cpp.o.d"
  "libisdl_support.a"
  "libisdl_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isdl_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
