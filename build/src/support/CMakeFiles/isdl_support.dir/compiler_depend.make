# Empty compiler generated dependencies file for isdl_support.
# This may be replaced when dependencies are built.
