file(REMOVE_RECURSE
  "libisdl_synth.a"
)
