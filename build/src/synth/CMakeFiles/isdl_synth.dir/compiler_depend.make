# Empty compiler generated dependencies file for isdl_synth.
# This may be replaced when dependencies are built.
