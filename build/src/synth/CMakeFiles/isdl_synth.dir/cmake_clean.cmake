file(REMOVE_RECURSE
  "CMakeFiles/isdl_synth.dir/gatesim.cpp.o"
  "CMakeFiles/isdl_synth.dir/gatesim.cpp.o.d"
  "CMakeFiles/isdl_synth.dir/mapper.cpp.o"
  "CMakeFiles/isdl_synth.dir/mapper.cpp.o.d"
  "libisdl_synth.a"
  "libisdl_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isdl_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
