// RTL IR: the register-transfer expressions and statements that describe
// operation actions and side effects in an ISDL description (paper §2.1.3,
// operation parts 3 and 4).
//
// The IR is produced by the ISDL parser, width-checked by rtl::WidthChecker,
// interpreted by the simulator's processing core (sim/), and lowered to a
// structural netlist by the hardware generator (hw/). All values are
// fixed-width BitVectors; semantics are bit-true two's complement, with
// IEEE-754 helpers for floating-point architectures.

#ifndef ISDL_RTL_IR_H
#define ISDL_RTL_IR_H

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/bitvector.h"
#include "support/diag.h"

namespace isdl::rtl {

enum class UnOp {
  LogNot,   ///< !x : 1-bit, true iff x == 0
  BitNot,   ///< ~x
  Neg,      ///< -x (two's complement)
  RedAnd,   ///< &x  (1-bit reduction)
  RedOr,    ///< |x
  RedXor,   ///< ^x
};

enum class BinOp {
  Add, Sub, Mul, UDiv, SDiv, URem, SRem,
  And, Or, Xor,
  Shl, LShr, AShr,                  // rhs is the shift amount (any width)
  Eq, Ne, ULt, ULe, UGt, UGe, SLt, SLe, SGt, SGe,  // 1-bit results
  LogAnd, LogOr,                    // 1-bit operands and result
  FAdd, FSub, FMul, FDiv,           // IEEE-754: width 32 or 64
  FEq, FLt, FLe,                    // 1-bit results
};

const char* unOpName(UnOp op);
const char* binOpName(BinOp op);
bool isComparison(BinOp op);
bool isFloatOp(BinOp op);

enum class ExprKind {
  Const,     ///< literal; constant.width() may be 0 ("unsized") until checked
  Param,     ///< value of an operation/option parameter
  Read,      ///< whole non-addressed storage element (register, PC, ...)
  ReadElem,  ///< addressed storage element: storage[index-expr]
  Slice,     ///< operand[hi:lo], constant bounds
  Unary,
  Binary,
  Ternary,   ///< cond ? a : b
  ZExt,      ///< zext(x, w)
  SExt,      ///< sext(x, w)
  Trunc,     ///< trunc(x, w)
  Concat,    ///< concat(a, b, ...) — a is most significant
  Carry,     ///< carry(a, b): carry-out of a+b, 1 bit
  Overflow,  ///< overflow(a, b): signed overflow of a+b, 1 bit
  Borrow,    ///< borrow(a, b): borrow-out of a-b, 1 bit
  IToF,      ///< itof(x, w): signed int -> float of width w (32/64)
  FToI,      ///< ftoi(x, w): float -> signed int of width w (truncating)
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// A single RTL expression node. One struct covers all kinds; only the
/// fields relevant to `kind` are meaningful. Children live in `operands`.
struct Expr {
  ExprKind kind;
  SourceLoc loc;

  /// Result width in bits. 0 until the WidthChecker runs (except nodes whose
  /// width is syntactically fixed, which the parser fills in).
  unsigned width = 0;

  std::vector<ExprPtr> operands;

  // Kind-specific payload:
  BitVector constant;      // Const
  unsigned paramIndex = 0; // Param — index into the enclosing def's params
  unsigned storageIndex = 0;  // Read/ReadElem — index into Machine::storages
  unsigned sliceHi = 0, sliceLo = 0;  // Slice
  UnOp unOp = UnOp::BitNot;           // Unary
  BinOp binOp = BinOp::Add;           // Binary
  unsigned extWidth = 0;              // ZExt/SExt/Trunc/IToF/FToI target width

  Expr(ExprKind k, SourceLoc l) : kind(k), loc(l) {}

  ExprPtr clone() const;

  // --- builders --------------------------------------------------------------
  static ExprPtr makeConst(BitVector v, SourceLoc loc = {});
  static ExprPtr makeParam(unsigned paramIndex, SourceLoc loc = {});
  static ExprPtr makeRead(unsigned storageIndex, SourceLoc loc = {});
  static ExprPtr makeReadElem(unsigned storageIndex, ExprPtr index,
                              SourceLoc loc = {});
  static ExprPtr makeSlice(ExprPtr op, unsigned hi, unsigned lo,
                           SourceLoc loc = {});
  static ExprPtr makeUnary(UnOp op, ExprPtr a, SourceLoc loc = {});
  static ExprPtr makeBinary(BinOp op, ExprPtr a, ExprPtr b,
                            SourceLoc loc = {});
  static ExprPtr makeTernary(ExprPtr c, ExprPtr a, ExprPtr b,
                             SourceLoc loc = {});
  static ExprPtr makeExt(ExprKind k, ExprPtr a, unsigned w,
                         SourceLoc loc = {});
  static ExprPtr makeConcat(std::vector<ExprPtr> parts, SourceLoc loc = {});
};

/// Destination of a register transfer. Either a whole storage element, an
/// addressed element (`M[e]`), a bit-slice of either, or an lvalue-valued
/// parameter (a non-terminal whose selected option defines an lvalue).
struct Lvalue {
  SourceLoc loc;
  bool isParam = false;
  unsigned paramIndex = 0;    // when isParam
  unsigned storageIndex = 0;  // when !isParam
  ExprPtr index;              // optional: element address for addressed kinds
  bool hasSlice = false;
  unsigned sliceHi = 0, sliceLo = 0;

  Lvalue clone() const;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind {
  Assign,  ///< lvalue <- expr
  If,      ///< if (cond) { ... } [else { ... }]
};

struct Stmt {
  StmtKind kind;
  SourceLoc loc;

  // Assign:
  Lvalue dest;
  ExprPtr value;

  // If:
  ExprPtr cond;
  std::vector<StmtPtr> thenStmts;
  std::vector<StmtPtr> elseStmts;

  Stmt(StmtKind k, SourceLoc l) : kind(k), loc(l) {}

  StmtPtr clone() const;

  static StmtPtr makeAssign(Lvalue dest, ExprPtr value, SourceLoc loc = {});
  static StmtPtr makeIf(ExprPtr cond, std::vector<StmtPtr> thenStmts,
                        std::vector<StmtPtr> elseStmts, SourceLoc loc = {});
};

/// Pre-order walk over an expression tree.
void forEachExpr(const Expr& e, const std::function<void(const Expr&)>& fn);
/// Walk every expression in a statement (lvalue indices included).
void forEachExpr(const Stmt& s, const std::function<void(const Expr&)>& fn);

/// Human-readable rendering for error messages and dumps.
std::string toString(const Expr& e);
std::string toString(const Stmt& s, unsigned indent = 0);

}  // namespace isdl::rtl

#endif  // ISDL_RTL_IR_H
