// Bit-true evaluation of RTL expressions. The evaluator is shared by the
// XSIM processing core (which supplies architectural state and decoded
// parameter values) and the constant folder (which supplies nothing and
// fails on any state access).
//
// Expressions must have been width-checked: every node carries a non-zero
// width and operand widths satisfy the operator's contract.

#ifndef ISDL_RTL_EVAL_H
#define ISDL_RTL_EVAL_H

#include "rtl/ir.h"
#include "support/bitvector.h"

namespace isdl::rtl {

/// Supplies the dynamic inputs of expression evaluation.
class EvalContext {
 public:
  virtual ~EvalContext() = default;

  /// Runtime value of parameter `idx` of the enclosing operation/option.
  virtual BitVector paramValue(unsigned idx) const = 0;
  /// Current value of a non-addressed storage element.
  virtual BitVector readStorage(unsigned storageIndex) const = 0;
  /// Current value of location `index` of an addressed storage element.
  /// Out-of-range indices are the context's business (the simulator traps
  /// them as runtime errors).
  virtual BitVector readElement(unsigned storageIndex,
                                const BitVector& index) const = 0;
};

/// Thrown when evaluation touches something the context cannot supply
/// (used by the constant folder) or hits a runtime trap.
class EvalError : public std::runtime_error {
 public:
  explicit EvalError(const std::string& what) : std::runtime_error(what) {}
};

/// Evaluates `e` under `ctx`. The result width equals e.width.
BitVector evalExpr(const Expr& e, const EvalContext& ctx);

/// Applies a binary operator to width-checked operands (exposed for tests
/// and for the netlist simulator's operator nodes).
BitVector applyBinOp(BinOp op, const BitVector& a, const BitVector& b);
/// Applies a unary operator.
BitVector applyUnOp(UnOp op, const BitVector& a);

// IEEE-754 helpers on raw bits (width 32 or 64).
BitVector floatBinOp(BinOp op, const BitVector& a, const BitVector& b);
BitVector intToFloat(const BitVector& a, unsigned floatWidth);
BitVector floatToInt(const BitVector& a, unsigned intWidth);

}  // namespace isdl::rtl

#endif  // ISDL_RTL_EVAL_H
