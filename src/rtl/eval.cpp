#include "rtl/eval.h"

#include <bit>
#include <cmath>

#include "support/strings.h"

namespace isdl::rtl {

namespace {

BitVector boolBv(bool b) { return BitVector(1, b ? 1 : 0); }

double bitsToDouble(const BitVector& v) {
  if (v.width() == 32)
    return double(std::bit_cast<float>(std::uint32_t(v.toUint64())));
  return std::bit_cast<double>(v.toUint64());
}

BitVector doubleToBits(double d, unsigned width) {
  if (width == 32)
    return BitVector(32, std::bit_cast<std::uint32_t>(float(d)));
  return BitVector(64, std::bit_cast<std::uint64_t>(d));
}

}  // namespace

BitVector floatBinOp(BinOp op, const BitVector& a, const BitVector& b) {
  double x = bitsToDouble(a);
  double y = bitsToDouble(b);
  switch (op) {
    case BinOp::FAdd: return doubleToBits(x + y, a.width());
    case BinOp::FSub: return doubleToBits(x - y, a.width());
    case BinOp::FMul: return doubleToBits(x * y, a.width());
    case BinOp::FDiv: return doubleToBits(x / y, a.width());
    case BinOp::FEq: return boolBv(x == y);
    case BinOp::FLt: return boolBv(x < y);
    case BinOp::FLe: return boolBv(x <= y);
    default:
      throw EvalError("not a floating-point operator");
  }
}

BitVector intToFloat(const BitVector& a, unsigned floatWidth) {
  return doubleToBits(double(a.toInt64()), floatWidth);
}

BitVector floatToInt(const BitVector& a, unsigned intWidth) {
  double d = bitsToDouble(a);
  if (std::isnan(d)) return BitVector(intWidth);
  // Clamp like common DSP float-to-int converters.
  double lo = -std::ldexp(1.0, int(intWidth) - 1);
  double hi = std::ldexp(1.0, int(intWidth) - 1) - 1.0;
  if (d < lo) d = lo;
  if (d > hi) d = hi;
  return BitVector::fromInt(intWidth, std::int64_t(d));
}

BitVector applyUnOp(UnOp op, const BitVector& a) {
  switch (op) {
    case UnOp::LogNot: return boolBv(a.isZero());
    case UnOp::BitNot: return a.not_();
    case UnOp::Neg: return a.neg();
    case UnOp::RedAnd: return boolBv(a.reduceAnd());
    case UnOp::RedOr: return boolBv(a.reduceOr());
    case UnOp::RedXor: return boolBv(a.reduceXor());
  }
  throw EvalError("bad unary operator");
}

BitVector applyBinOp(BinOp op, const BitVector& a, const BitVector& b) {
  switch (op) {
    case BinOp::Add: return a.add(b);
    case BinOp::Sub: return a.sub(b);
    case BinOp::Mul: return a.mul(b);
    case BinOp::UDiv: return a.udiv(b);
    case BinOp::SDiv: return a.sdiv(b);
    case BinOp::URem: return a.urem(b);
    case BinOp::SRem: return a.srem(b);
    case BinOp::And: return a.and_(b);
    case BinOp::Or: return a.or_(b);
    case BinOp::Xor: return a.xor_(b);
    case BinOp::Shl:
    case BinOp::LShr:
    case BinOp::AShr: {
      // Saturate huge shift amounts at the operand width (result is then all
      // zeros / sign bits), matching hardware shifter behaviour.
      std::uint64_t amt64 = b.toUint64();
      if (b.width() > 64 && !b.lshr(64).isZero()) amt64 = a.width();
      unsigned amt = amt64 > a.width() ? a.width() : unsigned(amt64);
      if (op == BinOp::Shl) return a.shl(amt);
      if (op == BinOp::LShr) return a.lshr(amt);
      return a.ashr(amt);
    }
    case BinOp::Eq: return boolBv(a == b);
    case BinOp::Ne: return boolBv(!(a == b));
    case BinOp::ULt: return boolBv(a.ult(b));
    case BinOp::ULe: return boolBv(a.ule(b));
    case BinOp::UGt: return boolBv(b.ult(a));
    case BinOp::UGe: return boolBv(b.ule(a));
    case BinOp::SLt: return boolBv(a.slt(b));
    case BinOp::SLe: return boolBv(a.sle(b));
    case BinOp::SGt: return boolBv(b.slt(a));
    case BinOp::SGe: return boolBv(b.sle(a));
    case BinOp::LogAnd: return boolBv(!a.isZero() && !b.isZero());
    case BinOp::LogOr: return boolBv(!a.isZero() || !b.isZero());
    case BinOp::FAdd: case BinOp::FSub: case BinOp::FMul: case BinOp::FDiv:
    case BinOp::FEq: case BinOp::FLt: case BinOp::FLe:
      return floatBinOp(op, a, b);
  }
  throw EvalError("bad binary operator");
}

BitVector evalExpr(const Expr& e, const EvalContext& ctx) {
  switch (e.kind) {
    case ExprKind::Const:
      return e.constant;
    case ExprKind::Param:
      return ctx.paramValue(e.paramIndex);
    case ExprKind::Read:
      return ctx.readStorage(e.storageIndex);
    case ExprKind::ReadElem:
      return ctx.readElement(e.storageIndex, evalExpr(*e.operands[0], ctx));
    case ExprKind::Slice:
      return evalExpr(*e.operands[0], ctx).slice(e.sliceHi, e.sliceLo);
    case ExprKind::Unary:
      return applyUnOp(e.unOp, evalExpr(*e.operands[0], ctx));
    case ExprKind::Binary: {
      // Short-circuit semantics are observable through state reads only via
      // traps; evaluate both sides for simplicity (RTL has no side effects
      // inside expressions).
      BitVector a = evalExpr(*e.operands[0], ctx);
      BitVector b = evalExpr(*e.operands[1], ctx);
      return applyBinOp(e.binOp, a, b);
    }
    case ExprKind::Ternary:
      return evalExpr(*e.operands[0], ctx).isZero()
                 ? evalExpr(*e.operands[2], ctx)
                 : evalExpr(*e.operands[1], ctx);
    case ExprKind::ZExt:
      return evalExpr(*e.operands[0], ctx).zext(e.extWidth);
    case ExprKind::SExt:
      return evalExpr(*e.operands[0], ctx).sext(e.extWidth);
    case ExprKind::Trunc:
      return evalExpr(*e.operands[0], ctx).trunc(e.extWidth);
    case ExprKind::Concat: {
      BitVector acc = evalExpr(*e.operands[0], ctx);
      for (std::size_t i = 1; i < e.operands.size(); ++i)
        acc = acc.concat(evalExpr(*e.operands[i], ctx));
      return acc;
    }
    case ExprKind::Carry: {
      BitVector a = evalExpr(*e.operands[0], ctx);
      BitVector b = evalExpr(*e.operands[1], ctx);
      return boolBv(a.addWithCarry(b, false).carryOut);
    }
    case ExprKind::Overflow: {
      BitVector a = evalExpr(*e.operands[0], ctx);
      BitVector b = evalExpr(*e.operands[1], ctx);
      return boolBv(a.addWithCarry(b, false).overflow);
    }
    case ExprKind::Borrow: {
      BitVector a = evalExpr(*e.operands[0], ctx);
      BitVector b = evalExpr(*e.operands[1], ctx);
      // Borrow out of a-b == NOT carry out of a + ~b + 1.
      return boolBv(!a.addWithCarry(b.not_(), true).carryOut);
    }
    case ExprKind::IToF:
      return intToFloat(evalExpr(*e.operands[0], ctx), e.extWidth);
    case ExprKind::FToI:
      return floatToInt(evalExpr(*e.operands[0], ctx), e.extWidth);
  }
  throw EvalError("bad expression kind");
}

}  // namespace isdl::rtl
