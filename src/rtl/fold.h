// Constant folding over width-checked RTL expressions. Used by the hardware
// generator to shrink datapath logic and by tests as an oracle.

#ifndef ISDL_RTL_FOLD_H
#define ISDL_RTL_FOLD_H

#include "rtl/ir.h"

namespace isdl::rtl {

/// Returns a folded copy of `e`: every subtree whose value is independent of
/// parameters and state is replaced by a Const node. Also applies the usual
/// algebraic identities (x+0, x&0, x*1, 1-bit muxes with constant selects).
ExprPtr foldExpr(const Expr& e);

/// True if `e` is a Const node.
bool isConst(const Expr& e);
/// True if `e` is a Const node equal to `value` (zero-extended comparison).
bool isConstValue(const Expr& e, std::uint64_t value);

}  // namespace isdl::rtl

#endif  // ISDL_RTL_FOLD_H
