#include "rtl/fold.h"

#include "rtl/eval.h"

namespace isdl::rtl {

namespace {

/// Context that refuses all dynamic inputs; evalExpr throws EvalError on any
/// Param/Read it reaches, which the folder treats as "not constant".
class NoContext final : public EvalContext {
 public:
  BitVector paramValue(unsigned) const override {
    throw EvalError("not constant");
  }
  BitVector readStorage(unsigned) const override {
    throw EvalError("not constant");
  }
  BitVector readElement(unsigned, const BitVector&) const override {
    throw EvalError("not constant");
  }
};

bool isPure(const Expr& e) {
  switch (e.kind) {
    case ExprKind::Param:
    case ExprKind::Read:
    case ExprKind::ReadElem:
      return false;
    default:
      return true;
  }
}

}  // namespace

bool isConst(const Expr& e) { return e.kind == ExprKind::Const; }

bool isConstValue(const Expr& e, std::uint64_t value) {
  if (!isConst(e)) return false;
  if (e.constant.width() > 64) {
    return e.constant == BitVector(e.constant.width(), value);
  }
  return e.constant.toUint64() == value;
}

ExprPtr foldExpr(const Expr& e) {
  // Fold children first.
  ExprPtr out = e.clone();
  for (auto& op : out->operands) {
    ExprPtr folded = foldExpr(*op);
    op = std::move(folded);
  }

  // Entirely constant and pure at this node? Evaluate it.
  bool allConst = isPure(*out);
  if (allConst) {
    for (const auto& op : out->operands)
      if (!isConst(*op)) {
        allConst = false;
        break;
      }
  }
  if (allConst && out->kind != ExprKind::Const) {
    try {
      BitVector v = evalExpr(*out, NoContext{});
      return Expr::makeConst(std::move(v), out->loc);
    } catch (const EvalError&) {
      // fall through to identity simplification
    }
  }

  // Algebraic identities.
  if (out->kind == ExprKind::Binary) {
    Expr& a = *out->operands[0];
    Expr& b = *out->operands[1];
    switch (out->binOp) {
      case BinOp::Add:
        if (isConstValue(b, 0)) return std::move(out->operands[0]);
        if (isConstValue(a, 0)) return std::move(out->operands[1]);
        break;
      case BinOp::Sub:
        if (isConstValue(b, 0)) return std::move(out->operands[0]);
        break;
      case BinOp::Mul:
        if (isConstValue(b, 1)) return std::move(out->operands[0]);
        if (isConstValue(a, 1)) return std::move(out->operands[1]);
        if (isConstValue(a, 0)) return std::move(out->operands[0]);
        if (isConstValue(b, 0)) return std::move(out->operands[1]);
        break;
      case BinOp::And:
        if (isConst(b) && b.constant.isAllOnes())
          return std::move(out->operands[0]);
        if (isConst(a) && a.constant.isAllOnes())
          return std::move(out->operands[1]);
        if (isConstValue(a, 0)) return std::move(out->operands[0]);
        if (isConstValue(b, 0)) return std::move(out->operands[1]);
        break;
      case BinOp::Or:
        if (isConstValue(b, 0)) return std::move(out->operands[0]);
        if (isConstValue(a, 0)) return std::move(out->operands[1]);
        break;
      case BinOp::Xor:
        if (isConstValue(b, 0)) return std::move(out->operands[0]);
        if (isConstValue(a, 0)) return std::move(out->operands[1]);
        break;
      case BinOp::Shl:
      case BinOp::LShr:
      case BinOp::AShr:
        if (isConstValue(b, 0)) return std::move(out->operands[0]);
        break;
      default:
        break;
    }
  }

  if (out->kind == ExprKind::Ternary && isConst(*out->operands[0])) {
    return out->operands[0]->constant.isZero() ? std::move(out->operands[2])
                                               : std::move(out->operands[1]);
  }

  return out;
}

}  // namespace isdl::rtl
