#include "rtl/ir.h"

#include "support/strings.h"

namespace isdl::rtl {

const char* unOpName(UnOp op) {
  switch (op) {
    case UnOp::LogNot: return "!";
    case UnOp::BitNot: return "~";
    case UnOp::Neg: return "-";
    case UnOp::RedAnd: return "&";
    case UnOp::RedOr: return "|";
    case UnOp::RedXor: return "^";
  }
  return "?";
}

const char* binOpName(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::UDiv: return "/u";
    case BinOp::SDiv: return "/s";
    case BinOp::URem: return "%u";
    case BinOp::SRem: return "%s";
    case BinOp::And: return "&";
    case BinOp::Or: return "|";
    case BinOp::Xor: return "^";
    case BinOp::Shl: return "<<";
    case BinOp::LShr: return ">>";
    case BinOp::AShr: return ">>>";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::ULt: return "<u";
    case BinOp::ULe: return "<=u";
    case BinOp::UGt: return ">u";
    case BinOp::UGe: return ">=u";
    case BinOp::SLt: return "<s";
    case BinOp::SLe: return "<=s";
    case BinOp::SGt: return ">s";
    case BinOp::SGe: return ">=s";
    case BinOp::LogAnd: return "&&";
    case BinOp::LogOr: return "||";
    case BinOp::FAdd: return "+f";
    case BinOp::FSub: return "-f";
    case BinOp::FMul: return "*f";
    case BinOp::FDiv: return "/f";
    case BinOp::FEq: return "==f";
    case BinOp::FLt: return "<f";
    case BinOp::FLe: return "<=f";
  }
  return "?";
}

bool isComparison(BinOp op) {
  switch (op) {
    case BinOp::Eq: case BinOp::Ne:
    case BinOp::ULt: case BinOp::ULe: case BinOp::UGt: case BinOp::UGe:
    case BinOp::SLt: case BinOp::SLe: case BinOp::SGt: case BinOp::SGe:
    case BinOp::FEq: case BinOp::FLt: case BinOp::FLe:
      return true;
    default:
      return false;
  }
}

bool isFloatOp(BinOp op) {
  switch (op) {
    case BinOp::FAdd: case BinOp::FSub: case BinOp::FMul: case BinOp::FDiv:
    case BinOp::FEq: case BinOp::FLt: case BinOp::FLe:
      return true;
    default:
      return false;
  }
}

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>(kind, loc);
  e->width = width;
  e->constant = constant;
  e->paramIndex = paramIndex;
  e->storageIndex = storageIndex;
  e->sliceHi = sliceHi;
  e->sliceLo = sliceLo;
  e->unOp = unOp;
  e->binOp = binOp;
  e->extWidth = extWidth;
  e->operands.reserve(operands.size());
  for (const auto& op : operands) e->operands.push_back(op->clone());
  return e;
}

ExprPtr Expr::makeConst(BitVector v, SourceLoc loc) {
  auto e = std::make_unique<Expr>(ExprKind::Const, loc);
  e->width = v.width();
  e->constant = std::move(v);
  return e;
}

ExprPtr Expr::makeParam(unsigned paramIndex, SourceLoc loc) {
  auto e = std::make_unique<Expr>(ExprKind::Param, loc);
  e->paramIndex = paramIndex;
  return e;
}

ExprPtr Expr::makeRead(unsigned storageIndex, SourceLoc loc) {
  auto e = std::make_unique<Expr>(ExprKind::Read, loc);
  e->storageIndex = storageIndex;
  return e;
}

ExprPtr Expr::makeReadElem(unsigned storageIndex, ExprPtr index,
                           SourceLoc loc) {
  auto e = std::make_unique<Expr>(ExprKind::ReadElem, loc);
  e->storageIndex = storageIndex;
  e->operands.push_back(std::move(index));
  return e;
}

ExprPtr Expr::makeSlice(ExprPtr op, unsigned hi, unsigned lo, SourceLoc loc) {
  auto e = std::make_unique<Expr>(ExprKind::Slice, loc);
  e->sliceHi = hi;
  e->sliceLo = lo;
  e->width = hi - lo + 1;
  e->operands.push_back(std::move(op));
  return e;
}

ExprPtr Expr::makeUnary(UnOp op, ExprPtr a, SourceLoc loc) {
  auto e = std::make_unique<Expr>(ExprKind::Unary, loc);
  e->unOp = op;
  e->operands.push_back(std::move(a));
  return e;
}

ExprPtr Expr::makeBinary(BinOp op, ExprPtr a, ExprPtr b, SourceLoc loc) {
  auto e = std::make_unique<Expr>(ExprKind::Binary, loc);
  e->binOp = op;
  e->operands.push_back(std::move(a));
  e->operands.push_back(std::move(b));
  return e;
}

ExprPtr Expr::makeTernary(ExprPtr c, ExprPtr a, ExprPtr b, SourceLoc loc) {
  auto e = std::make_unique<Expr>(ExprKind::Ternary, loc);
  e->operands.push_back(std::move(c));
  e->operands.push_back(std::move(a));
  e->operands.push_back(std::move(b));
  return e;
}

ExprPtr Expr::makeExt(ExprKind k, ExprPtr a, unsigned w, SourceLoc loc) {
  auto e = std::make_unique<Expr>(k, loc);
  e->extWidth = w;
  e->width = w;
  e->operands.push_back(std::move(a));
  return e;
}

ExprPtr Expr::makeConcat(std::vector<ExprPtr> parts, SourceLoc loc) {
  auto e = std::make_unique<Expr>(ExprKind::Concat, loc);
  e->operands = std::move(parts);
  return e;
}

Lvalue Lvalue::clone() const {
  Lvalue l;
  l.loc = loc;
  l.isParam = isParam;
  l.paramIndex = paramIndex;
  l.storageIndex = storageIndex;
  if (index) l.index = index->clone();
  l.hasSlice = hasSlice;
  l.sliceHi = sliceHi;
  l.sliceLo = sliceLo;
  return l;
}

StmtPtr Stmt::clone() const {
  auto s = std::make_unique<Stmt>(kind, loc);
  s->dest = dest.clone();
  if (value) s->value = value->clone();
  if (cond) s->cond = cond->clone();
  for (const auto& t : thenStmts) s->thenStmts.push_back(t->clone());
  for (const auto& e : elseStmts) s->elseStmts.push_back(e->clone());
  return s;
}

StmtPtr Stmt::makeAssign(Lvalue dest, ExprPtr value, SourceLoc loc) {
  auto s = std::make_unique<Stmt>(StmtKind::Assign, loc);
  s->dest = std::move(dest);
  s->value = std::move(value);
  return s;
}

StmtPtr Stmt::makeIf(ExprPtr cond, std::vector<StmtPtr> thenStmts,
                     std::vector<StmtPtr> elseStmts, SourceLoc loc) {
  auto s = std::make_unique<Stmt>(StmtKind::If, loc);
  s->cond = std::move(cond);
  s->thenStmts = std::move(thenStmts);
  s->elseStmts = std::move(elseStmts);
  return s;
}

void forEachExpr(const Expr& e, const std::function<void(const Expr&)>& fn) {
  fn(e);
  for (const auto& op : e.operands) forEachExpr(*op, fn);
}

void forEachExpr(const Stmt& s, const std::function<void(const Expr&)>& fn) {
  switch (s.kind) {
    case StmtKind::Assign:
      if (s.dest.index) forEachExpr(*s.dest.index, fn);
      forEachExpr(*s.value, fn);
      break;
    case StmtKind::If:
      forEachExpr(*s.cond, fn);
      for (const auto& t : s.thenStmts) forEachExpr(*t, fn);
      for (const auto& t : s.elseStmts) forEachExpr(*t, fn);
      break;
  }
}

std::string toString(const Expr& e) {
  switch (e.kind) {
    case ExprKind::Const:
      return e.constant.valid() ? e.constant.toHexString() : "<unsized>";
    case ExprKind::Param:
      return cat("$", e.paramIndex);
    case ExprKind::Read:
      return cat("S", e.storageIndex);
    case ExprKind::ReadElem:
      return cat("S", e.storageIndex, "[", toString(*e.operands[0]), "]");
    case ExprKind::Slice:
      return cat(toString(*e.operands[0]), "[", e.sliceHi, ":", e.sliceLo,
                 "]");
    case ExprKind::Unary:
      return cat(unOpName(e.unOp), "(", toString(*e.operands[0]), ")");
    case ExprKind::Binary:
      return cat("(", toString(*e.operands[0]), " ", binOpName(e.binOp), " ",
                 toString(*e.operands[1]), ")");
    case ExprKind::Ternary:
      return cat("(", toString(*e.operands[0]), " ? ",
                 toString(*e.operands[1]), " : ", toString(*e.operands[2]),
                 ")");
    case ExprKind::ZExt:
      return cat("zext(", toString(*e.operands[0]), ", ", e.extWidth, ")");
    case ExprKind::SExt:
      return cat("sext(", toString(*e.operands[0]), ", ", e.extWidth, ")");
    case ExprKind::Trunc:
      return cat("trunc(", toString(*e.operands[0]), ", ", e.extWidth, ")");
    case ExprKind::Concat: {
      std::string s = "concat(";
      for (std::size_t i = 0; i < e.operands.size(); ++i) {
        if (i) s += ", ";
        s += toString(*e.operands[i]);
      }
      return s + ")";
    }
    case ExprKind::Carry:
      return cat("carry(", toString(*e.operands[0]), ", ",
                 toString(*e.operands[1]), ")");
    case ExprKind::Overflow:
      return cat("overflow(", toString(*e.operands[0]), ", ",
                 toString(*e.operands[1]), ")");
    case ExprKind::Borrow:
      return cat("borrow(", toString(*e.operands[0]), ", ",
                 toString(*e.operands[1]), ")");
    case ExprKind::IToF:
      return cat("itof(", toString(*e.operands[0]), ", ", e.extWidth, ")");
    case ExprKind::FToI:
      return cat("ftoi(", toString(*e.operands[0]), ", ", e.extWidth, ")");
  }
  return "?";
}

std::string toString(const Stmt& s, unsigned indent) {
  std::string pad(indent, ' ');
  switch (s.kind) {
    case StmtKind::Assign: {
      std::string dst;
      if (s.dest.isParam)
        dst = cat("$", s.dest.paramIndex);
      else
        dst = cat("S", s.dest.storageIndex);
      if (s.dest.index) dst += cat("[", toString(*s.dest.index), "]");
      if (s.dest.hasSlice) dst += cat("[", s.dest.sliceHi, ":", s.dest.sliceLo, "]");
      return cat(pad, dst, " <- ", toString(*s.value), ";");
    }
    case StmtKind::If: {
      std::string out = cat(pad, "if (", toString(*s.cond), ") {\n");
      for (const auto& t : s.thenStmts) out += toString(*t, indent + 2) + "\n";
      out += pad + "}";
      if (!s.elseStmts.empty()) {
        out += " else {\n";
        for (const auto& t : s.elseStmts) out += toString(*t, indent + 2) + "\n";
        out += pad + "}";
      }
      return out;
    }
  }
  return "?";
}

}  // namespace isdl::rtl
