// HGEN: the ISDL-to-hardware compiler (paper §4). One call takes a checked
// Machine through datapath construction, resource sharing, Verilog emission
// and the quick silicon compiler, producing everything Table 2 reports:
// cycle length (ns), lines of Verilog, die size (grid cells) and synthesis
// time (seconds).

#ifndef ISDL_HW_HGEN_H
#define ISDL_HW_HGEN_H

#include "hw/datapath.h"
#include "hw/sharing.h"
#include "hw/verilog.h"
#include "synth/mapper.h"

namespace isdl::hw {

struct HgenOptions {
  bool share = true;             ///< run the resource-sharing pass (§4.1)
  bool useConstraints = true;    ///< constraint-informed sharing (rule R4)
  VerilogOptions verilog;
};

struct HgenStats {
  double cycleNs = 0;             ///< Table 2 "Cycle (nsec)"
  std::size_t verilogLines = 0;   ///< Table 2 "Lines of Verilog"
  double dieSizeGridCells = 0;    ///< Table 2 "Die Size (grid cells)"
  double synthesisSeconds = 0;    ///< Table 2 "Synthesis time (sec)"
  double toolSeconds = 0;         ///< HGEN itself (lowering + sharing + emit)
  double siliconSeconds = 0;      ///< the silicon-compiler stage (map + STA)
  SharingReport sharing;
  synth::AreaReport area;
  synth::TimingReport timing;
};

struct HgenOutput {
  HwModel model;
  std::string verilog;
  HgenStats stats;
};

HgenOutput runHgen(const Machine& machine, const sim::SignatureTable& sigs,
                   const HgenOptions& options = {});

}  // namespace isdl::hw

#endif  // ISDL_HW_HGEN_H
