// Resource sharing (paper §4.1, Figure 5).
//
// ISDL operation scopes are independent, so a naive lowering gives every
// operation its own functional units (§4.1.1's "naive scheme"). This pass
// recovers the sharing a human designer would build in:
//
//   1. label every shareable RTL operator node,
//   2. fill the n×n compatibility matrix A (A[i][j] = 1 iff i and j can
//      share a unit) using the paper's four rules plus constraint-derived
//      exclusivity,
//   3. enumerate maximal cliques of A (Bron–Kerbosch with pivoting),
//   4. cover the nodes greedily with the largest cliques, and
//   5. rewrite the netlist: one shared unit per clique, operand muxes
//      selected by the member operations' decode lines, dead units swept.
//
// Rules implemented (§4.1.2):
//   R1  nodes of the same RTL statement — and, more generally, of the same
//       operation — evaluate in parallel: not shareable.
//   R2  nodes must perform compatible tasks of equal width; add/sub pairs
//       are the paper's "subset" case and merge into an AddSub unit.
//   R3  nodes of operations in the same field are mutually exclusive:
//       shareable.
//   R4  nodes of operations in different fields are not shareable, unless a
//       two-operation constraint forbids their co-occurrence.

#ifndef ISDL_HW_SHARING_H
#define ISDL_HW_SHARING_H

#include "hw/datapath.h"

namespace isdl::hw {

struct SharingOptions {
  /// Apply rule R4's constraint refinement (the ablation bench disables it).
  bool useConstraints = true;
};

struct SharingReport {
  std::size_t shareableNodes = 0;  ///< operator nodes considered
  std::size_t unitsBefore = 0;     ///< = shareableNodes (naive scheme)
  std::size_t unitsAfter = 0;      ///< shared units + singletons
  std::size_t cliquesUsed = 0;     ///< multi-member cliques instantiated
  std::size_t maximalCliques = 0;  ///< total maximal cliques enumerated
  std::size_t muxesAdded = 0;
};

/// Rewrites `model` in place; returns the report. Safe to run once per model.
SharingReport shareResources(HwModel& model, const Machine& machine,
                             const SharingOptions& options = {});

/// Enumerate all maximal cliques of an undirected graph given as an
/// adjacency matrix (Bron–Kerbosch with pivoting). Exposed for tests.
std::vector<std::vector<unsigned>> maximalCliques(
    const std::vector<std::vector<bool>>& adjacency);

}  // namespace isdl::hw

#endif  // ISDL_HW_SHARING_H
