// Decode-logic generation (paper §4.2). The decode line of an operation is
// the product of the literals of its signature's constant bits (e.g.
// I9'·I8·I6'·I5 for op2 in Figure 3), built as an AND tree over instruction
// bits. Parameter extraction reverses the encoding: each parameter value is
// a concatenation of (possibly scattered) instruction bits.
//
// The same functions generate the option-select lines and sub-parameter
// extraction for non-terminals, operating on the non-terminal's extracted
// return-value net instead of the instruction net.

#ifndef ISDL_HW_DECODE_H
#define ISDL_HW_DECODE_H

#include "hw/netlist.h"
#include "sim/signature.h"

namespace isdl::hw {

/// Builds the two-level decode line for `sig` over the instruction net
/// `word` (word.width may exceed sig.widthBits; extra bits are ignored).
/// Returns a 1-bit net that is high iff the constant bits match.
NetId buildDecodeLine(Netlist& nl, NetId word, const sim::Signature& sig,
                      const std::string& name);

/// Builds the extraction network for parameter `p` of `sig`: a concatenation
/// of the instruction bits that carry it, with contiguous runs collapsed
/// into single slices.
NetId buildParamExtract(Netlist& nl, NetId word, const sim::Signature& sig,
                        unsigned p, const std::string& name);

}  // namespace isdl::hw

#endif  // ISDL_HW_DECODE_H
