#include "hw/netlist.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "support/diag.h"
#include "support/strings.h"

namespace isdl::hw {

const char* nodeKindName(NodeKind k) {
  switch (k) {
    case NodeKind::Input: return "input";
    case NodeKind::Const: return "const";
    case NodeKind::Unary: return "unary";
    case NodeKind::Binary: return "binary";
    case NodeKind::AddSub: return "addsub";
    case NodeKind::Mux: return "mux";
    case NodeKind::Slice: return "slice";
    case NodeKind::Concat: return "concat";
    case NodeKind::ZExt: return "zext";
    case NodeKind::SExt: return "sext";
    case NodeKind::Trunc: return "trunc";
    case NodeKind::IToF: return "itof";
    case NodeKind::FToI: return "ftoi";
    case NodeKind::Reg: return "reg";
    case NodeKind::MemRead: return "memread";
  }
  return "?";
}

NetId Netlist::push(Node node) {
  nodes.push_back(std::move(node));
  return static_cast<NetId>(nodes.size() - 1);
}

NetId Netlist::addInput(std::string name, unsigned width) {
  Node n;
  n.kind = NodeKind::Input;
  n.width = width;
  n.name = std::move(name);
  return push(std::move(n));
}

NetId Netlist::addConst(BitVector value, std::string name) {
  Node n;
  n.kind = NodeKind::Const;
  n.width = value.width();
  n.constValue = std::move(value);
  n.name = std::move(name);
  return push(std::move(n));
}

NetId Netlist::addUnary(rtl::UnOp op, NetId a, std::string name) {
  Node n;
  n.kind = NodeKind::Unary;
  n.unOp = op;
  switch (op) {
    case rtl::UnOp::LogNot:
    case rtl::UnOp::RedAnd:
    case rtl::UnOp::RedOr:
    case rtl::UnOp::RedXor:
      n.width = 1;
      break;
    default:
      n.width = nodes[a].width;
  }
  n.ins = {a};
  n.name = std::move(name);
  return push(std::move(n));
}

NetId Netlist::addBinary(rtl::BinOp op, NetId a, NetId b, std::string name) {
  Node n;
  n.kind = NodeKind::Binary;
  n.binOp = op;
  n.width = rtl::isComparison(op) || op == rtl::BinOp::LogAnd ||
                    op == rtl::BinOp::LogOr
                ? 1
                : nodes[a].width;
  n.ins = {a, b};
  n.name = std::move(name);
  return push(std::move(n));
}

NetId Netlist::addAddSub(NetId a, NetId b, NetId sub, std::string name) {
  Node n;
  n.kind = NodeKind::AddSub;
  n.width = nodes[a].width;
  n.ins = {a, b, sub};
  n.name = std::move(name);
  return push(std::move(n));
}

NetId Netlist::addMux(NetId sel, NetId whenTrue, NetId whenFalse,
                      std::string name) {
  if (whenTrue == whenFalse) return whenTrue;  // select is irrelevant
  Node n;
  n.kind = NodeKind::Mux;
  n.width = nodes[whenTrue].width;
  n.ins = {sel, whenTrue, whenFalse};
  n.name = std::move(name);
  return push(std::move(n));
}

NetId Netlist::addSlice(NetId a, unsigned hi, unsigned lo, std::string name) {
  Node n;
  n.kind = NodeKind::Slice;
  n.width = hi - lo + 1;
  n.hi = hi;
  n.lo = lo;
  n.ins = {a};
  n.name = std::move(name);
  return push(std::move(n));
}

NetId Netlist::addConcat(std::vector<NetId> parts, std::string name) {
  Node n;
  n.kind = NodeKind::Concat;
  n.width = 0;
  for (NetId p : parts) n.width += nodes[p].width;
  n.ins = std::move(parts);
  n.name = std::move(name);
  return push(std::move(n));
}

NetId Netlist::addExt(NodeKind kind, NetId a, unsigned width,
                      std::string name) {
  Node n;
  n.kind = kind;
  n.width = width;
  n.ins = {a};
  n.name = std::move(name);
  return push(std::move(n));
}

NetId Netlist::addReg(std::string name, unsigned width) {
  Node n;
  n.kind = NodeKind::Reg;
  n.width = width;
  n.name = std::move(name);
  n.ins = {kNoNet, kNoNet};
  return push(std::move(n));
}

void Netlist::setRegInputs(NetId reg, NetId next, NetId enable) {
  nodes[reg].ins = {next, enable};
}

int Netlist::addMemory(std::string name, unsigned width, std::uint64_t depth) {
  Memory m;
  m.name = std::move(name);
  m.width = width;
  m.depth = depth;
  memories.push_back(std::move(m));
  return static_cast<int>(memories.size() - 1);
}

NetId Netlist::addMemRead(int memId, NetId addr, std::string name) {
  Node n;
  n.kind = NodeKind::MemRead;
  n.width = memories[memId].width;
  n.memId = memId;
  n.ins = {addr};
  n.name = std::move(name);
  return push(std::move(n));
}

void Netlist::addMemWrite(int memId, NetId enable, NetId addr, NetId data) {
  memories[memId].writePorts.push_back({enable, addr, data});
}

void Netlist::addOutput(std::string name, NetId net) {
  outputs.push_back({std::move(name), net});
}

NetId Netlist::one() {
  if (cachedOne_ == kNoNet) cachedOne_ = addConst(BitVector(1, 1));
  return cachedOne_;
}

NetId Netlist::zero() {
  if (cachedZero_ == kNoNet) cachedZero_ = addConst(BitVector(1, 0));
  return cachedZero_;
}

NetId Netlist::andNet(NetId a, NetId b) {
  auto constVal = [&](NetId x) -> int {
    if (nodes[x].kind != NodeKind::Const) return -1;
    return nodes[x].constValue.isZero() ? 0 : 1;
  };
  if (constVal(a) == 1) return b;
  if (constVal(b) == 1) return a;
  if (constVal(a) == 0 || constVal(b) == 0) return zero();
  return addBinary(rtl::BinOp::And, a, b);
}

NetId Netlist::orNet(NetId a, NetId b) {
  auto constVal = [&](NetId x) -> int {
    if (nodes[x].kind != NodeKind::Const) return -1;
    return nodes[x].constValue.isZero() ? 0 : 1;
  };
  if (constVal(a) == 0) return b;
  if (constVal(b) == 0) return a;
  if (constVal(a) == 1 || constVal(b) == 1) return one();
  return addBinary(rtl::BinOp::Or, a, b);
}

NetId Netlist::notNet(NetId a) {
  if (nodes[a].kind == NodeKind::Const)
    return nodes[a].constValue.isZero() ? one() : zero();
  return addUnary(rtl::UnOp::BitNot, a);
}

NetId Netlist::withSlice(NetId base, unsigned hi, unsigned lo, NetId part) {
  unsigned w = nodes[base].width;
  std::vector<NetId> parts;
  if (hi + 1 < w) parts.push_back(addSlice(base, w - 1, hi + 1));
  parts.push_back(part);
  if (lo > 0) parts.push_back(addSlice(base, lo - 1, 0));
  if (parts.size() == 1) return parts[0];
  return addConcat(std::move(parts));
}

std::vector<NetId> Netlist::topoOrder() const {
  const std::size_t n = nodes.size();
  std::vector<int> indegree(n, 0);
  std::vector<std::vector<NetId>> users(n);
  auto isSource = [&](NetId id) {
    NodeKind k = nodes[id].kind;
    return k == NodeKind::Input || k == NodeKind::Const ||
           k == NodeKind::Reg;
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (isSource(static_cast<NetId>(i))) continue;
    for (NetId in : nodes[i].ins) {
      if (in == kNoNet) continue;
      // Edges only from combinational producers; Reg outputs are state.
      ++indegree[i];
      users[in].push_back(static_cast<NetId>(i));
    }
  }
  std::vector<NetId> order;
  order.reserve(n);
  std::vector<NetId> ready;
  for (std::size_t i = 0; i < n; ++i)
    if (indegree[i] == 0) ready.push_back(static_cast<NetId>(i));
  while (!ready.empty()) {
    NetId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (NetId u : users[id]) {
      if (--indegree[u] == 0) ready.push_back(u);
    }
  }
  if (order.size() != n)
    throw IsdlError("combinational cycle in generated netlist");
  return order;
}

std::vector<NetId> Netlist::cse() {
  // Value-number nodes in creation order; combinational nodes' inputs always
  // precede them, so one forward pass canonicalises everything. Registers,
  // inputs and (obviously) nothing stateful merge.
  struct Key {
    NodeKind kind;
    unsigned width;
    std::vector<NetId> ins;
    std::string payload;
    bool operator<(const Key& o) const {
      return std::tie(kind, width, ins, payload) <
             std::tie(o.kind, o.width, o.ins, o.payload);
    }
  };
  std::map<Key, NetId> table;
  std::vector<NetId> canon(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    Node& n = nodes[i];
    for (NetId& in : n.ins)
      if (in != kNoNet && n.kind != NodeKind::Reg) in = canon[in];
    if (n.kind == NodeKind::Reg || n.kind == NodeKind::Input) {
      canon[i] = static_cast<NetId>(i);
      continue;
    }
    Key key{n.kind, n.width, n.ins,
            cat(static_cast<int>(n.unOp), ",", static_cast<int>(n.binOp),
                ",", n.hi, ",", n.lo, ",", n.memId, ",",
                n.kind == NodeKind::Const ? n.constValue.toHexString() : "")};
    auto [it, inserted] = table.emplace(std::move(key), static_cast<NetId>(i));
    canon[i] = it->second;
  }
  // Reg inputs and external references rewire to canonical nodes.
  for (auto& n : nodes)
    if (n.kind == NodeKind::Reg)
      for (NetId& in : n.ins)
        if (in != kNoNet) in = canon[in];
  for (auto& m : memories)
    for (auto& p : m.writePorts) {
      p.enable = canon[p.enable];
      p.addr = canon[p.addr];
      p.data = canon[p.data];
    }
  for (auto& out : outputs) out.net = canon[out.net];
  if (cachedOne_ != kNoNet) cachedOne_ = canon[cachedOne_];
  if (cachedZero_ != kNoNet) cachedZero_ = canon[cachedZero_];

  // Duplicates are now dead; sweep and compose the maps.
  std::vector<NetId> sweep = sweepDead();
  std::vector<NetId> combined(canon.size(), kNoNet);
  for (std::size_t i = 0; i < canon.size(); ++i)
    combined[i] = sweep[canon[i]];
  return combined;
}

std::vector<NetId> Netlist::sweepDead() {
  const std::size_t n = nodes.size();
  std::vector<bool> live(n, false);
  std::vector<NetId> stack;
  auto mark = [&](NetId id) {
    if (id != kNoNet && !live[id]) {
      live[id] = true;
      stack.push_back(id);
    }
  };
  for (const auto& out : outputs) mark(out.net);
  for (std::size_t i = 0; i < n; ++i) {
    if (nodes[i].kind == NodeKind::Reg || nodes[i].kind == NodeKind::Input)
      mark(static_cast<NetId>(i));
  }
  for (const auto& m : memories) {
    for (const auto& p : m.writePorts) {
      mark(p.enable);
      mark(p.addr);
      mark(p.data);
    }
  }
  while (!stack.empty()) {
    NetId id = stack.back();
    stack.pop_back();
    for (NetId in : nodes[id].ins) mark(in);
  }

  std::vector<NetId> remap(n, kNoNet);
  std::vector<Node> kept;
  kept.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!live[i]) continue;
    remap[i] = static_cast<NetId>(kept.size());
    kept.push_back(std::move(nodes[i]));
  }
  for (auto& node : kept)
    for (NetId& in : node.ins)
      if (in != kNoNet) in = remap[in];
  nodes = std::move(kept);
  for (auto& m : memories)
    for (auto& p : m.writePorts) {
      p.enable = remap[p.enable];
      p.addr = remap[p.addr];
      p.data = remap[p.data];
    }
  for (auto& out : outputs) out.net = remap[out.net];
  cachedOne_ = cachedOne_ == kNoNet ? kNoNet : remap[cachedOne_];
  cachedZero_ = cachedZero_ == kNoNet ? kNoNet : remap[cachedZero_];
  return remap;
}

std::size_t Netlist::countNodes(NodeKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(nodes.begin(), nodes.end(),
                    [&](const Node& n) { return n.kind == kind; }));
}

}  // namespace isdl::hw
