#include "hw/decode.h"

#include "support/strings.h"

namespace isdl::hw {

NetId buildDecodeLine(Netlist& nl, NetId word, const sim::Signature& sig,
                      const std::string& name) {
  NetId acc = kNoNet;
  for (unsigned b = 0; b < sig.widthBits(); ++b) {
    if (!sig.careMask().bit(b)) continue;
    NetId bit = nl.addSlice(word, b, b);
    NetId literal = sig.constBits().bit(b) ? bit : nl.notNet(bit);
    acc = acc == kNoNet ? literal : nl.andNet(acc, literal);
  }
  // An all-don't-care signature matches unconditionally.
  if (acc == kNoNet) acc = nl.one();
  nl.nodes[acc].name = name;
  return acc;
}

NetId buildParamExtract(Netlist& nl, NetId word, const sim::Signature& sig,
                        unsigned p, const std::string& name) {
  const std::vector<unsigned>& bits = sig.instBitsOfParam(p);
  unsigned w = static_cast<unsigned>(bits.size());
  // Collect slices msb-first, collapsing contiguous descending runs: bits
  // k..k-r carried by instruction bits b..b-r become one Slice.
  std::vector<NetId> parts;
  int k = static_cast<int>(w) - 1;
  while (k >= 0) {
    unsigned hiBit = bits[k];
    int j = k;
    while (j > 0 && bits[j - 1] + 1 == bits[j]) --j;
    unsigned loBit = bits[j];
    parts.push_back(nl.addSlice(word, hiBit, loBit));
    k = j - 1;
  }
  const bool single = parts.size() == 1;
  NetId out = single ? parts[0] : nl.addConcat(std::move(parts));
  nl.nodes[out].name = name;
  return out;
}

}  // namespace isdl::hw
