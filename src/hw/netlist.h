// Word-level structural netlist: the target of HGEN's ISDL-to-hardware
// lowering (paper §4). Every combinational node produces exactly one net;
// sequential state is registers (Reg nodes) and memories (Memory elements
// with combinational read ports and clocked write ports).
//
// The same netlist feeds three consumers:
//   * hw/verilog.h    — synthesizable-Verilog emission,
//   * synth/mapper.h  — technology mapping / area / timing estimation,
//   * synth/gatesim.h — the cycle-based netlist simulator used as the
//                       paper's "Verilog-XL" comparator.

#ifndef ISDL_HW_NETLIST_H
#define ISDL_HW_NETLIST_H

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/ir.h"
#include "support/bitvector.h"

namespace isdl::hw {

enum class NodeKind {
  Input,    ///< external input port
  Const,    ///< literal value
  Unary,    ///< rtl::UnOp applied to ins[0]
  Binary,   ///< rtl::BinOp applied to ins[0], ins[1]
  AddSub,   ///< shared adder/subtractor: ins[2] ? ins[0]-ins[1] : ins[0]+ins[1]
  Mux,      ///< ins[0] ? ins[1] : ins[2] (sel is 1 bit)
  Slice,    ///< ins[0][hi:lo]
  Concat,   ///< {ins[0], ins[1], ...} — ins[0] is most significant
  ZExt,
  SExt,
  Trunc,
  IToF,     ///< int -> IEEE float macro block
  FToI,     ///< IEEE float -> int macro block
  Reg,      ///< clocked register; ins[0] = next value, ins[1] = enable (or -1)
  MemRead,  ///< combinational memory read; ins[0] = address
};

const char* nodeKindName(NodeKind k);

using NetId = int;
inline constexpr NetId kNoNet = -1;

struct Node {
  NodeKind kind = NodeKind::Const;
  unsigned width = 0;
  std::string name;        ///< optional; emitted as the Verilog wire name
  std::vector<NetId> ins;  ///< input nets (Reg: {next, enable-or-kNoNet})

  BitVector constValue;             // Const
  rtl::UnOp unOp = rtl::UnOp::BitNot;   // Unary
  rtl::BinOp binOp = rtl::BinOp::Add;   // Binary
  unsigned hi = 0, lo = 0;          // Slice
  int memId = -1;                   // MemRead
};

/// A clocked write port of a memory. Always full-width (read-modify-write
/// slicing is resolved by the datapath builder).
struct MemWritePort {
  NetId enable = kNoNet;  ///< 1-bit
  NetId addr = kNoNet;
  NetId data = kNoNet;
};

struct Memory {
  std::string name;
  unsigned width = 0;
  std::uint64_t depth = 0;
  std::vector<MemWritePort> writePorts;
};

struct OutputPort {
  std::string name;
  NetId net = kNoNet;
};

class Netlist {
 public:
  std::vector<Node> nodes;
  std::vector<Memory> memories;
  std::vector<OutputPort> outputs;

  // --- builders (return the new node's net id) -------------------------------
  NetId addInput(std::string name, unsigned width);
  NetId addConst(BitVector value, std::string name = {});
  NetId addUnary(rtl::UnOp op, NetId a, std::string name = {});
  NetId addBinary(rtl::BinOp op, NetId a, NetId b, std::string name = {});
  NetId addAddSub(NetId a, NetId b, NetId sub, std::string name = {});
  NetId addMux(NetId sel, NetId whenTrue, NetId whenFalse,
               std::string name = {});
  NetId addSlice(NetId a, unsigned hi, unsigned lo, std::string name = {});
  NetId addConcat(std::vector<NetId> parts, std::string name = {});
  NetId addExt(NodeKind kind, NetId a, unsigned width, std::string name = {});
  /// Creates a register whose next/enable inputs are wired later via
  /// setRegInputs (registers usually feed logic that computes their next
  /// value, so they are created first).
  NetId addReg(std::string name, unsigned width);
  void setRegInputs(NetId reg, NetId next, NetId enable = kNoNet);
  int addMemory(std::string name, unsigned width, std::uint64_t depth);
  NetId addMemRead(int memId, NetId addr, std::string name = {});
  void addMemWrite(int memId, NetId enable, NetId addr, NetId data);
  void addOutput(std::string name, NetId net);

  unsigned widthOf(NetId id) const { return nodes[id].width; }

  // --- conveniences used heavily by the datapath builder ---------------------
  /// 1-bit constants.
  NetId one();
  NetId zero();
  /// a AND b for 1-bit control nets, folding constants.
  NetId andNet(NetId a, NetId b);
  /// a OR b for 1-bit control nets, folding constants.
  NetId orNet(NetId a, NetId b);
  /// NOT a for 1-bit control nets.
  NetId notNet(NetId a);
  /// Replaces bits [hi:lo] of `base` with `part` (builds slices + concat).
  NetId withSlice(NetId base, unsigned hi, unsigned lo, NetId part);

  /// Topological order of combinational evaluation: every node appears after
  /// the nets it reads, with Reg outputs, Inputs and Consts as sources.
  /// Throws IsdlError on a combinational cycle.
  std::vector<NetId> topoOrder() const;

  /// Counts by kind (for reports and tests).
  std::size_t countNodes(NodeKind kind) const;

  /// Removes nodes unreachable from the design's roots (outputs, registers
  /// and their fan-in, memory write ports, inputs). Returns the old->new
  /// net-id map, with kNoNet for removed nodes — callers holding net ids
  /// must remap them.
  std::vector<NetId> sweepDead();

  /// Common-subexpression elimination by hash-consing: structurally
  /// identical combinational nodes collapse to one. This matters a lot for
  /// generated datapaths — operations of one field extract operands from the
  /// same instruction bits, so their operand networks unify, which in turn
  /// lets resource sharing add units without operand muxes. Returns the
  /// old->new map (dead duplicates removed via sweepDead internally).
  std::vector<NetId> cse();

 private:
  NetId push(Node node);
  NetId cachedOne_ = kNoNet, cachedZero_ = kNoNet;
};

}  // namespace isdl::hw

#endif  // ISDL_HW_NETLIST_H
