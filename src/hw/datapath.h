// HGEN datapath construction (paper §4): lowers a checked Machine to a
// word-level structural netlist implementing the full processor:
//
//   * instruction fetch   — maxSizeWords combinational reads of instruction
//                           memory at PC, PC+1, ...
//   * decode              — per-operation decode lines and parameter
//                           extraction (hw/decode.h), including per-option
//                           select lines for non-terminal operands
//   * execute             — each operation's RTL action/side effects lowered
//                           to operator nodes, guarded by its decode line
//   * write-back          — per-register priority networks and per-memory
//                           write ports; PC defaults to PC + instruction
//                           size and is overridden by taken branches
//   * bookkeeping         — halted latch, illegal-instruction flag, and
//                           architectural cycle/instruction counters (cycle
//                           cost decoded per instruction, including option
//                           extras)
//
// The model is a flow-through (single instruction per clock) implementation
// with immediate write-back: Latency/Stall/Usage are performance attributes
// measured by the ILS, not modelled structurally here; the architectural
// cycle counter accumulates each instruction's static Cycle cost so that
//     XSIM cycles == hw cycleCount + XSIM stall cycles
// holds exactly (validated by the co-simulation tests).

#ifndef ISDL_HW_DATAPATH_H
#define ISDL_HW_DATAPATH_H

#include <map>

#include "hw/netlist.h"
#include "sim/signature.h"

namespace isdl::hw {

/// Identifies the RTL operator instance a netlist node was lowered from —
/// the "node" granularity of the paper's resource-sharing algorithm (§4.1.2).
struct OpTag {
  unsigned field = 0;
  unsigned op = 0;
  unsigned stmt = 0;  ///< statement ordinal within the operation
};

struct HwModel {
  Netlist netlist;

  /// decodeLines[f][o] — 1-bit net, high iff field f decodes operation o.
  std::vector<std::vector<NetId>> decodeLines;
  /// Shareable operator nodes (Binary arithmetic etc.) with their origin.
  std::map<NetId, OpTag> operatorTags;

  NetId instNet = kNoNet;      ///< full fetched instruction image
  NetId haltedReg = kNoNet;    ///< latches once the halt operation retires
  NetId illegalNet = kNoNet;   ///< high when some field decodes nothing
  NetId cycleCountReg = kNoNet;  ///< 32-bit architectural cycle accumulator
  NetId instrCountReg = kNoNet;  ///< 32-bit retired-instruction counter
  NetId pcReg = kNoNet;

  /// Storage lowering: registers map to Reg nets, addressed kinds to
  /// memories.
  struct StorageMap {
    bool isMem = false;
    NetId reg = kNoNet;
    int mem = -1;
  };
  std::vector<StorageMap> storage;
};

/// Builds the complete hardware model (with common subexpressions merged).
/// The machine must have passed checkMachine and have a valid
/// SignatureTable.
HwModel buildDatapath(const Machine& machine, const sim::SignatureTable& sigs);

/// Applies a net-id remap (from Netlist::sweepDead or Netlist::cse) to every
/// net reference the model holds outside the netlist itself.
void remapModel(HwModel& model, const std::vector<NetId>& remap);

}  // namespace isdl::hw

#endif  // ISDL_HW_DATAPATH_H
