#include "hw/sharing.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "support/strings.h"

namespace isdl::hw {

namespace {

using rtl::BinOp;

/// Functional-unit class of a shareable node (rule R2). Nodes share only
/// within a class; Add and Sub collapse into one "addsub" class (the
/// paper's subset case).
struct UnitClass {
  enum Kind {
    AddSub, Mul, UDiv, SDiv, URem, SRem, Shl, LShr, AShr,
    FAdd, FSub, FMul, FDiv, IToF, FToI, None,
  } kind = None;
  unsigned width = 0;
  unsigned rhsWidth = 0;  ///< shifters: shift-amount width

  bool operator<(const UnitClass& o) const {
    return std::tie(kind, width, rhsWidth) <
           std::tie(o.kind, o.width, o.rhsWidth);
  }
  bool operator==(const UnitClass& o) const = default;
};

UnitClass classify(const Netlist& nl, const Node& n) {
  UnitClass c;
  c.width = n.width;
  if (n.kind == NodeKind::IToF) {
    c.kind = UnitClass::IToF;
    return c;
  }
  if (n.kind == NodeKind::FToI) {
    c.kind = UnitClass::FToI;
    return c;
  }
  if (n.kind != NodeKind::Binary && n.kind != NodeKind::AddSub) return c;
  c.rhsWidth = nl.nodes[n.ins[1]].width;
  if (n.kind == NodeKind::AddSub) {
    c.kind = UnitClass::AddSub;
    return c;
  }
  switch (n.binOp) {
    case BinOp::Add: case BinOp::Sub: c.kind = UnitClass::AddSub; break;
    case BinOp::Mul: c.kind = UnitClass::Mul; break;
    case BinOp::UDiv: c.kind = UnitClass::UDiv; break;
    case BinOp::SDiv: c.kind = UnitClass::SDiv; break;
    case BinOp::URem: c.kind = UnitClass::URem; break;
    case BinOp::SRem: c.kind = UnitClass::SRem; break;
    case BinOp::Shl: c.kind = UnitClass::Shl; break;
    case BinOp::LShr: c.kind = UnitClass::LShr; break;
    case BinOp::AShr: c.kind = UnitClass::AShr; break;
    case BinOp::FAdd: c.kind = UnitClass::FAdd; break;
    case BinOp::FSub: c.kind = UnitClass::FSub; break;
    case BinOp::FMul: c.kind = UnitClass::FMul; break;
    case BinOp::FDiv: c.kind = UnitClass::FDiv; break;
    default: break;
  }
  return c;
}

class BronKerbosch {
 public:
  explicit BronKerbosch(const std::vector<std::vector<bool>>& adj)
      : adj_(adj), n_(adj.size()) {}

  std::vector<std::vector<unsigned>> run() {
    std::vector<unsigned> r, p, x;
    for (unsigned v = 0; v < n_; ++v) p.push_back(v);
    recurse(r, p, x);
    return std::move(cliques_);
  }

 private:
  const std::vector<std::vector<bool>>& adj_;
  std::size_t n_;
  std::vector<std::vector<unsigned>> cliques_;

  void recurse(std::vector<unsigned>& r, std::vector<unsigned> p,
               std::vector<unsigned> x) {
    if (p.empty() && x.empty()) {
      cliques_.push_back(r);
      return;
    }
    // Pivot: vertex of P ∪ X with the most neighbours in P.
    unsigned pivot = 0;
    std::size_t bestCount = 0;
    bool havePivot = false;
    for (const auto* set : {&p, &x}) {
      for (unsigned u : *set) {
        std::size_t count = 0;
        for (unsigned v : p)
          if (adj_[u][v]) ++count;
        if (!havePivot || count > bestCount) {
          havePivot = true;
          bestCount = count;
          pivot = u;
        }
      }
    }
    std::vector<unsigned> candidates;
    for (unsigned v : p)
      if (!adj_[pivot][v]) candidates.push_back(v);
    for (unsigned v : candidates) {
      std::vector<unsigned> p2, x2;
      for (unsigned u : p)
        if (adj_[v][u]) p2.push_back(u);
      for (unsigned u : x)
        if (adj_[v][u]) x2.push_back(u);
      r.push_back(v);
      recurse(r, std::move(p2), std::move(x2));
      r.pop_back();
      p.erase(std::find(p.begin(), p.end(), v));
      x.push_back(v);
    }
  }
};

/// The combinational fan-in cone of `start` (including itself): transitive
/// closure over node inputs with Input/Const/Reg outputs as boundaries —
/// exactly the edge set Netlist::topoOrder() levelizes.
std::vector<bool> faninCone(const Netlist& nl, NetId start) {
  std::vector<bool> seen(nl.nodes.size(), false);
  std::vector<NetId> stack{start};
  seen[start] = true;
  while (!stack.empty()) {
    const Node& node = nl.nodes[stack.back()];
    stack.pop_back();
    if (node.kind == NodeKind::Input || node.kind == NodeKind::Const ||
        node.kind == NodeKind::Reg)
      continue;
    for (NetId in : node.ins) {
      if (in == kNoNet || seen[in]) continue;
      seen[in] = true;
      stack.push_back(in);
    }
  }
  return seen;
}

}  // namespace

std::vector<std::vector<unsigned>> maximalCliques(
    const std::vector<std::vector<bool>>& adjacency) {
  return BronKerbosch(adjacency).run();
}

SharingReport shareResources(HwModel& model, const Machine& machine,
                             const SharingOptions& options) {
  SharingReport report;
  Netlist& nl = model.netlist;

  // ---- collect shareable nodes grouped by unit class ----------------------
  struct Member {
    NetId net;
    OpTag tag;
  };
  std::map<UnitClass, std::vector<Member>> classes;
  for (const auto& [net, tag] : model.operatorTags) {
    UnitClass c = classify(nl, nl.nodes[net]);
    if (c.kind == UnitClass::None) continue;
    classes[c].push_back({net, tag});
  }

  // Pairwise exclusivity from two-operation constraints (rule R4).
  auto constraintExcludes = [&](const OpTag& a, const OpTag& b) {
    if (!options.useConstraints) return false;
    for (const auto& con : machine.constraints) {
      if (con.ops.size() != 2) continue;
      OpRef ra{a.field, a.op}, rb{b.field, b.op};
      if ((con.ops[0] == ra && con.ops[1] == rb) ||
          (con.ops[0] == rb && con.ops[1] == ra))
        return true;
    }
    return false;
  };

  std::vector<bool> merged(nl.nodes.size(), false);

  for (auto& [cls, members] : classes) {
    report.shareableNodes += members.size();
    if (members.size() < 2) {
      report.unitsAfter += members.size();
      continue;
    }
    // ---- compatibility matrix (Figure 5) ----------------------------------
    const std::size_t n = members.size();
    std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const OpTag& a = members[i].tag;
        const OpTag& b = members[j].tag;
        bool ok;
        if (a.field == b.field && a.op == b.op) {
          ok = false;  // R1: nodes of the same operation run in parallel
        } else if (a.field == b.field) {
          ok = true;   // R3: same field -> mutually exclusive operations
        } else {
          ok = constraintExcludes(a, b);  // R4 + constraint refinement
        }
        adj[i][j] = adj[j][i] = ok;
      }
    }

    // R5 (structural): two nodes may share a unit only when neither lies in
    // the other's combinational fan-in — CSE lets a node tagged for one
    // operation feed another operation's expression, and merging such a pair
    // would route the shared unit's output back into its own operand mux.
    // The decode lines make that loop false dynamically, but the netlist is
    // levelized structurally, so it must stay acyclic. Rewiring extends
    // cones, so this is re-applied after every merge.
    auto pruneDependentPairs = [&](std::vector<bool>& assignedSet) {
      std::vector<std::vector<bool>> cones(n);
      for (std::size_t i = 0; i < n; ++i)
        if (!assignedSet[i]) cones[i] = faninCone(nl, members[i].net);
      for (std::size_t i = 0; i < n; ++i) {
        if (assignedSet[i]) continue;
        for (std::size_t j = i + 1; j < n; ++j) {
          if (assignedSet[j] || !adj[i][j]) continue;
          if (cones[i][members[j].net] || cones[j][members[i].net])
            adj[i][j] = adj[j][i] = false;
        }
      }
    };
    std::vector<bool> noneAssigned(n, false);
    pruneDependentPairs(noneAssigned);

    // ---- maximal cliques + greedy, profitability-aware cover --------------
    // The paper notes the resource-sharing problem "can be solved using a
    // combinatorial optimization strategy" (§4.1): we only instantiate a
    // clique when the unit saved outweighs the operand muxes added. Mux cost
    // is computed on *distinct* operand nets — after CSE, operations of one
    // field usually read identically extracted operands, making their muxes
    // free.
    auto standaloneArea = [&](const Node& node) {
      double w = node.width;
      if (node.kind == NodeKind::AddSub) return 11.0 * w;
      if (node.kind == NodeKind::IToF || node.kind == NodeKind::FToI)
        return node.width > 32 ? 7200.0 : 2400.0;
      switch (node.binOp) {
        case BinOp::Add: case BinOp::Sub: return 8.0 * w;
        case BinOp::Mul: return 7.2 * w * w;
        case BinOp::UDiv: case BinOp::SDiv:
        case BinOp::URem: case BinOp::SRem: return 11.0 * w * w;
        case BinOp::Shl: case BinOp::LShr: case BinOp::AShr:
          return 3.0 * w * std::max(1.0, std::ceil(std::log2(w)));
        case BinOp::FAdd: case BinOp::FSub: return w > 32 ? 12600.0 : 4200.0;
        case BinOp::FMul: return w > 32 ? 33000.0 : 11000.0;
        case BinOp::FDiv: return w > 32 ? 42000.0 : 14000.0;
        default: return 2.0 * w;
      }
    };

    auto cliques = maximalCliques(adj);
    report.maximalCliques += cliques.size();
    std::vector<bool> assigned(n, false);

    struct Pick {
      std::vector<unsigned> take;
      double profit = 0;
      bool mixedAddSub = false;
      bool anySub = false;
    };
    // Profit of sharing the unassigned members of one clique: the naive
    // scheme's summed area versus one unit plus operand muxes on *distinct*
    // input nets.
    auto evalClique = [&](const std::vector<unsigned>& clique) {
      Pick p;
      // Merging rewires consumers, which can put one clique member into
      // another's fan-in cone after the fact; the pruned adjacency tracks
      // that, so re-filter the clique against it (bits only ever clear, so
      // any subset taken here is still a clique).
      for (unsigned v : clique) {
        if (assigned[v]) continue;
        bool compatible = true;
        for (unsigned u : p.take)
          if (!adj[v][u]) {
            compatible = false;
            break;
          }
        if (compatible) p.take.push_back(v);
      }
      if (p.take.size() < 2) {
        p.take.clear();
        return p;
      }
      double naive = 0;
      std::set<NetId> distinctA, distinctB;
      bool anyAdd = false;
      for (unsigned v : p.take) {
        const Node& node = nl.nodes[members[v].net];
        naive += standaloneArea(node);
        distinctA.insert(node.ins[0]);
        if (node.ins.size() > 1) distinctB.insert(node.ins[1]);
        if (node.kind == NodeKind::AddSub)
          p.anySub = anyAdd = true;
        else if (node.kind == NodeKind::Binary && node.binOp == BinOp::Sub)
          p.anySub = true;
        else
          anyAdd = true;
      }
      const Node& proto = nl.nodes[members[p.take[0]].net];
      p.mixedAddSub = cls.kind == UnitClass::AddSub && p.anySub && anyAdd;
      double unit =
          p.mixedAddSub ? 11.0 * proto.width : standaloneArea(proto);
      double muxArea =
          3.0 * proto.width *
          (double(distinctA.size() - 1) +
           (distinctB.empty() ? 0 : double(distinctB.size() - 1)));
      p.profit = naive - (unit + muxArea);
      return p;
    };

    // Greedy cover by best profit: repeatedly instantiate the most
    // profitable remaining clique (the paper's "combinatorial optimization
    // strategy", §4.1).
    for (;;) {
      Pick best;
      for (const auto& clique : cliques) {
        Pick p = evalClique(clique);
        if (!p.take.empty() && p.profit > best.profit) best = std::move(p);
      }
      if (best.take.empty() || best.profit <= 0) break;
      const std::vector<unsigned>& take = best.take;
      const bool mixedAddSub = best.mixedAddSub;
      const bool anySub = best.anySub;

      for (unsigned v : take) assigned[v] = true;
      ++report.cliquesUsed;
      ++report.unitsAfter;

      // ---- instantiate the shared unit -------------------------------------
      // Operand muxes keyed by each member's decode line; the first member
      // is the lowest-priority default (exactly one line is high whenever
      // the output is consumed).
      auto memberSel = [&](unsigned v) {
        const OpTag& tag = members[v].tag;
        return model.decodeLines[tag.field][tag.op];
      };
      NetId aMux = kNoNet, bMux = kNoNet, subMux = kNoNet;
      const bool isAddSubClass = cls.kind == UnitClass::AddSub;
      const bool unaryClass =
          cls.kind == UnitClass::IToF || cls.kind == UnitClass::FToI;
      for (std::size_t k = 0; k < take.size(); ++k) {
        const Node& node = nl.nodes[members[take[k]].net];
        NetId a = node.ins[0];
        NetId b = unaryClass ? kNoNet : node.ins[1];
        NetId sub;
        if (node.kind == NodeKind::AddSub) {
          sub = node.ins[2];
        } else if (!unaryClass && node.binOp == BinOp::Sub) {
          sub = nl.one();
        } else {
          sub = nl.zero();
        }
        if (k == 0) {
          aMux = a;
          bMux = b;
          subMux = sub;
        } else {
          NetId sel = memberSel(take[k]);
          aMux = nl.addMux(sel, a, aMux);
          ++report.muxesAdded;
          if (!unaryClass) {
            bMux = nl.addMux(sel, b, bMux);
            ++report.muxesAdded;
          }
          if (isAddSubClass) {
            subMux = nl.addMux(sel, sub, subMux);
            ++report.muxesAdded;
          }
        }
      }

      NetId shared;
      const Node& first = nl.nodes[members[take[0]].net];
      if (isAddSubClass && mixedAddSub) {
        shared = nl.addAddSub(aMux, bMux, subMux,
                              cat("shared_addsub", report.cliquesUsed));
      } else if (isAddSubClass) {
        // All members agree on add vs sub: a plain unit suffices.
        shared = nl.addBinary(anySub ? BinOp::Sub : BinOp::Add, aMux, bMux,
                              cat("shared_unit", report.cliquesUsed));
      } else if (first.kind == NodeKind::IToF || first.kind == NodeKind::FToI) {
        shared = nl.addExt(first.kind, aMux, first.width,
                           cat("shared_unit", report.cliquesUsed));
      } else {
        shared = nl.addBinary(first.binOp, aMux, bMux,
                              cat("shared_unit", report.cliquesUsed));
      }

      // ---- rewire consumers of every member to the shared output -----------
      for (unsigned v : take) {
        NetId old = members[v].net;
        merged[old] = true;
        for (auto& node : nl.nodes) {
          if (&node == &nl.nodes[shared]) continue;
          for (NetId& in : node.ins)
            if (in == old) in = shared;
        }
        for (auto& mem : nl.memories)
          for (auto& port : mem.writePorts) {
            if (port.enable == old) port.enable = shared;
            if (port.addr == old) port.addr = shared;
            if (port.data == old) port.data = shared;
          }
        for (auto& out : nl.outputs)
          if (out.net == old) out.net = shared;
      }
      pruneDependentPairs(assigned);
    }
    for (std::size_t v = 0; v < n; ++v)
      if (!assigned[v]) ++report.unitsAfter;
  }
  report.unitsBefore = report.shareableNodes;

  // ---- sweep dead members and remap the model's net references --------------
  std::vector<NetId> remap = nl.sweepDead();
  remapModel(model, remap);
  return report;
}

}  // namespace isdl::hw
