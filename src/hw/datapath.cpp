#include "hw/datapath.h"

#include <algorithm>

#include "hw/decode.h"
#include "isdl/sema.h"
#include "support/strings.h"

namespace isdl::hw {

namespace {

using rtl::BinOp;
using rtl::Expr;
using rtl::ExprKind;
using rtl::Stmt;
using rtl::StmtKind;
using rtl::UnOp;

bool isShareableBinOp(BinOp op) {
  switch (op) {
    case BinOp::Add: case BinOp::Sub: case BinOp::Mul:
    case BinOp::UDiv: case BinOp::SDiv: case BinOp::URem: case BinOp::SRem:
    case BinOp::Shl: case BinOp::LShr: case BinOp::AShr:
    case BinOp::FAdd: case BinOp::FSub: case BinOp::FMul: case BinOp::FDiv:
      return true;
    default:
      return false;  // bitwise/compare gates are cheap; sharing buys nothing
  }
}

class Builder {
 public:
  Builder(const Machine& m, const sim::SignatureTable& sigs)
      : m_(m), sigs_(sigs) {}

  HwModel build() {
    lowerStorage();
    fetch();
    decodeAll();
    // Actions first, then side effects, matching the simulator's phase
    // ordering so that conflicting writes resolve identically (side effects
    // override actions).
    for (std::size_t f = 0; f < m_.fields.size(); ++f)
      for (std::size_t o = 0; o < m_.fields[f].operations.size(); ++o)
        lowerOperation(static_cast<unsigned>(f), static_cast<unsigned>(o),
                       /*sideEffects=*/false);
    for (std::size_t f = 0; f < m_.fields.size(); ++f)
      for (std::size_t o = 0; o < m_.fields[f].operations.size(); ++o)
        lowerOperation(static_cast<unsigned>(f), static_cast<unsigned>(o),
                       /*sideEffects=*/true);
    finalizeControl();
    finalizeWrites();
    return std::move(model_);
  }

 private:
  const Machine& m_;
  const sim::SignatureTable& sigs_;
  HwModel model_;
  Netlist& nl() { return model_.netlist; }

  /// Per-(field,op): parameter value nets (encoded values).
  std::vector<std::vector<std::vector<NetId>>> paramNets_;
  /// Accumulated write requests, applied in emission order (later wins).
  struct WriteRec {
    unsigned storage;
    NetId enable;
    NetId addr;  // kNoNet for non-addressed kinds
    bool hasSlice = false;
    unsigned hi = 0, lo = 0;
    NetId data;
  };
  std::vector<WriteRec> writes_;

  NetId runEnable_ = kNoNet;  ///< ~halted: gates every architectural write
  unsigned curStmt_ = 0;
  unsigned curField_ = 0, curOp_ = 0;

  /// Lowering context: parameter value nets for the current operation or
  /// (recursively) non-terminal option.
  struct Ctx {
    const std::vector<Param>* params;
    std::vector<NetId> paramNets;
  };

  void tagOperator(NetId id) {
    model_.operatorTags[id] = {curField_, curOp_, curStmt_};
  }

  // --- storage -----------------------------------------------------------------
  void lowerStorage() {
    model_.storage.resize(m_.storages.size());
    for (std::size_t si = 0; si < m_.storages.size(); ++si) {
      const StorageDef& st = m_.storages[si];
      auto& map = model_.storage[si];
      if (isAddressed(st.kind)) {
        map.isMem = true;
        map.mem = nl().addMemory(st.name, st.width, st.depth);
      } else {
        map.reg = nl().addReg(st.name, st.width);
      }
    }
    model_.pcReg = model_.storage[m_.pcIndex].reg;
  }

  // --- fetch --------------------------------------------------------------------
  void fetch() {
    const unsigned words = m_.maxSizeWords();
    const unsigned w = m_.wordWidth;
    int imem = model_.storage[m_.imemIndex].mem;
    NetId pc = model_.pcReg;
    std::vector<NetId> parts;  // msb first
    for (unsigned k = words; k-- > 0;) {
      NetId addr = pc;
      if (k > 0) {
        NetId offset =
            nl().addConst(BitVector(nl().widthOf(pc), k));
        addr = nl().addBinary(BinOp::Add, pc, offset);
      }
      parts.push_back(nl().addMemRead(imem, addr, cat("fetch", k)));
    }
    model_.instNet = words == 1 ? parts[0]
                                : nl().addConcat(std::move(parts), "inst");
    (void)w;
  }

  // --- decode --------------------------------------------------------------------
  void decodeAll() {
    model_.decodeLines.resize(m_.fields.size());
    paramNets_.resize(m_.fields.size());
    for (std::size_t f = 0; f < m_.fields.size(); ++f) {
      const Field& field = m_.fields[f];
      model_.decodeLines[f].resize(field.operations.size());
      paramNets_[f].resize(field.operations.size());
      for (std::size_t o = 0; o < field.operations.size(); ++o) {
        const Operation& op = field.operations[o];
        const sim::Signature& sig =
            sigs_.operation(static_cast<unsigned>(f), static_cast<unsigned>(o));
        model_.decodeLines[f][o] = buildDecodeLine(
            nl(), model_.instNet, sig, cat("dec_", field.name, "_", op.name));
        for (std::size_t p = 0; p < op.params.size(); ++p) {
          paramNets_[f][o].push_back(buildParamExtract(
              nl(), model_.instNet, sig, static_cast<unsigned>(p),
              cat("par_", field.name, "_", op.name, "_", op.params[p].name)));
        }
      }
    }
  }

  // --- expression lowering ----------------------------------------------------------
  /// Mux chain over a non-terminal's options: result = per-option values
  /// selected by the option decode lines over the extracted return value.
  NetId lowerNtValue(const Param& p, NetId returnNet,
                     const std::function<NetId(const NtOption&, Ctx&)>& body) {
    const NonTerminal& nt = m_.nonTerminals[p.index];
    NetId acc = kNoNet;
    for (std::size_t o = nt.options.size(); o-- > 0;) {
      const NtOption& opt = nt.options[o];
      const sim::Signature& sig =
          sigs_.ntOption(p.index, static_cast<unsigned>(o));
      Ctx optCtx;
      optCtx.params = &opt.params;
      for (std::size_t q = 0; q < opt.params.size(); ++q)
        optCtx.paramNets.push_back(buildParamExtract(
            nl(), returnNet, sig, static_cast<unsigned>(q), ""));
      NetId value = body(opt, optCtx);
      if (acc == kNoNet) {
        acc = value;  // lowest-priority (last) option needs no mux
      } else {
        NetId line = buildDecodeLine(nl(), returnNet, sig, "");
        acc = nl().addMux(line, value, acc);
      }
    }
    return acc;
  }

  NetId lowerExpr(const Expr& e, Ctx& ctx) {
    switch (e.kind) {
      case ExprKind::Const:
        return nl().addConst(e.constant);

      case ExprKind::Param: {
        const Param& p = (*ctx.params)[e.paramIndex];
        NetId raw = ctx.paramNets[e.paramIndex];
        if (p.kind == ParamKind::Token) return raw;
        return lowerNtValue(p, raw, [&](const NtOption& opt, Ctx& optCtx) {
          return lowerExpr(*opt.value, optCtx);
        });
      }

      case ExprKind::Read:
        return model_.storage[e.storageIndex].reg;

      case ExprKind::ReadElem: {
        NetId addr = lowerExpr(*e.operands[0], ctx);
        return nl().addMemRead(model_.storage[e.storageIndex].mem, addr);
      }

      case ExprKind::Slice:
        return nl().addSlice(lowerExpr(*e.operands[0], ctx), e.sliceHi,
                             e.sliceLo);

      case ExprKind::Unary:
        return nl().addUnary(e.unOp, lowerExpr(*e.operands[0], ctx));

      case ExprKind::Binary: {
        NetId a = lowerExpr(*e.operands[0], ctx);
        NetId b = lowerExpr(*e.operands[1], ctx);
        NetId out = nl().addBinary(e.binOp, a, b);
        if (isShareableBinOp(e.binOp)) tagOperator(out);
        return out;
      }

      case ExprKind::Ternary: {
        NetId sel = lowerExpr(*e.operands[0], ctx);
        NetId t = lowerExpr(*e.operands[1], ctx);
        NetId f = lowerExpr(*e.operands[2], ctx);
        return nl().addMux(sel, t, f);
      }

      case ExprKind::ZExt:
        return nl().addExt(NodeKind::ZExt, lowerExpr(*e.operands[0], ctx),
                           e.extWidth);
      case ExprKind::SExt:
        return nl().addExt(NodeKind::SExt, lowerExpr(*e.operands[0], ctx),
                           e.extWidth);
      case ExprKind::Trunc:
        return nl().addExt(NodeKind::Trunc, lowerExpr(*e.operands[0], ctx),
                           e.extWidth);

      case ExprKind::Concat: {
        std::vector<NetId> parts;
        for (const auto& opnd : e.operands)
          parts.push_back(lowerExpr(*opnd, ctx));
        return nl().addConcat(std::move(parts));
      }

      case ExprKind::Carry: {
        // carry(a, b) = (zext(a) + zext(b))[w]
        NetId a = lowerExpr(*e.operands[0], ctx);
        NetId b = lowerExpr(*e.operands[1], ctx);
        unsigned w = nl().widthOf(a);
        NetId sum = nl().addBinary(BinOp::Add,
                                   nl().addExt(NodeKind::ZExt, a, w + 1),
                                   nl().addExt(NodeKind::ZExt, b, w + 1));
        tagOperator(sum);
        return nl().addSlice(sum, w, w);
      }

      case ExprKind::Overflow: {
        // ov = (a[msb] == b[msb]) & (s[msb] != a[msb])
        NetId a = lowerExpr(*e.operands[0], ctx);
        NetId b = lowerExpr(*e.operands[1], ctx);
        unsigned msb = nl().widthOf(a) - 1;
        NetId sum = nl().addBinary(BinOp::Add, a, b);
        tagOperator(sum);
        NetId sa = nl().addSlice(a, msb, msb);
        NetId sb = nl().addSlice(b, msb, msb);
        NetId ss = nl().addSlice(sum, msb, msb);
        NetId same = nl().notNet(nl().addBinary(BinOp::Xor, sa, sb));
        NetId diff = nl().addBinary(BinOp::Xor, ss, sa);
        return nl().andNet(same, diff);
      }

      case ExprKind::Borrow: {
        // borrow(a, b) = a <u b
        NetId a = lowerExpr(*e.operands[0], ctx);
        NetId b = lowerExpr(*e.operands[1], ctx);
        NetId out = nl().addBinary(BinOp::ULt, a, b);
        return out;
      }

      case ExprKind::IToF: {
        NetId out = nl().addExt(NodeKind::IToF,
                                lowerExpr(*e.operands[0], ctx), e.extWidth);
        tagOperator(out);
        return out;
      }
      case ExprKind::FToI: {
        NetId out = nl().addExt(NodeKind::FToI,
                                lowerExpr(*e.operands[0], ctx), e.extWidth);
        tagOperator(out);
        return out;
      }
    }
    throw IsdlError("bad expression kind in hardware lowering");
  }

  // --- statement lowering --------------------------------------------------------------
  void lowerLvalueWrite(const rtl::Lvalue& lv, Ctx& ctx, NetId enable,
                        NetId data) {
    if (lv.isParam) {
      const Param& p = (*ctx.params)[lv.paramIndex];
      const NonTerminal& nt = m_.nonTerminals[p.index];
      NetId raw = ctx.paramNets[lv.paramIndex];
      // One guarded write per option: enable AND option-select line.
      for (std::size_t o = 0; o < nt.options.size(); ++o) {
        const NtOption& opt = nt.options[o];
        if (!opt.lvalue) continue;
        const sim::Signature& sig =
            sigs_.ntOption(p.index, static_cast<unsigned>(o));
        NetId line = buildDecodeLine(nl(), raw, sig, "");
        Ctx optCtx;
        optCtx.params = &opt.params;
        for (std::size_t q = 0; q < opt.params.size(); ++q)
          optCtx.paramNets.push_back(buildParamExtract(
              nl(), raw, sig, static_cast<unsigned>(q), ""));
        lowerLvalueWrite(*opt.lvalue, optCtx, nl().andNet(enable, line),
                         data);
      }
      return;
    }
    WriteRec rec;
    rec.storage = lv.storageIndex;
    rec.enable = enable;
    rec.addr = lv.index ? lowerExpr(*lv.index, ctx) : kNoNet;
    rec.hasSlice = lv.hasSlice;
    rec.hi = lv.sliceHi;
    rec.lo = lv.sliceLo;
    rec.data = data;
    writes_.push_back(rec);
  }

  void lowerStmts(const std::vector<rtl::StmtPtr>& stmts, Ctx& ctx,
                  NetId enable) {
    for (const auto& stmt : stmts) {
      ++curStmt_;
      switch (stmt->kind) {
        case StmtKind::Assign: {
          NetId data = lowerExpr(*stmt->value, ctx);
          lowerLvalueWrite(stmt->dest, ctx, enable, data);
          break;
        }
        case StmtKind::If: {
          NetId cond = lowerExpr(*stmt->cond, ctx);
          lowerStmts(stmt->thenStmts, ctx, nl().andNet(enable, cond));
          if (!stmt->elseStmts.empty())
            lowerStmts(stmt->elseStmts, ctx,
                       nl().andNet(enable, nl().notNet(cond)));
          break;
        }
      }
    }
  }

  /// Option side effects (e.g. post-increment) for every non-terminal
  /// parameter of the current context, each guarded by its option line.
  void lowerOptionSideEffects(Ctx& ctx, NetId enable) {
    for (std::size_t i = 0; i < ctx.params->size(); ++i) {
      const Param& p = (*ctx.params)[i];
      if (p.kind != ParamKind::NonTerminal) continue;
      const NonTerminal& nt = m_.nonTerminals[p.index];
      NetId raw = ctx.paramNets[i];
      for (std::size_t o = 0; o < nt.options.size(); ++o) {
        const NtOption& opt = nt.options[o];
        const sim::Signature& sig =
            sigs_.ntOption(p.index, static_cast<unsigned>(o));
        NetId line = buildDecodeLine(nl(), raw, sig, "");
        Ctx optCtx;
        optCtx.params = &opt.params;
        for (std::size_t q = 0; q < opt.params.size(); ++q)
          optCtx.paramNets.push_back(buildParamExtract(
              nl(), raw, sig, static_cast<unsigned>(q), ""));
        NetId optEnable = nl().andNet(enable, line);
        lowerStmts(opt.sideEffects, optCtx, optEnable);
        lowerOptionSideEffects(optCtx, optEnable);
      }
    }
  }

  void lowerOperation(unsigned f, unsigned o, bool sideEffects) {
    curField_ = f;
    curOp_ = o;
    curStmt_ = 0;
    const Operation& op = m_.fields[f].operations[o];
    NetId enable = model_.decodeLines[f][o];
    Ctx ctx;
    ctx.params = &op.params;
    ctx.paramNets = paramNets_[f][o];
    if (!sideEffects) {
      lowerStmts(op.action, ctx, enable);
    } else {
      lowerStmts(op.sideEffects, ctx, enable);
      lowerOptionSideEffects(ctx, enable);
    }
  }

  // --- control: halt, illegal, PC, cost counters ------------------------------------------
  /// Per-field net (width `width`) selected by the field's decode lines via
  /// `perOp(o)` constants; defaults to operation 0's value.
  NetId muxOverOps(unsigned f, unsigned width,
                   const std::function<std::uint64_t(unsigned)>& perOp) {
    const Field& field = m_.fields[f];
    NetId acc = nl().addConst(BitVector(width, perOp(0)));
    for (std::size_t o = 1; o < field.operations.size(); ++o) {
      NetId v = nl().addConst(
          BitVector(width, perOp(static_cast<unsigned>(o))));
      acc = nl().addMux(model_.decodeLines[f][o], v, acc);
    }
    return acc;
  }

  /// Dynamic per-field cycle cost: the operation's base cycle cost plus the
  /// selected options' extras.
  NetId fieldCycleNet(unsigned f) {
    const Field& field = m_.fields[f];
    // Base costs via decode-line mux.
    NetId acc = muxOverOps(
        f, 8, [&](unsigned o) { return field.operations[o].costs.cycle; });
    // Option extras: for each op with non-terminal params whose options add
    // cycles, add a mux of the extras gated by the op's decode line.
    for (std::size_t o = 0; o < field.operations.size(); ++o) {
      const Operation& op = field.operations[o];
      for (std::size_t p = 0; p < op.params.size(); ++p) {
        if (op.params[p].kind != ParamKind::NonTerminal) continue;
        const NonTerminal& nt = m_.nonTerminals[op.params[p].index];
        bool anyExtra = false;
        for (const auto& opt : nt.options)
          if (opt.extraCosts.cycle) anyExtra = true;
        if (!anyExtra) continue;
        NetId raw = paramNets_[f][o][p];
        NetId extra = nl().addConst(BitVector(8, 0));
        for (std::size_t q = 0; q < nt.options.size(); ++q) {
          if (!nt.options[q].extraCosts.cycle) continue;
          const sim::Signature& sig =
              sigs_.ntOption(op.params[p].index, static_cast<unsigned>(q));
          NetId line = buildDecodeLine(nl(), raw, sig, "");
          extra = nl().addMux(
              line, nl().addConst(BitVector(8, nt.options[q].extraCosts.cycle)),
              extra);
        }
        NetId gated = nl().addMux(model_.decodeLines[f][o], extra,
                                  nl().addConst(BitVector(8, 0)));
        acc = nl().addBinary(BinOp::Add, acc, gated);
      }
    }
    return acc;
  }

  NetId maxNet(NetId a, NetId b) {
    NetId gt = nl().addBinary(BinOp::UGt, a, b);
    return nl().addMux(gt, a, b);
  }

  void finalizeControl() {
    // Halted latch.
    model_.haltedReg = nl().addReg("halted", 1);
    runEnable_ = nl().notNet(model_.haltedReg);

    NetId haltNow = nl().zero();
    auto it = m_.optionalInfo.find("halt_operation");
    if (it != m_.optionalInfo.end()) {
      auto dot = it->second.find('.');
      int f = m_.findField(it->second.substr(0, dot));
      if (f >= 0) {
        const Field& field = m_.fields[f];
        std::string opName = it->second.substr(dot + 1);
        for (std::size_t o = 0; o < field.operations.size(); ++o)
          if (field.operations[o].name == opName)
            haltNow = model_.decodeLines[f][o];
      }
    }
    nl().setRegInputs(model_.haltedReg,
                      nl().orNet(model_.haltedReg, haltNow), runEnable_);

    // Illegal-instruction flag: some field decodes no operation.
    NetId anyIllegal = nl().zero();
    for (std::size_t f = 0; f < m_.fields.size(); ++f) {
      NetId any = nl().zero();
      for (NetId line : model_.decodeLines[f]) any = nl().orNet(any, line);
      anyIllegal = nl().orNet(anyIllegal, nl().notNet(any));
    }
    model_.illegalNet = anyIllegal;

    // Instruction size and cycle cost (max over fields).
    NetId sizeNet = kNoNet;
    NetId cycleNet = kNoNet;
    for (std::size_t f = 0; f < m_.fields.size(); ++f) {
      NetId fs = muxOverOps(static_cast<unsigned>(f), 8, [&](unsigned o) {
        return m_.fields[f].operations[o].costs.size;
      });
      NetId fc = fieldCycleNet(static_cast<unsigned>(f));
      sizeNet = sizeNet == kNoNet ? fs : maxNet(sizeNet, fs);
      cycleNet = cycleNet == kNoNet ? fc : maxNet(cycleNet, fc);
    }

    // PC: default next = PC + size; branch writes (collected in writes_)
    // take priority in finalizeWrites().
    unsigned pcw = nl().widthOf(model_.pcReg);
    NetId sizeExt = pcw >= 8 ? nl().addExt(NodeKind::ZExt, sizeNet, pcw)
                             : nl().addSlice(sizeNet, pcw - 1, 0);
    pcDefault_ = nl().addBinary(BinOp::Add, model_.pcReg, sizeExt);

    // Architectural counters.
    model_.cycleCountReg = nl().addReg("cycle_count", 32);
    NetId cyc32 = nl().addExt(NodeKind::ZExt, cycleNet, 32);
    nl().setRegInputs(model_.cycleCountReg,
                      nl().addBinary(BinOp::Add, model_.cycleCountReg, cyc32),
                      runEnable_);
    model_.instrCountReg = nl().addReg("instr_count", 32);
    nl().setRegInputs(
        model_.instrCountReg,
        nl().addBinary(BinOp::Add, model_.instrCountReg,
                       nl().addConst(BitVector(32, 1))),
        runEnable_);

    nl().addOutput("halted", model_.haltedReg);
    nl().addOutput("illegal", model_.illegalNet);
    nl().addOutput("cycle_count", model_.cycleCountReg);
    nl().addOutput("instr_count", model_.instrCountReg);
    nl().addOutput("pc", model_.pcReg);
  }

  NetId pcDefault_ = kNoNet;

  void finalizeWrites() {
    // Registers: fold writers over the current value (PC over PC + size).
    for (std::size_t si = 0; si < m_.storages.size(); ++si) {
      const auto& map = model_.storage[si];
      if (map.isMem) continue;
      NetId acc = static_cast<int>(si) == m_.pcIndex ? pcDefault_ : map.reg;
      for (const auto& w : writes_) {
        if (w.storage != si) continue;
        NetId value =
            w.hasSlice ? nl().withSlice(acc, w.hi, w.lo, w.data) : w.data;
        acc = nl().addMux(w.enable, value, acc);
      }
      nl().setRegInputs(map.reg, acc, runEnable_);
    }
    // Memories: one write port per writer; slice writes read-modify-write.
    for (const auto& w : writes_) {
      const auto& map = model_.storage[w.storage];
      if (!map.isMem) continue;
      NetId data = w.data;
      if (w.hasSlice) {
        NetId old = nl().addMemRead(map.mem, w.addr);
        data = nl().withSlice(old, w.hi, w.lo, w.data);
      }
      nl().addMemWrite(map.mem, nl().andNet(w.enable, runEnable_), w.addr,
                       data);
    }
  }
};

}  // namespace

void remapModel(HwModel& model, const std::vector<NetId>& remap) {
  auto fix = [&](NetId& id) {
    if (id != kNoNet) id = remap[id];
  };
  for (auto& field : model.decodeLines)
    for (NetId& line : field) fix(line);
  fix(model.instNet);
  fix(model.haltedReg);
  fix(model.illegalNet);
  fix(model.cycleCountReg);
  fix(model.instrCountReg);
  fix(model.pcReg);
  for (auto& st : model.storage) fix(st.reg);
  // CSE can merge operator instances from different operations outright. A
  // merged node is live in several operations at once, so the per-operation
  // exclusivity reasoning of the sharing rules no longer applies to it:
  // drop its tag (it already IS shared, for free).
  std::map<NetId, OpTag> newTags;
  std::vector<NetId> conflicted;
  for (const auto& [net, tag] : model.operatorTags) {
    NetId mapped = remap[net];
    if (mapped == kNoNet) continue;
    auto it = newTags.find(mapped);
    if (it == newTags.end()) {
      newTags[mapped] = tag;
    } else if (it->second.field != tag.field || it->second.op != tag.op) {
      conflicted.push_back(mapped);
    }
  }
  for (NetId id : conflicted) newTags.erase(id);
  model.operatorTags = std::move(newTags);
}

HwModel buildDatapath(const Machine& machine,
                      const sim::SignatureTable& sigs) {
  HwModel model = Builder(machine, sigs).build();
  std::vector<NetId> remap = model.netlist.cse();
  remapModel(model, remap);
  return model;
}

}  // namespace isdl::hw
