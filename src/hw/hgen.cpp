#include "hw/hgen.h"

#include <chrono>

namespace isdl::hw {

namespace {
double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

HgenOutput runHgen(const Machine& machine, const sim::SignatureTable& sigs,
                   const HgenOptions& options) {
  HgenOutput out;
  auto t0 = std::chrono::steady_clock::now();

  out.model = buildDatapath(machine, sigs);
  if (options.share) {
    SharingOptions so;
    so.useConstraints = options.useConstraints;
    out.stats.sharing = shareResources(out.model, machine, so);
  } else {
    // Even the naive scheme sweeps unreachable logic.
    std::vector<NetId> remap = out.model.netlist.sweepDead();
    remapModel(out.model, remap);
  }

  VerilogOptions vo = options.verilog;
  if (vo.moduleName == "isdl_core") vo.moduleName = machine.name + "_core";
  out.verilog = emitVerilog(out.model.netlist, vo);
  out.stats.toolSeconds = secondsSince(t0);

  auto t1 = std::chrono::steady_clock::now();
  out.stats.area = synth::mapArea(out.model.netlist);
  out.stats.timing = synth::analyzeTiming(out.model.netlist);
  out.stats.siliconSeconds = secondsSince(t1);

  out.stats.cycleNs = out.stats.timing.criticalPathNs;
  out.stats.verilogLines = countLines(out.verilog);
  out.stats.dieSizeGridCells = out.stats.area.totalArea;
  out.stats.synthesisSeconds =
      out.stats.toolSeconds + out.stats.siliconSeconds;
  return out;
}

}  // namespace isdl::hw
