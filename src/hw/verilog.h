// Synthesizable-Verilog emission (paper §4: "We consider a description of
// the architecture in synthesizable Verilog to be a sufficient hardware
// model"). Emits the HGEN netlist as a single Verilog-2001 module:
//
//   * one wire + assign per combinational node,
//   * always @(posedge clk) blocks for registers (synchronous reset) and
//     for each memory's write ports (emission order = priority),
//   * memories as reg arrays with combinational read assigns,
//   * floating-point operators as instantiated macro blocks with stub
//     module definitions appended (a technology library would supply them).

#ifndef ISDL_HW_VERILOG_H
#define ISDL_HW_VERILOG_H

#include <string>

#include "hw/netlist.h"

namespace isdl::hw {

struct VerilogOptions {
  std::string moduleName = "isdl_core";
  bool emitMacroStubs = true;  ///< append stub modules for FP macro blocks
};

/// Renders the netlist as synthesizable Verilog.
std::string emitVerilog(const Netlist& netlist,
                        const VerilogOptions& options = {});

/// Number of newline-terminated lines in `text` (Table 2's metric).
std::size_t countLines(const std::string& text);

}  // namespace isdl::hw

#endif  // ISDL_HW_VERILOG_H
