// Small string helpers used across the toolchain.

#ifndef ISDL_SUPPORT_STRINGS_H
#define ISDL_SUPPORT_STRINGS_H

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace isdl {

inline bool startsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

inline std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r' || s.front() == '\n'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n'))
    s.remove_suffix(1);
  return s;
}

inline std::vector<std::string_view> splitLines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

inline std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t p = text.find(sep, start);
    if (p == std::string_view::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, p - start));
    start = p + 1;
  }
  return parts;
}

template <typename Range>
std::string join(const Range& items, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out += sep;
    first = false;
    out += item;
  }
  return out;
}

/// printf-free formatting helper: cat(1, " + ", x) etc.
template <typename... Args>
std::string cat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

}  // namespace isdl

#endif  // ISDL_SUPPORT_STRINGS_H
