#include "support/bitvector.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

namespace isdl {

// The special members, allocate/release/clearUnusedBits and topWordMask are
// defined inline in the header: they dominate the simulator's hot paths.

BitVector BitVector::fromString(unsigned width, std::string_view text) {
  if (text.empty()) throw std::invalid_argument("empty BitVector literal");
  bool negative = false;
  if (text.front() == '-') {
    negative = true;
    text.remove_prefix(1);
    if (text.empty()) throw std::invalid_argument("lone '-' literal");
  }
  BitVector result(width);
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    text.remove_prefix(2);
    unsigned bitPos = 0;
    for (auto it = text.rbegin(); it != text.rend(); ++it) {
      char c = *it;
      if (c == '_') continue;
      unsigned digit;
      if (c >= '0' && c <= '9') digit = unsigned(c - '0');
      else if (c >= 'a' && c <= 'f') digit = unsigned(c - 'a') + 10;
      else if (c >= 'A' && c <= 'F') digit = unsigned(c - 'A') + 10;
      else throw std::invalid_argument("bad hex digit in BitVector literal");
      for (unsigned b = 0; b < 4; ++b) {
        if (bitPos + b < width && ((digit >> b) & 1u))
          result.setBit(bitPos + b, true);
      }
      bitPos += 4;
    }
  } else if (text.size() > 2 && text[0] == '0' &&
             (text[1] == 'b' || text[1] == 'B')) {
    text.remove_prefix(2);
    unsigned bitPos = 0;
    for (auto it = text.rbegin(); it != text.rend(); ++it) {
      char c = *it;
      if (c == '_') continue;
      if (c != '0' && c != '1')
        throw std::invalid_argument("bad binary digit in BitVector literal");
      if (bitPos < width && c == '1') result.setBit(bitPos, true);
      ++bitPos;
    }
  } else {
    // Decimal: multiply-accumulate in the full width.
    BitVector ten(width, 10);
    for (char c : text) {
      if (c == '_') continue;
      if (c < '0' || c > '9')
        throw std::invalid_argument("bad decimal digit in BitVector literal");
      result = result.mul(ten).add(BitVector(width, std::uint64_t(c - '0')));
    }
  }
  if (negative) result = result.neg();
  return result;
}

BitVector BitVector::fromInt(unsigned width, std::int64_t value) {
  BitVector r(width);
  std::uint64_t uv = static_cast<std::uint64_t>(value);
  unsigned n = r.nwords_;
  std::uint64_t fill = value < 0 ? ~std::uint64_t{0} : 0;
  std::uint64_t* w = r.words();
  w[0] = uv;
  for (unsigned i = 1; i < n; ++i) w[i] = fill;
  r.clearUnusedBits();
  return r;
}

BitVector BitVector::allOnes(unsigned width) {
  BitVector r(width);
  std::uint64_t* w = r.words();
  for (unsigned i = 0; i < r.nwords_; ++i) w[i] = ~std::uint64_t{0};
  r.clearUnusedBits();
  return r;
}

bool BitVector::bit(unsigned i) const {
  if (i >= width_) throw std::out_of_range("BitVector::bit index");
  return (words()[i / 64] >> (i % 64)) & 1u;
}

void BitVector::setBit(unsigned i, bool v) {
  if (i >= width_) throw std::out_of_range("BitVector::setBit index");
  std::uint64_t mask = std::uint64_t{1} << (i % 64);
  if (v)
    words()[i / 64] |= mask;
  else
    words()[i / 64] &= ~mask;
}

bool BitVector::isAllOnes() const noexcept {
  if (width_ == 0) return false;
  const std::uint64_t* w = words();
  for (unsigned i = 0; i + 1 < nwords_; ++i)
    if (w[i] != ~std::uint64_t{0}) return false;
  return w[nwords_ - 1] == topWordMask(width_);
}

std::int64_t BitVector::toInt64() const noexcept {
  if (width_ == 0) return 0;
  std::uint64_t low = words()[0];
  if (width_ >= 64) return static_cast<std::int64_t>(low);
  if ((low >> (width_ - 1)) & 1u) low |= ~((std::uint64_t{1} << width_) - 1);
  return static_cast<std::int64_t>(low);
}

std::string BitVector::toHexString() const {
  unsigned digits = (width_ + 3) / 4;
  std::string s = "0x";
  s.reserve(2 + digits);
  for (unsigned d = digits; d-- > 0;) {
    unsigned lo = d * 4;
    unsigned v = 0;
    for (unsigned b = 0; b < 4 && lo + b < width_; ++b)
      v |= unsigned(bit(lo + b)) << b;
    s += "0123456789abcdef"[v];
  }
  return s;
}

std::string BitVector::toBinaryString() const {
  std::string s = "0b";
  s.reserve(2 + width_);
  for (unsigned i = width_; i-- > 0;) s += bit(i) ? '1' : '0';
  return s;
}

std::string BitVector::toUnsignedDecimalString() const {
  if (isZero()) return "0";
  // Repeated division by 10 on a copy of the words.
  std::string digits;
  BitVector v(*this);
  std::uint64_t* w = v.words();
  auto nonZero = [&] {
    for (unsigned i = 0; i < v.nwords_; ++i)
      if (w[i]) return true;
    return false;
  };
  while (nonZero()) {
    unsigned __int128 rem = 0;
    for (unsigned i = v.nwords_; i-- > 0;) {
      unsigned __int128 cur = (rem << 64) | w[i];
      w[i] = static_cast<std::uint64_t>(cur / 10);
      rem = cur % 10;
    }
    digits += char('0' + int(rem));
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

BitVector BitVector::zext(unsigned newWidth) const {
  if (newWidth < width_) throw std::invalid_argument("zext shrinks width");
  BitVector r(newWidth);
  std::copy(words(), words() + nwords_, r.words());
  return r;
}

BitVector BitVector::sext(unsigned newWidth) const {
  if (newWidth < width_) throw std::invalid_argument("sext shrinks width");
  BitVector r = zext(newWidth);
  if (isNegative()) {
    for (unsigned i = width_; i < newWidth; ++i) r.setBit(i, true);
  }
  return r;
}

BitVector BitVector::trunc(unsigned newWidth) const {
  if (newWidth > width_) throw std::invalid_argument("trunc grows width");
  BitVector r(newWidth);
  std::copy(words(), words() + r.nwords_, r.words());
  r.clearUnusedBits();
  return r;
}

BitVector BitVector::resize(unsigned newWidth) const {
  return newWidth >= width_ ? zext(newWidth) : trunc(newWidth);
}

BitVector BitVector::slice(unsigned hi, unsigned lo) const {
  if (hi < lo || hi >= width_)
    throw std::out_of_range("BitVector::slice range");
  unsigned w = hi - lo + 1;
  if (nwords_ == 1) return raw1(w, inline_[0] >> lo);
  BitVector r(w);
  // Word-at-a-time shift-out.
  const std::uint64_t* src = words();
  std::uint64_t* dst = r.words();
  unsigned wordShift = lo / 64;
  unsigned bitShift = lo % 64;
  for (unsigned i = 0; i < r.nwords_; ++i) {
    std::uint64_t low = src[i + wordShift] >> bitShift;
    std::uint64_t high = 0;
    if (bitShift != 0 && i + wordShift + 1 < nwords_)
      high = src[i + wordShift + 1] << (64 - bitShift);
    dst[i] = low | high;
  }
  r.clearUnusedBits();
  return r;
}

BitVector BitVector::withSlice(unsigned hi, unsigned lo,
                               const BitVector& v) const {
  BitVector r(*this);
  r.insertSlice(hi, lo, v);
  return r;
}

void BitVector::insertSlice(unsigned hi, unsigned lo, const BitVector& v) {
  if (hi < lo || hi >= width_)
    throw std::out_of_range("BitVector::insertSlice range");
  if (v.width_ != hi - lo + 1)
    throw std::invalid_argument("BitVector::insertSlice width mismatch");
  if (nwords_ == 1) {
    std::uint64_t field =
        v.width_ < 64 ? (std::uint64_t{1} << v.width_) - 1 : ~std::uint64_t{0};
    inline_[0] = (inline_[0] & ~(field << lo)) | (v.inline_[0] << lo);
    return;
  }
  for (unsigned i = 0; i < v.width_; ++i) setBit(lo + i, v.bit(i));
}

BitVector BitVector::concat(const BitVector& low) const {
  BitVector r(width_ + low.width_);
  for (unsigned i = 0; i < low.width_; ++i) r.setBit(i, low.bit(i));
  for (unsigned i = 0; i < width_; ++i) r.setBit(low.width_ + i, bit(i));
  return r;
}

void BitVector::requireSameWidth(const BitVector& rhs, const char* op) const {
  if (width_ != rhs.width_)
    throw std::invalid_argument(std::string("BitVector width mismatch in ") +
                                op);
}

BitVector BitVector::addSlow(const BitVector& rhs) const {
  return addWithCarry(rhs, false).sum;
}

BitVector::AddResult BitVector::addWithCarry(const BitVector& rhs,
                                             bool carryIn) const {
  requireSameWidth(rhs, "add");
  BitVector sum(width_);
  const std::uint64_t* a = words();
  const std::uint64_t* b = rhs.words();
  std::uint64_t* s = sum.words();
  unsigned __int128 carry = carryIn ? 1 : 0;
  for (unsigned i = 0; i < nwords_; ++i) {
    unsigned __int128 t = (unsigned __int128)a[i] + b[i] + carry;
    s[i] = static_cast<std::uint64_t>(t);
    carry = t >> 64;
  }
  // Carry out of bit width-1.
  bool carryOut;
  unsigned msb = width_ - 1;
  if (width_ % 64 == 0) {
    carryOut = carry != 0;
  } else {
    carryOut = (s[msb / 64] >> (width_ % 64)) & 1u;
  }
  bool aNeg = isNegative();
  bool bNeg = rhs.isNegative();
  sum.clearUnusedBits();
  bool rNeg = sum.isNegative();
  bool overflow = (aNeg == bNeg) && (rNeg != aNeg);
  return {std::move(sum), carryOut, overflow};
}

BitVector BitVector::subSlow(const BitVector& rhs) const {
  requireSameWidth(rhs, "sub");
  return addWithCarry(rhs.not_(), true).sum;
}

BitVector BitVector::mulSlow(const BitVector& rhs) const {
  requireSameWidth(rhs, "mul");
  BitVector r(width_);
  const std::uint64_t* a = words();
  const std::uint64_t* b = rhs.words();
  std::uint64_t* out = r.words();
  for (unsigned i = 0; i < nwords_; ++i) {
    if (a[i] == 0) continue;
    unsigned __int128 carry = 0;
    for (unsigned j = 0; i + j < nwords_; ++j) {
      unsigned __int128 t =
          (unsigned __int128)a[i] * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<std::uint64_t>(t);
      carry = t >> 64;
    }
  }
  r.clearUnusedBits();
  return r;
}

BitVector BitVector::udiv(const BitVector& rhs) const {
  requireSameWidth(rhs, "udiv");
  if (rhs.isZero()) return allOnes(width_);
  if (nwords_ == 1) return raw1(width_, inline_[0] / rhs.inline_[0]);
  // Schoolbook restoring division, bit at a time. Widths here are small
  // (architectural registers), so simplicity beats speed.
  BitVector quotient(width_);
  BitVector remainder(width_);
  for (unsigned i = width_; i-- > 0;) {
    remainder = remainder.shl(1);
    remainder.setBit(0, bit(i));
    if (!remainder.ult(rhs)) {
      remainder = remainder.sub(rhs);
      quotient.setBit(i, true);
    }
  }
  return quotient;
}

BitVector BitVector::urem(const BitVector& rhs) const {
  requireSameWidth(rhs, "urem");
  if (rhs.isZero()) return *this;
  if (nwords_ == 1) return raw1(width_, inline_[0] % rhs.inline_[0]);
  BitVector remainder(width_);
  for (unsigned i = width_; i-- > 0;) {
    remainder = remainder.shl(1);
    remainder.setBit(0, bit(i));
    if (!remainder.ult(rhs)) remainder = remainder.sub(rhs);
  }
  return remainder;
}

BitVector BitVector::sdiv(const BitVector& rhs) const {
  requireSameWidth(rhs, "sdiv");
  if (rhs.isZero()) return allOnes(width_);
  bool negA = isNegative(), negB = rhs.isNegative();
  BitVector a = negA ? neg() : *this;
  BitVector b = negB ? rhs.neg() : rhs;
  BitVector q = a.udiv(b);
  return (negA != negB) ? q.neg() : q;
}

BitVector BitVector::srem(const BitVector& rhs) const {
  requireSameWidth(rhs, "srem");
  if (rhs.isZero()) return *this;
  bool negA = isNegative(), negB = rhs.isNegative();
  BitVector a = negA ? neg() : *this;
  BitVector b = negB ? rhs.neg() : rhs;
  BitVector r = a.urem(b);
  return negA ? r.neg() : r;  // remainder takes the dividend's sign
}

BitVector BitVector::negSlow() const { return not_().add(BitVector(width_, 1)); }

BitVector BitVector::andSlow(const BitVector& rhs) const {
  requireSameWidth(rhs, "and");
  BitVector r(width_);
  for (unsigned i = 0; i < nwords_; ++i)
    r.words()[i] = words()[i] & rhs.words()[i];
  return r;
}

BitVector BitVector::orSlow(const BitVector& rhs) const {
  requireSameWidth(rhs, "or");
  BitVector r(width_);
  for (unsigned i = 0; i < nwords_; ++i)
    r.words()[i] = words()[i] | rhs.words()[i];
  return r;
}

BitVector BitVector::xorSlow(const BitVector& rhs) const {
  requireSameWidth(rhs, "xor");
  BitVector r(width_);
  for (unsigned i = 0; i < nwords_; ++i)
    r.words()[i] = words()[i] ^ rhs.words()[i];
  return r;
}

BitVector BitVector::notSlow() const {
  BitVector r(width_);
  for (unsigned i = 0; i < nwords_; ++i) r.words()[i] = ~words()[i];
  r.clearUnusedBits();
  return r;
}

BitVector BitVector::shl(unsigned amount) const {
  if (amount >= width_) return BitVector(width_);
  if (nwords_ == 1) return raw1(width_, inline_[0] << amount);
  BitVector r(width_);
  unsigned wordShift = amount / 64;
  unsigned bitShift = amount % 64;
  const std::uint64_t* src = words();
  std::uint64_t* dst = r.words();
  for (unsigned i = nwords_; i-- > 0;) {
    std::uint64_t v = 0;
    if (i >= wordShift) {
      v = src[i - wordShift] << bitShift;
      if (bitShift != 0 && i > wordShift)
        v |= src[i - wordShift - 1] >> (64 - bitShift);
    }
    dst[i] = v;
  }
  r.clearUnusedBits();
  return r;
}

BitVector BitVector::lshr(unsigned amount) const {
  if (amount >= width_) return BitVector(width_);
  if (nwords_ == 1) return raw1(width_, inline_[0] >> amount);
  BitVector r(width_);
  unsigned wordShift = amount / 64;
  unsigned bitShift = amount % 64;
  const std::uint64_t* src = words();
  std::uint64_t* dst = r.words();
  for (unsigned i = 0; i < nwords_; ++i) {
    std::uint64_t v = 0;
    if (i + wordShift < nwords_) {
      v = src[i + wordShift] >> bitShift;
      if (bitShift != 0 && i + wordShift + 1 < nwords_)
        v |= src[i + wordShift + 1] << (64 - bitShift);
    }
    dst[i] = v;
  }
  return r;
}

BitVector BitVector::ashr(unsigned amount) const {
  bool neg = isNegative();
  if (amount >= width_)
    return neg ? allOnes(width_) : BitVector(width_);
  if (nwords_ == 1)
    return raw1(width_,
                std::uint64_t(toInt64() >> amount));  // C++20: arithmetic >>
  BitVector r = lshr(amount);
  if (neg) {
    for (unsigned i = width_ - amount; i < width_; ++i) r.setBit(i, true);
  }
  return r;
}

bool BitVector::ultSlow(const BitVector& rhs) const {
  requireSameWidth(rhs, "ult");
  const std::uint64_t* a = words();
  const std::uint64_t* b = rhs.words();
  for (unsigned i = nwords_; i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return false;
}

bool BitVector::ule(const BitVector& rhs) const {
  return !rhs.ult(*this);
}

bool BitVector::slt(const BitVector& rhs) const {
  requireSameWidth(rhs, "slt");
  if (nwords_ == 1) return toInt64() < rhs.toInt64();
  bool aNeg = isNegative(), bNeg = rhs.isNegative();
  if (aNeg != bNeg) return aNeg;
  return ult(rhs);
}

bool BitVector::sle(const BitVector& rhs) const { return !rhs.slt(*this); }

unsigned BitVector::popcount() const noexcept {
  unsigned n = 0;
  const std::uint64_t* w = words();
  for (unsigned i = 0; i < nwords_; ++i) n += unsigned(std::popcount(w[i]));
  return n;
}

std::size_t BitVector::hash() const noexcept {
  std::size_t h = std::hash<unsigned>{}(width_);
  const std::uint64_t* w = words();
  for (unsigned i = 0; i < nwords_; ++i) {
    h ^= std::hash<std::uint64_t>{}(w[i]) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
  }
  return h;
}

}  // namespace isdl
