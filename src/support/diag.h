// Diagnostics: source locations and an error collector shared by the ISDL
// front-end (lexer/parser/semantic analysis) and the assembler.

#ifndef ISDL_SUPPORT_DIAG_H
#define ISDL_SUPPORT_DIAG_H

#include <stdexcept>
#include <string>
#include <vector>

namespace isdl {

/// A position in an input buffer (1-based line/column; 0 means "unknown").
struct SourceLoc {
  unsigned line = 0;
  unsigned col = 0;

  bool known() const { return line != 0; }
  std::string str() const {
    if (!known()) return "<unknown>";
    return std::to_string(line) + ":" + std::to_string(col);
  }
};

enum class Severity { Note, Warning, Error };

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;

  std::string str() const {
    const char* sev = severity == Severity::Error     ? "error"
                      : severity == Severity::Warning ? "warning"
                                                      : "note";
    return loc.str() + ": " + sev + ": " + message;
  }
};

/// Collects diagnostics; callers check hasErrors() at phase boundaries.
class DiagnosticEngine {
 public:
  void error(SourceLoc loc, std::string message) {
    diags_.push_back({Severity::Error, loc, std::move(message)});
    ++errorCount_;
  }
  void warning(SourceLoc loc, std::string message) {
    diags_.push_back({Severity::Warning, loc, std::move(message)});
  }
  void note(SourceLoc loc, std::string message) {
    diags_.push_back({Severity::Note, loc, std::move(message)});
  }

  bool hasErrors() const { return errorCount_ != 0; }
  unsigned errorCount() const { return errorCount_; }
  const std::vector<Diagnostic>& all() const { return diags_; }

  /// All diagnostics joined with newlines — convenient for test failure
  /// messages and for the thrown summary below.
  std::string dump() const {
    std::string out;
    for (const auto& d : diags_) {
      out += d.str();
      out += '\n';
    }
    return out;
  }

  void clear() {
    diags_.clear();
    errorCount_ = 0;
  }

 private:
  std::vector<Diagnostic> diags_;
  unsigned errorCount_ = 0;
};

/// Thrown by convenience entry points (e.g. "parse this description or die")
/// when the caller did not supply a DiagnosticEngine to inspect.
class IsdlError : public std::runtime_error {
 public:
  explicit IsdlError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace isdl

#endif  // ISDL_SUPPORT_DIAG_H
