// BitVector: arbitrary-width, bit-true two's-complement integer value.
//
// This is the value type underlying every architectural quantity in the
// toolchain: storage elements, instruction words, RTL temporaries, and
// netlist signals. All operations are defined modulo 2^width, which is what
// makes the generated simulators "bit-true by construction" (paper section 3).
//
// Widths are arbitrary (not capped at 64): VLIW instruction words routinely
// exceed 64 bits (SPAM uses a 128-bit word). Values up to 128 bits are stored
// inline; wider values spill to the heap.

#ifndef ISDL_SUPPORT_BITVECTOR_H
#define ISDL_SUPPORT_BITVECTOR_H

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace isdl {

class BitVector {
 public:
  /// Width-0 vector. Valid only as a "no value" placeholder; most operations
  /// require width > 0.
  BitVector() noexcept : width_(0), nwords_(0) { inline_.fill(0); }

  /// Zero-valued vector of the given width.
  explicit BitVector(unsigned width);

  /// Vector of `width` bits holding `value` (truncated modulo 2^width).
  BitVector(unsigned width, std::uint64_t value);

  BitVector(const BitVector& other);
  BitVector(BitVector&& other) noexcept;
  BitVector& operator=(const BitVector& other);
  BitVector& operator=(BitVector&& other) noexcept;
  ~BitVector();

  /// Parses "0x..", "0b..", or decimal digits into a vector of the given
  /// width. Throws std::invalid_argument on malformed input or overflow of
  /// the requested width (decimal only; hex/binary truncate like hardware).
  static BitVector fromString(unsigned width, std::string_view text);

  /// Signed construction: sign-extends `value` then truncates to `width`.
  static BitVector fromInt(unsigned width, std::int64_t value);

  /// All-ones vector of the given width.
  static BitVector allOnes(unsigned width);

  unsigned width() const noexcept { return width_; }
  bool valid() const noexcept { return width_ != 0; }

  bool bit(unsigned i) const;
  void setBit(unsigned i, bool v);

  bool isZero() const noexcept;
  bool isAllOnes() const noexcept;
  /// True if the sign bit (msb) is set.
  bool isNegative() const { return bit(width_ - 1); }

  /// Low 64 bits (zero-extended if narrower).
  std::uint64_t toUint64() const noexcept;
  /// Low 64 bits with the value sign-extended from `width` into 64 bits.
  std::int64_t toInt64() const noexcept;

  std::string toHexString() const;     // e.g. "0x0f3a" (width/4 digits, ceil)
  std::string toBinaryString() const;  // e.g. "0b0101", width digits
  std::string toUnsignedDecimalString() const;

  // --- width changes -------------------------------------------------------
  BitVector zext(unsigned newWidth) const;  ///< zero-extend (newWidth >= width)
  BitVector sext(unsigned newWidth) const;  ///< sign-extend (newWidth >= width)
  BitVector trunc(unsigned newWidth) const; ///< truncate  (newWidth <= width)
  /// zext or trunc as appropriate.
  BitVector resize(unsigned newWidth) const;

  // --- bit rearrangement ---------------------------------------------------
  /// Bits [hi..lo] inclusive as a (hi-lo+1)-wide vector.
  BitVector slice(unsigned hi, unsigned lo) const;
  /// Copy of *this with bits [hi..lo] replaced by `v` (v.width == hi-lo+1).
  BitVector withSlice(unsigned hi, unsigned lo, const BitVector& v) const;
  /// In-place variant of withSlice.
  void insertSlice(unsigned hi, unsigned lo, const BitVector& v);
  /// {*this, low}: *this occupies the high bits.
  BitVector concat(const BitVector& low) const;

  // --- arithmetic (operands must have equal widths; result same width) ------
  BitVector add(const BitVector& rhs) const;
  BitVector sub(const BitVector& rhs) const;
  BitVector mul(const BitVector& rhs) const;
  BitVector udiv(const BitVector& rhs) const;  ///< x/0 yields all-ones
  BitVector urem(const BitVector& rhs) const;  ///< x%0 yields x
  BitVector sdiv(const BitVector& rhs) const;
  BitVector srem(const BitVector& rhs) const;
  BitVector neg() const;

  struct AddResult;
  /// Add with carry-in; reports carry-out and signed overflow — used by
  /// operation side-effects that set condition codes.
  AddResult addWithCarry(const BitVector& rhs, bool carryIn) const;

  // --- bitwise --------------------------------------------------------------
  BitVector and_(const BitVector& rhs) const;
  BitVector or_(const BitVector& rhs) const;
  BitVector xor_(const BitVector& rhs) const;
  BitVector not_() const;

  // --- shifts (shift amount is a plain integer; result keeps width) ---------
  BitVector shl(unsigned amount) const;
  BitVector lshr(unsigned amount) const;
  BitVector ashr(unsigned amount) const;

  // --- comparisons -----------------------------------------------------------
  bool operator==(const BitVector& rhs) const noexcept;
  bool operator!=(const BitVector& rhs) const noexcept { return !(*this == rhs); }
  bool ult(const BitVector& rhs) const;
  bool ule(const BitVector& rhs) const;
  bool slt(const BitVector& rhs) const;
  bool sle(const BitVector& rhs) const;

  // --- reductions -------------------------------------------------------------
  unsigned popcount() const noexcept;
  bool reduceAnd() const noexcept { return isAllOnes(); }
  bool reduceOr() const noexcept { return !isZero(); }
  bool reduceXor() const noexcept { return popcount() & 1u; }

  /// Stable hash suitable for unordered containers.
  std::size_t hash() const noexcept;

 private:
  static constexpr unsigned kInlineWords = 2;  // 128 bits inline

  unsigned width_;
  unsigned nwords_;
  union {
    std::array<std::uint64_t, kInlineWords> inline_;
    std::uint64_t* heap_;
  };

  bool onHeap() const noexcept { return nwords_ > kInlineWords; }
  std::uint64_t* words() noexcept { return onHeap() ? heap_ : inline_.data(); }
  const std::uint64_t* words() const noexcept {
    return onHeap() ? heap_ : inline_.data();
  }
  void allocate(unsigned width);
  void release() noexcept;
  void clearUnusedBits() noexcept;
  static unsigned wordsFor(unsigned width) { return (width + 63) / 64; }
  void requireSameWidth(const BitVector& rhs, const char* op) const;
};

struct BitVector::AddResult {
  BitVector sum;
  bool carryOut;
  bool overflow;
};

}  // namespace isdl

template <>
struct std::hash<isdl::BitVector> {
  std::size_t operator()(const isdl::BitVector& v) const noexcept {
    return v.hash();
  }
};

#endif  // ISDL_SUPPORT_BITVECTOR_H
