// BitVector: arbitrary-width, bit-true two's-complement integer value.
//
// This is the value type underlying every architectural quantity in the
// toolchain: storage elements, instruction words, RTL temporaries, and
// netlist signals. All operations are defined modulo 2^width, which is what
// makes the generated simulators "bit-true by construction" (paper section 3).
//
// Widths are arbitrary (not capped at 64): VLIW instruction words routinely
// exceed 64 bits (SPAM uses a 128-bit word). Values up to 128 bits are stored
// inline; wider values spill to the heap.

#ifndef ISDL_SUPPORT_BITVECTOR_H
#define ISDL_SUPPORT_BITVECTOR_H

#include <algorithm>
#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace isdl {

class BitVector {
 public:
  /// Width-0 vector. Valid only as a "no value" placeholder; most operations
  /// require width > 0.
  BitVector() noexcept : width_(0), nwords_(0) { inline_.fill(0); }

  // The special members are defined inline: storage elements, scratch
  // registers and pending-write queue entries churn through them on every
  // simulated cycle, so the call overhead is measurable.

  /// Zero-valued vector of the given width.
  explicit BitVector(unsigned width) {
    if (width == 0) throw std::invalid_argument("BitVector width must be > 0");
    allocate(width);
  }

  /// Vector of `width` bits holding `value` (truncated modulo 2^width).
  BitVector(unsigned width, std::uint64_t value) : BitVector(width) {
    words()[0] = value;
    clearUnusedBits();
  }

  BitVector(const BitVector& other) {
    allocate(other.width_ == 0 ? 0 : other.width_);
    width_ = other.width_;
    nwords_ = other.nwords_;
    if (width_ == 0) return;
    if (onHeap()) {
      // allocate() above used other.width_ so the buffer is correctly sized.
      std::copy(other.words(), other.words() + nwords_, heap_);
    } else {
      inline_ = other.inline_;
    }
  }

  BitVector(BitVector&& other) noexcept
      : width_(other.width_), nwords_(other.nwords_) {
    if (onHeap()) {
      heap_ = other.heap_;
      other.width_ = 0;
      other.nwords_ = 0;
      other.inline_.fill(0);
    } else {
      inline_ = other.inline_;
    }
  }

  BitVector& operator=(const BitVector& other) {
    if (this == &other) return *this;
    BitVector tmp(other);
    *this = std::move(tmp);
    return *this;
  }

  BitVector& operator=(BitVector&& other) noexcept {
    if (this == &other) return *this;
    release();
    width_ = other.width_;
    nwords_ = other.nwords_;
    if (onHeap()) {
      heap_ = other.heap_;
      other.width_ = 0;
      other.nwords_ = 0;
      other.inline_.fill(0);
    } else {
      inline_ = other.inline_;
    }
    return *this;
  }

  ~BitVector() { release(); }

  /// Parses "0x..", "0b..", or decimal digits into a vector of the given
  /// width. Throws std::invalid_argument on malformed input or overflow of
  /// the requested width (decimal only; hex/binary truncate like hardware).
  static BitVector fromString(unsigned width, std::string_view text);

  /// Signed construction: sign-extends `value` then truncates to `width`.
  static BitVector fromInt(unsigned width, std::int64_t value);

  /// All-ones vector of the given width.
  static BitVector allOnes(unsigned width);

  unsigned width() const noexcept { return width_; }
  bool valid() const noexcept { return width_ != 0; }

  /// Sets the value to zero, keeping width and allocation.
  void zeroFill() noexcept {
    std::uint64_t* w = words();
    for (unsigned i = 0; i < nwords_; ++i) w[i] = 0;
  }

  bool bit(unsigned i) const;
  void setBit(unsigned i, bool v);

  bool isZero() const noexcept;
  bool isAllOnes() const noexcept;
  /// True if the sign bit (msb) is set.
  bool isNegative() const { return bit(width_ - 1); }

  /// Low 64 bits (zero-extended if narrower).
  std::uint64_t toUint64() const noexcept;
  /// Low 64 bits with the value sign-extended from `width` into 64 bits.
  std::int64_t toInt64() const noexcept;

  std::string toHexString() const;     // e.g. "0x0f3a" (width/4 digits, ceil)
  std::string toBinaryString() const;  // e.g. "0b0101", width digits
  std::string toUnsignedDecimalString() const;

  // --- width changes -------------------------------------------------------
  BitVector zext(unsigned newWidth) const;  ///< zero-extend (newWidth >= width)
  BitVector sext(unsigned newWidth) const;  ///< sign-extend (newWidth >= width)
  BitVector trunc(unsigned newWidth) const; ///< truncate  (newWidth <= width)
  /// zext or trunc as appropriate.
  BitVector resize(unsigned newWidth) const;

  // --- bit rearrangement ---------------------------------------------------
  /// Bits [hi..lo] inclusive as a (hi-lo+1)-wide vector.
  BitVector slice(unsigned hi, unsigned lo) const;
  /// Copy of *this with bits [hi..lo] replaced by `v` (v.width == hi-lo+1).
  BitVector withSlice(unsigned hi, unsigned lo, const BitVector& v) const;
  /// In-place variant of withSlice.
  void insertSlice(unsigned hi, unsigned lo, const BitVector& v);
  /// {*this, low}: *this occupies the high bits.
  BitVector concat(const BitVector& low) const;

  // --- arithmetic (operands must have equal widths; result same width) ------
  BitVector add(const BitVector& rhs) const;
  BitVector sub(const BitVector& rhs) const;
  BitVector mul(const BitVector& rhs) const;
  BitVector udiv(const BitVector& rhs) const;  ///< x/0 yields all-ones
  BitVector urem(const BitVector& rhs) const;  ///< x%0 yields x
  BitVector sdiv(const BitVector& rhs) const;
  BitVector srem(const BitVector& rhs) const;
  BitVector neg() const;

  struct AddResult;
  /// Add with carry-in; reports carry-out and signed overflow — used by
  /// operation side-effects that set condition codes.
  AddResult addWithCarry(const BitVector& rhs, bool carryIn) const;

  // --- bitwise --------------------------------------------------------------
  BitVector and_(const BitVector& rhs) const;
  BitVector or_(const BitVector& rhs) const;
  BitVector xor_(const BitVector& rhs) const;
  BitVector not_() const;

  // --- shifts (shift amount is a plain integer; result keeps width) ---------
  BitVector shl(unsigned amount) const;
  BitVector lshr(unsigned amount) const;
  BitVector ashr(unsigned amount) const;

  // --- comparisons -----------------------------------------------------------
  bool operator==(const BitVector& rhs) const noexcept;
  bool operator!=(const BitVector& rhs) const noexcept { return !(*this == rhs); }
  bool ult(const BitVector& rhs) const;
  bool ule(const BitVector& rhs) const;
  bool slt(const BitVector& rhs) const;
  bool sle(const BitVector& rhs) const;

  // --- reductions -------------------------------------------------------------
  unsigned popcount() const noexcept;
  bool reduceAnd() const noexcept { return isAllOnes(); }
  bool reduceOr() const noexcept { return !isZero(); }
  bool reduceXor() const noexcept { return popcount() & 1u; }

  /// Stable hash suitable for unordered containers.
  std::size_t hash() const noexcept;

 private:
  static constexpr unsigned kInlineWords = 2;  // 128 bits inline

  unsigned width_;
  unsigned nwords_;
  union {
    std::array<std::uint64_t, kInlineWords> inline_;
    std::uint64_t* heap_;
  };

  bool onHeap() const noexcept { return nwords_ > kInlineWords; }
  std::uint64_t* words() noexcept { return onHeap() ? heap_ : inline_.data(); }
  const std::uint64_t* words() const noexcept {
    return onHeap() ? heap_ : inline_.data();
  }
  void allocate(unsigned width) {
    width_ = width;
    nwords_ = wordsFor(width);
    if (onHeap()) {
      heap_ = new std::uint64_t[nwords_]();
    } else {
      inline_.fill(0);
    }
  }
  void release() noexcept {
    if (onHeap()) delete[] heap_;
  }
  void clearUnusedBits() noexcept {
    if (width_ == 0 || nwords_ == 0) return;
    words()[nwords_ - 1] &= topWordMask(width_);
  }
  static std::uint64_t topWordMask(unsigned width) noexcept {
    unsigned rem = width % 64;
    return rem == 0 ? ~std::uint64_t{0} : ((std::uint64_t{1} << rem) - 1);
  }
  static unsigned wordsFor(unsigned width) { return (width + 63) / 64; }
  void requireSameWidth(const BitVector& rhs, const char* op) const;

  /// Single-word (width <= 64) value carrying `raw` truncated modulo
  /// 2^width. The constructor of the inline fast paths below.
  static BitVector raw1(unsigned width, std::uint64_t raw) noexcept {
    BitVector r;
    r.width_ = width;
    r.nwords_ = 1;
    r.inline_[0] = width < 64 ? raw & ((std::uint64_t{1} << width) - 1) : raw;
    return r;
  }

  // General multi-word paths (bitvector.cpp), taken when either operand
  // spans more than one 64-bit word.
  BitVector addSlow(const BitVector& rhs) const;
  BitVector subSlow(const BitVector& rhs) const;
  BitVector mulSlow(const BitVector& rhs) const;
  BitVector andSlow(const BitVector& rhs) const;
  BitVector orSlow(const BitVector& rhs) const;
  BitVector xorSlow(const BitVector& rhs) const;
  BitVector notSlow() const;
  BitVector negSlow() const;
  bool ultSlow(const BitVector& rhs) const;
};

// --- inline <=64-bit fast paths ----------------------------------------------
// Architectural values are overwhelmingly single-word (registers, flags,
// addresses); the simulator's micro-op dispatch loop funnels essentially
// every operation through these entry points, so they must not pay the
// multi-word machinery. Operands of mismatched widths fall through to the
// slow path, which throws the usual width-mismatch error.

inline bool BitVector::isZero() const noexcept {
  if (nwords_ == 1) return inline_[0] == 0;
  const std::uint64_t* w = words();
  for (unsigned i = 0; i < nwords_; ++i)
    if (w[i]) return false;
  return true;
}

inline std::uint64_t BitVector::toUint64() const noexcept {
  return nwords_ == 0 ? 0 : words()[0];
}

inline bool BitVector::operator==(const BitVector& rhs) const noexcept {
  if (width_ != rhs.width_) return false;
  if (nwords_ == 1) return inline_[0] == rhs.inline_[0];
  const std::uint64_t* a = words();
  const std::uint64_t* b = rhs.words();
  for (unsigned i = 0; i < nwords_; ++i)
    if (a[i] != b[i]) return false;
  return true;
}

inline bool BitVector::ult(const BitVector& rhs) const {
  if (nwords_ == 1 && rhs.width_ == width_) return inline_[0] < rhs.inline_[0];
  return ultSlow(rhs);
}

inline BitVector BitVector::add(const BitVector& rhs) const {
  if (nwords_ == 1 && rhs.width_ == width_)
    return raw1(width_, inline_[0] + rhs.inline_[0]);
  return addSlow(rhs);
}

inline BitVector BitVector::sub(const BitVector& rhs) const {
  if (nwords_ == 1 && rhs.width_ == width_)
    return raw1(width_, inline_[0] - rhs.inline_[0]);
  return subSlow(rhs);
}

inline BitVector BitVector::mul(const BitVector& rhs) const {
  if (nwords_ == 1 && rhs.width_ == width_)
    return raw1(width_, inline_[0] * rhs.inline_[0]);
  return mulSlow(rhs);
}

inline BitVector BitVector::and_(const BitVector& rhs) const {
  if (nwords_ == 1 && rhs.width_ == width_)
    return raw1(width_, inline_[0] & rhs.inline_[0]);
  return andSlow(rhs);
}

inline BitVector BitVector::or_(const BitVector& rhs) const {
  if (nwords_ == 1 && rhs.width_ == width_)
    return raw1(width_, inline_[0] | rhs.inline_[0]);
  return orSlow(rhs);
}

inline BitVector BitVector::xor_(const BitVector& rhs) const {
  if (nwords_ == 1 && rhs.width_ == width_)
    return raw1(width_, inline_[0] ^ rhs.inline_[0]);
  return xorSlow(rhs);
}

inline BitVector BitVector::not_() const {
  if (nwords_ == 1) return raw1(width_, ~inline_[0]);
  return notSlow();
}

inline BitVector BitVector::neg() const {
  if (nwords_ == 1) return raw1(width_, 0 - inline_[0]);
  return negSlow();
}

struct BitVector::AddResult {
  BitVector sum;
  bool carryOut;
  bool overflow;
};

}  // namespace isdl

template <>
struct std::hash<isdl::BitVector> {
  std::size_t operator()(const isdl::BitVector& v) const noexcept {
    return v.hash();
  }
};

#endif  // ISDL_SUPPORT_BITVECTOR_H
