// Semantic analysis for a parsed Machine: RTL width checking/inference,
// encoding validation (coverage, overlap, Axiom-1 discipline), non-terminal
// value/lvalue width resolution, and structural checks (unique PC and
// instruction memory, field nop detection, sane costs/timing).
//
// checkMachine() must run before any tool generation; it also fills in the
// derived fields of Machine (pcIndex, imemIndex, Field::nopIndex,
// NonTerminal::valueWidth/lvalueWidth) and the `width` of every RTL node.

#ifndef ISDL_ISDL_SEMA_H
#define ISDL_ISDL_SEMA_H

#include "isdl/model.h"
#include "support/diag.h"

namespace isdl {

/// Runs all semantic checks; returns true iff no errors were added.
bool checkMachine(Machine& machine, DiagnosticEngine& diags);

/// Number of bits needed to address `depth` locations (>= 1).
unsigned addressBits(std::uint64_t depth);

/// Width of parameter `p` when read as an rvalue in RTL (token width, or the
/// non-terminal's resolved valueWidth; 0 if the non-terminal has no value).
unsigned paramValueWidth(const Machine& m, const Param& p);

}  // namespace isdl

#endif  // ISDL_ISDL_SEMA_H
