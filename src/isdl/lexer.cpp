#include "isdl/lexer.h"

#include <cctype>

#include "support/strings.h"

namespace isdl {

const char* tokName(Tok t) {
  switch (t) {
    case Tok::Identifier: return "identifier";
    case Tok::Integer: return "integer";
    case Tok::SizedInt: return "sized integer";
    case Tok::String: return "string";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Semi: return "';'";
    case Tok::Comma: return "','";
    case Tok::Colon: return "':'";
    case Tok::Question: return "'?'";
    case Tok::Dot: return "'.'";
    case Tok::DotDot: return "'..'";
    case Tok::Dollar2: return "'$$'";
    case Tok::Assign: return "'='";
    case Tok::Arrow: return "'<-'";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Amp: return "'&'";
    case Tok::Pipe: return "'|'";
    case Tok::Caret: return "'^'";
    case Tok::Tilde: return "'~'";
    case Tok::Bang: return "'!'";
    case Tok::AmpAmp: return "'&&'";
    case Tok::PipePipe: return "'||'";
    case Tok::Shl: return "'<<'";
    case Tok::Shr: return "'>>'";
    case Tok::AShr: return "'>>>'";
    case Tok::EqEq: return "'=='";
    case Tok::BangEq: return "'!='";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
    case Tok::EndOfFile: return "end of input";
  }
  return "?";
}

namespace {

class Lexer {
 public:
  Lexer(std::string_view src, DiagnosticEngine& diags)
      : src_(src), diags_(diags) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      skipWhitespaceAndComments();
      Token t = next();
      bool end = t.is(Tok::EndOfFile);
      out.push_back(std::move(t));
      if (end) break;
    }
    return out;
  }

 private:
  std::string_view src_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  unsigned line_ = 1, col_ = 1;

  bool atEnd() const { return pos_ >= src_.size(); }
  char peek(std::size_t off = 0) const {
    return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
  }
  char advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  SourceLoc here() const { return {line_, col_}; }

  void skipWhitespaceAndComments() {
    for (;;) {
      if (atEnd()) return;
      char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else if (c == '#' || (c == '/' && peek(1) == '/')) {
        while (!atEnd() && peek() != '\n') advance();
      } else if (c == '/' && peek(1) == '*') {
        SourceLoc start = here();
        advance();
        advance();
        while (!atEnd() && !(peek() == '*' && peek(1) == '/')) advance();
        if (atEnd()) {
          diags_.error(start, "unterminated block comment");
          return;
        }
        advance();
        advance();
      } else {
        return;
      }
    }
  }

  Token make(Tok kind, SourceLoc loc, std::string text = {}) {
    Token t;
    t.kind = kind;
    t.loc = loc;
    t.text = std::move(text);
    return t;
  }

  Token next() {
    SourceLoc loc = here();
    if (atEnd()) return make(Tok::EndOfFile, loc);
    char c = peek();

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
      return lexIdentifier(loc);
    if (std::isdigit(static_cast<unsigned char>(c))) return lexNumber(loc);
    if (c == '"') return lexString(loc);

    advance();
    switch (c) {
      case '{': return make(Tok::LBrace, loc);
      case '}': return make(Tok::RBrace, loc);
      case '(': return make(Tok::LParen, loc);
      case ')': return make(Tok::RParen, loc);
      case '[': return make(Tok::LBracket, loc);
      case ']': return make(Tok::RBracket, loc);
      case ';': return make(Tok::Semi, loc);
      case ',': return make(Tok::Comma, loc);
      case ':': return make(Tok::Colon, loc);
      case '?': return make(Tok::Question, loc);
      case '+': return make(Tok::Plus, loc);
      case '-': return make(Tok::Minus, loc);
      case '*': return make(Tok::Star, loc);
      case '/': return make(Tok::Slash, loc);
      case '%': return make(Tok::Percent, loc);
      case '^': return make(Tok::Caret, loc);
      case '~': return make(Tok::Tilde, loc);
      case '.':
        if (peek() == '.') {
          advance();
          return make(Tok::DotDot, loc);
        }
        return make(Tok::Dot, loc);
      case '$':
        if (peek() == '$') {
          advance();
          return make(Tok::Dollar2, loc);
        }
        diags_.error(loc, "stray '$' (did you mean '$$'?)");
        return next();
      case '&':
        if (peek() == '&') {
          advance();
          return make(Tok::AmpAmp, loc);
        }
        return make(Tok::Amp, loc);
      case '|':
        if (peek() == '|') {
          advance();
          return make(Tok::PipePipe, loc);
        }
        return make(Tok::Pipe, loc);
      case '!':
        if (peek() == '=') {
          advance();
          return make(Tok::BangEq, loc);
        }
        return make(Tok::Bang, loc);
      case '=':
        if (peek() == '=') {
          advance();
          return make(Tok::EqEq, loc);
        }
        return make(Tok::Assign, loc);
      case '<':
        if (peek() == '-') {
          advance();
          return make(Tok::Arrow, loc);
        }
        if (peek() == '<') {
          advance();
          return make(Tok::Shl, loc);
        }
        if (peek() == '=') {
          advance();
          return make(Tok::Le, loc);
        }
        return make(Tok::Lt, loc);
      case '>':
        if (peek() == '>') {
          advance();
          if (peek() == '>') {
            advance();
            return make(Tok::AShr, loc);
          }
          return make(Tok::Shr, loc);
        }
        if (peek() == '=') {
          advance();
          return make(Tok::Ge, loc);
        }
        return make(Tok::Gt, loc);
      default:
        diags_.error(loc, cat("unexpected character '", c, "'"));
        return next();
    }
  }

  Token lexIdentifier(SourceLoc loc) {
    std::string text;
    while (!atEnd()) {
      char c = peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        text += advance();
      } else {
        break;
      }
    }
    Token t = make(Tok::Identifier, loc, std::move(text));
    return t;
  }

  Token lexNumber(SourceLoc loc) {
    std::string text;
    // Leading digits (possibly the width of a sized literal).
    while (!atEnd() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                        peek() == '_'))
      text += advance();

    if (!atEnd() && peek() == '\'') {
      // Sized literal: <width>'<base><digits>
      advance();
      unsigned width = 0;
      for (char d : text)
        if (d != '_') width = width * 10 + unsigned(d - '0');
      if (width == 0 || width > 4096) {
        diags_.error(loc, "sized literal width out of range");
        width = 1;
      }
      char base = atEnd() ? '\0' : advance();
      std::string digits;
      while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                          peek() == '_'))
        digits += advance();
      Token t = make(Tok::SizedInt, loc, text + "'" + base + digits);
      try {
        switch (base) {
          case 'd': case 'D':
            t.sizedValue = BitVector::fromString(width, digits);
            break;
          case 'h': case 'H': case 'x': case 'X':
            t.sizedValue = BitVector::fromString(width, "0x" + digits);
            break;
          case 'b': case 'B':
            t.sizedValue = BitVector::fromString(width, "0b" + digits);
            break;
          default:
            diags_.error(loc, "bad base in sized literal (use d, h or b)");
            t.sizedValue = BitVector(width);
        }
      } catch (const std::invalid_argument& e) {
        diags_.error(loc, cat("bad sized literal: ", e.what()));
        t.sizedValue = BitVector(width);
      }
      return t;
    }

    // Unsized: decimal, hex or binary.
    if (text == "0" && !atEnd() &&
        (peek() == 'x' || peek() == 'X' || peek() == 'b' || peek() == 'B')) {
      text += advance();
      while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                          peek() == '_'))
        text += advance();
    }
    Token t = make(Tok::Integer, loc, text);
    try {
      // Parse into 64 bits for convenience; wider values must be sized.
      BitVector v = BitVector::fromString(64, text);
      t.intValue = v.toUint64();
    } catch (const std::invalid_argument& e) {
      diags_.error(loc, cat("bad integer literal: ", e.what()));
    }
    return t;
  }

  Token lexString(SourceLoc loc) {
    advance();  // opening quote
    std::string text;
    while (!atEnd() && peek() != '"') {
      char c = advance();
      if (c == '\\' && !atEnd()) {
        char esc = advance();
        switch (esc) {
          case 'n': text += '\n'; break;
          case 't': text += '\t'; break;
          case '\\': text += '\\'; break;
          case '"': text += '"'; break;
          default: text += esc; break;
        }
      } else {
        text += c;
      }
    }
    if (atEnd()) {
      diags_.error(loc, "unterminated string literal");
    } else {
      advance();  // closing quote
    }
    return make(Tok::String, loc, std::move(text));
  }
};

}  // namespace

std::vector<Token> lex(std::string_view source, DiagnosticEngine& diags) {
  return Lexer(source, diags).run();
}

}  // namespace isdl
