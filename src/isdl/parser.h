// Recursive-descent parser for the ISDL dialect. Produces a Machine with all
// names resolved (the dialect requires declare-before-use, so resolution
// happens during the single parse pass). Width checking and the remaining
// semantic validation run afterwards in sema.h.
//
// The complete grammar is documented in docs/GRAMMAR.md.

#ifndef ISDL_ISDL_PARSER_H
#define ISDL_ISDL_PARSER_H

#include <memory>
#include <string_view>

#include "isdl/model.h"
#include "support/diag.h"

namespace isdl {

/// Parses an ISDL description. Returns nullptr (with diagnostics in `diags`)
/// on any syntax or resolution error.
std::unique_ptr<Machine> parseIsdl(std::string_view source,
                                   DiagnosticEngine& diags);

/// Convenience: parse + full semantic analysis; throws IsdlError with the
/// collected diagnostics on failure.
std::unique_ptr<Machine> parseAndCheckIsdl(std::string_view source);

}  // namespace isdl

#endif  // ISDL_ISDL_PARSER_H
