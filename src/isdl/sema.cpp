#include "isdl/sema.h"

#include <algorithm>

#include "support/strings.h"

namespace isdl {

unsigned addressBits(std::uint64_t depth) {
  unsigned bits = 1;
  while ((std::uint64_t{1} << bits) < depth && bits < 63) ++bits;
  return bits;
}

unsigned paramValueWidth(const Machine& m, const Param& p) {
  if (p.kind == ParamKind::Token) return m.tokens[p.index].width;
  return m.nonTerminals[p.index].valueWidth;
}

namespace {

using rtl::BinOp;
using rtl::Expr;
using rtl::ExprKind;
using rtl::Stmt;
using rtl::StmtKind;
using rtl::UnOp;

class Checker {
 public:
  Checker(Machine& m, DiagnosticEngine& diags) : m_(m), diags_(diags) {}

  bool run() {
    checkStructure();
    resolveNonTerminals();
    checkInstructionSet();
    return !diags_.hasErrors();
  }

 private:
  Machine& m_;
  DiagnosticEngine& diags_;
  const std::vector<Param>* params_ = nullptr;

  void error(SourceLoc loc, std::string msg) {
    diags_.error(loc, std::move(msg));
  }

  // --- structural checks ------------------------------------------------------
  void checkStructure() {
    if (m_.wordWidth == 0)
      error({}, "format section must set word_width");
    if (m_.fields.empty())
      error({}, "instruction_set section must define at least one field");

    for (std::size_t i = 0; i < m_.storages.size(); ++i) {
      const StorageDef& st = m_.storages[i];
      if (st.kind == StorageKind::ProgramCounter) {
        if (m_.pcIndex >= 0)
          error(st.loc, "multiple program_counter storages defined");
        m_.pcIndex = static_cast<int>(i);
      }
      if (st.kind == StorageKind::InstructionMemory) {
        if (m_.imemIndex >= 0)
          error(st.loc, "multiple instruction_memory storages defined");
        m_.imemIndex = static_cast<int>(i);
      }
    }
    if (m_.pcIndex < 0)
      error({}, "storage section must define a program_counter");
    if (m_.imemIndex < 0)
      error({}, "storage section must define an instruction_memory");
    if (m_.pcIndex >= 0 && m_.imemIndex >= 0) {
      const StorageDef& pc = m_.storages[m_.pcIndex];
      const StorageDef& im = m_.storages[m_.imemIndex];
      if (pc.width < addressBits(im.depth))
        diags_.warning(pc.loc,
                       cat("program counter width ", pc.width,
                           " cannot address all ", im.depth,
                           " instruction memory locations"));
      if (im.width != m_.wordWidth)
        error(im.loc, cat("instruction memory width ", im.width,
                          " must equal word_width ", m_.wordWidth));
    }

    for (auto& field : m_.fields) {
      if (field.operations.empty())
        error(field.loc, cat("field '", field.name, "' has no operations"));
      // nop detection: by name first, else a parameterless operation with an
      // empty action.
      for (std::size_t i = 0; i < field.operations.size(); ++i) {
        if (field.operations[i].name == "nop") {
          field.nopIndex = static_cast<int>(i);
          break;
        }
      }
      if (field.nopIndex < 0) {
        for (std::size_t i = 0; i < field.operations.size(); ++i) {
          const Operation& op = field.operations[i];
          if (op.params.empty() && op.action.empty() &&
              op.sideEffects.empty()) {
            field.nopIndex = static_cast<int>(i);
            break;
          }
        }
      }
    }
  }

  // --- non-terminal resolution -----------------------------------------------------
  void resolveNonTerminals() {
    // Declaration order guarantees that any non-terminal referenced by an
    // option's parameters has already been resolved.
    for (auto& nt : m_.nonTerminals) {
      bool allHaveValue = !nt.options.empty();
      bool allHaveLvalue = !nt.options.empty();
      unsigned valueWidth = 0;
      unsigned lvalueWidth = 0;
      for (auto& opt : nt.options) {
        params_ = &opt.params;
        checkEncoding(opt.encode, opt.params, nt.returnWidth, nt.loc,
                      cat("non-terminal '", nt.name, "'"));
        if (opt.value) {
          unsigned w = checkExpr(*opt.value, 0);
          if (valueWidth == 0) valueWidth = w;
          else if (w != 0 && w != valueWidth)
            error(opt.loc, cat("options of non-terminal '", nt.name,
                               "' disagree on value width (", valueWidth,
                               " vs ", w, ")"));
        } else {
          allHaveValue = false;
        }
        if (opt.lvalue) {
          unsigned w = checkLvalue(*opt.lvalue);
          if (lvalueWidth == 0) lvalueWidth = w;
          else if (w != 0 && w != lvalueWidth)
            error(opt.loc, cat("options of non-terminal '", nt.name,
                               "' disagree on lvalue width (", lvalueWidth,
                               " vs ", w, ")"));
        } else {
          allHaveLvalue = false;
        }
        for (auto& s : opt.sideEffects) checkStmt(*s);
        params_ = nullptr;
      }
      nt.valueWidth = allHaveValue ? valueWidth : 0;
      nt.lvalueWidth = allHaveLvalue ? lvalueWidth : 0;
    }
  }

  // --- instruction set ---------------------------------------------------------------
  void checkInstructionSet() {
    for (auto& field : m_.fields) {
      for (auto& op : field.operations) {
        std::string ctx = cat("operation '", field.name, ".", op.name, "'");
        if (op.costs.cycle == 0)
          error(op.loc, ctx + ": cycle cost must be >= 1");
        if (op.costs.size == 0)
          error(op.loc, ctx + ": size cost must be >= 1");
        if (op.timing.latency == 0)
          error(op.loc, ctx + ": latency must be >= 1");
        if (op.timing.usage == 0)
          error(op.loc, ctx + ": usage must be >= 1");

        params_ = &op.params;
        checkEncoding(op.encode, op.params, op.costs.size * m_.wordWidth,
                      op.loc, ctx);
        for (auto& s : op.action) checkStmt(*s);
        for (auto& s : op.sideEffects) checkStmt(*s);
        params_ = nullptr;
      }
    }
  }

  /// Validates one encode block: bits in range, no overlap, every parameter
  /// fully encoded (otherwise the assembly function is not reversible and
  /// disassembly — paper §3.3.2 — is impossible).
  void checkEncoding(const std::vector<EncodeAssign>& encode,
                     const std::vector<Param>& params, unsigned totalBits,
                     SourceLoc loc, const std::string& ctx) {
    std::vector<bool> covered(totalBits, false);
    // Per parameter, which of its bits are present in the encoding.
    std::vector<std::vector<bool>> paramBits(params.size());
    for (std::size_t i = 0; i < params.size(); ++i)
      paramBits[i].assign(m_.paramEncodingWidth(params[i]), false);

    for (const auto& ea : encode) {
      if (ea.hi >= totalBits) {
        error(ea.loc, cat(ctx, ": bit ", ea.hi, " exceeds instruction size (",
                          totalBits, " bits)"));
        continue;
      }
      for (unsigned b = ea.lo; b <= ea.hi; ++b) {
        if (covered[b])
          error(ea.loc, cat(ctx, ": bit ", b, " assigned more than once"));
        covered[b] = true;
      }
      if (ea.src == EncodeAssign::Src::Param) {
        auto& bits = paramBits[ea.paramIndex];
        for (unsigned b = 0; b < bits.size(); ++b) bits[b] = true;
      } else if (ea.src == EncodeAssign::Src::ParamSlice) {
        auto& bits = paramBits[ea.paramIndex];
        for (unsigned b = ea.paramLo; b <= ea.paramHi; ++b) bits[b] = true;
      }
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
      for (unsigned b = 0; b < paramBits[i].size(); ++b) {
        if (!paramBits[i][b]) {
          error(loc, cat(ctx, ": bit ", b, " of parameter '", params[i].name,
                         "' never appears in the encoding, so the assembly "
                         "function is not reversible"));
          break;
        }
      }
    }
  }

  // --- RTL width checking ---------------------------------------------------------------
  static bool isUnsizedConst(const Expr& e) {
    return e.kind == ExprKind::Const && e.width == 0;
  }

  /// Coerces an unsized constant to `w` bits (value must fit).
  void coerceConst(Expr& e, unsigned w) {
    std::uint64_t v = e.constant.toUint64();
    if (w < 64 && (v >> w) != 0) {
      error(e.loc, cat("constant ", v, " does not fit in ", w, " bits"));
    }
    e.constant = BitVector(w, v);
    e.width = w;
  }

  /// Width-checks `e`; `expected` is a hint used only to size unsized integer
  /// constants (0 = no hint). Returns the resolved width (0 on error).
  unsigned checkExpr(Expr& e, unsigned expected) {
    switch (e.kind) {
      case ExprKind::Const:
        if (e.width == 0) {
          if (expected == 0) {
            error(e.loc,
                  "cannot infer the width of this constant; use a sized "
                  "literal like 8'd255");
            return 0;
          }
          coerceConst(e, expected);
        }
        return e.width;

      case ExprKind::Param: {
        if (!params_ || e.paramIndex >= params_->size()) {
          error(e.loc, "parameter reference outside a parameter scope");
          return 0;
        }
        const Param& p = (*params_)[e.paramIndex];
        unsigned w = paramValueWidth(m_, p);
        if (w == 0) {
          error(e.loc, cat("parameter '", p.name,
                           "' has no runtime value (not every option of its "
                           "non-terminal defines `value`)"));
          return 0;
        }
        e.width = w;
        return w;
      }

      case ExprKind::Read: {
        const StorageDef& st = m_.storages[e.storageIndex];
        if (isAddressed(st.kind)) {
          error(e.loc, cat("storage '", st.name, "' must be indexed"));
          return 0;
        }
        e.width = st.width;
        return e.width;
      }

      case ExprKind::ReadElem: {
        const StorageDef& st = m_.storages[e.storageIndex];
        checkExpr(*e.operands[0], addressBits(st.depth));
        e.width = st.width;
        return e.width;
      }

      case ExprKind::Slice: {
        unsigned w = checkExpr(*e.operands[0], 0);
        if (w == 0) return 0;
        if (e.sliceHi >= w) {
          error(e.loc, cat("slice bit ", e.sliceHi,
                           " out of range for width ", w));
          return 0;
        }
        e.width = e.sliceHi - e.sliceLo + 1;
        return e.width;
      }

      case ExprKind::Unary: {
        switch (e.unOp) {
          case UnOp::LogNot:
          case UnOp::RedAnd:
          case UnOp::RedOr:
          case UnOp::RedXor:
            checkExpr(*e.operands[0], 0);
            e.width = 1;
            return 1;
          case UnOp::BitNot:
          case UnOp::Neg: {
            unsigned w = checkExpr(*e.operands[0], expected);
            e.width = w;
            return w;
          }
        }
        return 0;
      }

      case ExprKind::Binary:
        return checkBinary(e, expected);

      case ExprKind::Ternary: {
        unsigned cw = checkExpr(*e.operands[0], 1);
        if (cw != 0 && cw != 1)
          error(e.operands[0]->loc,
                cat("ternary condition must be 1 bit wide, got ", cw));
        unsigned w = checkBalanced(*e.operands[1], *e.operands[2], expected);
        e.width = w;
        return w;
      }

      case ExprKind::ZExt:
      case ExprKind::SExt:
      case ExprKind::Trunc: {
        unsigned w = checkExpr(*e.operands[0], e.extWidth);
        if (w == 0) return 0;
        if ((e.kind == ExprKind::Trunc && w < e.extWidth) ||
            (e.kind != ExprKind::Trunc && w > e.extWidth))
          error(e.loc, cat("cannot ", e.kind == ExprKind::Trunc ? "truncate"
                           : e.kind == ExprKind::ZExt ? "zero-extend"
                                                      : "sign-extend",
                           " width ", w, " to width ", e.extWidth));
        e.width = e.extWidth;
        return e.width;
      }

      case ExprKind::Concat: {
        unsigned total = 0;
        for (auto& op : e.operands) {
          unsigned w = checkExpr(*op, 0);
          if (w == 0) return 0;
          total += w;
        }
        e.width = total;
        return total;
      }

      case ExprKind::Carry:
      case ExprKind::Overflow:
      case ExprKind::Borrow: {
        checkBalanced(*e.operands[0], *e.operands[1], 0);
        e.width = 1;
        return 1;
      }

      case ExprKind::IToF: {
        unsigned w = checkExpr(*e.operands[0], 0);
        if (w == 0) return 0;
        e.width = e.extWidth;
        return e.width;
      }
      case ExprKind::FToI: {
        unsigned w = checkExpr(*e.operands[0], 0);
        if (w != 0 && w != 32 && w != 64)
          error(e.loc, cat("ftoi operand must be 32 or 64 bits, got ", w));
        e.width = e.extWidth;
        return e.width;
      }
    }
    return 0;
  }

  /// Checks a pair of operands that must agree in width (handling unsized
  /// constants on either side). Returns the common width.
  unsigned checkBalanced(Expr& a, Expr& b, unsigned expected) {
    if (isUnsizedConst(a) && !isUnsizedConst(b)) {
      unsigned wb = checkExpr(b, expected);
      if (wb == 0) return 0;
      coerceConst(a, wb);
      return wb;
    }
    unsigned wa = checkExpr(a, expected);
    unsigned wb = checkExpr(b, wa != 0 ? wa : expected);
    if (wa == 0 || wb == 0) return 0;
    if (wa != wb) {
      error(b.loc, cat("operand widths differ: ", wa, " vs ", wb,
                       " (use zext/sext/trunc to convert explicitly)"));
      return 0;
    }
    return wa;
  }

  unsigned checkBinary(Expr& e, unsigned expected) {
    Expr& a = *e.operands[0];
    Expr& b = *e.operands[1];
    BinOp op = e.binOp;

    if (op == BinOp::Shl || op == BinOp::LShr || op == BinOp::AShr) {
      unsigned w = checkExpr(a, expected);
      // Shift amounts may have any width; unsized constants get the minimal
      // width that holds their value.
      if (isUnsizedConst(b)) {
        std::uint64_t v = b.constant.toUint64();
        unsigned bits = 1;
        while ((std::uint64_t{1} << bits) <= v && bits < 63) ++bits;
        coerceConst(b, bits);
      } else {
        checkExpr(b, 0);
      }
      e.width = w;
      return w;
    }

    if (op == BinOp::LogAnd || op == BinOp::LogOr) {
      unsigned wa = checkExpr(a, 1);
      unsigned wb = checkExpr(b, 1);
      if ((wa != 0 && wa != 1) || (wb != 0 && wb != 1))
        error(e.loc, "&& and || require 1-bit operands (use comparisons)");
      e.width = 1;
      return 1;
    }

    unsigned w = checkBalanced(a, b, rtl::isComparison(op) ? 0 : expected);
    if (rtl::isFloatOp(op) && w != 0 && w != 32 && w != 64)
      error(e.loc, cat("floating-point operands must be 32 or 64 bits, got ",
                       w));
    e.width = rtl::isComparison(op) ? 1 : w;
    return e.width;
  }

  /// Returns the width written by the lvalue (0 on error).
  unsigned checkLvalue(rtl::Lvalue& lv) {
    if (lv.isParam) {
      if (!params_ || lv.paramIndex >= params_->size()) {
        error(lv.loc, "parameter lvalue outside a parameter scope");
        return 0;
      }
      const Param& p = (*params_)[lv.paramIndex];
      if (p.kind != ParamKind::NonTerminal ||
          m_.nonTerminals[p.index].lvalueWidth == 0) {
        error(lv.loc, cat("parameter '", p.name,
                          "' cannot be assigned (not every option of its "
                          "non-terminal defines `lvalue`)"));
        return 0;
      }
      return m_.nonTerminals[p.index].lvalueWidth;
    }
    const StorageDef& st = m_.storages[lv.storageIndex];
    if (isAddressed(st.kind)) {
      if (!lv.index) {
        error(lv.loc, cat("storage '", st.name, "' must be indexed"));
        return 0;
      }
      checkExpr(*lv.index, addressBits(st.depth));
    } else if (lv.index) {
      // Aliases of whole register-file elements carry a constant index even
      // for addressed targets; a non-addressed target must not be indexed.
      checkExpr(*lv.index, addressBits(st.depth));
    }
    if (lv.hasSlice) {
      if (lv.sliceHi >= st.width) {
        error(lv.loc, cat("lvalue slice bit ", lv.sliceHi,
                          " out of range for width ", st.width));
        return 0;
      }
      return lv.sliceHi - lv.sliceLo + 1;
    }
    return st.width;
  }

  void checkStmt(Stmt& s) {
    switch (s.kind) {
      case StmtKind::Assign: {
        unsigned dw = checkLvalue(s.dest);
        unsigned vw = checkExpr(*s.value, dw);
        if (dw != 0 && vw != 0 && dw != vw)
          error(s.loc, cat("assignment width mismatch: destination is ", dw,
                           " bits, value is ", vw,
                           " bits (use zext/sext/trunc)"));
        if (!s.dest.isParam) {
          const StorageDef& st = m_.storages[s.dest.storageIndex];
          if (st.kind == StorageKind::InstructionMemory)
            diags_.warning(s.loc,
                           "writing instruction memory: the off-line "
                           "disassembler will not see the modified code");
        }
        break;
      }
      case StmtKind::If: {
        unsigned cw = checkExpr(*s.cond, 1);
        if (cw != 0 && cw != 1)
          error(s.cond->loc, cat("if condition must be 1 bit wide, got ", cw));
        for (auto& t : s.thenStmts) checkStmt(*t);
        for (auto& t : s.elseStmts) checkStmt(*t);
        break;
      }
    }
  }
};

}  // namespace

bool checkMachine(Machine& machine, DiagnosticEngine& diags) {
  return Checker(machine, diags).run();
}

}  // namespace isdl
