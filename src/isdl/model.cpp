#include "isdl/model.h"

#include <algorithm>

namespace isdl {

std::optional<std::uint64_t> TokenDef::memberValue(
    std::string_view syntax) const {
  for (const auto& m : members)
    if (m.syntax == syntax) return m.value;
  return std::nullopt;
}

std::optional<std::string> TokenDef::memberSyntax(std::uint64_t value) const {
  for (const auto& m : members)
    if (m.value == value) return m.syntax;
  return std::nullopt;
}

const char* storageKindName(StorageKind k) {
  switch (k) {
    case StorageKind::InstructionMemory: return "instruction_memory";
    case StorageKind::DataMemory: return "data_memory";
    case StorageKind::RegisterFile: return "register_file";
    case StorageKind::Register: return "register";
    case StorageKind::ControlRegister: return "control_register";
    case StorageKind::MemoryMappedIO: return "memory_mapped_io";
    case StorageKind::ProgramCounter: return "program_counter";
    case StorageKind::Stack: return "stack";
  }
  return "?";
}

bool isAddressed(StorageKind k) {
  switch (k) {
    case StorageKind::InstructionMemory:
    case StorageKind::DataMemory:
    case StorageKind::RegisterFile:
    case StorageKind::MemoryMappedIO:
    case StorageKind::Stack:
      return true;
    case StorageKind::Register:
    case StorageKind::ControlRegister:
    case StorageKind::ProgramCounter:
      return false;
  }
  return false;
}

const Operation* Field::findOperation(std::string_view opName) const {
  for (const auto& op : operations)
    if (op.name == opName) return &op;
  return nullptr;
}

namespace {
template <typename Vec>
int findByName(const Vec& v, std::string_view n) {
  for (std::size_t i = 0; i < v.size(); ++i)
    if (v[i].name == n) return static_cast<int>(i);
  return -1;
}
}  // namespace

int Machine::findToken(std::string_view n) const { return findByName(tokens, n); }
int Machine::findNonTerminal(std::string_view n) const {
  return findByName(nonTerminals, n);
}
int Machine::findStorage(std::string_view n) const {
  return findByName(storages, n);
}
int Machine::findAlias(std::string_view n) const {
  return findByName(aliases, n);
}
int Machine::findField(std::string_view n) const {
  return findByName(fields, n);
}

unsigned Machine::maxSizeWords() const {
  unsigned maxSize = 1;
  for (const auto& f : fields)
    for (const auto& op : f.operations)
      maxSize = std::max(maxSize, op.costs.size);
  return maxSize;
}

unsigned Machine::paramEncodingWidth(const Param& p) const {
  return p.kind == ParamKind::Token ? tokens[p.index].width
                                    : nonTerminals[p.index].returnWidth;
}

const Constraint* Machine::firstViolatedConstraint(
    const std::vector<int>& choice) const {
  for (const auto& c : constraints) {
    bool allPresent = true;
    for (const auto& ref : c.ops) {
      int chosen = ref.fieldIndex < choice.size()
                       ? choice[ref.fieldIndex]
                       : -1;
      if (chosen < 0) chosen = fields[ref.fieldIndex].nopIndex;
      if (chosen != static_cast<int>(ref.opIndex)) {
        allPresent = false;
        break;
      }
    }
    if (allPresent) return &c;
  }
  return nullptr;
}

bool Machine::satisfiesConstraints(const std::vector<int>& choice) const {
  return firstViolatedConstraint(choice) == nullptr;
}

}  // namespace isdl
