#include "isdl/parser.h"

#include <cassert>

#include "isdl/lexer.h"
#include "isdl/sema.h"
#include "support/strings.h"

namespace isdl {

namespace {

/// Thrown internally to abort the parse after the first syntax error; callers
/// of parseIsdl see a nullptr plus diagnostics.
struct ParseAbort {};

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticEngine& diags)
      : toks_(std::move(tokens)), diags_(diags) {}

  std::unique_ptr<Machine> run() {
    machine_ = std::make_unique<Machine>();
    expectIdent("machine");
    machine_->name = expect(Tok::Identifier).text;
    expect(Tok::LBrace);
    while (!check(Tok::RBrace)) parseSection();
    expect(Tok::RBrace);
    expect(Tok::EndOfFile);
    return std::move(machine_);
  }

 private:
  std::vector<Token> toks_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::unique_ptr<Machine> machine_;

  /// Parameters of the operation/option currently being parsed (for RTL and
  /// encode resolution); null outside those contexts.
  const std::vector<Param>* paramScope_ = nullptr;

  // --- token plumbing --------------------------------------------------------
  const Token& peek(std::size_t off = 0) const {
    std::size_t i = pos_ + off;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& advance() {
    const Token& t = peek();
    if (pos_ + 1 < toks_.size()) ++pos_;
    return t;
  }
  bool check(Tok k) const { return peek().is(k); }
  bool checkIdent(std::string_view s) const { return peek().isIdent(s); }
  bool accept(Tok k) {
    if (!check(k)) return false;
    advance();
    return true;
  }
  bool acceptIdent(std::string_view s) {
    if (!checkIdent(s)) return false;
    advance();
    return true;
  }

  [[noreturn]] void fail(SourceLoc loc, std::string msg) {
    diags_.error(loc, std::move(msg));
    throw ParseAbort{};
  }

  const Token& expect(Tok k) {
    if (!check(k))
      fail(peek().loc, cat("expected ", tokName(k), ", found ",
                           tokName(peek().kind),
                           peek().kind == Tok::Identifier
                               ? cat(" '", peek().text, "'")
                               : ""));
    return advance();
  }

  void expectIdent(std::string_view s) {
    if (!checkIdent(s))
      fail(peek().loc, cat("expected '", s, "', found ",
                           tokName(peek().kind),
                           peek().kind == Tok::Identifier
                               ? cat(" '", peek().text, "'")
                               : ""));
    advance();
  }

  std::uint64_t expectInt() {
    const Token& t = expect(Tok::Integer);
    return t.intValue;
  }

  unsigned expectSmallInt(const char* what, std::uint64_t max = 1u << 20) {
    SourceLoc loc = peek().loc;
    std::uint64_t v = expectInt();
    if (v > max) fail(loc, cat(what, " out of range (", v, " > ", max, ")"));
    return static_cast<unsigned>(v);
  }

  // --- sections -----------------------------------------------------------------
  void parseSection() {
    expectIdent("section");
    const Token& nameTok = expect(Tok::Identifier);
    const std::string& name = nameTok.text;
    expect(Tok::LBrace);
    if (name == "format") {
      parseFormatBody();
    } else if (name == "global_definitions") {
      parseGlobalBody();
    } else if (name == "storage") {
      parseStorageBody();
    } else if (name == "instruction_set") {
      parseInstructionSetBody();
    } else if (name == "constraints") {
      parseConstraintsBody();
    } else if (name == "optional") {
      parseOptionalBody();
    } else {
      fail(nameTok.loc,
           cat("unknown section '", name,
               "' (expected format, global_definitions, storage, "
               "instruction_set, constraints or optional)"));
    }
    expect(Tok::RBrace);
  }

  void parseFormatBody() {
    while (!check(Tok::RBrace)) {
      SourceLoc loc = peek().loc;
      expectIdent("word_width");
      expect(Tok::Assign);
      machine_->wordWidth = expectSmallInt("word_width", 4096);
      if (machine_->wordWidth == 0) fail(loc, "word_width must be > 0");
      expect(Tok::Semi);
    }
  }

  // --- global definitions ---------------------------------------------------------
  void parseGlobalBody() {
    while (!check(Tok::RBrace)) {
      if (checkIdent("token")) {
        parseTokenDef();
      } else if (checkIdent("nonterminal")) {
        parseNonTerminalDef();
      } else {
        fail(peek().loc, "expected 'token' or 'nonterminal'");
      }
    }
  }

  void checkFreshName(const Token& nameTok) {
    const std::string& n = nameTok.text;
    if (machine_->findToken(n) >= 0 || machine_->findNonTerminal(n) >= 0 ||
        machine_->findStorage(n) >= 0 || machine_->findAlias(n) >= 0)
      fail(nameTok.loc, cat("redefinition of '", n, "'"));
  }

  void parseTokenDef() {
    expectIdent("token");
    const Token& nameTok = expect(Tok::Identifier);
    checkFreshName(nameTok);
    TokenDef def;
    def.name = nameTok.text;
    if (acceptIdent("enum")) {
      def.kind = TokenKind::Enum;
      expectIdent("width");
      def.width = expectSmallInt("token width", 64);
      if (acceptIdent("prefix")) {
        // Shorthand: prefix "R" range 0 .. 15;
        std::string prefix = expect(Tok::String).text;
        expectIdent("range");
        std::uint64_t lo = expectInt();
        expect(Tok::DotDot);
        std::uint64_t hi = expectInt();
        if (hi < lo || hi - lo > 100000)
          fail(nameTok.loc, "bad token range");
        for (std::uint64_t v = lo; v <= hi; ++v)
          def.members.push_back({prefix + std::to_string(v), v});
        expect(Tok::Semi);
      } else {
        expect(Tok::LBrace);
        while (!check(Tok::RBrace)) {
          TokenMember m;
          m.syntax = expect(Tok::String).text;
          expect(Tok::Assign);
          m.value = expectInt();
          def.members.push_back(std::move(m));
          if (!accept(Tok::Comma)) break;
        }
        expect(Tok::RBrace);
        accept(Tok::Semi);
      }
      // Value-fits-width validation.
      for (const auto& m : def.members) {
        if (def.width < 64 && m.value >> def.width)
          fail(nameTok.loc, cat("token member '", m.syntax, "' value ",
                                m.value, " does not fit in ", def.width,
                                " bits"));
      }
    } else if (acceptIdent("immediate")) {
      def.kind = TokenKind::Immediate;
      if (acceptIdent("signed"))
        def.isSigned = true;
      else
        expectIdent("unsigned");
      expectIdent("width");
      def.width = expectSmallInt("token width", 64);
      expect(Tok::Semi);
    } else {
      fail(peek().loc, "expected 'enum' or 'immediate'");
    }
    if (def.width == 0) fail(nameTok.loc, "token width must be > 0");
    machine_->tokens.push_back(std::move(def));
  }

  void parseNonTerminalDef() {
    expectIdent("nonterminal");
    const Token& nameTok = expect(Tok::Identifier);
    checkFreshName(nameTok);
    NonTerminal nt;
    nt.name = nameTok.text;
    nt.loc = nameTok.loc;
    expectIdent("returns");
    expectIdent("width");
    nt.returnWidth = expectSmallInt("nonterminal return width", 4096);
    expect(Tok::LBrace);
    while (!check(Tok::RBrace)) nt.options.push_back(parseNtOption(nt));
    expect(Tok::RBrace);
    machine_->nonTerminals.push_back(std::move(nt));
  }

  NtOption parseNtOption(const NonTerminal& nt) {
    expectIdent("option");
    expect(Tok::Identifier);  // option name: diagnostic sugar only
    NtOption opt;
    opt.loc = peek().loc;
    opt.params = parseParamList();
    paramScope_ = &opt.params;
    expect(Tok::LBrace);
    bool sawSyntax = false;
    while (!check(Tok::RBrace)) {
      if (checkIdent("syntax")) {
        advance();
        opt.syntax = parseSyntaxItems(opt.params);
        sawSyntax = true;
      } else if (checkIdent("encode")) {
        advance();
        opt.encode = parseEncodeBlock(opt.params, /*isOption=*/true,
                                      nt.returnWidth);
      } else if (checkIdent("value")) {
        advance();
        expect(Tok::LBrace);
        opt.value = parseExpr();
        expect(Tok::RBrace);
      } else if (checkIdent("lvalue")) {
        advance();
        expect(Tok::LBrace);
        opt.lvalue = parseLvalue();
        expect(Tok::RBrace);
      } else if (checkIdent("side_effect")) {
        advance();
        opt.sideEffects = parseStmtBlock();
      } else if (checkIdent("costs")) {
        advance();
        opt.extraCosts = parseCosts({0, 0, 0});
      } else if (checkIdent("timing")) {
        advance();
        opt.extraTiming = parseTiming({0, 0});
      } else {
        fail(peek().loc, "expected an option part (syntax, encode, value, "
                         "lvalue, side_effect, costs, timing)");
      }
    }
    expect(Tok::RBrace);
    paramScope_ = nullptr;
    if (!sawSyntax) opt.syntax = defaultSyntax(opt.params);
    return opt;
  }

  // --- storage -----------------------------------------------------------------------
  void parseStorageBody() {
    while (!check(Tok::RBrace)) {
      if (checkIdent("alias")) {
        parseAliasDef();
        continue;
      }
      static const std::pair<const char*, StorageKind> kinds[] = {
          {"instruction_memory", StorageKind::InstructionMemory},
          {"data_memory", StorageKind::DataMemory},
          {"register_file", StorageKind::RegisterFile},
          {"register", StorageKind::Register},
          {"control_register", StorageKind::ControlRegister},
          {"memory_mapped_io", StorageKind::MemoryMappedIO},
          {"program_counter", StorageKind::ProgramCounter},
          {"stack", StorageKind::Stack},
      };
      const Token& kw = expect(Tok::Identifier);
      StorageDef def;
      def.loc = kw.loc;
      bool found = false;
      for (const auto& [name, kind] : kinds) {
        if (kw.text == name) {
          def.kind = kind;
          found = true;
          break;
        }
      }
      if (!found)
        fail(kw.loc, cat("unknown storage kind '", kw.text, "'"));
      const Token& nameTok = expect(Tok::Identifier);
      checkFreshName(nameTok);
      def.name = nameTok.text;
      expectIdent("width");
      def.width = expectSmallInt("storage width", 4096);
      if (def.width == 0) fail(nameTok.loc, "storage width must be > 0");
      if (isAddressed(def.kind)) {
        expectIdent("depth");
        def.depth = expectInt();
        if (def.depth == 0) fail(nameTok.loc, "storage depth must be > 0");
      } else {
        def.depth = 1;
      }
      expect(Tok::Semi);
      machine_->storages.push_back(std::move(def));
    }
  }

  void parseAliasDef() {
    expectIdent("alias");
    const Token& nameTok = expect(Tok::Identifier);
    checkFreshName(nameTok);
    AliasDef def;
    def.name = nameTok.text;
    def.loc = nameTok.loc;
    expect(Tok::Assign);
    const Token& target = expect(Tok::Identifier);
    int si = machine_->findStorage(target.text);
    if (si < 0) fail(target.loc, cat("unknown storage '", target.text, "'"));
    def.storageIndex = static_cast<unsigned>(si);
    const StorageDef& st = machine_->storages[def.storageIndex];
    if (isAddressed(st.kind)) {
      expect(Tok::LBracket);
      def.element = expectInt();
      expect(Tok::RBracket);
      if (*def.element >= st.depth)
        fail(target.loc, "alias element index out of range");
    }
    if (accept(Tok::LBracket)) {
      unsigned hi = expectSmallInt("slice bound", 4095);
      expect(Tok::Colon);
      unsigned lo = expectSmallInt("slice bound", 4095);
      expect(Tok::RBracket);
      if (hi < lo || hi >= st.width)
        fail(target.loc, "alias slice out of range");
      def.slice = {hi, lo};
    }
    expect(Tok::Semi);
    machine_->aliases.push_back(std::move(def));
  }

  // --- instruction set -----------------------------------------------------------------
  void parseInstructionSetBody() {
    while (!check(Tok::RBrace)) {
      expectIdent("field");
      const Token& nameTok = expect(Tok::Identifier);
      if (machine_->findField(nameTok.text) >= 0)
        fail(nameTok.loc, cat("redefinition of field '", nameTok.text, "'"));
      Field field;
      field.name = nameTok.text;
      field.loc = nameTok.loc;
      expect(Tok::LBrace);
      while (!check(Tok::RBrace))
        field.operations.push_back(parseOperation(field));
      expect(Tok::RBrace);
      machine_->fields.push_back(std::move(field));
    }
  }

  Operation parseOperation(const Field& field) {
    expectIdent("operation");
    const Token& nameTok = expect(Tok::Identifier);
    if (field.findOperation(nameTok.text))
      fail(nameTok.loc, cat("redefinition of operation '", field.name, ".",
                            nameTok.text, "'"));
    Operation op;
    op.name = nameTok.text;
    op.loc = nameTok.loc;
    op.params = parseParamList();
    paramScope_ = &op.params;
    expect(Tok::LBrace);
    bool sawSyntax = false;
    while (!check(Tok::RBrace)) {
      if (checkIdent("syntax")) {
        advance();
        op.syntax = parseSyntaxItems(op.params);
        sawSyntax = true;
      } else if (checkIdent("encode")) {
        advance();
        op.encode = parseEncodeBlock(op.params, /*isOption=*/false, 0);
      } else if (checkIdent("action")) {
        advance();
        op.action = parseStmtBlock();
      } else if (checkIdent("side_effect")) {
        advance();
        op.sideEffects = parseStmtBlock();
      } else if (checkIdent("costs")) {
        advance();
        op.costs = parseCosts(op.costs);
      } else if (checkIdent("timing")) {
        advance();
        op.timing = parseTiming(op.timing);
      } else {
        fail(peek().loc, "expected an operation part (syntax, encode, "
                         "action, side_effect, costs, timing)");
      }
    }
    expect(Tok::RBrace);
    paramScope_ = nullptr;
    if (!sawSyntax) op.syntax = defaultSyntax(op.params);
    return op;
  }

  // --- constraints -----------------------------------------------------------------------
  void parseConstraintsBody() {
    while (!check(Tok::RBrace)) {
      expectIdent("never");
      Constraint c;
      c.loc = peek().loc;
      for (;;) {
        const Token& fieldTok = expect(Tok::Identifier);
        int fi = machine_->findField(fieldTok.text);
        if (fi < 0)
          fail(fieldTok.loc, cat("unknown field '", fieldTok.text, "'"));
        expect(Tok::Dot);
        const Token& opTok = expect(Tok::Identifier);
        const Field& f = machine_->fields[fi];
        int oi = -1;
        for (std::size_t i = 0; i < f.operations.size(); ++i)
          if (f.operations[i].name == opTok.text) oi = static_cast<int>(i);
        if (oi < 0)
          fail(opTok.loc, cat("unknown operation '", fieldTok.text, ".",
                              opTok.text, "'"));
        c.ops.push_back({static_cast<unsigned>(fi), static_cast<unsigned>(oi)});
        if (!c.text.empty()) c.text += " & ";
        c.text += fieldTok.text + "." + opTok.text;
        if (!accept(Tok::Amp)) break;
      }
      expect(Tok::Semi);
      if (c.ops.size() < 2)
        fail(c.loc, "a constraint must list at least two operations");
      machine_->constraints.push_back(std::move(c));
    }
  }

  void parseOptionalBody() {
    while (!check(Tok::RBrace)) {
      const Token& key = expect(Tok::Identifier);
      expect(Tok::Assign);
      const Token& val = expect(Tok::String);
      expect(Tok::Semi);
      machine_->optionalInfo[key.text] = val.text;
    }
  }

  // --- shared pieces ------------------------------------------------------------------------
  std::vector<Param> parseParamList() {
    std::vector<Param> params;
    expect(Tok::LParen);
    if (!check(Tok::RParen)) {
      for (;;) {
        Param p;
        const Token& nameTok = expect(Tok::Identifier);
        p.name = nameTok.text;
        p.loc = nameTok.loc;
        for (const auto& existing : params)
          if (existing.name == p.name)
            fail(nameTok.loc, cat("duplicate parameter '", p.name, "'"));
        expect(Tok::Colon);
        const Token& typeTok = expect(Tok::Identifier);
        int ti = machine_->findToken(typeTok.text);
        int ni = machine_->findNonTerminal(typeTok.text);
        if (ti >= 0) {
          p.kind = ParamKind::Token;
          p.index = static_cast<unsigned>(ti);
        } else if (ni >= 0) {
          p.kind = ParamKind::NonTerminal;
          p.index = static_cast<unsigned>(ni);
        } else {
          fail(typeTok.loc,
               cat("unknown token or non-terminal '", typeTok.text, "'"));
        }
        params.push_back(std::move(p));
        if (!accept(Tok::Comma)) break;
      }
    }
    expect(Tok::RParen);
    return params;
  }

  static std::vector<SyntaxItem> defaultSyntax(
      const std::vector<Param>& params) {
    std::vector<SyntaxItem> items;
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (i) items.push_back({true, ",", 0});
      items.push_back({false, "", static_cast<unsigned>(i)});
    }
    return items;
  }

  std::vector<SyntaxItem> parseSyntaxItems(const std::vector<Param>& params) {
    std::vector<SyntaxItem> items;
    while (!check(Tok::Semi)) {
      if (check(Tok::String)) {
        items.push_back({true, advance().text, 0});
      } else if (check(Tok::Identifier)) {
        const Token& t = advance();
        int pi = -1;
        for (std::size_t i = 0; i < params.size(); ++i)
          if (params[i].name == t.text) pi = static_cast<int>(i);
        if (pi < 0)
          fail(t.loc, cat("syntax item '", t.text,
                          "' is not a parameter (quote literals)"));
        items.push_back({false, "", static_cast<unsigned>(pi)});
      } else {
        fail(peek().loc, "expected string literal or parameter in syntax");
      }
    }
    expect(Tok::Semi);
    return items;
  }

  std::vector<EncodeAssign> parseEncodeBlock(const std::vector<Param>& params,
                                             bool isOption,
                                             unsigned returnWidth) {
    std::vector<EncodeAssign> assigns;
    expect(Tok::LBrace);
    while (!check(Tok::RBrace)) {
      EncodeAssign ea;
      ea.loc = peek().loc;
      if (isOption) {
        expect(Tok::Dollar2);
      } else {
        expectIdent("inst");
      }
      expect(Tok::LBracket);
      ea.hi = expectSmallInt("bit index", 4095);
      if (accept(Tok::Colon))
        ea.lo = expectSmallInt("bit index", 4095);
      else
        ea.lo = ea.hi;
      expect(Tok::RBracket);
      if (ea.hi < ea.lo) fail(ea.loc, "bitfield range must be [hi:lo]");
      if (isOption && ea.hi >= returnWidth)
        fail(ea.loc, cat("bit ", ea.hi, " exceeds non-terminal return width ",
                         returnWidth));
      expect(Tok::Assign);
      unsigned destWidth = ea.hi - ea.lo + 1;
      if (check(Tok::Integer)) {
        const Token& t = advance();
        ea.src = EncodeAssign::Src::Const;
        if (destWidth < 64 && (t.intValue >> destWidth))
          fail(t.loc, cat("constant ", t.intValue, " does not fit in ",
                          destWidth, " bits"));
        ea.constValue = BitVector(destWidth, t.intValue);
      } else if (check(Tok::SizedInt)) {
        const Token& t = advance();
        if (t.sizedValue.width() != destWidth)
          fail(t.loc, cat("sized constant width ", t.sizedValue.width(),
                          " does not match bitfield width ", destWidth));
        ea.src = EncodeAssign::Src::Const;
        ea.constValue = t.sizedValue;
      } else {
        const Token& t = expect(Tok::Identifier);
        int pi = -1;
        for (std::size_t i = 0; i < params.size(); ++i)
          if (params[i].name == t.text) pi = static_cast<int>(i);
        if (pi < 0)
          fail(t.loc, cat("'", t.text, "' is not a parameter"));
        ea.paramIndex = static_cast<unsigned>(pi);
        unsigned pWidth = machine_->paramEncodingWidth(params[pi]);
        if (accept(Tok::LBracket)) {
          ea.src = EncodeAssign::Src::ParamSlice;
          ea.paramHi = expectSmallInt("bit index", 4095);
          expect(Tok::Colon);
          ea.paramLo = expectSmallInt("bit index", 4095);
          expect(Tok::RBracket);
          if (ea.paramHi < ea.paramLo || ea.paramHi >= pWidth)
            fail(t.loc, "parameter slice out of range");
          if (ea.paramHi - ea.paramLo + 1 != destWidth)
            fail(t.loc, cat("parameter slice width ",
                            ea.paramHi - ea.paramLo + 1,
                            " does not match bitfield width ", destWidth));
        } else {
          ea.src = EncodeAssign::Src::Param;
          if (pWidth != destWidth)
            fail(t.loc, cat("parameter '", t.text, "' width ", pWidth,
                            " does not match bitfield width ", destWidth,
                            " (use an explicit slice)"));
        }
      }
      expect(Tok::Semi);
      assigns.push_back(std::move(ea));
    }
    expect(Tok::RBrace);
    return assigns;
  }

  Costs parseCosts(Costs costs) {
    expect(Tok::LBrace);
    while (!check(Tok::RBrace)) {
      const Token& key = expect(Tok::Identifier);
      expect(Tok::Assign);
      unsigned v = expectSmallInt("cost", 1u << 16);
      expect(Tok::Semi);
      if (key.text == "cycle") costs.cycle = v;
      else if (key.text == "stall") costs.stall = v;
      else if (key.text == "size") costs.size = v;
      else fail(key.loc, cat("unknown cost '", key.text,
                             "' (expected cycle, stall or size)"));
    }
    expect(Tok::RBrace);
    return costs;
  }

  Timing parseTiming(Timing timing) {
    expect(Tok::LBrace);
    while (!check(Tok::RBrace)) {
      const Token& key = expect(Tok::Identifier);
      expect(Tok::Assign);
      unsigned v = expectSmallInt("timing", 1u << 16);
      expect(Tok::Semi);
      if (key.text == "latency") timing.latency = v;
      else if (key.text == "usage") timing.usage = v;
      else fail(key.loc, cat("unknown timing parameter '", key.text,
                             "' (expected latency or usage)"));
    }
    expect(Tok::RBrace);
    return timing;
  }

  // --- RTL statements --------------------------------------------------------------------------
  std::vector<rtl::StmtPtr> parseStmtBlock() {
    std::vector<rtl::StmtPtr> stmts;
    expect(Tok::LBrace);
    while (!check(Tok::RBrace)) stmts.push_back(parseStmt());
    expect(Tok::RBrace);
    return stmts;
  }

  rtl::StmtPtr parseStmt() {
    SourceLoc loc = peek().loc;
    if (checkIdent("if") && peek(1).is(Tok::LParen)) {
      advance();
      expect(Tok::LParen);
      rtl::ExprPtr cond = parseExpr();
      expect(Tok::RParen);
      std::vector<rtl::StmtPtr> thenStmts = parseStmtBlock();
      std::vector<rtl::StmtPtr> elseStmts;
      if (acceptIdent("else")) elseStmts = parseStmtBlock();
      return rtl::Stmt::makeIf(std::move(cond), std::move(thenStmts),
                               std::move(elseStmts), loc);
    }
    rtl::Lvalue dest = parseLvalue();
    expect(Tok::Arrow);
    rtl::ExprPtr value = parseExpr();
    expect(Tok::Semi);
    return rtl::Stmt::makeAssign(std::move(dest), std::move(value), loc);
  }

  int findParam(std::string_view name) const {
    if (!paramScope_) return -1;
    for (std::size_t i = 0; i < paramScope_->size(); ++i)
      if ((*paramScope_)[i].name == name) return static_cast<int>(i);
    return -1;
  }

  rtl::Lvalue parseLvalue() {
    const Token& nameTok = expect(Tok::Identifier);
    rtl::Lvalue lv;
    lv.loc = nameTok.loc;

    int pi = findParam(nameTok.text);
    if (pi >= 0) {
      lv.isParam = true;
      lv.paramIndex = static_cast<unsigned>(pi);
      return lv;  // parameter lvalues take no suffixes
    }

    int ai = machine_->findAlias(nameTok.text);
    if (ai >= 0) {
      const AliasDef& alias = machine_->aliases[ai];
      lv.storageIndex = alias.storageIndex;
      if (alias.element)
        lv.index = rtl::Expr::makeConst(
            BitVector(64, *alias.element), nameTok.loc);
      if (alias.slice) {
        lv.hasSlice = true;
        lv.sliceHi = alias.slice->first;
        lv.sliceLo = alias.slice->second;
      }
      return lv;  // alias lvalues are complete as declared
    }

    int si = machine_->findStorage(nameTok.text);
    if (si < 0)
      fail(nameTok.loc,
           cat("unknown storage, alias or parameter '", nameTok.text, "'"));
    lv.storageIndex = static_cast<unsigned>(si);
    const StorageDef& st = machine_->storages[lv.storageIndex];
    if (isAddressed(st.kind)) {
      expect(Tok::LBracket);
      lv.index = parseExpr();
      expect(Tok::RBracket);
    }
    if (accept(Tok::LBracket)) {
      lv.hasSlice = true;
      lv.sliceHi = expectSmallInt("slice bound", 4095);
      if (accept(Tok::Colon))
        lv.sliceLo = expectSmallInt("slice bound", 4095);
      else
        lv.sliceLo = lv.sliceHi;
      expect(Tok::RBracket);
      if (lv.sliceHi < lv.sliceLo || lv.sliceHi >= st.width)
        fail(nameTok.loc, "lvalue slice out of range");
    }
    return lv;
  }

  // --- RTL expressions (C-like precedence) ----------------------------------------------------------
  rtl::ExprPtr parseExpr() { return parseTernary(); }

  rtl::ExprPtr parseTernary() {
    rtl::ExprPtr cond = parseLogOr();
    if (accept(Tok::Question)) {
      SourceLoc loc = cond->loc;
      rtl::ExprPtr a = parseExpr();
      expect(Tok::Colon);
      rtl::ExprPtr b = parseTernary();
      return rtl::Expr::makeTernary(std::move(cond), std::move(a),
                                    std::move(b), loc);
    }
    return cond;
  }

  rtl::ExprPtr parseLogOr() {
    rtl::ExprPtr lhs = parseLogAnd();
    while (check(Tok::PipePipe)) {
      SourceLoc loc = advance().loc;
      lhs = rtl::Expr::makeBinary(rtl::BinOp::LogOr, std::move(lhs),
                                  parseLogAnd(), loc);
    }
    return lhs;
  }

  rtl::ExprPtr parseLogAnd() {
    rtl::ExprPtr lhs = parseBitOr();
    while (check(Tok::AmpAmp)) {
      SourceLoc loc = advance().loc;
      lhs = rtl::Expr::makeBinary(rtl::BinOp::LogAnd, std::move(lhs),
                                  parseBitOr(), loc);
    }
    return lhs;
  }

  rtl::ExprPtr parseBitOr() {
    rtl::ExprPtr lhs = parseBitXor();
    while (check(Tok::Pipe)) {
      SourceLoc loc = advance().loc;
      lhs = rtl::Expr::makeBinary(rtl::BinOp::Or, std::move(lhs),
                                  parseBitXor(), loc);
    }
    return lhs;
  }

  rtl::ExprPtr parseBitXor() {
    rtl::ExprPtr lhs = parseBitAnd();
    while (check(Tok::Caret)) {
      SourceLoc loc = advance().loc;
      lhs = rtl::Expr::makeBinary(rtl::BinOp::Xor, std::move(lhs),
                                  parseBitAnd(), loc);
    }
    return lhs;
  }

  rtl::ExprPtr parseBitAnd() {
    rtl::ExprPtr lhs = parseEquality();
    while (check(Tok::Amp)) {
      SourceLoc loc = advance().loc;
      lhs = rtl::Expr::makeBinary(rtl::BinOp::And, std::move(lhs),
                                  parseEquality(), loc);
    }
    return lhs;
  }

  rtl::ExprPtr parseEquality() {
    rtl::ExprPtr lhs = parseRelational();
    for (;;) {
      rtl::BinOp op;
      if (check(Tok::EqEq)) op = rtl::BinOp::Eq;
      else if (check(Tok::BangEq)) op = rtl::BinOp::Ne;
      else break;
      SourceLoc loc = advance().loc;
      lhs = rtl::Expr::makeBinary(op, std::move(lhs), parseRelational(), loc);
    }
    return lhs;
  }

  rtl::ExprPtr parseRelational() {
    rtl::ExprPtr lhs = parseShift();
    for (;;) {
      rtl::BinOp op;
      if (check(Tok::Lt)) op = rtl::BinOp::ULt;
      else if (check(Tok::Le)) op = rtl::BinOp::ULe;
      else if (check(Tok::Gt)) op = rtl::BinOp::UGt;
      else if (check(Tok::Ge)) op = rtl::BinOp::UGe;
      else break;
      SourceLoc loc = advance().loc;
      lhs = rtl::Expr::makeBinary(op, std::move(lhs), parseShift(), loc);
    }
    return lhs;
  }

  rtl::ExprPtr parseShift() {
    rtl::ExprPtr lhs = parseAdditive();
    for (;;) {
      rtl::BinOp op;
      if (check(Tok::Shl)) op = rtl::BinOp::Shl;
      else if (check(Tok::Shr)) op = rtl::BinOp::LShr;
      else if (check(Tok::AShr)) op = rtl::BinOp::AShr;
      else break;
      SourceLoc loc = advance().loc;
      lhs = rtl::Expr::makeBinary(op, std::move(lhs), parseAdditive(), loc);
    }
    return lhs;
  }

  rtl::ExprPtr parseAdditive() {
    rtl::ExprPtr lhs = parseMultiplicative();
    for (;;) {
      rtl::BinOp op;
      if (check(Tok::Plus)) op = rtl::BinOp::Add;
      else if (check(Tok::Minus)) op = rtl::BinOp::Sub;
      else break;
      SourceLoc loc = advance().loc;
      lhs = rtl::Expr::makeBinary(op, std::move(lhs), parseMultiplicative(),
                                  loc);
    }
    return lhs;
  }

  rtl::ExprPtr parseMultiplicative() {
    rtl::ExprPtr lhs = parseUnary();
    for (;;) {
      rtl::BinOp op;
      if (check(Tok::Star)) op = rtl::BinOp::Mul;
      else if (check(Tok::Slash)) op = rtl::BinOp::UDiv;
      else if (check(Tok::Percent)) op = rtl::BinOp::URem;
      else break;
      SourceLoc loc = advance().loc;
      lhs = rtl::Expr::makeBinary(op, std::move(lhs), parseUnary(), loc);
    }
    return lhs;
  }

  rtl::ExprPtr parseUnary() {
    SourceLoc loc = peek().loc;
    if (accept(Tok::Bang))
      return rtl::Expr::makeUnary(rtl::UnOp::LogNot, parseUnary(), loc);
    if (accept(Tok::Tilde))
      return rtl::Expr::makeUnary(rtl::UnOp::BitNot, parseUnary(), loc);
    if (accept(Tok::Minus))
      return rtl::Expr::makeUnary(rtl::UnOp::Neg, parseUnary(), loc);
    return parsePostfix();
  }

  rtl::ExprPtr parsePostfix() {
    rtl::ExprPtr e = parsePrimary();
    while (check(Tok::LBracket)) {
      SourceLoc loc = advance().loc;
      unsigned hi = expectSmallInt("slice bound", 4095);
      unsigned lo = hi;
      if (accept(Tok::Colon)) lo = expectSmallInt("slice bound", 4095);
      expect(Tok::RBracket);
      if (hi < lo) fail(loc, "slice range must be [hi:lo]");
      e = rtl::Expr::makeSlice(std::move(e), hi, lo, loc);
    }
    return e;
  }

  rtl::ExprPtr parsePrimary() {
    SourceLoc loc = peek().loc;
    if (check(Tok::Integer)) {
      const Token& t = advance();
      // Unsized constant: width 0 until the checker coerces it by context.
      auto e = std::make_unique<rtl::Expr>(rtl::ExprKind::Const, loc);
      e->constant = BitVector(64, t.intValue);
      e->width = 0;
      return e;
    }
    if (check(Tok::SizedInt)) {
      const Token& t = advance();
      return rtl::Expr::makeConst(t.sizedValue, loc);
    }
    if (accept(Tok::LParen)) {
      rtl::ExprPtr e = parseExpr();
      expect(Tok::RParen);
      return e;
    }
    const Token& nameTok = expect(Tok::Identifier);
    if (check(Tok::LParen)) return parseBuiltinCall(nameTok);

    int pi = findParam(nameTok.text);
    if (pi >= 0)
      return rtl::Expr::makeParam(static_cast<unsigned>(pi), nameTok.loc);

    int ai = machine_->findAlias(nameTok.text);
    if (ai >= 0) {
      const AliasDef& alias = machine_->aliases[ai];
      rtl::ExprPtr e;
      if (alias.element) {
        e = rtl::Expr::makeReadElem(
            alias.storageIndex,
            rtl::Expr::makeConst(BitVector(64, *alias.element), nameTok.loc),
            nameTok.loc);
      } else {
        e = rtl::Expr::makeRead(alias.storageIndex, nameTok.loc);
      }
      if (alias.slice)
        e = rtl::Expr::makeSlice(std::move(e), alias.slice->first,
                                 alias.slice->second, nameTok.loc);
      return e;
    }

    int si = machine_->findStorage(nameTok.text);
    if (si < 0)
      fail(nameTok.loc,
           cat("unknown name '", nameTok.text,
               "' (not a parameter, storage, alias or builtin)"));
    const StorageDef& st = machine_->storages[si];
    if (isAddressed(st.kind)) {
      expect(Tok::LBracket);
      rtl::ExprPtr index = parseExpr();
      expect(Tok::RBracket);
      return rtl::Expr::makeReadElem(static_cast<unsigned>(si),
                                     std::move(index), nameTok.loc);
    }
    return rtl::Expr::makeRead(static_cast<unsigned>(si), nameTok.loc);
  }

  rtl::ExprPtr parseBuiltinCall(const Token& nameTok) {
    const std::string& name = nameTok.text;
    SourceLoc loc = nameTok.loc;
    expect(Tok::LParen);
    std::vector<rtl::ExprPtr> args;
    if (!check(Tok::RParen)) {
      for (;;) {
        args.push_back(parseExpr());
        if (!accept(Tok::Comma)) break;
      }
    }
    expect(Tok::RParen);

    auto nargs = [&](std::size_t n) {
      if (args.size() != n)
        fail(loc, cat("builtin '", name, "' expects ", n, " argument(s), got ",
                      args.size()));
    };
    auto widthArg = [&](std::size_t i) -> unsigned {
      const rtl::Expr& e = *args[i];
      if (e.kind != rtl::ExprKind::Const)
        fail(loc, cat("builtin '", name,
                      "' width argument must be an integer constant"));
      std::uint64_t w = e.constant.toUint64();
      if (w == 0 || w > 4096) fail(loc, "width argument out of range");
      return static_cast<unsigned>(w);
    };

    // Width-conversion builtins: name(x, w)
    if (name == "zext" || name == "sext" || name == "trunc" ||
        name == "itof" || name == "ftoi") {
      nargs(2);
      unsigned w = widthArg(1);
      rtl::ExprKind k = name == "zext"    ? rtl::ExprKind::ZExt
                        : name == "sext"  ? rtl::ExprKind::SExt
                        : name == "trunc" ? rtl::ExprKind::Trunc
                        : name == "itof"  ? rtl::ExprKind::IToF
                                          : rtl::ExprKind::FToI;
      if ((k == rtl::ExprKind::IToF || k == rtl::ExprKind::FToI) && w != 32 &&
          w != 64)
        fail(loc, "float widths must be 32 or 64");
      return rtl::Expr::makeExt(k, std::move(args[0]), w, loc);
    }
    if (name == "concat") {
      if (args.size() < 2) fail(loc, "concat expects at least 2 arguments");
      return rtl::Expr::makeConcat(std::move(args), loc);
    }
    // Flag builtins: name(a, b)
    if (name == "carry" || name == "overflow" || name == "borrow") {
      nargs(2);
      rtl::ExprKind k = name == "carry"      ? rtl::ExprKind::Carry
                        : name == "overflow" ? rtl::ExprKind::Overflow
                                             : rtl::ExprKind::Borrow;
      auto e = std::make_unique<rtl::Expr>(k, loc);
      e->operands.push_back(std::move(args[0]));
      e->operands.push_back(std::move(args[1]));
      return e;
    }
    // Named binary operators (signed and floating-point variants).
    static const std::pair<const char*, rtl::BinOp> namedBinOps[] = {
        {"sdiv", rtl::BinOp::SDiv}, {"srem", rtl::BinOp::SRem},
        {"slt", rtl::BinOp::SLt},   {"sle", rtl::BinOp::SLe},
        {"sgt", rtl::BinOp::SGt},   {"sge", rtl::BinOp::SGe},
        {"fadd", rtl::BinOp::FAdd}, {"fsub", rtl::BinOp::FSub},
        {"fmul", rtl::BinOp::FMul}, {"fdiv", rtl::BinOp::FDiv},
        {"feq", rtl::BinOp::FEq},   {"flt", rtl::BinOp::FLt},
        {"fle", rtl::BinOp::FLe},
    };
    for (const auto& [n, op] : namedBinOps) {
      if (name == n) {
        nargs(2);
        return rtl::Expr::makeBinary(op, std::move(args[0]),
                                     std::move(args[1]), loc);
      }
    }
    fail(nameTok.loc, cat("unknown builtin '", name, "'"));
  }
};

}  // namespace

std::unique_ptr<Machine> parseIsdl(std::string_view source,
                                   DiagnosticEngine& diags) {
  std::vector<Token> tokens = lex(source, diags);
  if (diags.hasErrors()) return nullptr;
  try {
    return Parser(std::move(tokens), diags).run();
  } catch (const ParseAbort&) {
    return nullptr;
  }
}

std::unique_ptr<Machine> parseAndCheckIsdl(std::string_view source) {
  DiagnosticEngine diags;
  std::unique_ptr<Machine> m = parseIsdl(source, diags);
  if (m) checkMachine(*m, diags);
  if (!m || diags.hasErrors())
    throw IsdlError("ISDL description is invalid:\n" + diags.dump());
  return m;
}

}  // namespace isdl
