// Lexer for the ISDL dialect. Produces a flat token stream consumed by the
// recursive-descent parser. Keywords are not reserved: section and
// declaration keywords are ordinary identifiers matched by spelling, so user
// names can never collide with the grammar.

#ifndef ISDL_ISDL_LEXER_H
#define ISDL_ISDL_LEXER_H

#include <string>
#include <string_view>
#include <vector>

#include "support/bitvector.h"
#include "support/diag.h"

namespace isdl {

enum class Tok {
  Identifier,
  Integer,     // 123, 0x1f, 0b1010
  SizedInt,    // Verilog-style 8'd255 / 8'h1f / 8'b1010
  String,      // "literal"
  // punctuation / operators
  LBrace, RBrace, LParen, RParen, LBracket, RBracket,
  Semi, Comma, Colon, Question, Dot, DotDot, Dollar2,  // $$
  Assign,      // =
  Arrow,       // <-
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Tilde, Bang,
  AmpAmp, PipePipe,
  Shl, Shr, AShr,          // << >> >>>
  EqEq, BangEq, Lt, Le, Gt, Ge,
  EndOfFile,
};

const char* tokName(Tok t);

struct Token {
  Tok kind = Tok::EndOfFile;
  std::string text;      ///< identifier spelling / literal text (no quotes)
  SourceLoc loc;

  // Numeric payload (Integer / SizedInt):
  std::uint64_t intValue = 0;  ///< Integer only; value if it fits in 64 bits
  BitVector sizedValue;        ///< SizedInt only

  bool is(Tok t) const { return kind == t; }
  bool isIdent(std::string_view s) const {
    return kind == Tok::Identifier && text == s;
  }
};

/// Tokenizes `source`. Lexical errors are reported to `diags`; the returned
/// stream always ends with an EndOfFile token.
std::vector<Token> lex(std::string_view source, DiagnosticEngine& diags);

}  // namespace isdl

#endif  // ISDL_ISDL_LEXER_H
