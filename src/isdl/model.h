// The ISDL machine model: the in-memory representation of a parsed and
// semantically checked ISDL description (paper §2). A Machine is the single
// source of truth from which every retargetable tool is generated — the
// assembler, disassembler, XSIM simulator (sim/) and hardware model (hw/).
//
// The model mirrors the paper's six description sections:
//   format                -> Machine::wordWidth
//   global definitions    -> Machine::tokens, Machine::nonTerminals
//   storage               -> Machine::storages, Machine::aliases
//   instruction set       -> Machine::fields (lists of Operations)
//   constraints           -> Machine::constraints
//   optional arch info    -> Machine::optionalInfo

#ifndef ISDL_ISDL_MODEL_H
#define ISDL_ISDL_MODEL_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rtl/ir.h"
#include "support/bitvector.h"

namespace isdl {

// --- Global definitions ------------------------------------------------------

/// One syntactic alternative of an enumerated token, e.g. "R3" -> 3.
struct TokenMember {
  std::string syntax;   ///< assembly spelling
  std::uint64_t value;  ///< encoded value (fits in the token's width)
};

enum class TokenKind {
  Enum,       ///< finite set of named alternatives (register names, ...)
  Immediate,  ///< numeric literal in assembly
};

/// A token groups syntactically related assembly elements (paper §2.1.1).
struct TokenDef {
  std::string name;
  TokenKind kind = TokenKind::Enum;
  unsigned width = 0;      ///< bit width of the token's value
  bool isSigned = false;   ///< immediates only: literal range is signed
  std::vector<TokenMember> members;  ///< Enum only

  /// Enum: find the member value for an assembly spelling.
  std::optional<std::uint64_t> memberValue(std::string_view syntax) const;
  /// Enum: find the spelling for an encoded value (for disassembly).
  std::optional<std::string> memberSyntax(std::uint64_t value) const;
};

// --- Parameters and syntax ---------------------------------------------------

enum class ParamKind { Token, NonTerminal };

/// A formal parameter of an operation or non-terminal option.
struct Param {
  std::string name;
  ParamKind kind = ParamKind::Token;
  unsigned index = 0;  ///< into Machine::tokens or Machine::nonTerminals
  SourceLoc loc;
};

/// One element of an assembly-syntax pattern: either a literal lexeme
/// ("(", "+", ",") or a reference to a parameter.
struct SyntaxItem {
  bool isLiteral = true;
  std::string literal;     ///< when isLiteral
  unsigned paramIndex = 0; ///< when !isLiteral
};

// --- Encoding ----------------------------------------------------------------

/// One bitfield assignment (paper §2.1.3 part 2): sets instruction-word (or
/// non-terminal return-value) bits [hi..lo] from a constant or from a single
/// parameter (Axiom 1: never more than one parameter per assignment).
struct EncodeAssign {
  SourceLoc loc;
  unsigned hi = 0, lo = 0;  ///< destination bit range (hi >= lo)

  enum class Src { Const, Param, ParamSlice } src = Src::Const;
  BitVector constValue;       ///< Src::Const, width == hi-lo+1
  unsigned paramIndex = 0;    ///< Src::Param / Src::ParamSlice
  unsigned paramHi = 0, paramLo = 0;  ///< Src::ParamSlice source bits
};

// --- Costs and timing ---------------------------------------------------------

/// Paper §2.1.3 part 5. Defaults match the simplest single-cycle operation.
struct Costs {
  unsigned cycle = 1;  ///< cycles in the absence of stalls
  unsigned stall = 0;  ///< max additional cycles during a pipeline stall
  unsigned size = 1;   ///< instruction words occupied
};

/// Paper §2.1.3 part 6.
struct Timing {
  unsigned latency = 1;  ///< cycle (1-based) at which results are visible
  unsigned usage = 1;    ///< cycles the functional unit stays busy
};

// --- Non-terminals -------------------------------------------------------------

/// One option of a non-terminal. Options carry the same six parts as an
/// operation definition (paper footnote 2) plus a return value: `encode`
/// assignments target the option's return bits instead of instruction bits.
struct NtOption {
  SourceLoc loc;
  std::vector<Param> params;
  std::vector<SyntaxItem> syntax;
  std::vector<EncodeAssign> encode;

  /// Runtime value when the non-terminal is read (e.g. an addressing mode's
  /// loaded value). Null for lvalue-only or pure-immediate options.
  rtl::ExprPtr value;
  /// Storage designated when the non-terminal is written (destination
  /// addressing modes). Null if the option cannot be a destination.
  std::optional<rtl::Lvalue> lvalue;
  /// Side effects contributed by the option (e.g. post-increment).
  std::vector<rtl::StmtPtr> sideEffects;

  /// Cost/timing *deltas* added to the enclosing operation's own numbers
  /// (e.g. a memory-indirect mode adding a cycle).
  Costs extraCosts{0, 0, 0};
  Timing extraTiming{0, 0};
};

/// A non-terminal abstracts common patterns in operation definitions, most
/// prominently addressing modes (paper §2.1.1).
struct NonTerminal {
  std::string name;
  unsigned returnWidth = 0;  ///< width of the encoding contribution ($$)
  std::vector<NtOption> options;
  SourceLoc loc;

  /// Width of the runtime value when the non-terminal is read. Set by
  /// semantic analysis iff *every* option defines a `value` of one common
  /// width; 0 otherwise (using such a non-terminal as an rvalue is an error).
  unsigned valueWidth = 0;
  /// Width of the designated storage when written; set analogously from the
  /// options' `lvalue` parts.
  unsigned lvalueWidth = 0;
};

// --- Storage --------------------------------------------------------------------

enum class StorageKind {
  InstructionMemory,
  DataMemory,
  RegisterFile,
  Register,
  ControlRegister,
  MemoryMappedIO,
  ProgramCounter,
  Stack,
};

const char* storageKindName(StorageKind k);
/// True for kinds addressed as name[index].
bool isAddressed(StorageKind k);

struct StorageDef {
  std::string name;
  StorageKind kind = StorageKind::Register;
  unsigned width = 0;       ///< bits per location
  std::uint64_t depth = 1;  ///< locations (1 for non-addressed kinds)
  SourceLoc loc;
};

/// Alternative name for a sub-part of the state (paper §2.1.2), e.g.
/// `alias LO = ACC[15:0];` or `alias SP = RF[15];`.
struct AliasDef {
  std::string name;
  unsigned storageIndex = 0;
  std::optional<std::uint64_t> element;  ///< fixed index into addressed kinds
  std::optional<std::pair<unsigned, unsigned>> slice;  ///< {hi, lo}
  SourceLoc loc;
};

// --- Instruction set --------------------------------------------------------------

struct Operation {
  std::string name;
  SourceLoc loc;
  std::vector<Param> params;
  std::vector<SyntaxItem> syntax;  ///< operand syntax (after the op name)
  std::vector<EncodeAssign> encode;
  std::vector<rtl::StmtPtr> action;
  std::vector<rtl::StmtPtr> sideEffects;
  Costs costs;
  Timing timing;
};

/// A field groups the mutually exclusive operations of one functional unit;
/// a VLIW instruction takes one operation from each field (paper §2.1.3).
struct Field {
  std::string name;
  std::vector<Operation> operations;
  SourceLoc loc;

  /// Index of an operation named "nop" (or the unique operation with empty
  /// encoding) used when assembling instructions that omit this field;
  /// set by semantic analysis, -1 if none.
  int nopIndex = -1;

  const Operation* findOperation(std::string_view opName) const;
};

// --- Constraints --------------------------------------------------------------------

/// Reference to one operation of one field.
struct OpRef {
  unsigned fieldIndex = 0;
  unsigned opIndex = 0;

  bool operator==(const OpRef&) const = default;
};

/// `never F1.opA & F2.opB [& ...];` — the listed operations must not all be
/// instantiated in the same instruction. An instruction is valid iff every
/// constraint holds (paper §2.1.4).
struct Constraint {
  std::vector<OpRef> ops;
  SourceLoc loc;
  std::string text;  ///< original source text, for error messages
};

// --- The machine ---------------------------------------------------------------------

class Machine {
 public:
  std::string name = "unnamed";
  unsigned wordWidth = 0;

  std::vector<TokenDef> tokens;
  std::vector<NonTerminal> nonTerminals;
  std::vector<StorageDef> storages;
  std::vector<AliasDef> aliases;
  std::vector<Field> fields;
  std::vector<Constraint> constraints;
  std::map<std::string, std::string> optionalInfo;

  // --- lookups (linear scans are fine: descriptions are small) -------------
  int findToken(std::string_view n) const;
  int findNonTerminal(std::string_view n) const;
  int findStorage(std::string_view n) const;
  int findAlias(std::string_view n) const;
  int findField(std::string_view n) const;

  /// The unique ProgramCounter storage; set by semantic analysis.
  int pcIndex = -1;
  /// The unique InstructionMemory storage; set by semantic analysis.
  int imemIndex = -1;

  /// Max over all (field, operation) of Costs::size — the widest instruction
  /// in words. Signature width = maxSizeWords * wordWidth bits.
  unsigned maxSizeWords() const;

  /// Width of a parameter's encoded value: token width or non-terminal
  /// return width.
  unsigned paramEncodingWidth(const Param& p) const;

  /// True if the given set of per-field operation choices satisfies all
  /// constraints. `choice[f]` = op index in field f, or -1 for "absent"
  /// (treated as the field's nop).
  bool satisfiesConstraints(const std::vector<int>& choice) const;
  /// As above but returns the first violated constraint (or nullptr).
  const Constraint* firstViolatedConstraint(
      const std::vector<int>& choice) const;
};

}  // namespace isdl

#endif  // ISDL_ISDL_MODEL_H
