// Cycle-based netlist simulator: executes an HGEN-generated hardware model.
//
// This is the reproduction's stand-in for the paper's Cadence Verilog-XL run
// of the synthesizable model (Table 1): a levelized two-phase simulator that
// evaluates every combinational node in topological order each clock, then
// commits registers and memory write ports. It is intentionally a
// *hardware-model* simulator — every wire of the datapath is computed every
// cycle — which is what makes it orders of magnitude slower than the ILS.
//
// It doubles as the co-simulation oracle: tests run the same binary on XSIM
// and on the netlist model and compare architectural state.

#ifndef ISDL_SYNTH_GATESIM_H
#define ISDL_SYNTH_GATESIM_H

#include <string>
#include <vector>

#include "hw/netlist.h"

namespace isdl::synth {

class GateSim {
 public:
  explicit GateSim(const hw::Netlist& netlist);

  /// Zeroes all registers, memories and input nodes.
  void reset();

  // --- memory / state access ---------------------------------------------------
  void loadMemory(int memId, const std::vector<BitVector>& contents);
  void pokeMemory(int memId, std::uint64_t addr, const BitVector& value);
  const BitVector& peekMemory(int memId, std::uint64_t addr) const;
  void pokeReg(hw::NetId reg, const BitVector& value);
  /// Value of any net after the last step() (combinational nets) or the
  /// current state (Reg nodes).
  const BitVector& peekNet(hw::NetId net) const { return values_[net]; }
  void setInput(hw::NetId input, const BitVector& value);

  /// Named output lookup; returns kNoNet if absent.
  hw::NetId findOutput(const std::string& name) const;

  // --- clocking -------------------------------------------------------------------
  /// Simulates one clock: combinational evaluation + sequential commit.
  void step();
  /// Steps until the 1-bit net `stopNet` is high or `maxClocks` elapse.
  /// Returns true if the stop condition fired.
  bool runUntil(hw::NetId stopNet, std::uint64_t maxClocks);

  std::uint64_t clocks() const { return clocks_; }

  /// Total bits toggled across all nets so far — the activity input of the
  /// power model (synth/power.h).
  std::uint64_t toggleCount() const { return toggles_; }
  void enableToggleCounting(bool on) { countToggles_ = on; }

 private:
  const hw::Netlist* nl_;
  std::vector<hw::NetId> order_;
  std::vector<BitVector> values_;
  std::vector<std::vector<BitVector>> mems_;
  std::uint64_t clocks_ = 0;
  std::uint64_t toggles_ = 0;
  bool countToggles_ = false;

  void evalCombinational();
};

}  // namespace isdl::synth

#endif  // ISDL_SYNTH_GATESIM_H
