// Synthetic standard-cell library — the reproduction's stand-in for the
// paper's LSI Logic 10K library (Table 2's "grid cells" area unit and
// nanosecond cycle lengths come from that technology).
//
// Area is in grid cells, delay in nanoseconds. The numbers are calibrated to
// late-90s gate-array technology so the *shape* of Table 2 reproduces: a
// 32-bit ripple-ish adder costs a few hundred grid cells, a 32x32 multiplier
// thousands, flip-flops dominate register files, and floating-point macro
// blocks dwarf integer logic.
//
// mapper.h consumes these per-primitive numbers through closed-form
// decomposition formulas (a w-bit adder = w full adders + lookahead, a
// barrel shifter = w*log2(w) muxes, ...), which is how a quick silicon
// compiler estimates netlists before placement.

#ifndef ISDL_SYNTH_CELLLIB_H
#define ISDL_SYNTH_CELLLIB_H

namespace isdl::synth {

struct Cell {
  const char* name;
  double area;   ///< grid cells
  double delay;  ///< ns, input to output
};

/// The primitive cells of the synthetic library.
struct CellLibrary {
  Cell inv{"INV", 1.0, 0.15};
  Cell nand2{"NAND2", 1.0, 0.20};
  Cell and2{"AND2", 2.0, 0.30};
  Cell or2{"OR2", 2.0, 0.30};
  Cell xor2{"XOR2", 3.0, 0.45};
  Cell mux21{"MUX21", 3.0, 0.40};
  Cell fullAdder{"FA", 8.0, 0.70};
  /// Carry propagation per lookahead level (delay only).
  double carryLevelDelay = 0.25;
  Cell dff{"DFF", 6.0, 0.0};
  double dffClkToQ = 0.80;
  double dffSetup = 0.40;

  /// RAM macro: area per bit (grid cells) and access time.
  double ramAreaPerBit = 0.6;
  double ramAccessDelay = 1.8;
  double ramAddrDecodePerLevel = 0.10;

  /// 32-bit floating-point macro blocks (x3 for 64-bit).
  double fp32AddArea = 4200, fp32AddDelay = 6.5;
  double fp32MulArea = 11000, fp32MulDelay = 7.5;
  double fp32DivArea = 14000, fp32DivDelay = 13.0;
  double fp32CvtArea = 2400, fp32CvtDelay = 5.0;
  double fp32CmpArea = 700, fp32CmpDelay = 1.8;

  /// Routing / glue overhead multiplier applied to summed cell area
  /// (placement tools of the era reported ~20-30% wiring overhead).
  double wiringOverhead = 1.25;
};

/// The default technology (the one every report in this repo uses).
const CellLibrary& defaultLibrary();

}  // namespace isdl::synth

#endif  // ISDL_SYNTH_CELLLIB_H
