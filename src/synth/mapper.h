// Technology mapping and static timing analysis — the quick "silicon
// compiler" used to obtain Table 2's die size (grid cells) and cycle length
// (critical path, ns) from an HGEN netlist.
//
// Each word-level node is decomposed into library cells by closed-form
// formulas (see celllib.h); area is the overhead-scaled sum, timing is a
// longest-path computation over per-node delays from register/memory
// outputs to register/memory inputs.

#ifndef ISDL_SYNTH_MAPPER_H
#define ISDL_SYNTH_MAPPER_H

#include <string>
#include <vector>

#include "hw/netlist.h"
#include "synth/celllib.h"

namespace isdl::synth {

/// Mapping of one node: estimated cells, area and propagation delay.
struct NodeCost {
  double area = 0;    ///< grid cells (before wiring overhead)
  double delay = 0;   ///< ns through the node
  double cells = 0;   ///< equivalent primitive-cell count
};

/// Per-node decomposition into library cells.
NodeCost costOfNode(const hw::Netlist& netlist, hw::NetId id,
                    const CellLibrary& lib = defaultLibrary());

struct AreaReport {
  double logicArea = 0;   ///< combinational cells, grid cells (with wiring)
  double flopArea = 0;    ///< registers
  double ramArea = 0;     ///< memory macro area (instruction/data memories)
  double totalArea = 0;   ///< die size: logic + flops + RAM
  double cellCount = 0;   ///< equivalent primitive cells
};

AreaReport mapArea(const hw::Netlist& netlist,
                   const CellLibrary& lib = defaultLibrary());

struct TimingReport {
  double criticalPathNs = 0;  ///< the cycle length of Table 2
  /// Path endpoints for reporting: nets on the critical path, source first.
  std::vector<hw::NetId> criticalPath;
};

TimingReport analyzeTiming(const hw::Netlist& netlist,
                           const CellLibrary& lib = defaultLibrary());

/// Dynamic-power estimate from gate-simulation switching activity:
///   P = energyPerToggledBit * toggles/cycle * f,   f = 1/criticalPath.
/// Returns milliwatts.
double estimatePowerMw(double togglesPerCycle, double criticalPathNs,
                       double energyPerToggledBitPj = 0.35);

}  // namespace isdl::synth

#endif  // ISDL_SYNTH_MAPPER_H
