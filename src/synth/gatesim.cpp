#include "synth/gatesim.h"

#include "rtl/eval.h"
#include "support/strings.h"

namespace isdl::synth {

using hw::kNoNet;
using hw::NetId;
using hw::NodeKind;

GateSim::GateSim(const hw::Netlist& netlist) : nl_(&netlist) {
  order_ = netlist.topoOrder();
  reset();
}

void GateSim::reset() {
  values_.clear();
  values_.reserve(nl_->nodes.size());
  for (const auto& n : nl_->nodes) values_.emplace_back(BitVector(n.width));
  mems_.clear();
  for (const auto& m : nl_->memories)
    mems_.emplace_back(m.depth, BitVector(m.width));
  clocks_ = 0;
  toggles_ = 0;
}

void GateSim::loadMemory(int memId, const std::vector<BitVector>& contents) {
  auto& mem = mems_[memId];
  for (std::size_t i = 0; i < contents.size() && i < mem.size(); ++i)
    mem[i] = contents[i].resize(nl_->memories[memId].width);
}

void GateSim::pokeMemory(int memId, std::uint64_t addr,
                         const BitVector& value) {
  mems_[memId][addr] = value.resize(nl_->memories[memId].width);
}

const BitVector& GateSim::peekMemory(int memId, std::uint64_t addr) const {
  return mems_[memId][addr];
}

void GateSim::pokeReg(hw::NetId reg, const BitVector& value) {
  values_[reg] = value.resize(nl_->nodes[reg].width);
}

void GateSim::setInput(hw::NetId input, const BitVector& value) {
  values_[input] = value.resize(nl_->nodes[input].width);
}

hw::NetId GateSim::findOutput(const std::string& name) const {
  for (const auto& out : nl_->outputs)
    if (out.name == name) return out.net;
  return kNoNet;
}

void GateSim::evalCombinational() {
  for (NetId id : order_) {
    const hw::Node& n = nl_->nodes[id];
    BitVector v;
    switch (n.kind) {
      case NodeKind::Input:
      case NodeKind::Reg:
        continue;  // state / externally driven
      case NodeKind::Const:
        v = n.constValue;
        break;
      case NodeKind::Unary:
        v = rtl::applyUnOp(n.unOp, values_[n.ins[0]]);
        break;
      case NodeKind::Binary:
        v = rtl::applyBinOp(n.binOp, values_[n.ins[0]], values_[n.ins[1]]);
        break;
      case NodeKind::AddSub:
        v = values_[n.ins[2]].isZero()
                ? values_[n.ins[0]].add(values_[n.ins[1]])
                : values_[n.ins[0]].sub(values_[n.ins[1]]);
        break;
      case NodeKind::Mux:
        v = values_[n.ins[0]].isZero() ? values_[n.ins[2]]
                                       : values_[n.ins[1]];
        break;
      case NodeKind::Slice:
        v = values_[n.ins[0]].slice(n.hi, n.lo);
        break;
      case NodeKind::Concat: {
        v = values_[n.ins[0]];
        for (std::size_t i = 1; i < n.ins.size(); ++i)
          v = v.concat(values_[n.ins[i]]);
        break;
      }
      case NodeKind::ZExt:
        v = values_[n.ins[0]].zext(n.width);
        break;
      case NodeKind::SExt:
        v = values_[n.ins[0]].sext(n.width);
        break;
      case NodeKind::Trunc:
        v = values_[n.ins[0]].trunc(n.width);
        break;
      case NodeKind::IToF:
        v = rtl::intToFloat(values_[n.ins[0]], n.width);
        break;
      case NodeKind::FToI:
        v = rtl::floatToInt(values_[n.ins[0]], n.width);
        break;
      case NodeKind::MemRead: {
        const auto& mem = mems_[n.memId];
        std::uint64_t addr = values_[n.ins[0]].toUint64() % mem.size();
        v = mem[addr];
        break;
      }
    }
    if (countToggles_) {
      toggles_ += values_[id].xor_(v.resize(values_[id].width())).popcount();
    }
    values_[id] = std::move(v);
  }
}

void GateSim::step() {
  evalCombinational();

  // Sequential commit, two-phase: sample every next value before writing.
  std::vector<std::pair<NetId, BitVector>> regUpdates;
  for (std::size_t i = 0; i < nl_->nodes.size(); ++i) {
    const hw::Node& n = nl_->nodes[i];
    if (n.kind != NodeKind::Reg) continue;
    NetId next = n.ins[0];
    NetId enable = n.ins.size() > 1 ? n.ins[1] : kNoNet;
    if (next == kNoNet) continue;  // unconnected register holds its value
    if (enable != kNoNet && values_[enable].isZero()) continue;
    regUpdates.emplace_back(static_cast<NetId>(i), values_[next]);
  }
  std::vector<std::tuple<int, std::uint64_t, BitVector>> memUpdates;
  for (std::size_t m = 0; m < nl_->memories.size(); ++m) {
    for (const auto& port : nl_->memories[m].writePorts) {
      if (values_[port.enable].isZero()) continue;
      std::uint64_t addr =
          values_[port.addr].toUint64() % mems_[m].size();
      memUpdates.emplace_back(static_cast<int>(m), addr, values_[port.data]);
    }
  }
  for (auto& [id, v] : regUpdates) values_[id] = std::move(v);
  for (auto& [m, addr, v] : memUpdates) mems_[m][addr] = std::move(v);
  ++clocks_;
}

bool GateSim::runUntil(hw::NetId stopNet, std::uint64_t maxClocks) {
  for (std::uint64_t i = 0; i < maxClocks; ++i) {
    step();
    if (!values_[stopNet].isZero()) return true;
  }
  return false;
}

}  // namespace isdl::synth
