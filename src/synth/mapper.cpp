#include "synth/mapper.h"

#include <algorithm>
#include <cmath>

#include "support/diag.h"

namespace isdl::synth {

namespace {

double log2ceil(double w) { return std::max(1.0, std::ceil(std::log2(w))); }

NodeCost scaleFp(double area, double delay, unsigned width) {
  double s = width > 32 ? 3.0 : 1.0;
  return {area * s, delay * (width > 32 ? 1.6 : 1.0), area * s / 4.0};
}

}  // namespace

const CellLibrary& defaultLibrary() {
  static const CellLibrary lib;
  return lib;
}

NodeCost costOfNode(const hw::Netlist& nl, hw::NetId id,
                    const CellLibrary& lib) {
  using hw::NodeKind;
  using rtl::BinOp;
  const hw::Node& n = nl.nodes[id];
  const double w = n.width;
  NodeCost c;

  auto gates = [&](const Cell& cell, double count, double levels = 1) {
    c.area += cell.area * count;
    c.cells += count;
    c.delay = std::max(c.delay, cell.delay * levels);
  };

  switch (n.kind) {
    case NodeKind::Input:
    case NodeKind::Const:
    case NodeKind::Slice:
    case NodeKind::Concat:
    case NodeKind::ZExt:
    case NodeKind::SExt:
    case NodeKind::Trunc:
      return c;  // wiring only

    case NodeKind::Reg:
      c.area = lib.dff.area * w;
      c.cells = w;
      c.delay = 0;  // handled as clk-to-q / setup in the STA
      return c;

    case NodeKind::MemRead: {
      const hw::Memory& m = nl.memories[n.memId];
      c.delay = lib.ramAccessDelay +
                lib.ramAddrDecodePerLevel * log2ceil(double(m.depth));
      // Array area is accounted once per memory in mapArea, not per port;
      // each extra read port costs decode + sensing logic.
      c.area = 4.0 * m.width;
      c.cells = m.width;
      return c;
    }

    case NodeKind::Unary:
      switch (n.unOp) {
        case rtl::UnOp::BitNot: gates(lib.inv, w); break;
        case rtl::UnOp::Neg:
          gates(lib.inv, w);
          gates(lib.fullAdder, w);
          c.delay = lib.fullAdder.delay +
                    lib.carryLevelDelay * log2ceil(w);
          break;
        case rtl::UnOp::LogNot:
        case rtl::UnOp::RedOr:
          gates(lib.or2, w - 1, log2ceil(w));
          break;
        case rtl::UnOp::RedAnd:
          gates(lib.and2, w - 1, log2ceil(w));
          break;
        case rtl::UnOp::RedXor:
          gates(lib.xor2, w - 1, log2ceil(w));
          break;
      }
      return c;

    case NodeKind::AddSub: {
      double inW = nl.nodes[n.ins[0]].width;
      gates(lib.fullAdder, inW);
      gates(lib.xor2, inW);  // operand inversion stage
      c.delay = lib.xor2.delay + lib.fullAdder.delay +
                lib.carryLevelDelay * log2ceil(inW);
      return c;
    }

    case NodeKind::Mux:
      gates(lib.mux21, w);
      return c;

    case NodeKind::IToF:
    case NodeKind::FToI:
      return scaleFp(lib.fp32CvtArea, lib.fp32CvtDelay, n.width);

    case NodeKind::Binary: {
      double inW = nl.nodes[n.ins[0]].width;
      switch (n.binOp) {
        case BinOp::Add:
        case BinOp::Sub:
          gates(lib.fullAdder, inW);
          c.delay = lib.fullAdder.delay +
                    lib.carryLevelDelay * log2ceil(inW);
          return c;
        case BinOp::Mul:
          // Array multiplier: w^2 adder cells, log-depth reduction tree.
          gates(lib.fullAdder, inW * inW * 0.9);
          c.delay = lib.fullAdder.delay * (1.0 + 1.2 * log2ceil(inW));
          return c;
        case BinOp::UDiv:
        case BinOp::SDiv:
        case BinOp::URem:
        case BinOp::SRem:
          // Restoring array divider: w rows of w-bit subtract-and-select.
          gates(lib.fullAdder, inW * inW);
          gates(lib.mux21, inW * inW);
          c.delay = inW * (lib.fullAdder.delay * 0.6);
          return c;
        case BinOp::Shl:
        case BinOp::LShr:
        case BinOp::AShr: {
          double levels = log2ceil(inW);
          gates(lib.mux21, inW * levels, levels);
          return c;
        }
        case BinOp::And: gates(lib.and2, inW); return c;
        case BinOp::Or: gates(lib.or2, inW); return c;
        case BinOp::Xor: gates(lib.xor2, inW); return c;
        case BinOp::LogAnd: gates(lib.and2, 1); return c;
        case BinOp::LogOr: gates(lib.or2, 1); return c;
        case BinOp::Eq:
        case BinOp::Ne:
          gates(lib.xor2, inW);
          gates(lib.or2, inW - 1, log2ceil(inW));
          c.delay = lib.xor2.delay + lib.or2.delay * log2ceil(inW);
          return c;
        case BinOp::ULt: case BinOp::ULe: case BinOp::UGt: case BinOp::UGe:
        case BinOp::SLt: case BinOp::SLe: case BinOp::SGt: case BinOp::SGe:
          gates(lib.fullAdder, inW);  // comparison = subtraction
          c.delay = lib.fullAdder.delay +
                    lib.carryLevelDelay * log2ceil(inW);
          return c;
        case BinOp::FAdd:
        case BinOp::FSub:
          return scaleFp(lib.fp32AddArea, lib.fp32AddDelay, inW);
        case BinOp::FMul:
          return scaleFp(lib.fp32MulArea, lib.fp32MulDelay, inW);
        case BinOp::FDiv:
          return scaleFp(lib.fp32DivArea, lib.fp32DivDelay, inW);
        case BinOp::FEq: case BinOp::FLt: case BinOp::FLe:
          return scaleFp(lib.fp32CmpArea, lib.fp32CmpDelay, inW);
      }
      return c;
    }
  }
  return c;
}

AreaReport mapArea(const hw::Netlist& nl, const CellLibrary& lib) {
  AreaReport r;
  for (std::size_t i = 0; i < nl.nodes.size(); ++i) {
    NodeCost c = costOfNode(nl, static_cast<hw::NetId>(i), lib);
    if (nl.nodes[i].kind == hw::NodeKind::Reg)
      r.flopArea += c.area;
    else
      r.logicArea += c.area;
    r.cellCount += c.cells;
  }
  for (const auto& m : nl.memories) {
    r.ramArea += lib.ramAreaPerBit * double(m.width) * double(m.depth);
    // Write-port logic.
    r.logicArea += 3.0 * m.width * double(m.writePorts.size());
  }
  r.logicArea *= lib.wiringOverhead;
  r.flopArea *= lib.wiringOverhead;
  r.totalArea = r.logicArea + r.flopArea + r.ramArea;
  return r;
}

TimingReport analyzeTiming(const hw::Netlist& nl, const CellLibrary& lib) {
  std::vector<hw::NetId> order = nl.topoOrder();
  std::vector<double> arrival(nl.nodes.size(), 0.0);
  std::vector<hw::NetId> from(nl.nodes.size(), hw::kNoNet);

  for (hw::NetId id : order) {
    const hw::Node& n = nl.nodes[id];
    if (n.kind == hw::NodeKind::Reg) {
      arrival[id] = lib.dffClkToQ;
      continue;
    }
    if (n.kind == hw::NodeKind::Input || n.kind == hw::NodeKind::Const) {
      arrival[id] = 0.0;
      continue;
    }
    double inArrival = 0.0;
    for (hw::NetId in : n.ins) {
      if (in == hw::kNoNet) continue;
      if (arrival[in] > inArrival) {
        inArrival = arrival[in];
        from[id] = in;
      }
    }
    arrival[id] = inArrival + costOfNode(nl, id, lib).delay;
  }

  // Endpoints: register data/enable inputs and memory write ports.
  double worst = 0.0;
  hw::NetId worstNet = hw::kNoNet;
  auto consider = [&](hw::NetId net) {
    if (net == hw::kNoNet) return;
    double t = arrival[net] + lib.dffSetup;
    if (t > worst) {
      worst = t;
      worstNet = net;
    }
  };
  for (const auto& n : nl.nodes) {
    if (n.kind != hw::NodeKind::Reg) continue;
    for (hw::NetId in : n.ins) consider(in);
  }
  for (const auto& m : nl.memories) {
    for (const auto& p : m.writePorts) {
      consider(p.enable);
      consider(p.addr);
      consider(p.data);
    }
  }

  TimingReport r;
  r.criticalPathNs = worst;
  for (hw::NetId at = worstNet; at != hw::kNoNet; at = from[at])
    r.criticalPath.push_back(at);
  std::reverse(r.criticalPath.begin(), r.criticalPath.end());
  return r;
}

double estimatePowerMw(double togglesPerCycle, double criticalPathNs,
                       double energyPerToggledBitPj) {
  if (criticalPathNs <= 0) return 0;
  double freqMhz = 1000.0 / criticalPathNs;
  // pJ * MHz = microwatts; convert to mW.
  return energyPerToggledBitPj * togglesPerCycle * freqMhz / 1000.0;
}

}  // namespace isdl::synth
