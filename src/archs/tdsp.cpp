// TDSP: a small accumulator DSP whose operand syntax is built from
// non-terminals — the paper's showcase for abstracting addressing modes
// (§2.1.1). SRC/DST support register direct, register indirect "(A0)" and
// post-increment "(A0)+" modes; the indirect modes add a cycle through the
// option's extra costs, and post-increment contributes an option side effect.

#include "archs/archs.h"
#include "isdl/parser.h"

namespace isdl::archs {

const char* tdspIsdl() {
  return R"ISDL(
machine TDSP {
  section format { word_width = 24; }

  section storage {
    instruction_memory IM width 24 depth 512;
    data_memory DM width 16 depth 256;
    register_file RF width 16 depth 8;
    register_file AR width 8 depth 4;
    register ACC width 32;
    program_counter PC width 16;
  }

  section global_definitions {
    token DR enum width 3 prefix "D" range 0 .. 7;
    token ADR enum width 2 prefix "A" range 0 .. 3;
    token U8 immediate unsigned width 8;
    token S8 immediate signed width 8;

    // Source operand: register, memory indirect, or memory post-increment.
    nonterminal SRC returns width 4 {
      option reg(r: DR) {
        syntax r;
        encode { $$[3] = 0; $$[2:0] = r; }
        value { RF[r] }
      }
      option ind(a: ADR) {
        syntax "(" a ")";
        encode { $$[3] = 1; $$[2] = 0; $$[1:0] = a; }
        value { DM[AR[a]] }
        costs { cycle = 1; }
      }
      option postinc(a: ADR) {
        syntax "(" a ")" "+";
        encode { $$[3] = 1; $$[2] = 1; $$[1:0] = a; }
        value { DM[AR[a]] }
        side_effect { AR[a] <- AR[a] + 8'd1; }
        costs { cycle = 1; }
      }
    }

    // Destination operand: the same modes as lvalues.
    nonterminal DST returns width 4 {
      option reg(r: DR) {
        syntax r;
        encode { $$[3] = 0; $$[2:0] = r; }
        value { RF[r] }
        lvalue { RF[r] }
      }
      option ind(a: ADR) {
        syntax "(" a ")";
        encode { $$[3] = 1; $$[2] = 0; $$[1:0] = a; }
        value { DM[AR[a]] }
        lvalue { DM[AR[a]] }
        costs { cycle = 1; }
      }
      option postinc(a: ADR) {
        syntax "(" a ")" "+";
        encode { $$[3] = 1; $$[2] = 1; $$[1:0] = a; }
        value { DM[AR[a]] }
        lvalue { DM[AR[a]] }
        side_effect { AR[a] <- AR[a] + 8'd1; }
        costs { cycle = 1; }
      }
    }
  }

  section instruction_set {
    field EX {
      operation nop() { encode { inst[23:19] = 5'd0; } }
      operation move(d: DST, s: SRC) {
        encode { inst[23:19] = 5'd1; inst[18:15] = d; inst[14:11] = s; }
        action { d <- s; }
      }
      operation add(d: DR, s: SRC) {
        encode { inst[23:19] = 5'd2; inst[18:16] = d; inst[14:11] = s; }
        action { RF[d] <- RF[d] + s; }
      }
      operation mac(s1: SRC, s2: SRC) {
        encode { inst[23:19] = 5'd3; inst[18:15] = s1; inst[14:11] = s2; }
        action { ACC <- ACC + sext(s1, 32) * sext(s2, 32); }
      }
      operation clracc() {
        encode { inst[23:19] = 5'd4; }
        action { ACC <- 32'd0; }
      }
      operation sacl(d: DR) {
        encode { inst[23:19] = 5'd5; inst[18:16] = d; }
        action { RF[d] <- ACC[15:0]; }
      }
      operation sach(d: DR) {
        encode { inst[23:19] = 5'd6; inst[18:16] = d; }
        action { RF[d] <- ACC[31:16]; }
      }
      operation lar(a: ADR, i: U8) {
        encode { inst[23:19] = 5'd7; inst[18:17] = a; inst[7:0] = i; }
        action { AR[a] <- i; }
      }
      operation li(d: DR, i: S8) {
        encode { inst[23:19] = 5'd8; inst[18:16] = d; inst[7:0] = i; }
        action { RF[d] <- sext(i, 16); }
      }
      operation bnz(d: DR, t: U8) {
        encode { inst[23:19] = 5'd9; inst[18:16] = d; inst[7:0] = t; }
        action { if (RF[d] != 16'd0) { PC <- zext(t, 16); } }
        costs { cycle = 2; }
      }
      operation sub(d: DR, s: SRC) {
        encode { inst[23:19] = 5'd10; inst[18:16] = d; inst[14:11] = s; }
        action { RF[d] <- RF[d] - s; }
      }
      operation halt() { encode { inst[23:19] = 5'd31; } }
    }
  }

  section optional {
    halt_operation = "EX.halt";
    description = "accumulator DSP with addressing-mode non-terminals";
  }
}
)ISDL";
}

std::unique_ptr<Machine> loadTdsp() { return parseAndCheckIsdl(tdspIsdl()); }

}  // namespace isdl::archs
