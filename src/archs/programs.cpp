// Benchmark kernels for the built-in architectures. These are the workloads
// the evaluation harness runs on the XSIM simulators and on the generated
// hardware models; tests verify their results against C++ mirrors.

#include "archs/archs.h"

namespace isdl::archs {

namespace {

// --- SPAM (floating point, VLIW) ----------------------------------------------

// dot = sum_i a[i]*b[i] with a[i] = float(i), b[i] = float(2i), N = 64.
// Result (bit pattern of 170688.0f) is stored to DM[128].
const char* kSpamDot = R"(
        li R1, 0          ; i
        li R2, 64         ; N
        li R3, 0          ; &a
        li R4, 64         ; &b
        li R8, 1
        li R9, 0          ; acc = 0.0f
init:   itof R5, R1
        add R6, R1, R1    ; 2i
        st R3, R5
        itof R7, R6
        st R4, R7
        { add R1, R1, R8 | add R3, R3, R8 | add R4, R4, R8 }
        bne R1, R2, init
        li R1, 0
        li R3, 0
        li R4, 64
loop:   ld R5, R3
        ld R6, R4
        fmul R7, R5, R6
        fadd R9, R9, R7
        { add R1, R1, R8 | add R3, R3, R8 | add R4, R4, R8 }
        bne R1, R2, loop
        li R10, 128
        st R10, R9
        halt
)";

// saxpy: y[i] = 2.5*x[i] + y[i], N = 64; x at 0, y at 64. Also exercises
// fdiv (interlocked) to build the 2.5 constant and a parallel move unit.
const char* kSpamSaxpy = R"(
        li R1, 0          ; i
        li R2, 64         ; N
        li R3, 0          ; &x
        li R4, 64         ; &y
        li R8, 1
        li R11, 5
        itof R11, R11
        li R12, 2
        itof R12, R12
        fdiv R11, R11, R12   ; 2.5f (stall-heavy on purpose)
init:   itof R5, R1          ; x[i] = float(i)
        st R3, R5
        add R6, R1, R2       ; i + 64
        itof R7, R6          ; y[i] = float(i + 64)
        st R4, R7
        { add R1, R1, R8 | add R3, R3, R8 | add R4, R4, R8 }
        bne R1, R2, init
        li R1, 0
        li R3, 0
        li R4, 64
loop:   ld R5, R3
        ld R6, R4
        fmul R7, R5, R11
        fadd R7, R7, R6
        st R4, R7
        { add R1, R1, R8 | add R3, R3, R8 | add R4, R4, R8 | mov R13, R7 }
        bne R1, R2, loop
        halt
)";

// 8-tap FIR over 64 samples: x[i] = float(i) at DM[0..63], h[k] = float(k+1)
// at DM[64..71], y[n] = sum_k h[k]*x[n-k] for n = 7..63 at DM[80+n].
const char* kSpamFir = R"(
        li R8, 1
        li R1, 0
        li R2, 64
xinit:  itof R5, R1
        st R1, R5
        add R1, R1, R8
        bne R1, R2, xinit
        li R1, 0
        li R2, 8
        li R3, 64            ; &h
hinit:  add R6, R1, R8       ; k+1
        itof R5, R6
        st R3, R5
        { add R1, R1, R8 | add R3, R3, R8 }
        bne R1, R2, hinit
        li R1, 7             ; n
        li R2, 64
        li R4, 8             ; taps
        li R14, 80           ; &y
outer:  li R9, 0             ; acc
        li R3, 0             ; k
kloop:  sub R5, R1, R3       ; n-k
        ld R6, R5            ; x[n-k]
        li R7, 64
        add R7, R7, R3       ; &h[k]
        ld R7, R7            ; h[k]
        fmul R10, R6, R7
        fadd R9, R9, R10
        add R3, R3, R8
        bne R3, R4, kloop
        add R5, R14, R1      ; &y[n] = 80 + n
        st R5, R9
        add R1, R1, R8
        bne R1, R2, outer
        halt
)";

// 4x4 float matrix multiply: A[k] = float(k) at DM[0..15], B[k] = float(k+1)
// at DM[16..31], C = A*B (row major) at DM[32..47].
const char* kSpamMat4 = R"(
        li R8, 1
        li R13, 16
        li R1, 0
minit:  itof R5, R1
        st R1, R5           ; A[k] = f(k)
        add R6, R1, R13
        add R7, R1, R8
        itof R7, R7
        st R6, R7           ; B[k] = f(k+1)
        add R1, R1, R8
        bne R1, R13, minit
        li R15, 4
        li R1, 0            ; i
iloop:  li R2, 0            ; j
jloop:  li R3, 0            ; k
        li R9, 0            ; acc = 0.0f
kloop:  mul R4, R1, R15
        add R4, R4, R3      ; &A[i][k]
        ld R5, R4
        mul R6, R3, R15
        add R6, R6, R2
        add R6, R6, R13     ; &B[k][j]
        ld R6, R6
        fmul R7, R5, R6
        fadd R9, R9, R7
        add R3, R3, R8
        bne R3, R15, kloop
        mul R4, R1, R15
        add R4, R4, R2
        li R10, 32
        add R4, R4, R10     ; &C[i][j]
        st R4, R9
        add R2, R2, R8
        bne R2, R15, jloop
        add R1, R1, R8
        bne R1, R15, iloop
        halt
)";

// Gather/scale/scatter through indexed addressing: DM[300+i] = 2*DM[i] for
// i in [0, 16), with DM[i] pre-filled with i.
const char* kSpamGather = R"(
        li R1, 0
        li R2, 16
        li R3, 0          ; src base
        li R4, 300        ; dst base
        li R8, 1
init:   st R1, R1
        add R1, R1, R8
        bne R1, R2, init
        li R1, 0
loop:   ldx R5, R3, R1
        add R5, R5, R5
        stx R4, R1, R5
        add R1, R1, R8
        bne R1, R2, loop
        halt
)";

// --- SPAM2 (integer VLIW) -------------------------------------------------------

// Integer dot product: a[i] = i, b[i] = 2i, N = 64, result (170688) -> DM[128].
const char* kSpam2Dot = R"(
        li R1, 0
        li R2, 64
        li R3, 0
        li R4, 64
        li R8, 1
init:   st R3, R1
        add R6, R1, R1
        st R4, R6
        { add R1, R1, R8 | add R3, R3, R8 }
        add R4, R4, R8
        bne R1, R2, init
        li R1, 0
        li R3, 0
        li R4, 64
        li R9, 0
loop:   ld R5, R3
        ld R6, R4
        mul R7, R5, R6
        add R9, R9, R7
        { add R1, R1, R8 | add R3, R3, R8 }
        add R4, R4, R8
        bne R1, R2, loop
        li R10, 128
        st R10, R9
        halt
)";

// Vector sum: s = sum_{i<64} (3i+1), result -> DM[200].
const char* kSpam2VecSum = R"(
        li R1, 0
        li R2, 64
        li R8, 1
        li R9, 0
        li R3, 3
loop:   mul R5, R1, R3
        add R5, R5, R8
        { add R9, R9, R5 | add R1, R1, R8 }
        bne R1, R2, loop
        li R10, 200
        st R10, R9
        halt
)";

// --- SREP (scalar RISC) -----------------------------------------------------------

// Iterative Fibonacci: fib(20) = 6765 -> DM[0].
const char* kSrepFib = R"(
        li R0, 0
        li R1, 20
        li R2, 0
        li R3, 1
        li R8, 1
loop:   add R4, R2, R3
        add R2, R3, R0
        add R3, R4, R0
        sub R1, R1, R8
        bne R1, R0, loop
        li R5, 0
        st R5, R2
        halt
)";

// Integer dot product with addi-based pointer arithmetic; result -> DM[128].
const char* kSrepDot = R"(
        li R1, 0
        li R2, 64
        li R3, 0
        li R4, 64
init:   st R3, R1
        add R6, R1, R1
        st R4, R6
        addi R1, R1, 1
        addi R3, R3, 1
        addi R4, R4, 1
        bne R1, R2, init
        li R1, 0
        li R3, 0
        li R4, 64
        li R9, 0
loop:   ld R5, R3
        ld R6, R4
        mul R7, R5, R6
        add R9, R9, R7
        addi R1, R1, 1
        addi R3, R3, 1
        addi R4, R4, 1
        bne R1, R2, loop
        li R10, 128
        st R10, R9
        halt
)";

// Subtraction-based GCD(1071, 462) = 21 -> DM[1].
const char* kSrepGcd = R"(
        li R1, 1071
        li R2, 462
        li R0, 0
loop:   beq R2, R0, done
        blt R1, R2, swap
        sub R1, R1, R2
        jmp loop
swap:   add R3, R1, R0
        add R1, R2, R0
        add R2, R3, R0
        jmp loop
done:   li R4, 1
        st R4, R1
        halt
)";

// --- TDSP (addressing-mode DSP) ----------------------------------------------------

// 8-tap MAC using post-increment addressing: sum x[k]*h[k] with
// x = {1..8} at DM[0..7], h = {2,4,..,16} at DM[16..23]; low half of the
// accumulator is stored through an indirect destination to DM[32].
const char* kTdspFir = R"(
.dm 0 1
.dm 1 2
.dm 2 3
.dm 3 4
.dm 4 5
.dm 5 6
.dm 6 7
.dm 7 8
.dm 16 2
.dm 17 4
.dm 18 6
.dm 19 8
.dm 20 10
.dm 21 12
.dm 22 14
.dm 23 16
        lar A0, 0
        lar A1, 16
        li D0, 8
        li D1, 1
        clracc
mloop:  mac (A0)+, (A1)+
        sub D0, D1
        bnz D0, mloop
        sacl D2
        lar A2, 32
        move (A2), D2
        halt
)";

// Memory copy through two post-increment pointers: DM[0..7] -> DM[40..47].
const char* kTdspMemcpy = R"(
.dm 0 11
.dm 1 22
.dm 2 33
.dm 3 44
.dm 4 55
.dm 5 66
.dm 6 77
.dm 7 88
        lar A0, 0
        lar A1, 40
        li D0, 8
        li D1, 1
cloop:  move (A1)+, (A0)+
        sub D0, D1
        bnz D0, cloop
        halt
)";

}  // namespace

std::vector<Benchmark> spamBenchmarks() {
  return {
      {"dot64", "64-element float dot product", kSpamDot, 100000},
      {"saxpy64", "64-element saxpy with fdiv setup", kSpamSaxpy, 100000},
      {"fir8x64", "8-tap FIR over 64 samples", kSpamFir, 400000},
      {"gather16", "indexed-addressing gather/scale/scatter", kSpamGather,
       10000},
      {"mat4x4", "4x4 float matrix multiply", kSpamMat4, 100000},
  };
}

std::vector<Benchmark> spam2Benchmarks() {
  return {
      {"dot64", "64-element integer dot product", kSpam2Dot, 100000},
      {"vecsum64", "64-element vector reduction", kSpam2VecSum, 100000},
  };
}

std::vector<Benchmark> srepBenchmarks() {
  return {
      {"fib20", "iterative Fibonacci(20)", kSrepFib, 10000},
      {"dot64", "64-element integer dot product", kSrepDot, 100000},
      {"gcd", "subtraction GCD(1071, 462)", kSrepGcd, 10000},
  };
}

std::vector<Benchmark> tdspBenchmarks() {
  return {
      {"fir8", "8-tap MAC with post-increment addressing", kTdspFir, 10000},
      {"memcpy8", "8-word copy through post-increment pointers", kTdspMemcpy,
       10000},
  };
}

}  // namespace isdl::archs
