// SPAM: the paper's 4-way floating-point VLIW (§6.1). Four operation units
// (U0 carries the immediate/memory/control operations, U1..U3 are arithmetic
// units) plus three parallel move units, in a 128-bit instruction word:
//
//   U0 [127:96]  U1 [95:75]  U2 [74:54]  U3 [53:33]
//   M0 [32:22]   M1 [21:11]  M2 [10:0]
//
// The constraints model a bus shared between the memory unit and move unit
// M2 (the paper's §4.1.1 example): a load/store cannot issue together with
// an M2 move.

#include "archs/archs.h"
#include "isdl/parser.h"

namespace isdl::archs {

const char* spamIsdl() {
  return R"ISDL(
machine SPAM {
  section format { word_width = 128; }

  section storage {
    instruction_memory IM width 128 depth 2048;
    data_memory DM width 32 depth 2048;
    register_file RF width 32 depth 16;
    program_counter PC width 16;
    control_register CC width 4;
    alias CARRY = CC[0:0];
    alias OVF   = CC[1:1];
  }

  section global_definitions {
    token REG enum width 4 prefix "R" range 0 .. 15;
    token U16 immediate unsigned width 16;
    token S16 immediate signed width 16;
  }

  section instruction_set {
    // ---- U0: immediate / memory / control unit -------------------------
    field U0 {
      operation nop() {
        encode { inst[127:123] = 5'd0; }
      }
      operation add(d: REG, a: REG, b: REG) {
        encode { inst[127:123] = 5'd1; inst[122:119] = d; inst[118:115] = a;
                 inst[114:111] = b; }
        action { RF[d] <- RF[a] + RF[b]; }
        side_effect { CARRY <- carry(RF[a], RF[b]);
                      OVF <- overflow(RF[a], RF[b]); }
      }
      operation sub(d: REG, a: REG, b: REG) {
        encode { inst[127:123] = 5'd2; inst[122:119] = d; inst[118:115] = a;
                 inst[114:111] = b; }
        action { RF[d] <- RF[a] - RF[b]; }
      }
      operation and(d: REG, a: REG, b: REG) {
        encode { inst[127:123] = 5'd3; inst[122:119] = d; inst[118:115] = a;
                 inst[114:111] = b; }
        action { RF[d] <- RF[a] & RF[b]; }
      }
      operation or(d: REG, a: REG, b: REG) {
        encode { inst[127:123] = 5'd4; inst[122:119] = d; inst[118:115] = a;
                 inst[114:111] = b; }
        action { RF[d] <- RF[a] | RF[b]; }
      }
      operation xor(d: REG, a: REG, b: REG) {
        encode { inst[127:123] = 5'd5; inst[122:119] = d; inst[118:115] = a;
                 inst[114:111] = b; }
        action { RF[d] <- RF[a] ^ RF[b]; }
      }
      operation shl(d: REG, a: REG, b: REG) {
        encode { inst[127:123] = 5'd6; inst[122:119] = d; inst[118:115] = a;
                 inst[114:111] = b; }
        action { RF[d] <- RF[a] << RF[b][4:0]; }
      }
      operation shr(d: REG, a: REG, b: REG) {
        encode { inst[127:123] = 5'd7; inst[122:119] = d; inst[118:115] = a;
                 inst[114:111] = b; }
        action { RF[d] <- RF[a] >> RF[b][4:0]; }
      }
      operation mul(d: REG, a: REG, b: REG) {
        encode { inst[127:123] = 5'd8; inst[122:119] = d; inst[118:115] = a;
                 inst[114:111] = b; }
        action { RF[d] <- RF[a] * RF[b]; }
        costs { stall = 0; }
        timing { latency = 2; }
      }
      operation fadd(d: REG, a: REG, b: REG) {
        encode { inst[127:123] = 5'd9; inst[122:119] = d; inst[118:115] = a;
                 inst[114:111] = b; }
        action { RF[d] <- fadd(RF[a], RF[b]); }
        costs { stall = 0; }
        timing { latency = 2; }
      }
      operation fsub(d: REG, a: REG, b: REG) {
        encode { inst[127:123] = 5'd10; inst[122:119] = d; inst[118:115] = a;
                 inst[114:111] = b; }
        action { RF[d] <- fsub(RF[a], RF[b]); }
        costs { stall = 0; }
        timing { latency = 2; }
      }
      operation fmul(d: REG, a: REG, b: REG) {
        encode { inst[127:123] = 5'd11; inst[122:119] = d; inst[118:115] = a;
                 inst[114:111] = b; }
        action { RF[d] <- fmul(RF[a], RF[b]); }
        costs { stall = 0; }
        timing { latency = 2; }
      }
      operation fdiv(d: REG, a: REG, b: REG) {
        encode { inst[127:123] = 5'd12; inst[122:119] = d; inst[118:115] = a;
                 inst[114:111] = b; }
        action { RF[d] <- fdiv(RF[a], RF[b]); }
        costs { stall = 3; }
        timing { latency = 4; }
      }
      operation itof(d: REG, a: REG) {
        encode { inst[127:123] = 5'd13; inst[122:119] = d; inst[118:115] = a; }
        action { RF[d] <- itof(RF[a], 32); }
        costs { stall = 0; }
        timing { latency = 2; }
      }
      operation ftoi(d: REG, a: REG) {
        encode { inst[127:123] = 5'd14; inst[122:119] = d; inst[118:115] = a; }
        action { RF[d] <- ftoi(RF[a], 32); }
        costs { stall = 0; }
        timing { latency = 2; }
      }
      operation li(d: REG, i: S16) {
        encode { inst[127:123] = 5'd15; inst[122:119] = d; inst[111:96] = i; }
        action { RF[d] <- sext(i, 32); }
      }
      operation lui(d: REG, i: U16) {
        encode { inst[127:123] = 5'd16; inst[122:119] = d; inst[111:96] = i; }
        action { RF[d] <- concat(i, 16'd0); }
      }
      operation ld(d: REG, a: REG) {
        encode { inst[127:123] = 5'd17; inst[122:119] = d; inst[118:115] = a; }
        action { RF[d] <- DM[RF[a][10:0]]; }
        costs { stall = 1; }
        timing { latency = 2; }
      }
      operation st(a: REG, b: REG) {
        encode { inst[127:123] = 5'd18; inst[118:115] = a; inst[114:111] = b; }
        action { DM[RF[a][10:0]] <- RF[b]; }
      }
      // Indexed memory operations: the base+index address adder is shared
      // with U1's adder by constraint (see the constraints section), the
      // moral equivalent of the paper's shared load/store/move bus (§4.1.1).
      operation ldx(d: REG, a: REG, b: REG) {
        encode { inst[127:123] = 5'd23; inst[122:119] = d; inst[118:115] = a;
                 inst[114:111] = b; }
        action { RF[d] <- DM[(RF[a] + RF[b])[10:0]]; }
        costs { stall = 1; }
        timing { latency = 2; }
      }
      operation stx(a: REG, b: REG, v: REG) {
        encode { inst[127:123] = 5'd24; inst[122:119] = a; inst[118:115] = b;
                 inst[114:111] = v; }
        action { DM[(RF[a] + RF[b])[10:0]] <- RF[v]; }
      }
      operation beq(a: REG, b: REG, t: U16) {
        encode { inst[127:123] = 5'd19; inst[122:119] = a; inst[118:115] = b;
                 inst[111:96] = t; }
        action { if (RF[a] == RF[b]) { PC <- t; } }
        costs { cycle = 2; }
      }
      operation bne(a: REG, b: REG, t: U16) {
        encode { inst[127:123] = 5'd20; inst[122:119] = a; inst[118:115] = b;
                 inst[111:96] = t; }
        action { if (RF[a] != RF[b]) { PC <- t; } }
        costs { cycle = 2; }
      }
      operation blt(a: REG, b: REG, t: U16) {
        encode { inst[127:123] = 5'd21; inst[122:119] = a; inst[118:115] = b;
                 inst[111:96] = t; }
        action { if (slt(RF[a], RF[b])) { PC <- t; } }
        costs { cycle = 2; }
      }
      operation jmp(t: U16) {
        encode { inst[127:123] = 5'd22; inst[111:96] = t; }
        action { PC <- t; }
        costs { cycle = 2; }
      }
      operation halt() {
        encode { inst[127:123] = 5'd31; }
      }
    }

    // ---- U1..U3: arithmetic units ---------------------------------------
    field U1 {
      operation nop() { encode { inst[95:91] = 5'd0; } }
      operation add(d: REG, a: REG, b: REG) {
        encode { inst[95:91] = 5'd1; inst[90:87] = d; inst[86:83] = a;
                 inst[82:79] = b; }
        action { RF[d] <- RF[a] + RF[b]; }
      }
      operation sub(d: REG, a: REG, b: REG) {
        encode { inst[95:91] = 5'd2; inst[90:87] = d; inst[86:83] = a;
                 inst[82:79] = b; }
        action { RF[d] <- RF[a] - RF[b]; }
      }
      operation and(d: REG, a: REG, b: REG) {
        encode { inst[95:91] = 5'd3; inst[90:87] = d; inst[86:83] = a;
                 inst[82:79] = b; }
        action { RF[d] <- RF[a] & RF[b]; }
      }
      operation or(d: REG, a: REG, b: REG) {
        encode { inst[95:91] = 5'd4; inst[90:87] = d; inst[86:83] = a;
                 inst[82:79] = b; }
        action { RF[d] <- RF[a] | RF[b]; }
      }
      operation xor(d: REG, a: REG, b: REG) {
        encode { inst[95:91] = 5'd5; inst[90:87] = d; inst[86:83] = a;
                 inst[82:79] = b; }
        action { RF[d] <- RF[a] ^ RF[b]; }
      }
      operation mul(d: REG, a: REG, b: REG) {
        encode { inst[95:91] = 5'd6; inst[90:87] = d; inst[86:83] = a;
                 inst[82:79] = b; }
        action { RF[d] <- RF[a] * RF[b]; }
        costs { stall = 0; }
        timing { latency = 2; }
      }
      operation fadd(d: REG, a: REG, b: REG) {
        encode { inst[95:91] = 5'd9; inst[90:87] = d; inst[86:83] = a;
                 inst[82:79] = b; }
        action { RF[d] <- fadd(RF[a], RF[b]); }
        costs { stall = 0; }
        timing { latency = 2; }
      }
      operation fsub(d: REG, a: REG, b: REG) {
        encode { inst[95:91] = 5'd10; inst[90:87] = d; inst[86:83] = a;
                 inst[82:79] = b; }
        action { RF[d] <- fsub(RF[a], RF[b]); }
        costs { stall = 0; }
        timing { latency = 2; }
      }
      operation fmul(d: REG, a: REG, b: REG) {
        encode { inst[95:91] = 5'd11; inst[90:87] = d; inst[86:83] = a;
                 inst[82:79] = b; }
        action { RF[d] <- fmul(RF[a], RF[b]); }
        costs { stall = 0; }
        timing { latency = 2; }
      }
    }
    field U2 {
      operation nop() { encode { inst[74:70] = 5'd0; } }
      operation add(d: REG, a: REG, b: REG) {
        encode { inst[74:70] = 5'd1; inst[69:66] = d; inst[65:62] = a;
                 inst[61:58] = b; }
        action { RF[d] <- RF[a] + RF[b]; }
      }
      operation sub(d: REG, a: REG, b: REG) {
        encode { inst[74:70] = 5'd2; inst[69:66] = d; inst[65:62] = a;
                 inst[61:58] = b; }
        action { RF[d] <- RF[a] - RF[b]; }
      }
      operation and(d: REG, a: REG, b: REG) {
        encode { inst[74:70] = 5'd3; inst[69:66] = d; inst[65:62] = a;
                 inst[61:58] = b; }
        action { RF[d] <- RF[a] & RF[b]; }
      }
      operation or(d: REG, a: REG, b: REG) {
        encode { inst[74:70] = 5'd4; inst[69:66] = d; inst[65:62] = a;
                 inst[61:58] = b; }
        action { RF[d] <- RF[a] | RF[b]; }
      }
      operation xor(d: REG, a: REG, b: REG) {
        encode { inst[74:70] = 5'd5; inst[69:66] = d; inst[65:62] = a;
                 inst[61:58] = b; }
        action { RF[d] <- RF[a] ^ RF[b]; }
      }
      operation mul(d: REG, a: REG, b: REG) {
        encode { inst[74:70] = 5'd6; inst[69:66] = d; inst[65:62] = a;
                 inst[61:58] = b; }
        action { RF[d] <- RF[a] * RF[b]; }
        costs { stall = 0; }
        timing { latency = 2; }
      }
      operation fadd(d: REG, a: REG, b: REG) {
        encode { inst[74:70] = 5'd9; inst[69:66] = d; inst[65:62] = a;
                 inst[61:58] = b; }
        action { RF[d] <- fadd(RF[a], RF[b]); }
        costs { stall = 0; }
        timing { latency = 2; }
      }
      operation fsub(d: REG, a: REG, b: REG) {
        encode { inst[74:70] = 5'd10; inst[69:66] = d; inst[65:62] = a;
                 inst[61:58] = b; }
        action { RF[d] <- fsub(RF[a], RF[b]); }
        costs { stall = 0; }
        timing { latency = 2; }
      }
      operation fmul(d: REG, a: REG, b: REG) {
        encode { inst[74:70] = 5'd11; inst[69:66] = d; inst[65:62] = a;
                 inst[61:58] = b; }
        action { RF[d] <- fmul(RF[a], RF[b]); }
        costs { stall = 0; }
        timing { latency = 2; }
      }
    }
    field U3 {
      operation nop() { encode { inst[53:49] = 5'd0; } }
      operation add(d: REG, a: REG, b: REG) {
        encode { inst[53:49] = 5'd1; inst[48:45] = d; inst[44:41] = a;
                 inst[40:37] = b; }
        action { RF[d] <- RF[a] + RF[b]; }
      }
      operation sub(d: REG, a: REG, b: REG) {
        encode { inst[53:49] = 5'd2; inst[48:45] = d; inst[44:41] = a;
                 inst[40:37] = b; }
        action { RF[d] <- RF[a] - RF[b]; }
      }
      operation and(d: REG, a: REG, b: REG) {
        encode { inst[53:49] = 5'd3; inst[48:45] = d; inst[44:41] = a;
                 inst[40:37] = b; }
        action { RF[d] <- RF[a] & RF[b]; }
      }
      operation or(d: REG, a: REG, b: REG) {
        encode { inst[53:49] = 5'd4; inst[48:45] = d; inst[44:41] = a;
                 inst[40:37] = b; }
        action { RF[d] <- RF[a] | RF[b]; }
      }
      operation xor(d: REG, a: REG, b: REG) {
        encode { inst[53:49] = 5'd5; inst[48:45] = d; inst[44:41] = a;
                 inst[40:37] = b; }
        action { RF[d] <- RF[a] ^ RF[b]; }
      }
      operation mul(d: REG, a: REG, b: REG) {
        encode { inst[53:49] = 5'd6; inst[48:45] = d; inst[44:41] = a;
                 inst[40:37] = b; }
        action { RF[d] <- RF[a] * RF[b]; }
        costs { stall = 0; }
        timing { latency = 2; }
      }
      operation fadd(d: REG, a: REG, b: REG) {
        encode { inst[53:49] = 5'd9; inst[48:45] = d; inst[44:41] = a;
                 inst[40:37] = b; }
        action { RF[d] <- fadd(RF[a], RF[b]); }
        costs { stall = 0; }
        timing { latency = 2; }
      }
      operation fsub(d: REG, a: REG, b: REG) {
        encode { inst[53:49] = 5'd10; inst[48:45] = d; inst[44:41] = a;
                 inst[40:37] = b; }
        action { RF[d] <- fsub(RF[a], RF[b]); }
        costs { stall = 0; }
        timing { latency = 2; }
      }
      operation fmul(d: REG, a: REG, b: REG) {
        encode { inst[53:49] = 5'd11; inst[48:45] = d; inst[44:41] = a;
                 inst[40:37] = b; }
        action { RF[d] <- fmul(RF[a], RF[b]); }
        costs { stall = 0; }
        timing { latency = 2; }
      }
    }

    // ---- M0..M2: parallel move units -------------------------------------
    field M0 {
      operation mnop() { encode { inst[32:30] = 3'd0; } }
      operation mov(d: REG, s: REG) {
        encode { inst[32:30] = 3'd1; inst[29:26] = d; inst[25:22] = s; }
        action { RF[d] <- RF[s]; }
      }
    }
    field M1 {
      operation mnop() { encode { inst[21:19] = 3'd0; } }
      operation mov(d: REG, s: REG) {
        encode { inst[21:19] = 3'd1; inst[18:15] = d; inst[14:11] = s; }
        action { RF[d] <- RF[s]; }
      }
    }
    field M2 {
      operation mnop() { encode { inst[10:8] = 3'd0; } }
      operation mov(d: REG, s: REG) {
        encode { inst[10:8] = 3'd1; inst[7:4] = d; inst[3:0] = s; }
        action { RF[d] <- RF[s]; }
      }
    }
  }

  section constraints {
    // M2 shares its bus with the memory unit (paper §4.1.1's example): a
    // load or store cannot issue together with an M2 move.
    never U0.ld & M2.mov;
    never U0.st & M2.mov;
    // The indexed-addressing adder borrows U1's adder: indexed memory
    // operations cannot issue together with a U1 add. Constraint-informed
    // resource sharing (rule R4) merges the three adders into one unit.
    never U0.ldx & U1.add;
    never U0.stx & U1.add;
    // One physical integer-multiplier array serves units U0..U2 (U3 keeps a
    // private one): integer multiplies on those units are mutually
    // exclusive, and rule R4 folds their multipliers into one shared unit.
    never U0.mul & U1.mul;
    never U0.mul & U2.mul;
    never U1.mul & U2.mul;
  }

  section optional {
    halt_operation = "U0.halt";
    description = "4-way floating-point VLIW: 4 operations + 3 parallel moves";
  }
}
)ISDL";
}

std::unique_ptr<Machine> loadSpam() { return parseAndCheckIsdl(spamIsdl()); }

}  // namespace isdl::archs
