// Built-in architecture descriptions and benchmark programs.
//
// SPAM  — the paper's evaluation target (§6.1): a 4-way floating-point VLIW
//         that executes 4 operations and 3 parallel moves per instruction.
//         128-bit instruction word, 7 fields (U0..U3, M0..M2).
// SPAM2 — the paper's second target: a simpler 3-way VLIW with a limited
//         operation set. 64-bit word, 3 fields.
// SREP  — a scalar 32-bit RISC used by tests and the quickstart example.
// TDSP  — a small DSP with addressing-mode non-terminals (register indirect
//         and post-increment), exercising the non-terminal machinery end to
//         end, including in hardware generation.
//
// The texts are complete ISDL descriptions; load*() parses and checks them.

#ifndef ISDL_ARCHS_ARCHS_H
#define ISDL_ARCHS_ARCHS_H

#include <memory>
#include <vector>

#include "isdl/model.h"

namespace isdl::archs {

const char* spamIsdl();
const char* spam2Isdl();
const char* srepIsdl();
const char* tdspIsdl();

std::unique_ptr<Machine> loadSpam();
std::unique_ptr<Machine> loadSpam2();
std::unique_ptr<Machine> loadSrep();
std::unique_ptr<Machine> loadTdsp();

/// A named assembly kernel for one architecture.
struct Benchmark {
  const char* name;
  const char* description;
  const char* source;
  std::uint64_t maxCycles;  ///< generous budget; kernels halt well before
};

/// FP kernels for SPAM: dot product, FIR filter, 4x4 matrix multiply,
/// vector scale-and-add (saxpy).
std::vector<Benchmark> spamBenchmarks();
/// Integer kernels for SPAM2.
std::vector<Benchmark> spam2Benchmarks();
/// Kernels for the scalar RISC.
std::vector<Benchmark> srepBenchmarks();
/// FIR filter using post-increment addressing for TDSP.
std::vector<Benchmark> tdspBenchmarks();

}  // namespace isdl::archs

#endif  // ISDL_ARCHS_ARCHS_H
