// SREP: a scalar 32-bit RISC with a single operation field. Used by the
// quickstart example, the exploration demo and as the simplest hardware-
// generation target.

#include "archs/archs.h"
#include "isdl/parser.h"

namespace isdl::archs {

const char* srepIsdl() {
  return R"ISDL(
machine SREP {
  section format { word_width = 32; }

  section storage {
    instruction_memory IM width 32 depth 1024;
    data_memory DM width 32 depth 1024;
    register_file RF width 32 depth 16;
    program_counter PC width 16;
    control_register CC width 2;
    alias CARRY = CC[0:0];
  }

  section global_definitions {
    token REG enum width 4 prefix "R" range 0 .. 15;
    token U16 immediate unsigned width 16;
    token S16 immediate signed width 16;
  }

  section instruction_set {
    field EX {
      operation nop() { encode { inst[31:26] = 6'd0; } }
      operation add(d: REG, a: REG, b: REG) {
        encode { inst[31:26] = 6'd1; inst[25:22] = d; inst[21:18] = a;
                 inst[17:14] = b; }
        action { RF[d] <- RF[a] + RF[b]; }
        side_effect { CARRY <- carry(RF[a], RF[b]); }
      }
      operation sub(d: REG, a: REG, b: REG) {
        encode { inst[31:26] = 6'd2; inst[25:22] = d; inst[21:18] = a;
                 inst[17:14] = b; }
        action { RF[d] <- RF[a] - RF[b]; }
      }
      operation and(d: REG, a: REG, b: REG) {
        encode { inst[31:26] = 6'd3; inst[25:22] = d; inst[21:18] = a;
                 inst[17:14] = b; }
        action { RF[d] <- RF[a] & RF[b]; }
      }
      operation or(d: REG, a: REG, b: REG) {
        encode { inst[31:26] = 6'd4; inst[25:22] = d; inst[21:18] = a;
                 inst[17:14] = b; }
        action { RF[d] <- RF[a] | RF[b]; }
      }
      operation xor(d: REG, a: REG, b: REG) {
        encode { inst[31:26] = 6'd5; inst[25:22] = d; inst[21:18] = a;
                 inst[17:14] = b; }
        action { RF[d] <- RF[a] ^ RF[b]; }
      }
      operation shl(d: REG, a: REG, b: REG) {
        encode { inst[31:26] = 6'd6; inst[25:22] = d; inst[21:18] = a;
                 inst[17:14] = b; }
        action { RF[d] <- RF[a] << RF[b][4:0]; }
      }
      operation shr(d: REG, a: REG, b: REG) {
        encode { inst[31:26] = 6'd7; inst[25:22] = d; inst[21:18] = a;
                 inst[17:14] = b; }
        action { RF[d] <- RF[a] >> RF[b][4:0]; }
      }
      operation mul(d: REG, a: REG, b: REG) {
        encode { inst[31:26] = 6'd8; inst[25:22] = d; inst[21:18] = a;
                 inst[17:14] = b; }
        action { RF[d] <- RF[a] * RF[b]; }
        costs { stall = 0; }
        timing { latency = 2; }
      }
      operation addi(d: REG, a: REG, i: S16) {
        encode { inst[31:26] = 6'd9; inst[25:22] = d; inst[21:18] = a;
                 inst[15:0] = i; }
        action { RF[d] <- RF[a] + sext(i, 32); }
      }
      operation li(d: REG, i: S16) {
        encode { inst[31:26] = 6'd10; inst[25:22] = d; inst[15:0] = i; }
        action { RF[d] <- sext(i, 32); }
      }
      operation lui(d: REG, i: U16) {
        encode { inst[31:26] = 6'd11; inst[25:22] = d; inst[15:0] = i; }
        action { RF[d] <- concat(i, 16'd0); }
      }
      operation ld(d: REG, a: REG) {
        encode { inst[31:26] = 6'd12; inst[25:22] = d; inst[21:18] = a; }
        action { RF[d] <- DM[RF[a][9:0]]; }
        costs { stall = 1; }
        timing { latency = 2; }
      }
      operation st(a: REG, b: REG) {
        encode { inst[31:26] = 6'd13; inst[21:18] = a; inst[17:14] = b; }
        action { DM[RF[a][9:0]] <- RF[b]; }
      }
      operation beq(a: REG, b: REG, t: U16) {
        encode { inst[31:26] = 6'd14; inst[25:22] = a; inst[21:18] = b;
                 inst[15:0] = t; }
        action { if (RF[a] == RF[b]) { PC <- t; } }
        costs { cycle = 2; }
      }
      operation bne(a: REG, b: REG, t: U16) {
        encode { inst[31:26] = 6'd15; inst[25:22] = a; inst[21:18] = b;
                 inst[15:0] = t; }
        action { if (RF[a] != RF[b]) { PC <- t; } }
        costs { cycle = 2; }
      }
      operation blt(a: REG, b: REG, t: U16) {
        encode { inst[31:26] = 6'd16; inst[25:22] = a; inst[21:18] = b;
                 inst[15:0] = t; }
        action { if (slt(RF[a], RF[b])) { PC <- t; } }
        costs { cycle = 2; }
      }
      operation jmp(t: U16) {
        encode { inst[31:26] = 6'd17; inst[15:0] = t; }
        action { PC <- t; }
        costs { cycle = 2; }
      }
      operation halt() { encode { inst[31:26] = 6'd63; } }
    }
  }

  section optional {
    halt_operation = "EX.halt";
    description = "scalar 32-bit RISC";
  }
}
)ISDL";
}

std::unique_ptr<Machine> loadSrep() { return parseAndCheckIsdl(srepIsdl()); }

}  // namespace isdl::archs
