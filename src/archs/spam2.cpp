// SPAM2: the paper's simpler 3-way VLIW with a limited number of operations
// (§6.1, Table 2). 64-bit instruction word:
//
//   U0 [63:32]   U1 [31:11]   M0 [10:0]

#include "archs/archs.h"
#include "isdl/parser.h"

namespace isdl::archs {

const char* spam2Isdl() {
  return R"ISDL(
machine SPAM2 {
  section format { word_width = 64; }

  section storage {
    instruction_memory IM width 64 depth 1024;
    data_memory DM width 32 depth 1024;
    register_file RF width 32 depth 16;
    program_counter PC width 16;
  }

  section global_definitions {
    token REG enum width 4 prefix "R" range 0 .. 15;
    token U16 immediate unsigned width 16;
    token S16 immediate signed width 16;
  }

  section instruction_set {
    field U0 {
      operation nop() { encode { inst[63:59] = 5'd0; } }
      operation add(d: REG, a: REG, b: REG) {
        encode { inst[63:59] = 5'd1; inst[58:55] = d; inst[54:51] = a;
                 inst[50:47] = b; }
        action { RF[d] <- RF[a] + RF[b]; }
      }
      operation sub(d: REG, a: REG, b: REG) {
        encode { inst[63:59] = 5'd2; inst[58:55] = d; inst[54:51] = a;
                 inst[50:47] = b; }
        action { RF[d] <- RF[a] - RF[b]; }
      }
      operation mul(d: REG, a: REG, b: REG) {
        encode { inst[63:59] = 5'd8; inst[58:55] = d; inst[54:51] = a;
                 inst[50:47] = b; }
        action { RF[d] <- RF[a] * RF[b]; }
        costs { stall = 0; }
        timing { latency = 2; }
      }
      operation li(d: REG, i: S16) {
        encode { inst[63:59] = 5'd15; inst[58:55] = d; inst[47:32] = i; }
        action { RF[d] <- sext(i, 32); }
      }
      operation ld(d: REG, a: REG) {
        encode { inst[63:59] = 5'd17; inst[58:55] = d; inst[54:51] = a; }
        action { RF[d] <- DM[RF[a][9:0]]; }
        costs { stall = 1; }
        timing { latency = 2; }
      }
      operation st(a: REG, b: REG) {
        encode { inst[63:59] = 5'd18; inst[54:51] = a; inst[50:47] = b; }
        action { DM[RF[a][9:0]] <- RF[b]; }
      }
      operation beq(a: REG, b: REG, t: U16) {
        encode { inst[63:59] = 5'd19; inst[58:55] = a; inst[54:51] = b;
                 inst[47:32] = t; }
        action { if (RF[a] == RF[b]) { PC <- t; } }
        costs { cycle = 2; }
      }
      operation bne(a: REG, b: REG, t: U16) {
        encode { inst[63:59] = 5'd20; inst[58:55] = a; inst[54:51] = b;
                 inst[47:32] = t; }
        action { if (RF[a] != RF[b]) { PC <- t; } }
        costs { cycle = 2; }
      }
      operation jmp(t: U16) {
        encode { inst[63:59] = 5'd22; inst[47:32] = t; }
        action { PC <- t; }
        costs { cycle = 2; }
      }
      operation halt() { encode { inst[63:59] = 5'd31; } }
    }

    field U1 {
      operation nop() { encode { inst[31:27] = 5'd0; } }
      operation add(d: REG, a: REG, b: REG) {
        encode { inst[31:27] = 5'd1; inst[26:23] = d; inst[22:19] = a;
                 inst[18:15] = b; }
        action { RF[d] <- RF[a] + RF[b]; }
      }
      operation sub(d: REG, a: REG, b: REG) {
        encode { inst[31:27] = 5'd2; inst[26:23] = d; inst[22:19] = a;
                 inst[18:15] = b; }
        action { RF[d] <- RF[a] - RF[b]; }
      }
      operation and(d: REG, a: REG, b: REG) {
        encode { inst[31:27] = 5'd3; inst[26:23] = d; inst[22:19] = a;
                 inst[18:15] = b; }
        action { RF[d] <- RF[a] & RF[b]; }
      }
      operation or(d: REG, a: REG, b: REG) {
        encode { inst[31:27] = 5'd4; inst[26:23] = d; inst[22:19] = a;
                 inst[18:15] = b; }
        action { RF[d] <- RF[a] | RF[b]; }
      }
    }

    field M0 {
      operation mnop() { encode { inst[10:8] = 3'd0; } }
      operation mov(d: REG, s: REG) {
        encode { inst[10:8] = 3'd1; inst[7:4] = d; inst[3:0] = s; }
        action { RF[d] <- RF[s]; }
      }
    }
  }

  section constraints {
    // The single move unit shares the memory bus, as in SPAM.
    never U0.ld & M0.mov;
    never U0.st & M0.mov;
  }

  section optional {
    halt_operation = "U0.halt";
    description = "3-way integer VLIW with a reduced operation set";
  }
}
)ISDL";
}

std::unique_ptr<Machine> loadSpam2() { return parseAndCheckIsdl(spam2Isdl()); }

}  // namespace isdl::archs
