// Candidate-architecture evaluation (paper Figure 1). One call runs the full
// methodology for a candidate: generate the ILS, assemble and execute the
// application to get cycle counts and utilization statistics, run HGEN and
// the silicon compiler to get the cycle length and physical costs, and
// optionally gate-simulate the hardware model for a switching-activity power
// estimate.

#ifndef ISDL_EXPLORE_EVALUATE_H
#define ISDL_EXPLORE_EVALUATE_H

#include <string>

#include "isdl/model.h"
#include "obs/metrics.h"
#include "sim/xsim.h"

namespace isdl::explore {

struct EvaluateOptions {
  std::uint64_t maxCycles = 10'000'000;
  /// Gate-simulate the HW model with toggle counting for the power figure
  /// (slow; off by default).
  bool measurePower = false;
  /// Power measurement clock budget.
  std::uint64_t powerClocks = 20'000;
  /// Worker threads the exploration driver shards candidate evaluations
  /// across (0 = all hardware threads). Each worker owns a thread-confined
  /// evaluation pipeline; results are merged in generator order, so any
  /// value here produces the same exploration trajectory — only wall clock
  /// changes. Single candidate evaluations ignore this.
  unsigned jobs = 1;
};

struct Evaluation {
  std::string archName;

  // From the ILS (performance measurements, Figure 1's upper path):
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t dataStallCycles = 0;
  std::uint64_t structStallCycles = 0;
  sim::Stats stats;
  /// Structured XTRACE report for this run: stall attribution by producer,
  /// per-op issue counts, storage heatmaps, eval-phase timers. The scoring
  /// function and the exploration summary consume this (see driver.h).
  obs::MetricsReport metrics;

  // From the hardware model (physical costs, Figure 1's left path):
  double cycleNs = 0;
  double dieSizeGridCells = 0;
  std::size_t verilogLines = 0;
  double powerMw = 0;  ///< 0 unless measurePower

  /// The headline figure of merit: wall-clock runtime of the application.
  double runtimeUs() const { return double(cycles) * cycleNs / 1000.0; }
  /// Area-delay product, the usual exploration objective.
  double areaDelay() const { return runtimeUs() * dieSizeGridCells; }

  bool ok = false;
  std::string error;
};

/// Evaluates `machine` running `appSource` (assembly text). Never throws;
/// failures (bad ISDL, assembly errors, non-halting app) land in
/// Evaluation::error.
Evaluation evaluate(const Machine& machine, const std::string& appSource,
                    const EvaluateOptions& options = {});

/// Convenience: parse + check the ISDL text first.
Evaluation evaluateIsdl(const std::string& isdlSource,
                        const std::string& appSource,
                        const EvaluateOptions& options = {});

}  // namespace isdl::explore

#endif  // ISDL_EXPLORE_EVALUATE_H
