#include "explore/driver.h"

#include <ostream>

#include "obs/json.h"
#include "support/diag.h"

namespace isdl::explore {

void ExplorationDriver::Result::writeJson(std::ostream& out) const {
  obs::JsonWriter w(out, /*pretty=*/true);
  w.beginObject();
  w.field("best", best.name);
  w.field("iterations", std::uint64_t{iterations});
  w.key("history").beginArray();
  for (const Step& step : history) {
    w.beginObject();
    w.field("iteration", std::uint64_t{step.iteration});
    w.field("candidate", step.candidateName);
    if (step.failed) {
      w.field("failed", true);
    } else {
      w.field("objective", step.objective);
      w.field("runtime_us", step.runtimeUs);
      w.field("die_size", step.dieSize);
      w.field("cycles", step.cycles);
      w.field("stall_fraction", step.stallFraction);
      w.field("accepted", step.accepted);
    }
    w.endObject();
  }
  w.endArray();
  w.key("best_metrics");
  bestEval.metrics.writeJson(w);
  w.endObject();
  out << "\n";
}

ExplorationDriver::Result ExplorationDriver::run(
    const Candidate& initial, const Generator& generate,
    const Objective& objective, unsigned maxIterations) const {
  Result result;
  result.best = initial;
  result.bestEval = evaluateIsdl(initial.isdlSource, initial.appSource,
                                 options_);
  if (!result.bestEval.ok)
    throw IsdlError("initial candidate failed to evaluate: " +
                    result.bestEval.error);
  double bestObj = objective(result.bestEval);
  result.history.push_back({0, initial.name, bestObj,
                            result.bestEval.runtimeUs(),
                            result.bestEval.dieSizeGridCells,
                            result.bestEval.cycles,
                            result.bestEval.metrics.stallFraction(), true,
                            false});

  for (unsigned iter = 1; iter <= maxIterations; ++iter) {
    std::vector<Candidate> neighbours =
        generate(result.best, result.bestEval, iter);
    if (neighbours.empty()) break;

    bool improved = false;
    Candidate bestNeighbour;
    Evaluation bestNeighbourEval;
    double bestNeighbourObj = bestObj;
    for (const Candidate& cand : neighbours) {
      Evaluation ev = evaluateIsdl(cand.isdlSource, cand.appSource, options_);
      Step step;
      step.iteration = iter;
      step.candidateName = cand.name;
      if (!ev.ok) {
        step.failed = true;
        result.history.push_back(step);
        continue;
      }
      step.objective = objective(ev);
      step.runtimeUs = ev.runtimeUs();
      step.dieSize = ev.dieSizeGridCells;
      step.cycles = ev.cycles;
      step.stallFraction = ev.metrics.stallFraction();
      if (step.objective < bestNeighbourObj) {
        bestNeighbourObj = step.objective;
        bestNeighbour = cand;
        bestNeighbourEval = ev;
        improved = true;
      }
      result.history.push_back(step);
    }
    result.iterations = iter;
    if (!improved) break;  // local optimum: Figure 1's loop terminates
    result.best = bestNeighbour;
    result.bestEval = bestNeighbourEval;
    bestObj = bestNeighbourObj;
    // Mark the accepted step.
    for (auto it = result.history.rbegin(); it != result.history.rend(); ++it)
      if (it->iteration == iter && it->candidateName == bestNeighbour.name) {
        it->accepted = true;
        break;
      }
  }
  return result;
}

}  // namespace isdl::explore
