#include "explore/driver.h"

#include "support/diag.h"

namespace isdl::explore {

ExplorationDriver::Result ExplorationDriver::run(
    const Candidate& initial, const Generator& generate,
    const Objective& objective, unsigned maxIterations) const {
  Result result;
  result.best = initial;
  result.bestEval = evaluateIsdl(initial.isdlSource, initial.appSource,
                                 options_);
  if (!result.bestEval.ok)
    throw IsdlError("initial candidate failed to evaluate: " +
                    result.bestEval.error);
  double bestObj = objective(result.bestEval);
  result.history.push_back({0, initial.name, bestObj,
                            result.bestEval.runtimeUs(),
                            result.bestEval.dieSizeGridCells,
                            result.bestEval.cycles, true, false});

  for (unsigned iter = 1; iter <= maxIterations; ++iter) {
    std::vector<Candidate> neighbours =
        generate(result.best, result.bestEval, iter);
    if (neighbours.empty()) break;

    bool improved = false;
    Candidate bestNeighbour;
    Evaluation bestNeighbourEval;
    double bestNeighbourObj = bestObj;
    for (const Candidate& cand : neighbours) {
      Evaluation ev = evaluateIsdl(cand.isdlSource, cand.appSource, options_);
      Step step;
      step.iteration = iter;
      step.candidateName = cand.name;
      if (!ev.ok) {
        step.failed = true;
        result.history.push_back(step);
        continue;
      }
      step.objective = objective(ev);
      step.runtimeUs = ev.runtimeUs();
      step.dieSize = ev.dieSizeGridCells;
      step.cycles = ev.cycles;
      if (step.objective < bestNeighbourObj) {
        bestNeighbourObj = step.objective;
        bestNeighbour = cand;
        bestNeighbourEval = ev;
        improved = true;
      }
      result.history.push_back(step);
    }
    result.iterations = iter;
    if (!improved) break;  // local optimum: Figure 1's loop terminates
    result.best = bestNeighbour;
    result.bestEval = bestNeighbourEval;
    bestObj = bestNeighbourObj;
    // Mark the accepted step.
    for (auto it = result.history.rbegin(); it != result.history.rend(); ++it)
      if (it->iteration == iter && it->candidateName == bestNeighbour.name) {
        it->accepted = true;
        break;
      }
  }
  return result;
}

}  // namespace isdl::explore
