#include "explore/driver.h"

#include <ostream>

#include "explore/pool.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "support/diag.h"

namespace isdl::explore {

void ExplorationDriver::Result::writeJson(std::ostream& out) const {
  obs::JsonWriter w(out, /*pretty=*/true);
  w.beginObject();
  w.field("best", best.name);
  w.field("iterations", std::uint64_t{iterations});
  w.key("history").beginArray();
  for (const Step& step : history) {
    w.beginObject();
    w.field("iteration", std::uint64_t{step.iteration});
    w.field("candidate", step.candidateName);
    if (step.failed) {
      w.field("failed", true);
      w.field("error", step.error);
    } else {
      w.field("objective", step.objective);
      w.field("runtime_us", step.runtimeUs);
      w.field("die_size", step.dieSize);
      w.field("cycles", step.cycles);
      w.field("stall_fraction", step.stallFraction);
      w.field("accepted", step.accepted);
    }
    w.endObject();
  }
  w.endArray();
  // Aggregated counters over every evaluation of the run. Wall-clock timers
  // (*_ns) are deliberately omitted here and from best_metrics below: the
  // summary must be a pure function of the candidate set so that serial and
  // parallel runs (and repeated runs) serialize byte-identically.
  w.key("totals").beginObject();
  for (const auto& [name, value] : counters) {
    if (name.size() >= 3 && name.compare(name.size() - 3, 3, "_ns") == 0)
      continue;
    w.field(name, value);
  }
  w.endObject();
  w.key("best_metrics");
  bestEval.metrics.writeJson(w, /*includeWallClock=*/false);
  w.endObject();
  out << "\n";
}

ExplorationDriver::Result ExplorationDriver::run(
    const Candidate& initial, const Generator& generate,
    const Objective& objective, unsigned maxIterations) const {
  Result result;
  result.best = initial;
  result.bestEval = evaluateIsdl(initial.isdlSource, initial.appSource,
                                 options_);
  if (!result.bestEval.ok)
    throw IsdlError("initial candidate failed to evaluate: " +
                    result.bestEval.error);
  double bestObj = objective(result.bestEval);
  result.history.push_back({0, initial.name, bestObj,
                            result.bestEval.runtimeUs(),
                            result.bestEval.dieSizeGridCells,
                            result.bestEval.cycles,
                            result.bestEval.metrics.stallFraction(), true,
                            false, {}});

  // One pool (and one private registry per worker) for the whole run; both
  // are reused across iterations. Workers share nothing while a batch is in
  // flight — each evaluation builds its own Xsim — so the only cross-thread
  // traffic is the index counter and the post-barrier registry merge.
  WorkerPool pool(options_.jobs);
  std::vector<obs::Registry> workerRegs(pool.jobs());
  obs::Registry totals;
  totals.merge(result.bestEval.metrics.counters);
  ++totals.counter("explore/candidates");

  for (unsigned iter = 1; iter <= maxIterations; ++iter) {
    std::vector<Candidate> neighbours =
        generate(result.best, result.bestEval, iter);
    if (neighbours.empty()) break;

    // Shard the neighbourhood across the pool; evals is index-addressed so
    // the gather below walks generator order regardless of finish order.
    std::vector<Evaluation> evals(neighbours.size());
    pool.forEach(neighbours.size(), [&](std::size_t i, unsigned worker) {
      obs::Registry& reg = workerRegs[worker];
      obs::ScopedTimer t = reg.time("explore/worker_ns");
      evals[i] = evaluateIsdl(neighbours[i].isdlSource,
                              neighbours[i].appSource, options_);
      reg.merge(evals[i].metrics.counters);
      ++reg.counter("explore/candidates");
      if (!evals[i].ok) ++reg.counter("explore/failed");
    });

    // Deterministic merge, exactly the serial loop's acceptance rule: walk
    // in generator order, strict improvement over the running best, so ties
    // resolve to the earliest candidate no matter which worker ran it.
    bool improved = false;
    std::size_t bestIdx = 0;
    double bestNeighbourObj = bestObj;
    for (std::size_t i = 0; i < neighbours.size(); ++i) {
      const Evaluation& ev = evals[i];
      Step step;
      step.iteration = iter;
      step.candidateName = neighbours[i].name;
      if (!ev.ok) {
        step.failed = true;
        step.error = ev.error;
        result.history.push_back(step);
        continue;
      }
      step.objective = objective(ev);
      step.runtimeUs = ev.runtimeUs();
      step.dieSize = ev.dieSizeGridCells;
      step.cycles = ev.cycles;
      step.stallFraction = ev.metrics.stallFraction();
      if (step.objective < bestNeighbourObj) {
        bestNeighbourObj = step.objective;
        bestIdx = i;
        improved = true;
      }
      result.history.push_back(step);
    }
    result.iterations = iter;
    if (!improved) break;  // local optimum: Figure 1's loop terminates
    result.best = neighbours[bestIdx];
    result.bestEval = std::move(evals[bestIdx]);
    bestObj = bestNeighbourObj;
    // Mark the accepted step.
    for (auto it = result.history.rbegin(); it != result.history.rend(); ++it)
      if (it->iteration == iter && it->candidateName == result.best.name) {
        it->accepted = true;
        break;
      }
  }

  for (const obs::Registry& reg : workerRegs) totals.merge(reg);
  totals.counter("explore/iterations").set(result.iterations);
  result.counters = totals.snapshot();
  return result;
}

}  // namespace isdl::explore
