#include "explore/evaluate.h"

#include <chrono>

#include "hw/hgen.h"
#include "isdl/parser.h"
#include "isdl/sema.h"
#include "synth/gatesim.h"

namespace isdl::explore {

Evaluation evaluate(const Machine& machine, const std::string& appSource,
                    const EvaluateOptions& options) {
  Evaluation ev;
  ev.archName = machine.name;
  try {
    auto evalStart = std::chrono::steady_clock::now();
    // --- ILS path: compile + execute the application ----------------------
    sim::Xsim xsim(machine);
    xsim.enableProfile();  // storage heatmaps land in ev.metrics
    sim::Assembler assembler(xsim.signatures());
    DiagnosticEngine diags;
    auto prog = assembler.assemble(appSource, diags);
    if (!prog) {
      ev.error = "assembly failed:\n" + diags.dump();
      return ev;
    }
    std::string loadErr;
    if (!xsim.loadProgram(*prog, &loadErr)) {
      ev.error = "load failed: " + loadErr;
      return ev;
    }
    sim::RunResult r = [&] {
      obs::ScopedTimer t = xsim.registry().time("eval/sim_ns");
      return xsim.run(options.maxCycles);
    }();
    if (r.reason != sim::StopReason::Halted) {
      ev.error = std::string("application did not halt: ") +
                 sim::stopReasonName(r.reason) + " " + r.message;
      return ev;
    }
    xsim.drainPipeline();
    ev.cycles = xsim.stats().cycles;
    ev.instructions = xsim.stats().instructions;
    ev.dataStallCycles = xsim.stats().dataStallCycles;
    ev.structStallCycles = xsim.stats().structStallCycles;
    ev.stats = xsim.stats();

    // --- hardware path: cycle length + physical costs ----------------------
    hw::HgenOutput hgen = [&] {
      obs::ScopedTimer t = xsim.registry().time("eval/hgen_ns");
      return hw::runHgen(machine, xsim.signatures());
    }();
    ev.cycleNs = hgen.stats.cycleNs;
    ev.dieSizeGridCells = hgen.stats.dieSizeGridCells;
    ev.verilogLines = hgen.stats.verilogLines;
    // Whole-evaluation wall clock (sim + hgen), recorded before the report
    // snapshot so the counter lands in ev.metrics for per-worker merging.
    xsim.registry().counter("eval/total_ns").add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - evalStart)
            .count()));
    ev.metrics = xsim.metricsReport();

    if (options.measurePower) {
      synth::GateSim gs(hgen.model.netlist);
      gs.enableToggleCounting(true);
      gs.loadMemory(hgen.model.storage[machine.imemIndex].mem, prog->words);
      for (std::size_t si = 0; si < machine.storages.size(); ++si)
        if (machine.storages[si].kind == StorageKind::DataMemory)
          for (const auto& [addr, value] : prog->dataInit)
            gs.pokeMemory(hgen.model.storage[si].mem, addr, value);
      gs.runUntil(hgen.model.haltedReg, options.powerClocks);
      if (gs.clocks() > 0) {
        double togglesPerCycle = double(gs.toggleCount()) / double(gs.clocks());
        ev.powerMw = synth::estimatePowerMw(togglesPerCycle, ev.cycleNs);
      }
    }
    ev.ok = true;
  } catch (const std::exception& e) {
    ev.error = e.what();
  }
  return ev;
}

Evaluation evaluateIsdl(const std::string& isdlSource,
                        const std::string& appSource,
                        const EvaluateOptions& options) {
  try {
    auto machine = parseAndCheckIsdl(isdlSource);
    return evaluate(*machine, appSource, options);
  } catch (const std::exception& e) {
    Evaluation ev;
    ev.error = e.what();
    return ev;
  }
}

}  // namespace isdl::explore
