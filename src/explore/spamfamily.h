// The SPAM architecture family: a parameterised generator of SPAM-like
// integer VLIWs plus a matched workload generator. This is the search space
// of the Figure-1 exploration example and the fig1 bench.
//
// Parameters:
//   aluUnits  (1..4)  — U0 (always present: memory/control/mul) plus up to
//                       three extra add/sub/logic units U1..U3
//   moveUnits (0..3)  — parallel register-move fields M0..M2
//
// The instruction word shrinks with the configuration
// (32 + 21*(aluUnits-1) + 11*moveUnits bits), so smaller machines genuinely
// pay less instruction-memory and decode area.
//
// The workload generator emits the 64-element integer dot product compiled
// for the candidate: per-iteration pointer/index adds are packed across the
// available ALU fields, so wider machines finish in fewer cycles. This
// stands in for the paper's retargetable compiler (reference [2]) at the
// scale the exploration loop needs.

#ifndef ISDL_EXPLORE_SPAMFAMILY_H
#define ISDL_EXPLORE_SPAMFAMILY_H

#include <vector>

#include "explore/driver.h"

namespace isdl::explore {

struct SpamVariantParams {
  unsigned aluUnits = 1;   ///< 1..4
  unsigned moveUnits = 0;  ///< 0..3

  bool valid() const {
    return aluUnits >= 1 && aluUnits <= 4 && moveUnits <= 3;
  }
  std::string name() const;
};

/// Builds the ISDL description and the matched dot-product application.
Candidate makeSpamVariant(const SpamVariantParams& params);

/// Neighbourhood for iterative improvement: all single-parameter tweaks
/// (±1 ALU unit, ±1 move unit) of `params` that remain valid.
std::vector<SpamVariantParams> spamNeighbours(const SpamVariantParams& params);

/// Generator adapter for ExplorationDriver (parses the parameters back out
/// of the candidate name).
std::vector<Candidate> spamFamilyGenerator(const Candidate& best,
                                           const Evaluation& bestEval,
                                           unsigned iteration);

}  // namespace isdl::explore

#endif  // ISDL_EXPLORE_SPAMFAMILY_H
