#include "explore/spamfamily.h"

#include <cstdio>
#include <sstream>

#include "support/strings.h"

namespace isdl::explore {

std::string SpamVariantParams::name() const {
  return cat("alu", aluUnits, "_mov", moveUnits);
}

namespace {

/// Emits one arithmetic-unit field occupying bits [base+20 : base].
void emitAluField(std::ostringstream& os, unsigned unit, unsigned base) {
  auto range = [&](unsigned hi, unsigned lo) {
    return cat("inst[", base + hi, ":", base + lo, "]");
  };
  os << "    field U" << unit << " {\n";
  os << "      operation nop() { encode { " << range(20, 16)
     << " = 5'd0; } }\n";
  struct Op {
    const char* name;
    unsigned code;
    const char* expr;
  };
  const Op ops[] = {
      {"add", 1, "RF[a] + RF[b]"},
      {"sub", 2, "RF[a] - RF[b]"},
      {"and", 3, "RF[a] & RF[b]"},
      {"or", 4, "RF[a] | RF[b]"},
  };
  for (const Op& op : ops) {
    os << "      operation " << op.name << "(d: REG, a: REG, b: REG) {\n";
    os << "        encode { " << range(20, 16) << " = 5'd" << op.code << "; "
       << range(15, 12) << " = d; " << range(11, 8) << " = a; "
       << range(7, 4) << " = b; }\n";
    os << "        action { RF[d] <- " << op.expr << "; }\n";
    os << "      }\n";
  }
  os << "    }\n";
}

/// Emits one move field occupying bits [base+10 : base].
void emitMoveField(std::ostringstream& os, unsigned unit, unsigned base) {
  auto range = [&](unsigned hi, unsigned lo) {
    return cat("inst[", base + hi, ":", base + lo, "]");
  };
  os << "    field M" << unit << " {\n";
  os << "      operation mnop() { encode { " << range(10, 8)
     << " = 3'd0; } }\n";
  os << "      operation mov(d: REG, s: REG) {\n";
  os << "        encode { " << range(10, 8) << " = 3'd1; " << range(7, 4)
     << " = d; " << range(3, 0) << " = s; }\n";
  os << "        action { RF[d] <- RF[s]; }\n";
  os << "      }\n";
  os << "    }\n";
}

std::string makeIsdl(const SpamVariantParams& p) {
  const unsigned width = 32 + 21 * (p.aluUnits - 1) + 11 * p.moveUnits;
  std::ostringstream os;
  os << "machine SPAMX_" << p.name() << " {\n";
  os << "  section format { word_width = " << width << "; }\n";
  os << "  section storage {\n";
  os << "    instruction_memory IM width " << width << " depth 1024;\n";
  os << "    data_memory DM width 32 depth 1024;\n";
  os << "    register_file RF width 32 depth 16;\n";
  os << "    program_counter PC width 16;\n";
  os << "  }\n";
  os << "  section global_definitions {\n";
  os << "    token REG enum width 4 prefix \"R\" range 0 .. 15;\n";
  os << "    token U16 immediate unsigned width 16;\n";
  os << "    token S16 immediate signed width 16;\n";
  os << "  }\n";
  os << "  section instruction_set {\n";

  // U0: memory / control / multiply unit in the top 32 bits.
  const unsigned u0 = width - 32;
  auto r = [&](unsigned hi, unsigned lo) {
    return cat("inst[", u0 + hi, ":", u0 + lo, "]");
  };
  os << "    field U0 {\n";
  os << "      operation nop() { encode { " << r(31, 27) << " = 5'd0; } }\n";
  os << "      operation add(d: REG, a: REG, b: REG) {\n";
  os << "        encode { " << r(31, 27) << " = 5'd1; " << r(26, 23)
     << " = d; " << r(22, 19) << " = a; " << r(18, 15) << " = b; }\n";
  os << "        action { RF[d] <- RF[a] + RF[b]; }\n";
  os << "      }\n";
  os << "      operation sub(d: REG, a: REG, b: REG) {\n";
  os << "        encode { " << r(31, 27) << " = 5'd2; " << r(26, 23)
     << " = d; " << r(22, 19) << " = a; " << r(18, 15) << " = b; }\n";
  os << "        action { RF[d] <- RF[a] - RF[b]; }\n";
  os << "      }\n";
  os << "      operation mul(d: REG, a: REG, b: REG) {\n";
  os << "        encode { " << r(31, 27) << " = 5'd8; " << r(26, 23)
     << " = d; " << r(22, 19) << " = a; " << r(18, 15) << " = b; }\n";
  os << "        action { RF[d] <- RF[a] * RF[b]; }\n";
  os << "        costs { stall = 0; } timing { latency = 2; }\n";
  os << "      }\n";
  os << "      operation li(d: REG, i: S16) {\n";
  os << "        encode { " << r(31, 27) << " = 5'd15; " << r(26, 23)
     << " = d; " << r(15, 0) << " = i; }\n";
  os << "        action { RF[d] <- sext(i, 32); }\n";
  os << "      }\n";
  os << "      operation ld(d: REG, a: REG) {\n";
  os << "        encode { " << r(31, 27) << " = 5'd17; " << r(26, 23)
     << " = d; " << r(22, 19) << " = a; }\n";
  os << "        action { RF[d] <- DM[RF[a][9:0]]; }\n";
  os << "        costs { stall = 1; } timing { latency = 2; }\n";
  os << "      }\n";
  os << "      operation st(a: REG, b: REG) {\n";
  os << "        encode { " << r(31, 27) << " = 5'd18; " << r(22, 19)
     << " = a; " << r(18, 15) << " = b; }\n";
  os << "        action { DM[RF[a][9:0]] <- RF[b]; }\n";
  os << "      }\n";
  os << "      operation bne(a: REG, b: REG, t: U16) {\n";
  os << "        encode { " << r(31, 27) << " = 5'd20; " << r(26, 23)
     << " = a; " << r(22, 19) << " = b; " << r(15, 0) << " = t; }\n";
  os << "        action { if (RF[a] != RF[b]) { PC <- t; } }\n";
  os << "        costs { cycle = 2; }\n";
  os << "      }\n";
  os << "      operation jmp(t: U16) {\n";
  os << "        encode { " << r(31, 27) << " = 5'd22; " << r(15, 0)
     << " = t; }\n";
  os << "        action { PC <- t; }\n";
  os << "        costs { cycle = 2; }\n";
  os << "      }\n";
  os << "      operation halt() { encode { " << r(31, 27)
     << " = 5'd31; } }\n";
  os << "    }\n";

  for (unsigned k = 1; k < p.aluUnits; ++k) {
    unsigned base = width - 32 - 21 * k;
    emitAluField(os, k, base);
  }
  for (unsigned j = 0; j < p.moveUnits; ++j) {
    unsigned base = 11 * (p.moveUnits - 1 - j);
    emitMoveField(os, j, base);
  }

  os << "  }\n";
  os << "  section optional {\n";
  os << "    halt_operation = \"U0.halt\";\n";
  os << "    description = \"SPAM-family variant " << p.name() << "\";\n";
  os << "  }\n";
  os << "}\n";
  return os.str();
}

/// Packs the three per-iteration pointer adds across the available ALU
/// fields (the "retargetable compilation" of the dot-product kernel).
std::string packedAdds(unsigned aluUnits) {
  const char* adds[] = {"add R1, R1, R8", "add R3, R3, R8", "add R4, R4, R8"};
  std::string out;
  unsigned i = 0;
  while (i < 3) {
    unsigned take = std::min(aluUnits, 3 - i);
    if (take == 1) {
      out += cat("        ", adds[i], "\n");
    } else {
      out += "        { ";
      for (unsigned k = 0; k < take; ++k)
        out += cat(k ? " | " : "", adds[i + k]);
      out += " }\n";
    }
    i += take;
  }
  return out;
}

std::string makeApp(const SpamVariantParams& p) {
  std::ostringstream os;
  os << "        li R1, 0\n";
  os << "        li R2, 64\n";
  os << "        li R3, 0\n";
  os << "        li R4, 64\n";
  os << "        li R8, 1\n";
  os << "init:   st R3, R1\n";
  os << "        add R6, R1, R1\n";
  os << "        st R4, R6\n";
  os << packedAdds(p.aluUnits);
  os << "        bne R1, R2, init\n";
  os << "        li R1, 0\n";
  os << "        li R3, 0\n";
  os << "        li R4, 64\n";
  os << "        li R9, 0\n";
  os << "loop:   ld R5, R3\n";
  os << "        ld R6, R4\n";
  os << "        mul R7, R5, R6\n";
  os << "        add R9, R9, R7\n";
  os << packedAdds(p.aluUnits);
  os << "        bne R1, R2, loop\n";
  os << "        li R10, 128\n";
  os << "        st R10, R9\n";
  os << "        halt\n";
  return os.str();
}

}  // namespace

Candidate makeSpamVariant(const SpamVariantParams& params) {
  Candidate c;
  c.name = params.name();
  c.isdlSource = makeIsdl(params);
  c.appSource = makeApp(params);
  return c;
}

std::vector<SpamVariantParams> spamNeighbours(
    const SpamVariantParams& params) {
  std::vector<SpamVariantParams> out;
  auto tryAdd = [&](SpamVariantParams p) {
    if (p.valid()) out.push_back(p);
  };
  SpamVariantParams p = params;
  ++p.aluUnits;
  tryAdd(p);
  p = params;
  if (p.aluUnits > 1) {
    --p.aluUnits;
    tryAdd(p);
  }
  p = params;
  ++p.moveUnits;
  tryAdd(p);
  p = params;
  if (p.moveUnits > 0) {
    --p.moveUnits;
    tryAdd(p);
  }
  return out;
}

std::vector<Candidate> spamFamilyGenerator(const Candidate& best,
                                           const Evaluation&, unsigned) {
  SpamVariantParams p;
  // Candidate names are "alu<k>_mov<m>".
  if (std::sscanf(best.name.c_str(), "alu%u_mov%u", &p.aluUnits,
                  &p.moveUnits) != 2)
    return {};
  std::vector<Candidate> out;
  for (const auto& n : spamNeighbours(p)) out.push_back(makeSpamVariant(n));
  return out;
}

}  // namespace isdl::explore
