// A small worker pool for sharding candidate evaluations (paper Figure 1's
// "evaluate the neighbourhood" edge) across host threads. Each evaluation is
// thread-confined by construction — a worker owns its candidate's whole
// parse -> sema -> Xsim build -> assemble -> run -> HGEN pipeline, and no
// state is shared between workers while a batch is in flight. The pool only
// provides the sharding and the barrier; deterministic merging of results is
// the caller's job (the driver gathers into an index-addressed vector, so
// generator order is preserved no matter which worker finished first).

#ifndef ISDL_EXPLORE_POOL_H
#define ISDL_EXPLORE_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace isdl::explore {

/// Resolves a requested job count: 0 means "all hardware threads" (at least
/// one); anything else is taken literally.
unsigned effectiveJobs(unsigned requested);

/// Fixed-size pool of worker threads with a fork-join `forEach`. Workers are
/// spawned once and reused across batches, so per-iteration dispatch costs a
/// condition-variable wakeup rather than thread creation.
///
/// With one job the pool spawns no threads at all and `forEach` runs inline
/// on the caller — `jobs=1` is exactly the serial loop, not a one-thread
/// simulation of it.
class WorkerPool {
 public:
  /// `jobs == 0` selects all hardware threads (see effectiveJobs).
  explicit WorkerPool(unsigned jobs = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Number of workers that execute `forEach` bodies (>= 1; 1 means inline).
  unsigned jobs() const { return jobs_; }

  /// Runs `fn(index, worker)` for every index in [0, count) and blocks until
  /// all calls returned (a barrier). Indices are claimed dynamically from a
  /// shared counter, so uneven candidates balance across workers; `worker`
  /// is in [0, jobs()) and is stable for the duration of one call, so the
  /// caller can keep per-worker accumulators (registries, scratch) without
  /// locks. If any `fn` throws, the batch still runs to completion and the
  /// exception from the lowest index is rethrown after the barrier — the
  /// same exception a serial loop would have surfaced first.
  void forEach(std::size_t count,
               const std::function<void(std::size_t index, unsigned worker)>& fn);

 private:
  void workerMain(unsigned worker);
  void runIndices(const std::function<void(std::size_t, unsigned)>& fn,
                  unsigned worker);

  unsigned jobs_ = 1;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable wake_;  ///< workers wait here between batches
  std::condition_variable done_;  ///< caller waits here for the barrier
  std::uint64_t generation_ = 0;  ///< bumped once per forEach batch
  bool stop_ = false;
  std::size_t count_ = 0;
  const std::function<void(std::size_t, unsigned)>* fn_ = nullptr;
  std::atomic<std::size_t> next_{0};  ///< next unclaimed index
  unsigned active_ = 0;               ///< workers still inside the batch
  std::size_t firstErrorIndex_ = 0;
  std::exception_ptr firstError_;
};

}  // namespace isdl::explore

#endif  // ISDL_EXPLORE_POOL_H
