// Architecture exploration by iterative improvement (paper Figure 1): an
// initial candidate is evaluated, neighbourhood candidates are generated
// from the best one, and the loop repeats until no candidate improves the
// objective.
//
// Each iteration's neighbourhood is evaluated in parallel when
// EvaluateOptions::jobs > 1: candidates are sharded across a worker pool
// (explore/pool.h), every worker owning a thread-confined evaluation
// pipeline and a private obs::Registry, and results are merged back in
// generator order. Parallelism changes wall clock only — the Step history,
// acceptance decisions and Result::writeJson output are byte-identical to a
// serial run (tests/explore_parallel_test.cpp enforces this).

#ifndef ISDL_EXPLORE_DRIVER_H
#define ISDL_EXPLORE_DRIVER_H

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <utility>
#include <vector>

#include "explore/evaluate.h"

namespace isdl::explore {

/// A candidate architecture plus the application compiled for it. The paper
/// pairs the ISDL description with retargetably-compiled code; here the
/// workload generator produces matched assembly (see spamfamily.h).
struct Candidate {
  std::string name;
  std::string isdlSource;
  std::string appSource;
};

class ExplorationDriver {
 public:
  /// Proposes neighbours of the current best candidate.
  using Generator = std::function<std::vector<Candidate>(
      const Candidate& best, const Evaluation& bestEval, unsigned iteration)>;
  /// Lower is better. Default objective: area-delay product.
  using Objective = std::function<double(const Evaluation&)>;

  struct Step {
    unsigned iteration = 0;
    std::string candidateName;
    double objective = 0;
    double runtimeUs = 0;
    double dieSize = 0;
    std::uint64_t cycles = 0;
    double stallFraction = 0;  ///< from the candidate's metrics report
    bool accepted = false;     ///< became the new best
    bool failed = false;       ///< evaluation error (recorded, skipped)
    std::string error;         ///< the evaluation diagnostic when failed
  };

  struct Result {
    Candidate best;
    Evaluation bestEval;
    std::vector<Step> history;
    unsigned iterations = 0;
    /// Registry counters aggregated across every candidate evaluation of the
    /// run (per-worker registries merged after each iteration's barrier —
    /// see obs::Registry::merge) plus the driver's own explore/* counters.
    std::vector<std::pair<std::string, std::uint64_t>> counters;

    /// The exploration summary as JSON: every step of the trajectory plus
    /// the winning candidate's full XTRACE metrics report (same schema the
    /// CLI `profile` command dumps — see docs/OBSERVABILITY.md).
    void writeJson(std::ostream& out) const;
  };

  explicit ExplorationDriver(EvaluateOptions options = {})
      : options_(options) {}

  Result run(const Candidate& initial, const Generator& generate,
             const Objective& objective, unsigned maxIterations = 16) const;

  static double areaDelayObjective(const Evaluation& ev) {
    return ev.areaDelay();
  }

  /// Area-delay weighted by how much of the runtime is stall bubbles: of two
  /// equal-cost candidates, prefer the one whose cycles do useful work
  /// (consumes the evaluation's XTRACE metrics report).
  static double stallAwareObjective(const Evaluation& ev) {
    return ev.areaDelay() * (1.0 + ev.metrics.stallFraction());
  }

 private:
  EvaluateOptions options_;
};

}  // namespace isdl::explore

#endif  // ISDL_EXPLORE_DRIVER_H
