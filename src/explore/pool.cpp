#include "explore/pool.h"

#include <limits>

namespace isdl::explore {

unsigned effectiveJobs(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

WorkerPool::WorkerPool(unsigned jobs) : jobs_(effectiveJobs(jobs)) {
  if (jobs_ <= 1) return;
  threads_.reserve(jobs_);
  for (unsigned w = 0; w < jobs_; ++w)
    threads_.emplace_back([this, w] { workerMain(w); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::runIndices(const std::function<void(std::size_t, unsigned)>& fn,
                            unsigned worker) {
  for (;;) {
    std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count_) return;
    try {
      fn(i, worker);
    } catch (...) {
      // Record the failure but keep draining indices: one bad candidate must
      // not strand the rest of the batch mid-flight. The lowest index wins
      // so the rethrow matches what a serial loop would have thrown first.
      std::lock_guard<std::mutex> lock(mu_);
      if (!firstError_ || i < firstErrorIndex_) {
        firstError_ = std::current_exception();
        firstErrorIndex_ = i;
      }
    }
  }
}

void WorkerPool::workerMain(unsigned worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t, unsigned)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = fn_;
    }
    runIndices(*fn, worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) done_.notify_all();
    }
  }
}

void WorkerPool::forEach(
    std::size_t count,
    const std::function<void(std::size_t index, unsigned worker)>& fn) {
  if (count == 0) return;
  if (threads_.empty() || count == 1) {
    // Inline serial path: exceptions propagate directly, like a plain loop.
    for (std::size_t i = 0; i < count; ++i) fn(i, 0);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  count_ = count;
  fn_ = &fn;
  next_.store(0, std::memory_order_relaxed);
  active_ = static_cast<unsigned>(threads_.size());
  firstError_ = nullptr;
  firstErrorIndex_ = std::numeric_limits<std::size_t>::max();
  ++generation_;
  wake_.notify_all();
  done_.wait(lock, [&] { return active_ == 0; });
  fn_ = nullptr;
  if (firstError_) std::rethrow_exception(firstError_);
}

}  // namespace isdl::explore
