// Micro-op compiled execution engine (the XSIM fast path).
//
// The interpreter in sim/core.cpp re-walks the rtl::Expr AST of every
// operation action for every issued instruction, re-resolving non-terminal
// option values recursively through virtual EvalContext calls each time. The
// generated-simulator literature (Reshadi & Dutt; Blanqui et al., see
// PAPERS.md) shows that pre-compiling the semantic functions into flat,
// dispatchable code is what moves ADL-generated simulators from "correct" to
// "fast". This header is that compilation layer:
//
//   * At Xsim construction, every (field, operation) action and side-effect
//     tree — including the transitive non-terminal option value / lvalue /
//     side-effect trees — is lowered once into a flat register-based
//     micro-op Program.
//   * The processing core executes a Program with a tight switch-dispatch
//     loop over a reusable BitVector scratch file (ExecEngine::execProgram,
//     defined in uop.cpp), with no recursion, no virtual calls, and no
//     per-issue context allocation.
//
// Decode-time choices (which non-terminal option an operand selected) are
// the only dynamic inputs besides state: they are handled by BrOption jump
// tables plus a tiny frame stack mirroring the DecodedParam tree, so one
// compiled Program per operation covers every operand combination.
//
// The interpreter stays available (Xsim::setUopEnabled(false), xsim
// --no-uop) as the fallback and as the differential-testing oracle
// (tests/fuzz_diff_test.cpp); both paths share the engine's pending-write
// overlay, so stall and latency accounting is identical by construction.

#ifndef ISDL_SIM_UOP_H
#define ISDL_SIM_UOP_H

#include <cstdint>
#include <string>
#include <vector>

#include "isdl/model.h"
#include "support/bitvector.h"

namespace isdl::sim::uop {

enum class Kind : std::uint8_t {
  // Value producers (result into register `dst`). There is no "load
  // constant" uop: constants live in a shared pool preloaded into the low
  // registers of the engine's scratch file (see UopTable::constPool).
  Move,         ///< dst = reg a
  LoadParam,    ///< dst = current frame's param a encoded value (tokens)
  ReadStorage,  ///< dst = storage a (through the pending-write overlay)
  ReadElem,     ///< dst = storage a [ reg b ]
  Slice,        ///< dst = reg a [hi:lo]
  Unary,        ///< dst = unop<op>(reg a)
  Binary,       ///< dst = binop<op>(reg a, reg b)
  Concat2,      ///< dst = {reg a, reg b} (a is most significant)
  ZExt,         ///< dst = zext(reg a, hi)
  SExt,         ///< dst = sext(reg a, hi)
  Trunc,        ///< dst = trunc(reg a, hi)
  IToF,         ///< dst = itof(reg a, hi)
  FToI,         ///< dst = ftoi(reg a, hi)
  Carry,        ///< dst = carry-out of reg a + reg b (1 bit)
  Overflow,     ///< dst = signed overflow of reg a + reg b (1 bit)
  Borrow,       ///< dst = borrow-out of reg a - reg b (1 bit)
  // Control flow.
  Jump,          ///< pc = a
  BranchIfZero,  ///< pc = reg a == 0 ? b : pc+1
  BrOption,      ///< pc = tables[b][current frame's param a selected option]
  // Decoded-parameter frame stack (non-terminal recursion).
  PushFrame,  ///< enter param a's selected-option sub-parameters
  PopFrame,   ///< return to the enclosing parameter frame
  // Effects.
  SetLv,       ///< lv slot dst = {storage a, elem reg b (kNoReg => 0),
               ///<               hasSlice = flags&1, hi, lo}; bounds-checked
  StageWrite,  ///< stage reg a into lv slot dst (delayed-write queue)
  Trap,        ///< throw EvalError(traps[a])
};

/// One micro-op. Fixed 20-byte layout; variable payloads (jump tables, trap
/// messages) live in side pools in the Program so the dispatch loop walks a
/// dense array.
struct Uop {
  Kind kind;
  std::uint8_t op = 0;     ///< rtl::BinOp / rtl::UnOp ordinal (Unary/Binary)
  std::uint8_t flags = 0;  ///< SetLv: bit 0 = hasSlice
  std::uint16_t hi = 0;    ///< Slice/SetLv high bit; *Ext/Trunc/IToF/FToI width
  std::uint16_t lo = 0;    ///< Slice/SetLv low bit
  std::uint32_t dst = 0;   ///< result register; SetLv/StageWrite: lv slot
  std::uint32_t a = 0;     ///< operand register / param index / storage index /
                           ///< jump target / trap index
  std::uint32_t b = 0;     ///< 2nd operand register / table index
};

/// Sentinel for "no element register" (SetLv of a non-addressed storage).
inline constexpr std::uint32_t kNoReg = 0xffffffffu;

/// A compiled micro-op program: straight-line code with explicit jumps,
/// executed over a scratch register file of `numRegs` BitVectors and
/// `numLvSlots` resolved-lvalue slots (both reused across issues). Register
/// indices below the owning table's constPool().size() name preloaded
/// constants; `numRegs` includes them.
struct Program {
  std::vector<Uop> code;
  std::vector<std::vector<std::uint32_t>> tables;  ///< BrOption jump tables
  std::vector<std::string> traps;                  ///< Trap messages
  std::uint32_t numRegs = 0;
  std::uint32_t numLvSlots = 0;
  /// True when a static width analysis proved every register of this program
  /// fits in 64 bits. Such programs run on the narrow dispatch loop, which
  /// keeps values as masked uint64_t (no BitVector in the hot loop); wide
  /// programs use the general BitVector loop. Both produce identical
  /// observables — the narrow ALU replicates rtl::applyBinOp bit for bit.
  bool narrow = false;

  bool empty() const { return code.empty(); }
};

/// The two programs of one operation, matching the paper's two-phase cycle:
/// `action` runs in phase A (with hazard-probe retry), `sideEffects` in
/// phase B (operation side effects plus the transitive side effects of every
/// selected non-terminal option, in the interpreter's depth-first order).
struct OpPrograms {
  Program action;
  Program sideEffects;
};

/// Compiled micro-op programs for every (field, operation) of a Machine.
/// Built once at Xsim construction; immutable afterwards, so one table can
/// back any number of engines.
class UopTable {
 public:
  explicit UopTable(const Machine& machine);

  const OpPrograms& at(unsigned field, unsigned op) const {
    return byFieldOp_[field][op];
  }

  /// Total micro-ops across all programs (introspection for tests/benches).
  std::uint64_t totalUops() const;

  /// Deduplicated constants shared by every program of this table. The
  /// engine copies them once into scratch registers [0, size()) when the
  /// table is installed; programs never write those registers.
  const std::vector<BitVector>& constPool() const { return constPool_; }

 private:
  std::vector<std::vector<OpPrograms>> byFieldOp_;
  std::vector<BitVector> constPool_;
};

/// Human-readable listing of a compiled program (debugging / docs aid).
std::string toString(const Program& p);

/// Test-only fault injection: while enabled, UopTable lowers every RTL `+`
/// as `-`, deliberately breaking the compiled engine. The conformance fuzzer
/// (src/testing) uses this to prove the differential oracle catches and
/// shrinks real lowering bugs; it is also reachable via the hidden
/// ISDL_FUZZ_INJECT_FAULT=1 environment flag of the isdl-fuzz driver. Only
/// affects tables built while the flag is on.
void setTestFaultInjection(bool enabled);
bool testFaultInjection();

}  // namespace isdl::sim::uop

#endif  // ISDL_SIM_UOP_H
