// The XSIM processing core (paper §3.3.3). Executes decoded instructions
// with the paper's two-phase cycle semantics:
//
//   phase A  all operation actions read the pre-cycle state and stage their
//            writes into temporary storage;
//   phase B  side effects run, conceptually after the actions but in the
//            same cycle (they observe the staged action results);
//   commit   staged writes retire after Latency cycles through a
//            delayed-write queue, so results become architecturally visible
//            exactly when the description says they do.
//
// There is no explicit pipeline model, exactly as in ISDL. Stall cycles are
// derived from the instruction stream: a read of a location with a pending
// (uncommitted) write either gets the forwarded value (producer Stall == 0:
// the description promises full bypass, §4.1.3) or stalls issue until the
// write retires (producer Stall > 0: interlock). Usage creates structural
// stalls by keeping a field's functional unit busy.

#ifndef ISDL_SIM_CORE_H
#define ISDL_SIM_CORE_H

#include <string>
#include <vector>

#include "sim/decoded.h"
#include "sim/state.h"
#include "sim/stats.h"

namespace isdl::obs {
class TraceBuffer;
struct StorageHeatmap;
}  // namespace isdl::obs

namespace isdl::sim::uop {
struct Program;
class UopTable;
}  // namespace isdl::sim::uop

namespace isdl::sim {

class ExecEngine {
 public:
  ExecEngine(const Machine& machine, State& state);

  struct IssueInfo {
    bool ok = true;
    std::string error;                    ///< runtime trap message when !ok
    std::uint64_t dataStallCycles = 0;    ///< RAW interlock bubbles
    std::uint64_t structStallCycles = 0;  ///< busy-functional-unit bubbles
    /// True if a write to the program counter retired during this
    /// instruction's cycle window; the scheduler then skips the sequential
    /// PC increment (branch taken).
    bool pcCommitted = false;
  };

  /// Executes one instruction starting at the current cycle; advances the
  /// cycle by the instruction's cycle cost plus any stalls.
  IssueInfo issue(const DecodedInstruction& inst);

  std::uint64_t cycle() const { return cycle_; }

  /// Commits every still-pending write (used before final state inspection,
  /// where in-flight latencies should not hide results).
  void drain();

  void reset();

  // --- XTRACE hooks (all nullable; a disabled hook costs one branch) --------
  /// Ring buffer receiving issue/stall/write-back events.
  void setTrace(obs::TraceBuffer* trace) { trace_ = trace; }
  /// Heatmap receiving one countRead per architectural read the core
  /// performs (the write side layers on Monitors, see Xsim::enableProfile).
  void setHeatmap(obs::StorageHeatmap* heat) { heat_ = heat; }
  /// Stats whose stall-attribution vectors the engine fills (sized by the
  /// owner; the aggregate counters stay owned by the scheduler).
  void setStatsSink(Stats* stats) { statsSink_ = stats; }

  /// Switches issue() to the micro-op compiled fast path (sim/uop.h) and
  /// preloads the table's constant pool into the scratch register file. Null
  /// reverts to the tree-walking interpreter. The table must outlive the
  /// engine and describe the same Machine. Defined in uop.cpp.
  void setUopTable(const uop::UopTable* table);
  bool usingUops() const { return uops_ != nullptr; }

  /// Register of the narrow dispatch loop: a masked value plus its width.
  /// Programs whose static width analysis proved every register ≤ 64 bits
  /// (uop::Program::narrow) execute over these instead of BitVectors.
  struct NarrowReg {
    std::uint64_t v = 0;
    std::uint32_t w = 0;
  };

 private:
  struct Pending {
    unsigned si = 0;
    std::uint64_t elem = 0;
    bool hasSlice = false;
    unsigned hi = 0, lo = 0;
    BitVector value;
    std::uint64_t commitCycle = 0;  ///< retires at the END of this cycle
    unsigned stallCost = 0;         ///< producer's Stall; 0 = bypassable
    std::uint64_t instrId = 0;      ///< issuing instruction (for phase B)
    std::uint64_t seq = 0;          ///< staging order
  };

  const Machine& machine_;
  State& state_;
  /// Delayed-write queue, kept sorted by (commitCycle, seq) on insert so
  /// commitUpTo retires a prefix instead of re-sorting every call.
  std::vector<Pending> pending_;
  /// Overlay index: pending-entry count per storage. readLoc skips the
  /// pending scan entirely for storages with nothing in flight (the common
  /// case), which is what de-quadratifies the read path.
  std::vector<std::uint32_t> pendingBySi_;
  std::vector<std::uint64_t> fieldBusyUntil_;
  std::uint64_t cycle_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t instrId_ = 0;
  bool pcCommitted_ = false;

  // Per-issue evaluation state.
  mutable std::uint64_t requiredStall_ = 0;
  mutable unsigned stallStorage_ = 0;  ///< producer of the largest stall
  bool phaseB_ = false;
  std::vector<Pending> stagedLocal_;

  // XTRACE observers (null when disabled).
  obs::TraceBuffer* trace_ = nullptr;
  obs::StorageHeatmap* heat_ = nullptr;
  Stats* statsSink_ = nullptr;

  class OpContext;
  struct ResolvedLv {
    unsigned si = 0;
    std::uint64_t elem = 0;
    bool hasSlice = false;
    unsigned hi = 0, lo = 0;
  };

  // Micro-op fast path (sim/uop.h): compiled programs plus the reusable
  // execution scratch state (register file, lvalue slots, decoded-parameter
  // frame stack). All grow to high-water marks and are reused across issues.
  const uop::UopTable* uops_ = nullptr;
  std::vector<BitVector> scratch_;
  std::vector<ResolvedLv> lvSlots_;
  std::vector<const std::vector<DecodedParam>*> frames_;
  std::vector<NarrowReg> nscratch_;

  /// Reads through the pending-write overlay without copying in the common
  /// no-overlay case: returns a reference into State, or into `tmp` when a
  /// forwarded in-flight value had to be materialised.
  const BitVector& readLocRef(unsigned si, std::uint64_t elem,
                              BitVector& tmp) const;
  BitVector readLoc(unsigned si, std::uint64_t elem) const;
  void commitUpTo(std::uint64_t cycleInclusive);
  void advanceTo(std::uint64_t newCycle);
  void insertPending(Pending&& p);
  void stageWrite(const ResolvedLv& lv, BitVector value, unsigned latency,
                  unsigned stallCost);
  ResolvedLv resolveLvalue(const rtl::Lvalue& lv, const OpContext& ctx) const;
  void execStmts(const std::vector<rtl::StmtPtr>& stmts, const OpContext& ctx,
                 unsigned latency, unsigned stallCost);
  void execOptionSideEffects(const OpContext& ctx, unsigned latency,
                             unsigned stallCost);
  /// Defined in uop.cpp: the micro-op dispatch loops (general BitVector loop
  /// and the uint64_t specialization for Program::narrow programs).
  void execProgram(const uop::Program& prog,
                   const std::vector<DecodedParam>& dparams, unsigned latency,
                   unsigned stallCost);
  void execProgramNarrow(const uop::Program& prog,
                         const std::vector<DecodedParam>& dparams,
                         unsigned latency, unsigned stallCost);

  friend class OpContext;
};

}  // namespace isdl::sim

#endif  // ISDL_SIM_CORE_H
