// Operation signatures (paper §3.3.2, Figure 3).
//
// Each operation in every field — and each option of every non-terminal —
// gets a signature: an image of the instruction word (or of the option's
// return value) where every bit is one of
//   * don't care        (the assembly function never sets it),
//   * a constant 0/1    (set by a Const bitfield assignment), or
//   * a parameter bit   (set from bit k of parameter p — Axiom 1 guarantees
//                        a single parameter per assignment).
//
// The signature supports both directions of the assembly function:
//   assemble(params)  — paint constants and parameter bits into a word, and
//   reverse(word)     — match the constant part, then gather each
//                       parameter's scattered bits back together.
//
// SignatureTable precomputes signatures for a whole Machine and validates
// decodability: within a field (and within a non-terminal) every pair of
// signatures must differ in at least one bit where both are constant,
// otherwise the "unique match" guarantee of the disassembly algorithm
// (Figure 4) does not hold.

#ifndef ISDL_SIM_SIGNATURE_H
#define ISDL_SIM_SIGNATURE_H

#include <vector>

#include "isdl/model.h"
#include "support/bitvector.h"
#include "support/diag.h"

namespace isdl::sim {

class Signature {
 public:
  /// Builds the signature of `encode` over `widthBits` instruction bits for
  /// a definition with `numParams` parameters.
  Signature(unsigned widthBits, std::size_t numParams,
            const std::vector<EncodeAssign>& encode);

  unsigned widthBits() const { return width_; }

  /// Bits the assembly function sets to a constant.
  const BitVector& careMask() const { return careMask_; }
  /// Constant values on careMask bits (zero elsewhere).
  const BitVector& constBits() const { return constBits_; }
  /// Bits set from any parameter.
  const BitVector& paramMask() const { return paramMask_; }

  /// True if `word`'s constant bits match this signature. `word` may be
  /// wider than the signature (extra bits ignored) but not narrower.
  bool matches(const BitVector& word) const;

  /// Paints constants and parameter values into `word` (in place). Bits this
  /// signature does not own are left untouched. `paramValues[i]` must have
  /// the declared encoding width of parameter i.
  void assemble(BitVector& word,
                const std::vector<BitVector>& paramValues) const;

  /// Gathers the encoded value of parameter `p` back out of `word`.
  BitVector extractParam(unsigned p, const BitVector& word) const;

  /// Declared width of parameter p's encoded value.
  unsigned paramWidth(unsigned p) const {
    return static_cast<unsigned>(paramBits_[p].size());
  }

  /// (instruction bit, parameter bit) pairs for parameter p — exposed for
  /// the hardware decode generator, which turns them into extraction wiring.
  struct ParamBit {
    unsigned instBit;
  };
  /// instBitOfParamBit(p)[k] = instruction bit that carries bit k of param p.
  const std::vector<unsigned>& instBitsOfParam(unsigned p) const {
    return paramBits_[p];
  }

  /// Render like Figure 3: 'x' for don't care, '0'/'1' for constants, letters
  /// for parameter bits (a = param 0, b = param 1, ...). Msb first.
  std::string toString() const;

 private:
  unsigned width_;
  BitVector careMask_;
  BitVector constBits_;
  BitVector paramMask_;
  /// paramBits_[p][k] = instruction bit carrying bit k of parameter p.
  std::vector<std::vector<unsigned>> paramBits_;
};

/// True if the two signatures are distinguishable: some bit is constant in
/// both and differs. Widths may differ; only the overlap is compared.
bool distinguishable(const Signature& a, const Signature& b);

/// All signatures of a machine plus derived decode metadata.
class SignatureTable {
 public:
  /// Builds signatures for every operation and non-terminal option and
  /// checks decodability. Errors are reported through `diags`.
  SignatureTable(const Machine& machine, DiagnosticEngine& diags);

  const Machine& machine() const { return *machine_; }

  const Signature& operation(unsigned field, unsigned op) const {
    return opSigs_[field][op];
  }
  const Signature& ntOption(unsigned nt, unsigned option) const {
    return ntSigs_[nt][option];
  }

  /// Total instruction bits an operation occupies (size words * word width).
  unsigned opWidthBits(unsigned field, unsigned op) const {
    return opSigs_[field][op].widthBits();
  }

  bool valid() const { return valid_; }

 private:
  const Machine* machine_;
  std::vector<std::vector<Signature>> opSigs_;  // [field][op]
  std::vector<std::vector<Signature>> ntSigs_;  // [nt][option]
  bool valid_ = true;
};

}  // namespace isdl::sim

#endif  // ISDL_SIM_SIGNATURE_H
