#include "sim/cli.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "support/strings.h"

namespace isdl::sim {

namespace {

std::vector<std::string> words(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string w;
  while (is >> w) {
    if (w[0] == '#' || w[0] == ';') break;
    out.push_back(w);
  }
  return out;
}

}  // namespace

Cli::Cli(Xsim& sim, std::ostream& out)
    : sim_(sim), out_(out), assembler_(sim.signatures()) {
  sim_.setBreakpointHook([this](std::uint64_t addr) {
    auto it = attachedCommands_.find(addr);
    if (it != attachedCommands_.end()) execute(it->second);
  });
}

Cli::~Cli() {
  flushObservability();
  for (int h : monitorHandles_) sim_.monitors().remove(h);
  sim_.setBreakpointHook(nullptr);
  sim_.setTraceCallback(nullptr);
}

void Cli::stopChromeTrace() {
  std::ofstream out(chromeTracePath_);
  if (!out) {
    error(cat("cannot open '", chromeTracePath_, "'"));
  } else {
    sim_.writeChromeTrace(out);
    const obs::TraceBuffer* buf = sim_.trace();
    out_ << "wrote " << (buf ? buf->size() : 0) << " events to "
         << chromeTracePath_ << "\n";
  }
  chromeTracePath_.clear();
  sim_.disableTrace();
}

void Cli::dumpProfile(const std::string& path) {
  if (path.empty()) {
    sim_.writeMetricsJson(out_);
    return;
  }
  std::ofstream out(path);
  if (!out) {
    error(cat("cannot open '", path, "'"));
    return;
  }
  sim_.writeMetricsJson(out);
  out_ << "wrote metrics to " << path << "\n";
}

void Cli::flushObservability() {
  if (!chromeTracePath_.empty()) stopChromeTrace();
  if (!profilePath_.empty()) {
    dumpProfile(profilePath_);
    profilePath_.clear();
  }
}

void Cli::error(const std::string& message) {
  ++errors_;
  out_ << "error: " << message << "\n";
}

bool Cli::parseStorageRef(const std::vector<std::string>& w, std::size_t at,
                          int& storageIndex, std::uint64_t& element,
                          std::size_t& consumed) {
  if (at >= w.size()) {
    error("expected a storage name");
    return false;
  }
  const Machine& m = sim_.machine();
  storageIndex = m.findStorage(w[at]);
  element = 0;
  consumed = 1;
  if (storageIndex < 0) {
    // Aliases resolve to their target.
    int ai = m.findAlias(w[at]);
    if (ai >= 0) {
      storageIndex = static_cast<int>(m.aliases[ai].storageIndex);
      if (m.aliases[ai].element) element = *m.aliases[ai].element;
      return true;
    }
    error(cat("unknown storage '", w[at], "'"));
    return false;
  }
  if (isAddressed(m.storages[storageIndex].kind)) {
    if (at + 1 >= w.size()) {
      error(cat("storage '", w[at], "' needs an index"));
      return false;
    }
    element = std::strtoull(w[at + 1].c_str(), nullptr, 0);
    consumed = 2;
  }
  return true;
}

void Cli::printStats() {
  const Stats& s = sim_.stats();
  out_ << "cycles " << s.cycles << " instructions " << s.instructions
       << " data-stalls " << s.dataStallCycles << " struct-stalls "
       << s.structStallCycles << "\n";
  const Machine& m = sim_.machine();
  for (std::size_t f = 0; f < m.fields.size(); ++f) {
    out_ << "  field " << m.fields[f].name << " utilization "
         << s.fieldUtilization[f] << "/" << s.instructions << "\n";
    for (std::size_t o = 0; o < m.fields[f].operations.size(); ++o) {
      if (s.opCount[f][o] == 0) continue;
      out_ << "    " << m.fields[f].operations[o].name << " "
           << s.opCount[f][o] << "\n";
    }
  }
  for (std::size_t si = 0; si < m.storages.size(); ++si)
    if (s.dataStallsByStorage[si])
      out_ << "  data stalls on " << m.storages[si].name << " "
           << s.dataStallsByStorage[si] << "\n";
  for (std::size_t f = 0; f < m.fields.size(); ++f)
    if (s.structStallsByField[f])
      out_ << "  struct stalls on " << m.fields[f].name << " "
           << s.structStallsByField[f] << "\n";
}

bool Cli::execute(const std::string& line) {
  std::vector<std::string> w = words(line);
  if (w.empty()) return true;
  const std::string& cmd = w[0];
  const Machine& m = sim_.machine();

  if (cmd == "quit") {
    flushObservability();
    return false;
  }

  if (cmd == "echo") {
    for (std::size_t i = 1; i < w.size(); ++i)
      out_ << (i > 1 ? " " : "") << w[i];
    out_ << "\n";
    return true;
  }

  if (cmd == "asm") {
    if (w.size() < 2) {
      error("asm needs a file name");
      return true;
    }
    std::ifstream file(w[1]);
    if (!file) {
      error(cat("cannot open '", w[1], "'"));
      return true;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    DiagnosticEngine diags;
    auto prog = assembler_.assemble(buffer.str(), diags);
    if (!prog) {
      error("assembly failed:\n" + diags.dump());
      return true;
    }
    std::string err;
    if (!sim_.loadProgram(*prog, &err))
      error(err);
    else
      out_ << "loaded " << prog->words.size() << " words\n";
    return true;
  }

  if (cmd == "run") {
    std::uint64_t budget =
        w.size() > 1 ? std::strtoull(w[1].c_str(), nullptr, 0)
                     : 100'000'000ull;
    RunResult r = sim_.run(budget);
    out_ << "stopped: " << stopReasonName(r.reason);
    if (!r.message.empty()) out_ << " (" << r.message << ")";
    out_ << " at pc " << sim_.state().pc() << " cycle " << sim_.cycle()
         << "\n";
    return true;
  }

  if (cmd == "step") {
    std::uint64_t n =
        w.size() > 1 ? std::strtoull(w[1].c_str(), nullptr, 0) : 1;
    RunResult r = sim_.step(n);
    if (r.reason != StopReason::MaxInstructions)
      out_ << "stopped: " << stopReasonName(r.reason) << "\n";
    out_ << "pc " << sim_.state().pc() << " cycle " << sim_.cycle() << "\n";
    return true;
  }

  if (cmd == "break") {
    if (w.size() < 2) {
      error("break needs an address");
      return true;
    }
    std::uint64_t addr = std::strtoull(w[1].c_str(), nullptr, 0);
    sim_.addBreakpoint(addr);
    if (w.size() > 2) {
      std::string attached;
      for (std::size_t i = 2; i < w.size(); ++i)
        attached += (i > 2 ? " " : "") + w[i];
      attachedCommands_[addr] = attached;
    }
    return true;
  }

  if (cmd == "delete") {
    if (w.size() < 2) {
      error("delete needs an address");
      return true;
    }
    std::uint64_t addr = std::strtoull(w[1].c_str(), nullptr, 0);
    sim_.removeBreakpoint(addr);
    attachedCommands_.erase(addr);
    return true;
  }

  if (cmd == "x") {
    int si;
    std::uint64_t element;
    std::size_t consumed;
    if (!parseStorageRef(w, 1, si, element, consumed)) return true;
    sim_.drainPipeline();
    const BitVector& v = sim_.state().read(static_cast<unsigned>(si), element);
    out_ << m.storages[si].name;
    if (isAddressed(m.storages[si].kind)) out_ << "[" << element << "]";
    out_ << " = " << v.toHexString() << " (" << v.toUnsignedDecimalString()
         << ")\n";
    return true;
  }

  if (cmd == "set") {
    int si;
    std::uint64_t element;
    std::size_t consumed;
    if (!parseStorageRef(w, 1, si, element, consumed)) return true;
    if (1 + consumed >= w.size()) {
      error("set needs a value");
      return true;
    }
    try {
      BitVector v = BitVector::fromString(m.storages[si].width,
                                          w[1 + consumed]);
      sim_.state().write(static_cast<unsigned>(si), element, v, sim_.cycle());
    } catch (const std::invalid_argument& e) {
      error(e.what());
    }
    return true;
  }

  if (cmd == "disasm") {
    if (w.size() < 2) {
      error("disasm needs an address");
      return true;
    }
    std::uint64_t addr = std::strtoull(w[1].c_str(), nullptr, 0);
    std::uint64_t count =
        w.size() > 2 ? std::strtoull(w[2].c_str(), nullptr, 0) : 1;
    const DecodedProgram& prog = sim_.decodedProgram();
    for (std::uint64_t i = 0; i < count; ++i) {
      if (!prog.hasInstructionAt(addr)) {
        out_ << addr << ": <not decodable>\n";
        break;
      }
      const DecodedInstruction& inst = prog.byAddress[addr];
      out_ << addr << ": " << sim_.disassembler().render(inst) << "\n";
      addr += inst.sizeWords;
    }
    return true;
  }

  if (cmd == "monitor") {
    int si;
    std::uint64_t element;
    std::size_t consumed;
    if (!parseStorageRef(w, 1, si, element, consumed)) return true;
    std::optional<std::uint64_t> filter;
    if (isAddressed(m.storages[si].kind)) filter = element;
    std::string name = m.storages[si].name;
    int handle = sim_.monitors().add(
        static_cast<unsigned>(si), filter, [this, name](const WriteEvent& ev) {
          out_ << "monitor: " << name << "[" << ev.element << "] "
               << ev.oldValue.toHexString() << " -> "
               << ev.newValue.toHexString() << " at cycle " << ev.cycle
               << "\n";
        });
    monitorHandles_.push_back(handle);
    return true;
  }

  if (cmd == "trace") {
    if (w.size() > 1 && w[1] == "start") {
      if (w.size() < 3) {
        error("trace start needs a file name");
        return true;
      }
      if (!chromeTracePath_.empty()) stopChromeTrace();
      sim_.enableTrace();
      chromeTracePath_ = w[2];
      out_ << "event tracing to " << chromeTracePath_
           << " (Chrome trace-event JSON; stop with 'trace stop')\n";
      return true;
    }
    if (w.size() > 1 && w[1] == "stop") {
      if (chromeTracePath_.empty()) {
        error("no event trace is active (start one with 'trace start')");
        return true;
      }
      stopChromeTrace();
      return true;
    }
    if (w.size() > 1 && w[1] == "off") {
      sim_.setTraceCallback(nullptr);
      traceFile_.reset();
      return true;
    }
    if (w.size() < 2) {
      error("trace needs a file name or 'off'");
      return true;
    }
    traceFile_ = std::make_unique<std::ofstream>(w[1]);
    if (!*traceFile_) {
      error(cat("cannot open '", w[1], "'"));
      traceFile_.reset();
      return true;
    }
    std::ofstream* file = traceFile_.get();
    sim_.setTraceCallback([file](std::uint64_t addr) { *file << addr << "\n"; });
    return true;
  }

  if (cmd == "stats") {
    printStats();
    return true;
  }

  if (cmd == "engine") {
    if (w.size() > 1 && w[1] == "uop") {
      sim_.setUopEnabled(true);
    } else if (w.size() > 1 && w[1] == "interp") {
      sim_.setUopEnabled(false);
    } else if (w.size() > 1) {
      error(cat("unknown engine '", w[1], "' (expected 'uop' or 'interp')"));
      return true;
    }
    out_ << "execution engine: "
         << (sim_.uopEnabled() ? "uop (micro-op compiled)"
                               : "interp (tree-walking)")
         << "\n";
    return true;
  }

  if (cmd == "profile") {
    if (w.size() > 1 && w[1] == "off") {
      sim_.disableProfile();
      profilePath_.clear();
      return true;
    }
    if (w.size() > 1 && w[1] == "dump") {
      dumpProfile(w.size() > 2 ? w[2] : std::string());
      return true;
    }
    sim_.enableProfile();
    if (w.size() > 1) {
      profilePath_ = w[1];
      out_ << "profiling enabled; metrics dumped to " << profilePath_
           << " on exit\n";
    } else {
      out_ << "profiling enabled (dump with 'profile dump [file]')\n";
    }
    return true;
  }

  if (cmd == "reset") {
    sim_.reset();
    return true;
  }

  error(cat("unknown command '", cmd, "'"));
  return true;
}

unsigned Cli::runScript(std::istream& script) {
  std::string line;
  while (std::getline(script, line)) {
    if (!execute(line)) break;
  }
  return errors_;
}

unsigned Cli::runScript(const std::string& scriptText) {
  std::istringstream is(scriptText);
  return runScript(is);
}

}  // namespace isdl::sim
