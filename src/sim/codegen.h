// Compiled-code simulator generation — the paper's §6.2 future-work item
// ("Additional speedups can be obtained by a move to compiled-code
// simulators"). Given a machine AND a concrete program, emits a standalone
// C++ translation: every instruction of the program becomes straight-line
// code with its decoded parameters folded in as constants, dispatched by a
// switch over the PC. Unlike the paper's XSIM executables (architecture-
// specific, program-agnostic), a compiled-code simulator is specific to one
// binary — that is where its speed comes from.
//
// Semantics: bit-true architectural execution with immediate write-back and
// static cycle accounting (like the hardware model); the identity
//     interpreted cycles == compiled cycles + interpreted stall cycles
// is validated by tests. Storage elements wider than 64 bits (other than
// the instruction memory, which compiled execution never touches) are not
// supported and raise IsdlError.
//
// The emitted program runs the simulation and prints the final state as
// `<storage> <element> <hex>` lines plus `cycles N` / `instructions N`,
// which tests and the ablation bench parse back.

#ifndef ISDL_SIM_CODEGEN_H
#define ISDL_SIM_CODEGEN_H

#include <string>

#include "sim/assembler.h"
#include "sim/disasm.h"

namespace isdl::sim {

struct CodegenOptions {
  /// Cycle budget compiled into the generated main loop.
  std::uint64_t maxCycles = 1'000'000'000ull;
  /// Repeat the whole program run this many times (for benchmarking the
  /// generated simulator itself; state resets between repeats).
  std::uint64_t repeats = 1;
};

/// Generates the compiled-code simulator source for `prog` on `machine`.
/// Throws IsdlError on unsupported machines (storage wider than 64 bits) or
/// undecodable programs.
std::string generateCompiledSim(const Machine& machine,
                                const SignatureTable& sigs,
                                const AssembledProgram& prog,
                                const CodegenOptions& options = {});

}  // namespace isdl::sim

#endif  // ISDL_SIM_CODEGEN_H
