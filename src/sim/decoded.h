// Decoded instruction representation. The paper's XSIM simulators
// disassemble the program off-line at load time (§3.1); the result is an
// array of DecodedInstructions that the processing core executes directly,
// with no per-cycle decoding work.

#ifndef ISDL_SIM_DECODED_H
#define ISDL_SIM_DECODED_H

#include <cstdint>
#include <vector>

#include "isdl/model.h"
#include "support/bitvector.h"

namespace isdl::sim {

/// Runtime binding of one parameter of an operation or non-terminal option.
struct DecodedParam {
  /// The encoded value recovered from the instruction word: token value,
  /// immediate bits, or non-terminal return value.
  BitVector encoded;
  /// For non-terminal parameters: the option selected by the return value's
  /// constant bits; -1 for token parameters.
  int ntOption = -1;
  /// Parameters of the selected option (non-terminal parameters only).
  std::vector<DecodedParam> sub;
};

/// One operation slot of a decoded instruction.
struct DecodedOp {
  unsigned opIndex = 0;
  std::vector<DecodedParam> params;

  /// Effective costs/timing: the operation's own numbers plus the extras of
  /// every chosen non-terminal option (an addressing mode can add cycles or
  /// latency). Precomputed by the disassembler so the core never walks the
  /// model during execution.
  unsigned effCycle = 1;
  unsigned effStall = 0;
  unsigned effSize = 1;
  unsigned effLatency = 1;
  unsigned effUsage = 1;
};

/// One full (VLIW) instruction: exactly one operation per field.
struct DecodedInstruction {
  std::uint64_t address = 0;  ///< word address in instruction memory
  unsigned sizeWords = 1;     ///< words occupied (max over field operations)
  std::vector<DecodedOp> ops; ///< indexed by field

  /// Aggregate cycle cost: max over fields of the operation's cycle cost
  /// plus its chosen options' extras. Filled by the disassembler.
  unsigned cycles = 1;
};

/// A fully decoded program: the off-line disassembly cache.
struct DecodedProgram {
  /// Indexed by instruction-memory word address; entries not at an
  /// instruction start are empty (sizeWords == 0).
  std::vector<DecodedInstruction> byAddress;

  bool hasInstructionAt(std::uint64_t addr) const {
    return addr < byAddress.size() && byAddress[addr].sizeWords != 0;
  }
};

}  // namespace isdl::sim

#endif  // ISDL_SIM_DECODED_H
