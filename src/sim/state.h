// Architectural state and state monitors (paper Figure 2: "State" and
// "Monitors"). State generation (§3.3.1) allocates one value array per
// storage element of the ISDL description; every write is routed through the
// monitor hooks so user-defined watchpoints can observe any change.

#ifndef ISDL_SIM_STATE_H
#define ISDL_SIM_STATE_H

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "isdl/model.h"
#include "rtl/eval.h"
#include "support/bitvector.h"

namespace isdl::sim {

/// A committed change to one storage location.
struct WriteEvent {
  unsigned storageIndex = 0;
  std::uint64_t element = 0;
  std::uint64_t cycle = 0;
  BitVector oldValue;
  BitVector newValue;
};

/// Watchpoint registry. A monitor can watch a whole storage element or a
/// single location of an addressed one; it fires only on actual changes
/// (oldValue != newValue), mirroring the paper's "detect whenever any
/// user-defined portion of the state changes".
class Monitors {
 public:
  using Callback = std::function<void(const WriteEvent&)>;

  /// Returns a handle usable with remove().
  int add(unsigned storageIndex, std::optional<std::uint64_t> element,
          Callback callback);
  void remove(int handle);
  bool empty() const { return watches_.empty() && !observer_; }

  /// Global observer fired on every value-changing write of any storage,
  /// before the per-location watches — the hook the XTRACE storage heatmap
  /// layers on. Pass nullptr to remove.
  void setWriteObserver(Callback callback) { observer_ = std::move(callback); }

  void fire(const WriteEvent& event) const;

 private:
  struct Watch {
    int handle;
    unsigned storageIndex;
    std::optional<std::uint64_t> element;
    Callback callback;
  };
  std::vector<Watch> watches_;
  Callback observer_;
  int nextHandle_ = 1;
};

/// The processor state: one dense value array per storage definition.
class State {
 public:
  explicit State(const Machine& machine);

  const Machine& machine() const { return *machine_; }
  Monitors& monitors() { return monitors_; }

  /// Zeroes every storage element (no monitor events).
  void reset();

  /// Reads location `element` of storage `si` (element 0 for non-addressed
  /// kinds). Throws rtl::EvalError on out-of-range access. Inline: this is
  /// the single hottest call of the simulator (every architectural read of
  /// both execution engines lands here).
  const BitVector& read(unsigned si, std::uint64_t element = 0) const {
    checkRange(si, element);
    return values_[si][element];
  }

  /// Writes a whole location, firing monitors when the value changes.
  void write(unsigned si, std::uint64_t element, const BitVector& value,
             std::uint64_t cycle);
  /// Writes bits [hi..lo] of a location.
  void writeSlice(unsigned si, std::uint64_t element, unsigned hi,
                  unsigned lo, const BitVector& value, std::uint64_t cycle);

  // --- convenience accessors -------------------------------------------------
  std::uint64_t pc() const;
  void setPc(std::uint64_t value, std::uint64_t cycle);

  std::uint64_t depth(unsigned si) const {
    return machine_->storages[si].depth;
  }

 private:
  const Machine* machine_;
  std::vector<std::vector<BitVector>> values_;  // [storage][element]
  Monitors monitors_;

  void checkRange(unsigned si, std::uint64_t element) const {
    if (element >= values_[si].size()) throwRangeError(si, element);
  }
  [[noreturn]] void throwRangeError(unsigned si, std::uint64_t element) const;
};

}  // namespace isdl::sim

#endif  // ISDL_SIM_STATE_H
