#include "sim/assembler.h"

#include <cctype>

#include "support/strings.h"

namespace isdl::sim {

namespace {

// --- assembly micro-lexer -------------------------------------------------------

struct AsmTok {
  std::string text;
  bool isNumber = false;
  std::int64_t number = 0;
  unsigned col = 0;
};

/// Tokenizes one line of assembly: identifiers, numbers (decimal / 0x / 0b),
/// and single-character punctuation. Comments (';', '#', '//') end the line.
/// Returns false on a malformed number.
bool lexAsmLine(std::string_view line, std::vector<AsmTok>& out,
                std::string* error) {
  out.clear();
  std::size_t i = 0;
  auto peek = [&](std::size_t off = 0) {
    return i + off < line.size() ? line[i + off] : '\0';
  };
  while (i < line.size()) {
    char c = line[i];
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    // Note: '#' is NOT a comment character here — it is a conventional
    // immediate prefix in operand syntax (e.g. "addi R1, #42").
    if (c == ';' || (c == '/' && peek(1) == '/')) break;
    unsigned col = static_cast<unsigned>(i + 1);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.') {
      AsmTok t;
      t.col = col;
      while (i < line.size() &&
             (std::isalnum(static_cast<unsigned char>(line[i])) ||
              line[i] == '_' || line[i] == '.'))
        t.text += line[i++];
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      AsmTok t;
      t.col = col;
      t.isNumber = true;
      std::string digits;
      int base = 10;
      if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        base = 16;
        i += 2;
      } else if (c == '0' && (peek(1) == 'b' || peek(1) == 'B')) {
        base = 2;
        i += 2;
      }
      while (i < line.size() &&
             (std::isalnum(static_cast<unsigned char>(line[i])) ||
              line[i] == '_')) {
        if (line[i] != '_') digits += line[i];
        ++i;
      }
      t.text = digits;
      errno = 0;
      char* end = nullptr;
      unsigned long long v = std::strtoull(digits.c_str(), &end, base);
      if (digits.empty() || end != digits.c_str() + digits.size()) {
        if (error) *error = cat("bad number '", digits, "'");
        return false;
      }
      t.number = static_cast<std::int64_t>(v);
      out.push_back(std::move(t));
      continue;
    }
    AsmTok t;
    t.col = col;
    t.text = std::string(1, c);
    ++i;
    out.push_back(std::move(t));
  }
  return true;
}

// --- parse-time value tree --------------------------------------------------------

/// A parsed (but possibly unresolved) parameter binding. Mirrors
/// DecodedParam, with label references left symbolic until pass 2.
struct ParamBinding {
  BitVector value;        ///< encoded value when !isLabel
  bool isLabel = false;
  std::string label;
  unsigned width = 0;     ///< encoding width (for label resolution)
  bool isSigned = false;  ///< immediate signedness (range checking)
  std::int64_t literal = 0;   ///< raw literal for range checking
  bool fromLiteral = false;
  int ntOption = -1;
  std::vector<ParamBinding> sub;
};

struct ParsedOp {
  unsigned fieldIndex = 0;
  unsigned opIndex = 0;
  std::vector<ParamBinding> params;
  unsigned effSize = 1;
};

struct ParsedLine {
  enum class Kind { Instruction, Org, Word, Dm } kind = Kind::Instruction;
  unsigned lineNo = 0;
  std::vector<ParsedOp> ops;          // Instruction
  std::uint64_t orgAddress = 0;       // Org
  BitVector rawWord;                  // Word
  std::uint64_t dmAddress = 0;        // Dm
  BitVector dmValue;                  // Dm
  std::uint64_t address = 0;          // assigned in pass 1
  unsigned sizeWords = 1;
};

// --- the assembler implementation ---------------------------------------------------

class Impl {
 public:
  Impl(const SignatureTable& sigs, DiagnosticEngine& diags)
      : sigs_(sigs), machine_(sigs.machine()), diags_(diags) {}

  std::optional<AssembledProgram> run(std::string_view source) {
    std::vector<ParsedLine> lines;
    // ---- pass 1: parse, choose operations/options, lay out addresses ----
    std::uint64_t address = 0;
    unsigned lineNo = 0;
    for (std::string_view rawLine : splitLines(source)) {
      ++lineNo;
      lineNo_ = lineNo;
      std::string lexError;
      if (!lexAsmLine(rawLine, toks_, &lexError)) {
        error(lexError);
        return std::nullopt;
      }
      pos_ = 0;

      // Leading labels.
      while (toks_.size() >= pos_ + 2 && !toks_[pos_].isNumber &&
             toks_[pos_ + 1].text == ":" && isIdentTok(toks_[pos_])) {
        const std::string& name = toks_[pos_].text;
        if (symbols_.count(name)) {
          error(cat("duplicate label '", name, "'"));
          return std::nullopt;
        }
        symbols_[name] = address;
        pos_ += 2;
      }
      if (pos_ >= toks_.size()) continue;  // blank / label-only line

      ParsedLine line;
      line.lineNo = lineNo;
      line.address = address;
      if (toks_[pos_].text == ".org") {
        ++pos_;
        std::int64_t v;
        if (!expectNumber(v)) return std::nullopt;
        if (static_cast<std::uint64_t>(v) < address) {
          error(".org cannot move backwards");
          return std::nullopt;
        }
        address = static_cast<std::uint64_t>(v);
        // Re-point any labels defined on this same line at the new address.
        for (auto& [name, a] : symbols_)
          if (a == line.address) a = address;
        continue;
      }
      if (toks_[pos_].text == ".word") {
        ++pos_;
        std::int64_t v;
        if (!expectNumber(v)) return std::nullopt;
        line.kind = ParsedLine::Kind::Word;
        line.rawWord = BitVector(machine_.wordWidth,
                                 static_cast<std::uint64_t>(v));
        line.sizeWords = 1;
        address += 1;
      } else if (toks_[pos_].text == ".dm") {
        ++pos_;
        std::int64_t a, v;
        if (!expectNumber(a) || !expectNumber(v)) return std::nullopt;
        line.kind = ParsedLine::Kind::Dm;
        line.dmAddress = static_cast<std::uint64_t>(a);
        // Width comes from the (unique) data memory if present.
        unsigned dmWidth = machine_.wordWidth;
        for (const auto& st : machine_.storages)
          if (st.kind == StorageKind::DataMemory) dmWidth = st.width;
        line.dmValue = BitVector::fromInt(dmWidth, v);
        line.sizeWords = 0;
      } else {
        if (!parseInstruction(line)) return std::nullopt;
        address += line.sizeWords;
      }
      if (pos_ != toks_.size()) {
        error(cat("trailing junk '", toks_[pos_].text, "'"));
        return std::nullopt;
      }
      lines.push_back(std::move(line));
    }

    // ---- pass 2: resolve labels, paint bits ----
    AssembledProgram prog;
    prog.symbols = symbols_;
    prog.words.assign(address, BitVector(machine_.wordWidth));
    for (auto& line : lines) {
      lineNo_ = line.lineNo;
      switch (line.kind) {
        case ParsedLine::Kind::Word:
          prog.words[line.address] = line.rawWord;
          break;
        case ParsedLine::Kind::Dm:
          prog.dataInit.emplace_back(line.dmAddress, line.dmValue);
          break;
        case ParsedLine::Kind::Instruction: {
          if (!emitInstruction(line, prog)) return std::nullopt;
          break;
        }
        case ParsedLine::Kind::Org:
          break;
      }
    }
    return prog;
  }

 private:
  const SignatureTable& sigs_;
  const Machine& machine_;
  DiagnosticEngine& diags_;
  std::map<std::string, std::uint64_t> symbols_;

  std::vector<AsmTok> toks_;
  std::size_t pos_ = 0;
  unsigned lineNo_ = 0;

  static bool isIdentTok(const AsmTok& t) {
    return !t.isNumber && !t.text.empty() &&
           (std::isalpha(static_cast<unsigned char>(t.text[0])) ||
            t.text[0] == '_');
  }

  void error(std::string msg) {
    diags_.error({lineNo_, pos_ < toks_.size() ? toks_[pos_].col : 1u},
                 std::move(msg));
  }

  bool expectNumber(std::int64_t& out) {
    bool neg = false;
    if (pos_ < toks_.size() && toks_[pos_].text == "-") {
      neg = true;
      ++pos_;
    }
    if (pos_ >= toks_.size() || !toks_[pos_].isNumber) {
      error("expected a number");
      return false;
    }
    out = toks_[pos_].number;
    if (neg) out = -out;
    ++pos_;
    return true;
  }

  // --- instruction parsing -------------------------------------------------------

  bool parseInstruction(ParsedLine& line) {
    bool braced = false;
    if (toks_[pos_].text == "{") {
      braced = true;
      ++pos_;
    }
    std::vector<bool> fieldUsed(machine_.fields.size(), false);
    for (;;) {
      ParsedOp op;
      if (!parseOneOp(fieldUsed, op)) return false;
      fieldUsed[op.fieldIndex] = true;
      line.ops.push_back(std::move(op));
      if (braced && pos_ < toks_.size() && toks_[pos_].text == "|") {
        ++pos_;
        continue;
      }
      break;
    }
    if (braced) {
      if (pos_ >= toks_.size() || toks_[pos_].text != "}") {
        error("expected '}' or '|'");
        return false;
      }
      ++pos_;
    }

    // Fill the remaining fields with their nop and check constraints.
    std::vector<int> choice(machine_.fields.size(), -1);
    for (const auto& op : line.ops) choice[op.fieldIndex] = int(op.opIndex);
    for (std::size_t f = 0; f < machine_.fields.size(); ++f) {
      if (choice[f] >= 0) continue;
      int nop = machine_.fields[f].nopIndex;
      if (nop < 0) {
        error(cat("no operation given for field '", machine_.fields[f].name,
                  "' and the field has no nop"));
        return false;
      }
      ParsedOp op;
      op.fieldIndex = static_cast<unsigned>(f);
      op.opIndex = static_cast<unsigned>(nop);
      op.effSize = machine_.fields[f].operations[nop].costs.size;
      choice[f] = nop;
      line.ops.push_back(std::move(op));
    }
    if (const Constraint* c = machine_.firstViolatedConstraint(choice)) {
      error(cat("instruction violates constraint: never ", c->text));
      return false;
    }
    line.sizeWords = 1;
    for (const auto& op : line.ops)
      line.sizeWords = std::max(line.sizeWords, op.effSize);
    return true;
  }

  /// Parses one "mnemonic operands" group, resolving the mnemonic to a
  /// (field, operation) pair. A "FIELD.op" spelling pins the field; a bare
  /// mnemonic takes the first unused field defining it whose operand syntax
  /// matches.
  bool parseOneOp(const std::vector<bool>& fieldUsed, ParsedOp& out) {
    if (pos_ >= toks_.size() || !isIdentTok(toks_[pos_])) {
      error("expected an operation mnemonic");
      return false;
    }
    std::string mnemonic = toks_[pos_].text;
    std::string fieldName;
    if (auto dot = mnemonic.find('.'); dot != std::string::npos) {
      fieldName = mnemonic.substr(0, dot);
      mnemonic = mnemonic.substr(dot + 1);
    }
    ++pos_;

    std::vector<std::pair<unsigned, unsigned>> candidates;
    for (std::size_t f = 0; f < machine_.fields.size(); ++f) {
      const Field& field = machine_.fields[f];
      if (!fieldName.empty() && field.name != fieldName) continue;
      if (fieldUsed[f]) continue;
      for (std::size_t o = 0; o < field.operations.size(); ++o)
        if (field.operations[o].name == mnemonic)
          candidates.emplace_back(unsigned(f), unsigned(o));
    }
    if (candidates.empty()) {
      error(cat("unknown operation '",
                fieldName.empty() ? mnemonic : fieldName + "." + mnemonic,
                "' (or its field is already occupied)"));
      return false;
    }

    std::size_t savedPos = pos_;
    for (auto [f, o] : candidates) {
      pos_ = savedPos;
      const Operation& op = machine_.fields[f].operations[o];
      ParsedOp attempt;
      attempt.fieldIndex = f;
      attempt.opIndex = o;
      attempt.params.resize(op.params.size());
      attempt.effSize = op.costs.size;
      if (matchSyntax(op.syntax, op.params, attempt.params, attempt.effSize)) {
        out = std::move(attempt);
        return true;
      }
    }
    pos_ = savedPos;
    error(cat("operands do not match the syntax of '", mnemonic, "'"));
    return false;
  }

  /// Matches a syntax pattern at the current cursor; fills bindings and adds
  /// option size extras to effSize. On failure the cursor is left wherever
  /// the mismatch occurred (callers save/restore for backtracking).
  bool matchSyntax(const std::vector<SyntaxItem>& syntax,
                   const std::vector<Param>& params,
                   std::vector<ParamBinding>& bindings, unsigned& effSize) {
    for (const auto& item : syntax) {
      if (item.isLiteral) {
        if (!matchLiteral(item.literal)) return false;
      } else {
        if (!matchParam(params[item.paramIndex], bindings[item.paramIndex],
                        effSize))
          return false;
      }
    }
    return true;
  }

  /// Matches the lexemes of `literal` one asm token at a time ("]+", for
  /// example, is two tokens).
  bool matchLiteral(const std::string& literal) {
    std::vector<AsmTok> litToks;
    if (!lexAsmLine(literal, litToks, nullptr)) return false;
    for (const auto& lt : litToks) {
      if (pos_ >= toks_.size() || toks_[pos_].text != lt.text) return false;
      ++pos_;
    }
    return true;
  }

  bool matchParam(const Param& p, ParamBinding& out, unsigned& effSize) {
    if (p.kind == ParamKind::Token) {
      const TokenDef& tok = machine_.tokens[p.index];
      if (tok.kind == TokenKind::Enum) {
        if (pos_ >= toks_.size()) return false;
        auto v = tok.memberValue(toks_[pos_].text);
        if (!v) return false;
        ++pos_;
        out = ParamBinding{};
        out.value = BitVector(tok.width, *v);
        out.width = tok.width;
        return true;
      }
      // Immediate: number (optionally negated) or a label identifier.
      out = ParamBinding{};
      out.width = tok.width;
      out.isSigned = tok.isSigned;
      bool neg = false;
      std::size_t saved = pos_;
      if (pos_ < toks_.size() && toks_[pos_].text == "-") {
        neg = true;
        ++pos_;
      }
      if (pos_ < toks_.size() && toks_[pos_].isNumber) {
        std::int64_t v = toks_[pos_].number;
        if (neg) v = -v;
        ++pos_;
        out.fromLiteral = true;
        out.literal = v;
        out.value = BitVector::fromInt(tok.width, v);
        return true;
      }
      if (!neg && pos_ < toks_.size() && isIdentTok(toks_[pos_])) {
        out.isLabel = true;
        out.label = toks_[pos_].text;
        ++pos_;
        return true;
      }
      pos_ = saved;
      return false;
    }

    // Non-terminal: try every option and keep the LONGEST match, so that
    // "(A0)+" (post-increment) beats its prefix "(A0)" (indirect) no matter
    // how the options are ordered. Ties go to declaration order.
    const NonTerminal& nt = machine_.nonTerminals[p.index];
    std::size_t saved = pos_;
    bool found = false;
    std::size_t bestEnd = 0;
    ParamBinding best;
    unsigned bestExtra = 0;
    for (std::size_t o = 0; o < nt.options.size(); ++o) {
      pos_ = saved;
      const NtOption& opt = nt.options[o];
      ParamBinding attempt;
      attempt.ntOption = static_cast<int>(o);
      attempt.width = nt.returnWidth;
      attempt.sub.resize(opt.params.size());
      unsigned extra = 0;
      if (matchSyntax(opt.syntax, opt.params, attempt.sub, extra) &&
          (!found || pos_ > bestEnd)) {
        found = true;
        bestEnd = pos_;
        best = std::move(attempt);
        bestExtra = extra + opt.extraCosts.size;
      }
    }
    if (found) {
      pos_ = bestEnd;
      effSize += bestExtra;
      out = std::move(best);
      return true;
    }
    pos_ = saved;
    return false;
  }

  // --- pass 2: bit painting --------------------------------------------------------

  /// Resolves a binding to its final encoded BitVector (labels -> addresses,
  /// non-terminals -> assembled return values). Returns false on error.
  bool resolveBinding(const Param& p, ParamBinding& b, BitVector& out) {
    if (b.ntOption >= 0) {
      const NonTerminal& nt = machine_.nonTerminals[p.index];
      const NtOption& opt = nt.options[b.ntOption];
      const Signature& sig = sigs_.ntOption(p.index, b.ntOption);
      std::vector<BitVector> subValues;
      subValues.reserve(opt.params.size());
      for (std::size_t i = 0; i < opt.params.size(); ++i) {
        BitVector v;
        if (!resolveBinding(opt.params[i], b.sub[i], v)) return false;
        subValues.push_back(std::move(v));
      }
      BitVector ret(nt.returnWidth);
      sig.assemble(ret, subValues);
      out = std::move(ret);
      return true;
    }
    if (b.isLabel) {
      auto it = symbols_.find(b.label);
      if (it == symbols_.end()) {
        error(cat("undefined label '", b.label, "'"));
        return false;
      }
      std::uint64_t addr = it->second;
      if (b.width < 64 && (addr >> b.width) != 0) {
        error(cat("label '", b.label, "' address ", addr,
                  " does not fit in ", b.width, " bits"));
        return false;
      }
      out = BitVector(b.width, addr);
      return true;
    }
    if (b.fromLiteral) {
      // Range check: unsigned immediates take [0, 2^w), signed immediates
      // take [-2^(w-1), 2^w) (the permissive upper bound admits hex
      // bit patterns for signed fields).
      std::int64_t v = b.literal;
      std::int64_t lo = b.isSigned ? -(std::int64_t{1} << (b.width - 1)) : 0;
      bool tooBig = b.width < 63 && v >= (std::int64_t{1} << b.width);
      if (v < lo || tooBig) {
        error(cat("immediate ", v, " out of range for a ", b.width, "-bit ",
                  b.isSigned ? "signed" : "unsigned", " field"));
        return false;
      }
    }
    out = b.value;
    return true;
  }

  bool emitInstruction(ParsedLine& line, AssembledProgram& prog) {
    const unsigned wordWidth = machine_.wordWidth;
    BitVector image(line.sizeWords * wordWidth);
    BitVector painted(line.sizeWords * wordWidth);

    for (auto& pop : line.ops) {
      const Operation& op =
          machine_.fields[pop.fieldIndex].operations[pop.opIndex];
      const Signature& sig = sigs_.operation(pop.fieldIndex, pop.opIndex);

      std::vector<BitVector> paramValues;
      paramValues.reserve(op.params.size());
      for (std::size_t i = 0; i < op.params.size(); ++i) {
        BitVector v;
        if (!resolveBinding(op.params[i], pop.params[i], v)) return false;
        paramValues.push_back(std::move(v));
      }

      // Conflict check: two operations of the instruction must not paint the
      // same bit (the constraints section should have excluded such pairs).
      BitVector opMask = sig.careMask().or_(sig.paramMask());
      for (unsigned bit = 0; bit < opMask.width(); ++bit) {
        if (opMask.bit(bit) && painted.bit(bit)) {
          error(cat("operation '", op.name, "' sets instruction bit ", bit,
                    " already set by another field's operation; add a "
                    "constraint to forbid this combination"));
          return false;
        }
      }
      BitVector opImage(opMask.width());
      sig.assemble(opImage, paramValues);
      for (unsigned bit = 0; bit < opMask.width(); ++bit) {
        if (opMask.bit(bit)) {
          image.setBit(bit, opImage.bit(bit));
          painted.setBit(bit, true);
        }
      }
    }

    for (unsigned w = 0; w < line.sizeWords; ++w)
      prog.words[line.address + w] =
          image.slice((w + 1) * wordWidth - 1, w * wordWidth);
    return true;
  }
};

}  // namespace

Assembler::Assembler(const SignatureTable& sigs)
    : sigs_(&sigs), machine_(&sigs.machine()) {}

std::optional<AssembledProgram> Assembler::assemble(
    std::string_view source, DiagnosticEngine& diags) const {
  return Impl(*sigs_, diags).run(source);
}

}  // namespace isdl::sim
