// Execution statistics — the "performance measurements and utilization
// statistics" of the paper's exploration loop (Figure 1). Split out of
// xsim.h so the processing core can attribute stalls into the same struct
// the scheduler aggregates into (XTRACE instrumentation).

#ifndef ISDL_SIM_STATS_H
#define ISDL_SIM_STATS_H

#include <cstdint>
#include <vector>

namespace isdl::sim {

struct Stats {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t dataStallCycles = 0;
  std::uint64_t structStallCycles = 0;
  /// opCount[field][op] = number of times the operation issued.
  std::vector<std::vector<std::uint64_t>> opCount;
  /// Instructions in which the field executed something other than its nop.
  std::vector<std::uint64_t> fieldUtilization;
  /// RAW interlock cycles attributed to the storage whose in-flight write
  /// forced the stall (indexed by storage).
  std::vector<std::uint64_t> dataStallsByStorage;
  /// Structural-hazard cycles attributed to the busiest functional unit
  /// (indexed by field).
  std::vector<std::uint64_t> structStallsByField;
};

}  // namespace isdl::sim

#endif  // ISDL_SIM_STATS_H
