// XSIM: the generated instruction-level simulator (paper §3). Where the
// paper's GENSIM emits C source compiled against a common library, this
// implementation constructs the same six components (Figure 2) directly from
// the Machine model at run time:
//
//   user interface / file I/O  -> sim/cli.h (command-line + batch interface)
//   scheduler                  -> Xsim::run/step (sequencing, breakpoints,
//                                 traces, attached commands)
//   state monitors             -> sim::Monitors
//   state                      -> sim::State
//   disassembler               -> sim::Disassembler (off-line, at load time)
//   processing core            -> sim::ExecEngine
//
// A separate generator (sim/codegen.h) also emits a standalone compiled-code
// C++ simulator, the paper's §6.2 "future work" extension.

#ifndef ISDL_SIM_XSIM_H
#define ISDL_SIM_XSIM_H

#include <functional>
#include <map>
#include <memory>
#include <set>

#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/assembler.h"
#include "sim/core.h"
#include "sim/disasm.h"
#include "sim/signature.h"
#include "sim/state.h"
#include "sim/stats.h"
#include "sim/uop.h"

namespace isdl::sim {

/// Why a run() / step() returned.
enum class StopReason {
  Halted,              ///< executed the architecture's halt operation
  Breakpoint,          ///< about to execute a breakpointed address
  MaxCycles,           ///< cycle budget exhausted
  MaxInstructions,     ///< instruction budget exhausted (step())
  IllegalInstruction,  ///< PC points at an undecodable word
  PcOutOfRange,        ///< PC left the loaded program region
  RuntimeError,        ///< RTL trap (out-of-range access, write conflict...)
};

const char* stopReasonName(StopReason r);

struct RunResult {
  StopReason reason = StopReason::MaxCycles;
  std::string message;  ///< details for error reasons
};

class Xsim {
 public:
  /// Builds the simulator for a checked Machine. Throws IsdlError if the
  /// description's assembly function is not decodeable.
  explicit Xsim(const Machine& machine);

  const Machine& machine() const { return *machine_; }
  State& state() { return state_; }
  const State& state() const { return state_; }
  Monitors& monitors() { return state_.monitors(); }
  const SignatureTable& signatures() const { return sigs_; }
  const Disassembler& disassembler() const { return disasm_; }

  /// Loads a program image: copies words into instruction memory, applies
  /// .dm data-memory records, runs the off-line disassembler, resets PC.
  /// Returns false (with a message) if the program region contains no
  /// decodable instruction at address 0.
  bool loadProgram(const AssembledProgram& prog, std::string* error = nullptr);

  /// Resets state and statistics and reloads the last program.
  void reset();

  /// Runs until a stop condition; at most `maxCycles` total machine cycles.
  RunResult run(std::uint64_t maxCycles = ~std::uint64_t{0});
  /// Executes up to `n` instructions (breakpoints are ignored while
  /// stepping, like in every debugger).
  RunResult step(std::uint64_t n = 1);

  // --- breakpoints & attached commands -------------------------------------
  void addBreakpoint(std::uint64_t addr) { breakpoints_.insert(addr); }
  void removeBreakpoint(std::uint64_t addr) { breakpoints_.erase(addr); }
  const std::set<std::uint64_t>& breakpoints() const { return breakpoints_; }
  /// Attached command: invoked when a breakpoint is hit, before stopping.
  void setBreakpointHook(std::function<void(std::uint64_t)> hook) {
    breakpointHook_ = std::move(hook);
  }

  // --- execution address trace (paper §3.1) ---------------------------------
  /// Called with the address of every issued instruction; pass nullptr to
  /// disable. The paper's "written into a file" mode is a callback that
  /// writes lines (see Cli).
  void setTraceCallback(std::function<void(std::uint64_t)> cb) {
    trace_ = std::move(cb);
  }

  const Stats& stats() const { return stats_; }
  std::uint64_t cycle() const { return engine_.cycle(); }

  // --- XTRACE observability (paper Figure 1's measurement edge) -------------
  /// Starts recording issue/stall/write-back events into a bounded ring
  /// buffer (oldest events are overwritten when it fills). Zero per-cycle
  /// cost while disabled.
  void enableTrace(std::size_t capacity = 1 << 16);
  void disableTrace();
  const obs::TraceBuffer* trace() const { return traceBuf_.get(); }
  /// Exports the recorded trace as Chrome trace-event JSON (loadable in
  /// chrome://tracing / Perfetto); an empty trace if tracing is off.
  void writeChromeTrace(std::ostream& out) const;

  /// Enables per-storage access heatmaps: reads counted in the core, writes
  /// layered on the Monitors write observer. Cleared by loadProgram/reset.
  void enableProfile();
  void disableProfile();
  bool profiling() const { return profiling_; }

  /// Counter/timer registry; "sim/runs" and "sim/run_ns" are maintained by
  /// run() itself, callers may add their own (see obs/registry.h).
  obs::Registry& registry() { return registry_; }

  /// Field/op/storage names for obs exporters.
  obs::NameTable nameTable() const;
  /// The structured metrics report for everything since the last load:
  /// cycles, per-op issue counts, stall attribution, heatmaps, counters.
  obs::MetricsReport metricsReport() const;
  void writeMetricsJson(std::ostream& out) const;

  // --- execution engine selection -------------------------------------------
  /// Selects between the micro-op compiled core (default; sim/uop.h) and the
  /// tree-walking interpreter. The two are bit-identical by construction —
  /// the interpreter remains as the differential-testing oracle and as a
  /// fallback (`xsim --no-uop`).
  void setUopEnabled(bool enabled);
  bool uopEnabled() const { return uopEnabled_; }
  const uop::UopTable& uopTable() const { return *uops_; }

  /// Commits in-flight delayed writes (call before inspecting final state).
  void drainPipeline() { engine_.drain(); }

  const DecodedProgram& decodedProgram() const { return decoded_; }

 private:
  const Machine* machine_;
  DiagnosticEngine sigDiags_;
  SignatureTable sigs_;
  Disassembler disasm_;
  State state_;
  std::unique_ptr<uop::UopTable> uops_;
  ExecEngine engine_;
  bool uopEnabled_ = true;
  DecodedProgram decoded_;
  AssembledProgram lastProgram_;
  std::set<std::uint64_t> breakpoints_;
  std::function<void(std::uint64_t)> breakpointHook_;
  std::function<void(std::uint64_t)> trace_;
  Stats stats_;
  obs::Registry registry_;
  std::unique_ptr<obs::TraceBuffer> traceBuf_;
  obs::StorageHeatmap heat_;
  bool profiling_ = false;
  int haltField_ = -1;
  int haltOp_ = -1;
  bool warnedSelfModify_ = false;

  /// Executes exactly one instruction; returns nullopt to continue.
  std::optional<RunResult> executeOne();
  void initStats();
};

}  // namespace isdl::sim

#endif  // ISDL_SIM_XSIM_H
