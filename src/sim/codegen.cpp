#include "sim/codegen.h"

#include <sstream>

#include "support/strings.h"

namespace isdl::sim {

namespace {

using rtl::BinOp;
using rtl::Expr;
using rtl::ExprKind;
using rtl::Stmt;
using rtl::StmtKind;
using rtl::UnOp;

std::string maskLit(unsigned width) {
  if (width >= 64) return "0xffffffffffffffffull";
  return cat("0x", BitVector(64, (1ull << width) - 1).toHexString().substr(2),
             "ull");
}

/// Generates the C++ expression text for a width-checked RTL expression with
/// the decoded parameter values folded in as constants.
class ExprGen {
 public:
  ExprGen(const Machine& m, const std::vector<Param>& params,
          const std::vector<DecodedParam>& dparams)
      : m_(m), params_(&params), dparams_(&dparams) {}

  std::string gen(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::Const:
        return cat("0x", e.constant.toHexString().substr(2), "ull");

      case ExprKind::Param: {
        const Param& p = (*params_)[e.paramIndex];
        const DecodedParam& dp = (*dparams_)[e.paramIndex];
        if (p.kind == ParamKind::Token)
          return cat("0x", dp.encoded.toHexString().substr(2), "ull");
        // Non-terminal: inline the selected option's value expression.
        const NtOption& opt =
            m_.nonTerminals[p.index].options[dp.ntOption];
        ExprGen sub(m_, opt.params, dp.sub);
        return sub.gen(*opt.value);
      }

      case ExprKind::Read:
        return cat("s", e.storageIndex, "[0]");

      case ExprKind::ReadElem: {
        const StorageDef& st = m_.storages[e.storageIndex];
        return cat("s", e.storageIndex, "[(", gen(*e.operands[0]), ") % ",
                   st.depth, "ull]");
      }

      case ExprKind::Slice:
        return cat("(((", gen(*e.operands[0]), ") >> ", e.sliceLo, ") & ",
                   maskLit(e.width), ")");

      case ExprKind::Unary: {
        std::string a = gen(*e.operands[0]);
        switch (e.unOp) {
          case UnOp::LogNot: return cat("(uint64_t)((", a, ") == 0)");
          case UnOp::BitNot:
            return cat("((~(", a, ")) & ", maskLit(e.width), ")");
          case UnOp::Neg:
            return cat("((0 - (", a, ")) & ", maskLit(e.width), ")");
          case UnOp::RedAnd:
            return cat("(uint64_t)((", a, ") == ",
                       maskLit(e.operands[0]->width), ")");
          case UnOp::RedOr: return cat("(uint64_t)((", a, ") != 0)");
          case UnOp::RedXor:
            return cat("((uint64_t)__builtin_popcountll(", a, ") & 1)");
        }
        return "0";
      }

      case ExprKind::Binary:
        return genBinary(e);

      case ExprKind::Ternary:
        return cat("((", gen(*e.operands[0]), ") ? (", gen(*e.operands[1]),
                   ") : (", gen(*e.operands[2]), "))");

      case ExprKind::ZExt:
        return gen(*e.operands[0]);
      case ExprKind::SExt:
        return cat("(SE(", gen(*e.operands[0]), ", ",
                   e.operands[0]->width, ") & ", maskLit(e.width), ")");
      case ExprKind::Trunc:
        return cat("((", gen(*e.operands[0]), ") & ", maskLit(e.width), ")");

      case ExprKind::Concat: {
        // Most-significant operand first.
        std::string out = cat("(", gen(*e.operands[0]), ")");
        for (std::size_t i = 1; i < e.operands.size(); ++i) {
          out = cat("(((", out, ") << ", e.operands[i]->width, ") | (",
                    gen(*e.operands[i]), "))");
        }
        return out;
      }

      case ExprKind::Carry: {
        unsigned w = e.operands[0]->width;
        if (w >= 64)
          return cat("(uint64_t)(((", gen(*e.operands[0]), ") + (",
                     gen(*e.operands[1]), ")) < (", gen(*e.operands[0]),
                     "))");
        return cat("(uint64_t)((((", gen(*e.operands[0]), ") + (",
                   gen(*e.operands[1]), ")) >> ", w, ") & 1)");
      }
      case ExprKind::Overflow: {
        unsigned w = e.operands[0]->width;
        return cat("OVF(", gen(*e.operands[0]), ", ", gen(*e.operands[1]),
                   ", ", w, ")");
      }
      case ExprKind::Borrow:
        return cat("(uint64_t)((", gen(*e.operands[0]), ") < (",
                   gen(*e.operands[1]), "))");

      case ExprKind::IToF:
        return e.extWidth == 32
                   ? cat("F2B(float(SE(", gen(*e.operands[0]), ", ",
                         e.operands[0]->width, ")))")
                   : cat("D2B(double(SE(", gen(*e.operands[0]), ", ",
                         e.operands[0]->width, ")))");
      case ExprKind::FToI:
        return cat("FTOI(", gen(*e.operands[0]), ", ",
                   e.operands[0]->width, ", ", e.extWidth, ")");
    }
    return "0";
  }

 private:
  const Machine& m_;
  const std::vector<Param>* params_;
  const std::vector<DecodedParam>* dparams_;

  std::string genBinary(const Expr& e) const {
    std::string a = gen(*e.operands[0]);
    std::string b = gen(*e.operands[1]);
    unsigned w = e.operands[0]->width;
    std::string mask = maskLit(e.width);
    auto wrap = [&](const std::string& expr) {
      return cat("((", expr, ") & ", mask, ")");
    };
    auto boolean = [&](const std::string& expr) {
      return cat("(uint64_t)(", expr, ")");
    };
    auto se = [&](const std::string& x) { return cat("SE(", x, ", ", w, ")"); };
    switch (e.binOp) {
      case BinOp::Add: return wrap(cat("(", a, ") + (", b, ")"));
      case BinOp::Sub: return wrap(cat("(", a, ") - (", b, ")"));
      case BinOp::Mul: return wrap(cat("(", a, ") * (", b, ")"));
      case BinOp::UDiv:
        return wrap(cat("(", b, ") == 0 ? ", maskLit(w), " : (", a, ") / (",
                        b, ")"));
      case BinOp::URem:
        return wrap(cat("(", b, ") == 0 ? (", a, ") : (", a, ") % (", b,
                        ")"));
      case BinOp::SDiv:
        return wrap(cat("(", b, ") == 0 ? ", maskLit(w),
                        " : (uint64_t)(", se(a), " / ", se(b), ")"));
      case BinOp::SRem:
        return wrap(cat("(", b, ") == 0 ? (", a, ") : (uint64_t)(", se(a),
                        " % ", se(b), ")"));
      case BinOp::And: return cat("((", a, ") & (", b, "))");
      case BinOp::Or: return cat("((", a, ") | (", b, "))");
      case BinOp::Xor: return cat("((", a, ") ^ (", b, "))");
      case BinOp::Shl:
        return wrap(cat("(", b, ") >= ", w, " ? 0 : (", a, ") << (", b, ")"));
      case BinOp::LShr:
        return cat("((", b, ") >= ", w, " ? 0 : (", a, ") >> (", b, "))");
      case BinOp::AShr:
        return wrap(cat("(", b, ") >= ", w, " ? (uint64_t)(", se(a),
                        " < 0 ? -1 : 0) : (uint64_t)(", se(a), " >> (", b,
                        "))"));
      case BinOp::Eq: return boolean(cat("(", a, ") == (", b, ")"));
      case BinOp::Ne: return boolean(cat("(", a, ") != (", b, ")"));
      case BinOp::ULt: return boolean(cat("(", a, ") < (", b, ")"));
      case BinOp::ULe: return boolean(cat("(", a, ") <= (", b, ")"));
      case BinOp::UGt: return boolean(cat("(", a, ") > (", b, ")"));
      case BinOp::UGe: return boolean(cat("(", a, ") >= (", b, ")"));
      case BinOp::SLt: return boolean(cat(se(a), " < ", se(b)));
      case BinOp::SLe: return boolean(cat(se(a), " <= ", se(b)));
      case BinOp::SGt: return boolean(cat(se(a), " > ", se(b)));
      case BinOp::SGe: return boolean(cat(se(a), " >= ", se(b)));
      case BinOp::LogAnd:
        return boolean(cat("(", a, ") != 0 && (", b, ") != 0"));
      case BinOp::LogOr:
        return boolean(cat("(", a, ") != 0 || (", b, ") != 0"));
      case BinOp::FAdd: return fpOp("FADD", a, b, w);
      case BinOp::FSub: return fpOp("FSUB", a, b, w);
      case BinOp::FMul: return fpOp("FMUL", a, b, w);
      case BinOp::FDiv: return fpOp("FDIV", a, b, w);
      case BinOp::FEq: return fpCmp("==", a, b, w);
      case BinOp::FLt: return fpCmp("<", a, b, w);
      case BinOp::FLe: return fpCmp("<=", a, b, w);
    }
    return "0";
  }

  static std::string fpOp(const char* name, const std::string& a,
                          const std::string& b, unsigned w) {
    return cat(name, w, "(", a, ", ", b, ")");
  }
  static std::string fpCmp(const char* op, const std::string& a,
                           const std::string& b, unsigned w) {
    return w == 32 ? cat("(uint64_t)(B2F(", a, ") ", op, " B2F(", b, "))")
                   : cat("(uint64_t)(B2D(", a, ") ", op, " B2D(", b, "))");
  }
};

/// Generates the statement bodies of one instruction with two-phase
/// semantics: collectOp() evaluates RHS values / guards / addresses into
/// temporaries (reads see the pre-phase state), commit() then performs the
/// assignments. Actions of all fields form one phase; side effects form a
/// second one that observes the committed action results.
class InstGen {
 public:
  InstGen(const Machine& m, std::ostringstream& os) : m_(m), os_(os) {}

  void collectOp(const std::vector<rtl::StmtPtr>& stmts,
                 const std::vector<Param>& params,
                 const std::vector<DecodedParam>& dparams) {
    ExprGen eg(m_, params, dparams);
    collect(stmts, params, dparams, eg, "");
  }

  void commit() {
    for (const auto& wr : writes_) {
      std::string assign;
      if (wr.hasSlice) {
        std::uint64_t keep = ~0ull;
        for (unsigned b = wr.sliceLo; b <= wr.sliceHi; ++b)
          keep &= ~(1ull << b);
        assign = cat(wr.target, " = ((", wr.target, " & 0x",
                     BitVector(64, keep).toHexString().substr(2), "ull) | (",
                     wr.valueVar, " << ", wr.sliceLo, "));");
      } else {
        assign = cat(wr.target, " = ", wr.valueVar, ";");
      }
      if (wr.isPc) assign += " pcWritten = true;";
      if (wr.guard.empty())
        os_ << "      " << assign << "\n";
      else
        os_ << "      if (" << wr.guard << ") { " << assign << " }\n";
    }
    writes_.clear();
  }

 private:
  struct Write {
    std::string guard;   // C++ condition or empty
    std::string target;  // assignable lvalue text
    unsigned sliceHi = 0, sliceLo = 0;
    bool hasSlice = false;
    std::string valueVar;
    bool isPc = false;
  };

  const Machine& m_;
  std::ostringstream& os_;
  unsigned tmp_ = 0;
  std::vector<Write> writes_;

  void collect(const std::vector<rtl::StmtPtr>& stmts,
               const std::vector<Param>& params,
               const std::vector<DecodedParam>& dparams, const ExprGen& eg,
               const std::string& guard) {
    for (const auto& stmt : stmts) {
      switch (stmt->kind) {
        case StmtKind::Assign: {
          Write wr;
          wr.guard = guard;
          resolveTarget(stmt->dest, params, dparams, eg, wr);
          std::string v = cat("v", tmp_++);
          os_ << "      uint64_t " << v << " = " << eg.gen(*stmt->value)
              << ";\n";
          wr.valueVar = v;
          writes_.push_back(std::move(wr));
          break;
        }
        case StmtKind::If: {
          std::string c = cat("c", tmp_++);
          os_ << "      uint64_t " << c << " = " << eg.gen(*stmt->cond)
              << ";\n";
          std::string thenGuard =
              guard.empty() ? cat("(", c, " != 0)")
                            : cat(guard, " && (", c, " != 0)");
          std::string elseGuard =
              guard.empty() ? cat("(", c, " == 0)")
                            : cat(guard, " && (", c, " == 0)");
          collect(stmt->thenStmts, params, dparams, eg, thenGuard);
          collect(stmt->elseStmts, params, dparams, eg, elseGuard);
          break;
        }
      }
    }
  }

  void resolveTarget(const rtl::Lvalue& lv, const std::vector<Param>& params,
                     const std::vector<DecodedParam>& dparams,
                     const ExprGen& eg, Write& wr) {
    if (lv.isParam) {
      const Param& p = params[lv.paramIndex];
      const DecodedParam& dp = dparams[lv.paramIndex];
      const NtOption& opt = m_.nonTerminals[p.index].options[dp.ntOption];
      ExprGen sub(m_, opt.params, dp.sub);
      resolveTarget(*opt.lvalue, opt.params, dp.sub, sub, wr);
      return;
    }
    const StorageDef& st = m_.storages[lv.storageIndex];
    wr.isPc = static_cast<int>(lv.storageIndex) == m_.pcIndex;
    std::string index = "0";
    if (lv.index) {
      std::string a = cat("a", tmp_++);
      os_ << "      uint64_t " << a << " = (" << eg.gen(*lv.index) << ") % "
          << st.depth << "ull;\n";
      index = a;
    }
    wr.target = cat("s", lv.storageIndex, "[", index, "]");
    wr.hasSlice = lv.hasSlice;
    wr.sliceHi = lv.sliceHi;
    wr.sliceLo = lv.sliceLo;
  }
};

}  // namespace

std::string generateCompiledSim(const Machine& m, const SignatureTable& sigs,
                                const AssembledProgram& prog,
                                const CodegenOptions& options) {
  for (const auto& st : m.storages) {
    if (st.width > 64 && st.kind != StorageKind::InstructionMemory)
      throw IsdlError(cat("compiled-code simulation does not support ",
                          st.width, "-bit storage '", st.name, "'"));
  }

  Disassembler disasm(sigs);
  DecodedProgram decoded = disasm.decodeProgram(prog.words,
                                                prog.words.size());

  // Halt operation.
  int haltField = -1, haltOp = -1;
  if (auto it = m.optionalInfo.find("halt_operation");
      it != m.optionalInfo.end()) {
    auto dot = it->second.find('.');
    int f = m.findField(it->second.substr(0, dot));
    if (f >= 0) {
      const Field& field = m.fields[f];
      for (std::size_t o = 0; o < field.operations.size(); ++o)
        if (field.operations[o].name == it->second.substr(dot + 1)) {
          haltField = f;
          haltOp = static_cast<int>(o);
        }
    }
  }

  std::ostringstream os;
  os << "// Compiled-code simulator generated by GENSIM for machine '"
     << m.name << "'.\n";
  os << "#include <cstdint>\n#include <cstdio>\n#include <cstring>\n";
  os << "#include <chrono>\n";
  os << "using uint64_t = std::uint64_t; using int64_t = std::int64_t;\n";
  os << R"(
static inline int64_t SE(uint64_t x, unsigned w) {
  if (w >= 64) return (int64_t)x;
  uint64_t m = 1ull << (w - 1);
  return (int64_t)((x ^ m) - m);
}
static inline uint64_t OVF(uint64_t a, uint64_t b, unsigned w) {
  uint64_t s = a + b, m = 1ull << (w - 1);
  return (uint64_t)(((~(a ^ b)) & (s ^ a) & m) != 0);
}
static inline float B2F(uint64_t x) { float f; std::uint32_t u = (std::uint32_t)x; std::memcpy(&f, &u, 4); return f; }
static inline double B2D(uint64_t x) { double d; std::memcpy(&d, &x, 8); return d; }
static inline uint64_t F2B(float f) { std::uint32_t u; std::memcpy(&u, &f, 4); return u; }
static inline uint64_t D2B(double d) { uint64_t u; std::memcpy(&u, &d, 8); return u; }
static inline uint64_t FADD32(uint64_t a, uint64_t b) { return F2B(B2F(a) + B2F(b)); }
static inline uint64_t FSUB32(uint64_t a, uint64_t b) { return F2B(B2F(a) - B2F(b)); }
static inline uint64_t FMUL32(uint64_t a, uint64_t b) { return F2B(B2F(a) * B2F(b)); }
static inline uint64_t FDIV32(uint64_t a, uint64_t b) { return F2B(B2F(a) / B2F(b)); }
static inline uint64_t FADD64(uint64_t a, uint64_t b) { return D2B(B2D(a) + B2D(b)); }
static inline uint64_t FSUB64(uint64_t a, uint64_t b) { return D2B(B2D(a) - B2D(b)); }
static inline uint64_t FMUL64(uint64_t a, uint64_t b) { return D2B(B2D(a) * B2D(b)); }
static inline uint64_t FDIV64(uint64_t a, uint64_t b) { return D2B(B2D(a) / B2D(b)); }
static inline uint64_t FTOI(uint64_t x, unsigned fw, unsigned iw) {
  double d = fw == 32 ? (double)B2F(x) : B2D(x);
  if (d != d) return 0;
  double lo = -(double)(1ull << (iw - 1));
  double hi = (double)(1ull << (iw - 1)) - 1.0;
  if (d < lo) d = lo;
  if (d > hi) d = hi;
  uint64_t m = iw >= 64 ? ~0ull : ((1ull << iw) - 1);
  return ((uint64_t)(int64_t)d) & m;
}
)";

  // State arrays (instruction memory is not needed at run time).
  for (std::size_t si = 0; si < m.storages.size(); ++si) {
    if (static_cast<int>(si) == m.imemIndex) continue;
    os << "static uint64_t s" << si << "[" << m.storages[si].depth
       << "];\n";
  }

  os << "\nint main() {\n";
  os << "  uint64_t cycles = 0, instructions = 0;\n";
  os << "  auto t0 = std::chrono::steady_clock::now();\n";
  os << "  for (uint64_t rep = 0; rep < " << options.repeats
     << "ull; ++rep) {\n";
  for (std::size_t si = 0; si < m.storages.size(); ++si) {
    if (static_cast<int>(si) == m.imemIndex) continue;
    os << "  std::memset(s" << si << ", 0, sizeof s" << si << ");\n";
  }
  // Data-memory init records.
  int dmIndex = -1;
  for (std::size_t si = 0; si < m.storages.size(); ++si)
    if (m.storages[si].kind == StorageKind::DataMemory)
      dmIndex = static_cast<int>(si);
  for (const auto& [addr, value] : prog.dataInit)
    os << "  s" << dmIndex << "[" << addr << "] = 0x"
       << value.toHexString().substr(2) << "ull;\n";

  os << "  uint64_t pc = 0;\n";
  os << "  bool halted = false;\n";
  os << "  while (!halted && cycles < " << options.maxCycles << "ull) {\n";
  os << "    bool pcWritten = false;\n";
  os << "    switch (pc) {\n";

  for (std::uint64_t addr = 0; addr < decoded.byAddress.size(); ++addr) {
    const DecodedInstruction& inst = decoded.byAddress[addr];
    if (inst.sizeWords == 0) continue;
    os << "    case " << addr << "ull: { // "
       << disasm.render(inst) << "\n";
    InstGen ig(m, os);
    bool isHalt = false;
    // All reads (actions and side effects) see the pre-cycle state; commits
    // happen afterwards, side-effect writes last (matching XSIM and the
    // hardware model).
    for (std::size_t f = 0; f < inst.ops.size(); ++f) {
      const Operation& op = m.fields[f].operations[inst.ops[f].opIndex];
      ig.collectOp(op.action, op.params, inst.ops[f].params);
      if (static_cast<int>(f) == haltField &&
          static_cast<int>(inst.ops[f].opIndex) == haltOp)
        isHalt = true;
    }
    for (std::size_t f = 0; f < inst.ops.size(); ++f) {
      const Operation& op = m.fields[f].operations[inst.ops[f].opIndex];
      ig.collectOp(op.sideEffects, op.params, inst.ops[f].params);
      for (std::size_t p = 0; p < op.params.size(); ++p) {
        if (op.params[p].kind != ParamKind::NonTerminal) continue;
        const DecodedParam& dp = inst.ops[f].params[p];
        const NtOption& opt =
            m.nonTerminals[op.params[p].index].options[dp.ntOption];
        ig.collectOp(opt.sideEffects, opt.params, dp.sub);
      }
    }
    ig.commit();
    os << "      cycles += " << inst.cycles << "; ++instructions;\n";
    os << "      if (!pcWritten) s" << m.pcIndex << "[0] = " << addr << " + "
       << inst.sizeWords << ";\n";
    os << "      pc = s" << m.pcIndex << "[0];\n";
    if (isHalt) os << "      halted = true;\n";
    os << "      break;\n    }\n";
  }
  os << "    default: std::printf(\"trap: illegal pc %llu\\n\", "
        "(unsigned long long)pc); return 2;\n";
  os << "    }\n  }\n";
  os << "  }\n";  // repeats
  os << "  auto dt = std::chrono::duration<double>("
        "std::chrono::steady_clock::now() - t0).count();\n";
  os << "  std::printf(\"cycles %llu\\n\", (unsigned long long)cycles);\n";
  os << "  std::printf(\"instructions %llu\\n\", (unsigned long long)"
        "instructions);\n";
  os << "  std::printf(\"seconds %.6f\\n\", dt);\n";
  for (std::size_t si = 0; si < m.storages.size(); ++si) {
    if (static_cast<int>(si) == m.imemIndex) continue;
    os << "  for (uint64_t e = 0; e < " << m.storages[si].depth
       << "; ++e) if (s" << si << "[e]) std::printf(\""
       << m.storages[si].name
       << " %llu %llx\\n\", (unsigned long long)e, (unsigned long long)s"
       << si << "[e]);\n";
  }
  os << "  return 0;\n}\n";
  return os.str();
}

}  // namespace isdl::sim
