// The retargetable assembler (the "ASM -> BIN" box of the paper's Figure 1).
// Parses VLIW assembly text against the Machine's operation/option syntax,
// applies the ISDL assembly function (bitfield assignments via signatures),
// enforces the constraints section, and emits an instruction-memory image.
//
// Source format (one instruction per line):
//
//   ; or // comment  ('#' is reserved for immediate-prefix syntax)
//   label:
//   { add R1, R2, R3 | mv R4, R5 }    ; one operation per field, '|' separated
//   addi R1, #7                        ; single op; other fields take their nop
//   EX.add R1, R2, R3                  ; field-qualified mnemonic
//   jmp loop                           ; labels usable as immediates
//   .org 16                            ; move the location counter
//   .word 0xDEADBEEF                   ; raw instruction word
//   .dm 5 1234                         ; data-memory initialisation record
//
// Assembly is two-pass: pass 1 chooses operations/options and computes
// instruction sizes (labels get word addresses), pass 2 resolves label
// references and paints bits.

#ifndef ISDL_SIM_ASSEMBLER_H
#define ISDL_SIM_ASSEMBLER_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/signature.h"
#include "support/diag.h"

namespace isdl::sim {

struct AssembledProgram {
  /// Instruction-memory image starting at word address 0.
  std::vector<BitVector> words;
  /// Label -> word address.
  std::map<std::string, std::uint64_t> symbols;
  /// Data-memory initialisation records from .dm directives.
  std::vector<std::pair<std::uint64_t, BitVector>> dataInit;
};

class Assembler {
 public:
  explicit Assembler(const SignatureTable& sigs);

  /// Assembles `source`; returns std::nullopt with diagnostics on error.
  std::optional<AssembledProgram> assemble(std::string_view source,
                                           DiagnosticEngine& diags) const;

 private:
  const SignatureTable* sigs_;
  const Machine* machine_;
};

}  // namespace isdl::sim

#endif  // ISDL_SIM_ASSEMBLER_H
