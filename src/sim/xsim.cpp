#include "sim/xsim.h"

#include "support/strings.h"

namespace isdl::sim {

const char* stopReasonName(StopReason r) {
  switch (r) {
    case StopReason::Halted: return "halted";
    case StopReason::Breakpoint: return "breakpoint";
    case StopReason::MaxCycles: return "max cycles";
    case StopReason::MaxInstructions: return "max instructions";
    case StopReason::IllegalInstruction: return "illegal instruction";
    case StopReason::PcOutOfRange: return "PC out of range";
    case StopReason::RuntimeError: return "runtime error";
  }
  return "?";
}

Xsim::Xsim(const Machine& machine)
    : machine_(&machine),
      sigs_(machine, sigDiags_),
      disasm_(sigs_),
      state_(machine),
      uops_(std::make_unique<uop::UopTable>(machine)),
      engine_(machine, state_) {
  engine_.setStatsSink(&stats_);
  engine_.setUopTable(uops_.get());
  if (!sigs_.valid())
    throw IsdlError("assembly function is not decodeable:\n" +
                    sigDiags_.dump());

  // Resolve the optional halt operation ("FIELD.op" in the optional
  // section). Architectures without one stop via cycle budgets.
  auto it = machine.optionalInfo.find("halt_operation");
  if (it != machine.optionalInfo.end()) {
    auto dot = it->second.find('.');
    if (dot != std::string::npos) {
      int f = machine.findField(it->second.substr(0, dot));
      if (f >= 0) {
        const Field& field = machine.fields[f];
        std::string opName = it->second.substr(dot + 1);
        for (std::size_t o = 0; o < field.operations.size(); ++o) {
          if (field.operations[o].name == opName) {
            haltField_ = f;
            haltOp_ = static_cast<int>(o);
          }
        }
      }
    }
    if (haltField_ < 0)
      throw IsdlError(cat("optional halt_operation '", it->second,
                          "' does not name a field.operation"));
  }

  initStats();
}

void Xsim::setUopEnabled(bool enabled) {
  uopEnabled_ = enabled;
  engine_.setUopTable(enabled ? uops_.get() : nullptr);
}

void Xsim::initStats() {
  stats_ = Stats{};
  stats_.opCount.clear();
  for (const auto& field : machine_->fields)
    stats_.opCount.emplace_back(field.operations.size(), 0);
  stats_.fieldUtilization.assign(machine_->fields.size(), 0);
  stats_.dataStallsByStorage.assign(machine_->storages.size(), 0);
  stats_.structStallsByField.assign(machine_->fields.size(), 0);
  if (traceBuf_) traceBuf_->clear();
  if (profiling_) heat_.clear();
}

bool Xsim::loadProgram(const AssembledProgram& prog, std::string* error) {
  lastProgram_ = prog;
  state_.reset();
  engine_.reset();
  initStats();
  warnedSelfModify_ = false;

  const unsigned imem = static_cast<unsigned>(machine_->imemIndex);
  if (prog.words.size() > state_.depth(imem)) {
    if (error)
      *error = cat("program (", prog.words.size(),
                   " words) does not fit in instruction memory (depth ",
                   state_.depth(imem), ")");
    return false;
  }
  for (std::size_t i = 0; i < prog.words.size(); ++i)
    state_.write(imem, i, prog.words[i], 0);

  // Data-memory initialisation records.
  int dmIndex = -1;
  for (std::size_t si = 0; si < machine_->storages.size(); ++si)
    if (machine_->storages[si].kind == StorageKind::DataMemory)
      dmIndex = static_cast<int>(si);
  for (const auto& [addr, value] : prog.dataInit) {
    if (dmIndex < 0) {
      if (error) *error = ".dm record but the machine has no data_memory";
      return false;
    }
    if (addr >= state_.depth(dmIndex)) {
      if (error) *error = cat(".dm address ", addr, " out of range");
      return false;
    }
    state_.write(static_cast<unsigned>(dmIndex), addr, value, 0);
  }

  // Off-line disassembly (paper §3.1): decode the whole program region now.
  std::vector<BitVector> image;
  image.reserve(prog.words.size());
  for (std::size_t i = 0; i < prog.words.size(); ++i)
    image.push_back(state_.read(imem, i));
  decoded_ = disasm_.decodeProgram(image, prog.words.size());

  state_.setPc(0, 0);
  if (!prog.words.empty() && !decoded_.hasInstructionAt(0)) {
    if (error) {
      std::string msg;
      disasm_.decodeAt(image, 0, &msg);
      *error = "no decodable instruction at address 0: " + msg;
    }
    return false;
  }
  return true;
}

void Xsim::reset() {
  // Restores state, statistics and memory images but keeps the off-line
  // disassembly: the program words are the ones decoded_ was built from, so
  // re-running the decoder (which dominates loadProgram) is pure waste.
  // Benchmarks and the exploration loop reset once per measured run.
  state_.reset();
  engine_.reset();
  initStats();
  warnedSelfModify_ = false;

  const unsigned imem = static_cast<unsigned>(machine_->imemIndex);
  for (std::size_t i = 0; i < lastProgram_.words.size(); ++i)
    state_.write(imem, i, lastProgram_.words[i], 0);
  int dmIndex = -1;
  for (std::size_t si = 0; si < machine_->storages.size(); ++si)
    if (machine_->storages[si].kind == StorageKind::DataMemory)
      dmIndex = static_cast<int>(si);
  for (const auto& [addr, value] : lastProgram_.dataInit)
    state_.write(static_cast<unsigned>(dmIndex), addr, value, 0);
  state_.setPc(0, 0);
}

std::optional<RunResult> Xsim::executeOne() {
  std::uint64_t addr = state_.pc();
  if (!decoded_.hasInstructionAt(addr)) {
    if (addr >= decoded_.byAddress.size())
      return RunResult{StopReason::PcOutOfRange,
                       cat("PC = ", addr, " is outside the loaded program (",
                           decoded_.byAddress.size(), " words)")};
    // Rebuild the message with a fresh decode attempt.
    const unsigned imem = static_cast<unsigned>(machine_->imemIndex);
    std::vector<BitVector> image;
    for (std::size_t i = 0; i < decoded_.byAddress.size(); ++i)
      image.push_back(state_.read(imem, i));
    std::string msg;
    disasm_.decodeAt(image, addr, &msg);
    return RunResult{StopReason::IllegalInstruction, msg};
  }

  const DecodedInstruction& inst = decoded_.byAddress[addr];
  if (trace_) trace_(addr);

  ExecEngine::IssueInfo info = engine_.issue(inst);
  if (!info.ok)
    return RunResult{StopReason::RuntimeError,
                     cat("at address ", addr, ": ", info.error)};

  stats_.instructions += 1;
  stats_.dataStallCycles += info.dataStallCycles;
  stats_.structStallCycles += info.structStallCycles;
  bool isHalt = false;
  for (std::size_t f = 0; f < inst.ops.size(); ++f) {
    stats_.opCount[f][inst.ops[f].opIndex] += 1;
    if (static_cast<int>(inst.ops[f].opIndex) != machine_->fields[f].nopIndex)
      stats_.fieldUtilization[f] += 1;
    if (static_cast<int>(f) == haltField_ &&
        static_cast<int>(inst.ops[f].opIndex) == haltOp_)
      isHalt = true;
  }
  stats_.cycles = engine_.cycle();

  if (!info.pcCommitted)
    state_.setPc(addr + inst.sizeWords, engine_.cycle());

  if (isHalt) return RunResult{StopReason::Halted, {}};
  return std::nullopt;
}

RunResult Xsim::run(std::uint64_t maxCycles) {
  ++registry_.counter("sim/runs");
  obs::ScopedTimer timer = registry_.time("sim/run_ns");
  bool first = true;
  for (;;) {
    if (engine_.cycle() >= maxCycles)
      return {StopReason::MaxCycles,
              cat("cycle budget of ", maxCycles, " exhausted")};
    std::uint64_t addr = state_.pc();
    if (!first && breakpoints_.count(addr)) {
      if (breakpointHook_) breakpointHook_(addr);
      return {StopReason::Breakpoint, cat("breakpoint at address ", addr)};
    }
    first = false;
    if (auto stop = executeOne()) return *stop;
  }
}

RunResult Xsim::step(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    if (auto stop = executeOne()) return *stop;
  }
  return {StopReason::MaxInstructions, {}};
}

// --- XTRACE observability ----------------------------------------------------

void Xsim::enableTrace(std::size_t capacity) {
  traceBuf_ = std::make_unique<obs::TraceBuffer>(capacity);
  engine_.setTrace(traceBuf_.get());
}

void Xsim::disableTrace() {
  engine_.setTrace(nullptr);
  traceBuf_.reset();
}

void Xsim::writeChromeTrace(std::ostream& out) const {
  if (traceBuf_) {
    obs::writeChromeTrace(out, *traceBuf_, nameTable());
  } else {
    obs::TraceBuffer empty(1);
    obs::writeChromeTrace(out, empty, nameTable());
  }
}

void Xsim::enableProfile() {
  if (profiling_) return;
  std::vector<std::uint64_t> depths;
  depths.reserve(machine_->storages.size());
  for (const auto& st : machine_->storages) depths.push_back(st.depth);
  heat_.configure(depths);
  engine_.setHeatmap(&heat_);
  // Write side rides the monitor hook: every value-changing commit of any
  // storage lands here (reads are counted inside the core).
  state_.monitors().setWriteObserver([this](const WriteEvent& ev) {
    heat_.countWrite(ev.storageIndex, ev.element);
  });
  profiling_ = true;
}

void Xsim::disableProfile() {
  if (!profiling_) return;
  engine_.setHeatmap(nullptr);
  state_.monitors().setWriteObserver(nullptr);
  profiling_ = false;
}

obs::NameTable Xsim::nameTable() const {
  obs::NameTable names;
  names.machine = machine_->name;
  for (const auto& field : machine_->fields) {
    names.fields.push_back(field.name);
    names.ops.emplace_back();
    for (const auto& op : field.operations) names.ops.back().push_back(op.name);
  }
  for (const auto& st : machine_->storages) names.storages.push_back(st.name);
  return names;
}

obs::MetricsReport Xsim::metricsReport() const {
  obs::MetricsReport r;
  r.arch = machine_->name;
  r.cycles = stats_.cycles;
  r.instructions = stats_.instructions;
  r.dataStallCycles = stats_.dataStallCycles;
  r.structStallCycles = stats_.structStallCycles;

  for (std::size_t f = 0; f < machine_->fields.size(); ++f) {
    const Field& field = machine_->fields[f];
    r.utilization.push_back({field.name, stats_.fieldUtilization[f]});
    for (std::size_t o = 0; o < field.operations.size(); ++o)
      if (stats_.opCount[f][o])
        r.opCounts.push_back(
            {field.name, field.operations[o].name, stats_.opCount[f][o]});
    if (stats_.structStallsByField[f])
      r.structStallsByField.push_back(
          {field.name, stats_.structStallsByField[f]});
  }
  for (std::size_t si = 0; si < machine_->storages.size(); ++si)
    if (stats_.dataStallsByStorage[si])
      r.dataStallsByProducer.push_back(
          {machine_->storages[si].name, stats_.dataStallsByStorage[si]});

  if (profiling_) {
    for (std::size_t si = 0; si < machine_->storages.size(); ++si) {
      bool any = false;
      for (std::uint64_t c : heat_.reads[si]) any = any || c;
      for (std::uint64_t c : heat_.writes[si]) any = any || c;
      if (!any) continue;
      r.heatmaps.push_back(
          {machine_->storages[si].name, heat_.reads[si], heat_.writes[si]});
    }
  }

  r.counters = registry_.snapshot();
  return r;
}

void Xsim::writeMetricsJson(std::ostream& out) const {
  metricsReport().writeJson(out);
}

}  // namespace isdl::sim
