// Micro-op compiler and dispatch loop. The compiler mirrors the
// interpreter's evaluation order exactly (sim/core.cpp: evalExpr,
// resolveLvalue-before-value, depth-first option side effects), so the two
// engines agree on every observable: final state, cycle counts, stall
// attribution, heatmap read counts, and which trap fires first.

#include "sim/uop.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <unordered_map>

#include "rtl/eval.h"
#include "sim/core.h"
#include "support/strings.h"

namespace isdl::sim::uop {

using rtl::EvalError;

namespace {

std::atomic<bool> gInjectAddFault{false};

}  // namespace

void setTestFaultInjection(bool enabled) {
  gInjectAddFault.store(enabled, std::memory_order_relaxed);
}
bool testFaultInjection() {
  return gInjectAddFault.load(std::memory_order_relaxed);
}

namespace {

/// During compilation constants are referenced as kConstTag | poolIndex;
/// a rewrite pass (UopTable ctor) renumbers everything once the shared pool
/// size is final: pool entries occupy registers [0, poolSize), locals follow.
constexpr std::uint32_t kConstTag = 0x80000000u;

/// Shared, deduplicated constant pool for every program of one UopTable.
/// The engine preloads it into the persistent scratch register file, so a
/// constant costs nothing at dispatch time — there is no "load const" uop.
struct ConstPool {
  std::unordered_map<BitVector, std::uint32_t> index;
  std::vector<BitVector> values;

  std::uint32_t ref(const BitVector& v) {
    auto [it, inserted] = index.try_emplace(v, std::uint32_t(values.size()));
    if (inserted) values.push_back(v);
    return kConstTag | it->second;
  }
};

/// Lowers one operation's statement lists into a Program. One compiler
/// instance per Program; register and lvalue-slot numbering is monotonic
/// (programs are small, reuse is not worth the bookkeeping).
class Compiler {
 public:
  Compiler(const Machine& m, const std::vector<bool>& ntHasSideEffects,
           ConstPool& pool, Program& p)
      : m_(m), ntHasSideEffects_(ntHasSideEffects), pool_(pool), p_(p) {}

  void compileStmts(const std::vector<rtl::StmtPtr>& stmts,
                    const std::vector<Param>& params) {
    for (const auto& stmt : stmts) compileStmt(*stmt, params);
  }

  /// Side effects contributed by selected non-terminal options, depth-first
  /// in parameter order — the interpreter's execOptionSideEffects.
  void compileOptionSideEffects(const std::vector<Param>& params) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      const Param& p = params[i];
      if (p.kind != ParamKind::NonTerminal) continue;
      if (!ntHasSideEffects_[p.index]) continue;  // prune effect-free operands
      const NonTerminal& nt = m_.nonTerminals[p.index];
      forEachOption(nt, std::uint32_t(i), [&](const NtOption& opt) {
        emit({.kind = Kind::PushFrame, .a = std::uint32_t(i)});
        compileStmts(opt.sideEffects, opt.params);
        compileOptionSideEffects(opt.params);
        emit({.kind = Kind::PopFrame});
        return true;  // fall through to the common join
      });
    }
  }

 private:
  std::uint32_t newReg() { return p_.numRegs++; }

  std::uint32_t emit(Uop u) {
    p_.code.push_back(u);
    return std::uint32_t(p_.code.size() - 1);
  }

  std::uint32_t here() const { return std::uint32_t(p_.code.size()); }

  std::uint32_t addTrap(std::string msg) {
    p_.traps.push_back(std::move(msg));
    return std::uint32_t(p_.traps.size() - 1);
  }

  /// Emits a BrOption over `nt`'s options for parameter `paramIndex`. `body`
  /// compiles one option's code; returning false means the branch ends in a
  /// trap and needs no jump to the join point. All non-trapping branches are
  /// patched to converge immediately after the last one.
  template <typename Body>
  void forEachOption(const NonTerminal& nt, std::uint32_t paramIndex,
                     Body&& body) {
    std::uint32_t tbl = std::uint32_t(p_.tables.size());
    p_.tables.emplace_back(nt.options.size(), 0);
    emit({.kind = Kind::BrOption, .a = paramIndex, .b = tbl});
    std::vector<std::uint32_t> joins;
    for (std::size_t o = 0; o < nt.options.size(); ++o) {
      p_.tables[tbl][o] = here();
      if (body(nt.options[o]))
        joins.push_back(emit({.kind = Kind::Jump}));
    }
    for (std::uint32_t j : joins) p_.code[j].a = here();
  }

  std::uint32_t compileExpr(const rtl::Expr& e,
                            const std::vector<Param>& params) {
    using rtl::ExprKind;
    switch (e.kind) {
      case ExprKind::Const:
        // No uop at all: the constant lives in a preloaded pool register.
        return pool_.ref(e.constant);
      case ExprKind::Param: {
        const Param& p = params[e.paramIndex];
        std::uint32_t r = newReg();
        if (p.kind == ParamKind::Token) {
          // hi carries the token's static bit width for the narrow-program
          // width analysis; the runtime value keeps its encoded width.
          emit({.kind = Kind::LoadParam,
                .hi = std::uint16_t(m_.tokens[p.index].width),
                .dst = r,
                .a = e.paramIndex});
          return r;
        }
        const NonTerminal& nt = m_.nonTerminals[p.index];
        forEachOption(nt, e.paramIndex, [&](const NtOption& opt) {
          if (!opt.value) {
            emit({.kind = Kind::Trap,
                  .a = addTrap(cat("non-terminal '", nt.name,
                                   "' option has no value but was read"))});
            return false;
          }
          emit({.kind = Kind::PushFrame, .a = e.paramIndex});
          std::uint32_t rr = compileExpr(*opt.value, opt.params);
          emit({.kind = Kind::Move, .dst = r, .a = rr});
          emit({.kind = Kind::PopFrame});
          return true;
        });
        return r;
      }
      case ExprKind::Read: {
        std::uint32_t r = newReg();
        emit({.kind = Kind::ReadStorage, .dst = r, .a = e.storageIndex});
        return r;
      }
      case ExprKind::ReadElem: {
        std::uint32_t idx = compileExpr(*e.operands[0], params);
        std::uint32_t r = newReg();
        emit({.kind = Kind::ReadElem, .dst = r, .a = e.storageIndex, .b = idx});
        return r;
      }
      case ExprKind::Slice: {
        std::uint32_t a = compileExpr(*e.operands[0], params);
        std::uint32_t r = newReg();
        emit({.kind = Kind::Slice,
              .hi = std::uint16_t(e.sliceHi),
              .lo = std::uint16_t(e.sliceLo),
              .dst = r,
              .a = a});
        return r;
      }
      case ExprKind::Unary: {
        std::uint32_t a = compileExpr(*e.operands[0], params);
        std::uint32_t r = newReg();
        emit({.kind = Kind::Unary,
              .op = std::uint8_t(e.unOp),
              .dst = r,
              .a = a});
        return r;
      }
      case ExprKind::Binary: {
        std::uint32_t a = compileExpr(*e.operands[0], params);
        std::uint32_t b = compileExpr(*e.operands[1], params);
        std::uint32_t r = newReg();
        rtl::BinOp op = e.binOp;
        if (op == rtl::BinOp::Add && testFaultInjection())
          op = rtl::BinOp::Sub;  // deliberate mis-lowering (see uop.h)
        emit({.kind = Kind::Binary,
              .op = std::uint8_t(op),
              .dst = r,
              .a = a,
              .b = b});
        return r;
      }
      case ExprKind::Ternary: {
        // Lazy branches, like the interpreter: the untaken side must not
        // evaluate (its reads and traps must not happen).
        std::uint32_t c = compileExpr(*e.operands[0], params);
        std::uint32_t r = newReg();
        std::uint32_t bz = emit({.kind = Kind::BranchIfZero, .a = c});
        std::uint32_t t = compileExpr(*e.operands[1], params);
        emit({.kind = Kind::Move, .dst = r, .a = t});
        std::uint32_t j = emit({.kind = Kind::Jump});
        p_.code[bz].b = here();
        std::uint32_t f = compileExpr(*e.operands[2], params);
        emit({.kind = Kind::Move, .dst = r, .a = f});
        p_.code[j].a = here();
        return r;
      }
      case ExprKind::ZExt:
      case ExprKind::SExt:
      case ExprKind::Trunc:
      case ExprKind::IToF:
      case ExprKind::FToI: {
        Kind k = e.kind == ExprKind::ZExt    ? Kind::ZExt
                 : e.kind == ExprKind::SExt  ? Kind::SExt
                 : e.kind == ExprKind::Trunc ? Kind::Trunc
                 : e.kind == ExprKind::IToF  ? Kind::IToF
                                             : Kind::FToI;
        std::uint32_t a = compileExpr(*e.operands[0], params);
        std::uint32_t r = newReg();
        emit({.kind = k, .hi = std::uint16_t(e.extWidth), .dst = r, .a = a});
        return r;
      }
      case ExprKind::Concat: {
        std::uint32_t acc = compileExpr(*e.operands[0], params);
        for (std::size_t i = 1; i < e.operands.size(); ++i) {
          std::uint32_t lo = compileExpr(*e.operands[i], params);
          std::uint32_t r = newReg();
          emit({.kind = Kind::Concat2, .dst = r, .a = acc, .b = lo});
          acc = r;
        }
        return acc;
      }
      case ExprKind::Carry:
      case ExprKind::Overflow:
      case ExprKind::Borrow: {
        Kind k = e.kind == ExprKind::Carry      ? Kind::Carry
                 : e.kind == ExprKind::Overflow ? Kind::Overflow
                                                : Kind::Borrow;
        std::uint32_t a = compileExpr(*e.operands[0], params);
        std::uint32_t b = compileExpr(*e.operands[1], params);
        std::uint32_t r = newReg();
        emit({.kind = k, .dst = r, .a = a, .b = b});
        return r;
      }
    }
    throw EvalError("bad expression kind");
  }

  void compileStmt(const rtl::Stmt& stmt, const std::vector<Param>& params) {
    switch (stmt.kind) {
      case rtl::StmtKind::Assign: {
        // Interpreter order: resolve the lvalue (index expressions and
        // option recursion included) before evaluating the value.
        std::uint32_t slot = p_.numLvSlots++;
        compileLvalue(stmt.dest, params, slot);
        std::uint32_t v = compileExpr(*stmt.value, params);
        emit({.kind = Kind::StageWrite, .dst = slot, .a = v});
        break;
      }
      case rtl::StmtKind::If: {
        std::uint32_t c = compileExpr(*stmt.cond, params);
        std::uint32_t bz = emit({.kind = Kind::BranchIfZero, .a = c});
        compileStmts(stmt.thenStmts, params);
        if (stmt.elseStmts.empty()) {
          p_.code[bz].b = here();
        } else {
          std::uint32_t j = emit({.kind = Kind::Jump});
          p_.code[bz].b = here();
          compileStmts(stmt.elseStmts, params);
          p_.code[j].a = here();
        }
        break;
      }
    }
  }

  void compileLvalue(const rtl::Lvalue& lv, const std::vector<Param>& params,
                     std::uint32_t slot) {
    if (lv.isParam) {
      const Param& p = params[lv.paramIndex];
      const NonTerminal& nt = m_.nonTerminals[p.index];
      forEachOption(nt, lv.paramIndex, [&](const NtOption& opt) {
        if (!opt.lvalue) {
          emit({.kind = Kind::Trap,
                .a = addTrap(cat("non-terminal '", nt.name,
                                 "' option has no lvalue but was written"))});
          return false;
        }
        emit({.kind = Kind::PushFrame, .a = lv.paramIndex});
        compileLvalue(*opt.lvalue, opt.params, slot);
        emit({.kind = Kind::PopFrame});
        return true;
      });
      return;
    }
    std::uint32_t elemReg = kNoReg;
    if (lv.index) elemReg = compileExpr(*lv.index, params);
    emit({.kind = Kind::SetLv,
          .flags = std::uint8_t(lv.hasSlice ? 1 : 0),
          .hi = std::uint16_t(lv.sliceHi),
          .lo = std::uint16_t(lv.sliceLo),
          .dst = slot,
          .a = lv.storageIndex,
          .b = elemReg});
  }

  const Machine& m_;
  const std::vector<bool>& ntHasSideEffects_;
  ConstPool& pool_;
  Program& p_;
};

/// Applies `fn` to every operand field of `u` that names a register (as
/// opposed to a storage/param/table index, jump target, or lvalue slot).
template <typename Fn>
void forEachRegOperand(Uop& u, Fn&& fn) {
  switch (u.kind) {
    case Kind::Move:
    case Kind::Slice:
    case Kind::Unary:
    case Kind::ZExt:
    case Kind::SExt:
    case Kind::Trunc:
    case Kind::IToF:
    case Kind::FToI:
      fn(u.dst);
      fn(u.a);
      break;
    case Kind::Binary:
    case Kind::Concat2:
    case Kind::Carry:
    case Kind::Overflow:
    case Kind::Borrow:
      fn(u.dst);
      fn(u.a);
      fn(u.b);
      break;
    case Kind::LoadParam:
    case Kind::ReadStorage:
      fn(u.dst);
      break;
    case Kind::ReadElem:
      fn(u.dst);
      fn(u.b);
      break;
    case Kind::BranchIfZero:
      fn(u.a);
      break;
    case Kind::SetLv:
      if (u.b != kNoReg) fn(u.b);  // dst is an lvalue slot, a is a storage
      break;
    case Kind::StageWrite:
      fn(u.a);  // dst is an lvalue slot
      break;
    case Kind::Jump:
    case Kind::BrOption:
    case Kind::PushFrame:
    case Kind::PopFrame:
    case Kind::Trap:
      break;
  }
}

/// Static width analysis: an upper bound on every register's width, walked
/// in code order (the compiler only emits forward jumps, so every use is
/// textually preceded by at least one definition; registers written on
/// several paths merge with max). Returns false when any register, storage
/// read, or parameter can exceed 64 bits — such programs stay on the wide
/// BitVector dispatch loop.
bool isNarrow(const Machine& m, const std::vector<BitVector>& pool,
              const Program& p) {
  using rtl::BinOp;
  using rtl::UnOp;
  std::vector<std::uint32_t> bound(p.numRegs, 0);
  for (std::size_t i = 0; i < pool.size(); ++i) bound[i] = pool[i].width();
  bool ok = true;
  auto def = [&](std::uint32_t r, std::uint32_t w) {
    if (w > bound[r]) bound[r] = w;
    if (w > 64) ok = false;
  };
  for (const Uop& u : p.code) {
    switch (u.kind) {
      case Kind::Move: def(u.dst, bound[u.a]); break;
      case Kind::LoadParam: def(u.dst, u.hi); break;
      case Kind::ReadStorage:
      case Kind::ReadElem: def(u.dst, m.storages[u.a].width); break;
      case Kind::Slice: def(u.dst, u.hi - u.lo + 1); break;
      case Kind::Unary: {
        UnOp op = UnOp(u.op);
        bool bit = op == UnOp::LogNot || op == UnOp::RedAnd ||
                   op == UnOp::RedOr || op == UnOp::RedXor;
        def(u.dst, bit ? 1 : bound[u.a]);
        break;
      }
      case Kind::Binary: {
        BinOp op = BinOp(u.op);
        if (rtl::isComparison(op) || op == BinOp::LogAnd ||
            op == BinOp::LogOr) {
          def(u.dst, 1);
        } else if (op == BinOp::Shl || op == BinOp::LShr ||
                   op == BinOp::AShr) {
          def(u.dst, bound[u.a]);
        } else {
          def(u.dst, std::max(bound[u.a], bound[u.b]));
        }
        break;
      }
      case Kind::Concat2: def(u.dst, bound[u.a] + bound[u.b]); break;
      case Kind::ZExt:
      case Kind::SExt:
      case Kind::Trunc:
      case Kind::IToF:
      case Kind::FToI: def(u.dst, u.hi); break;
      case Kind::Carry:
      case Kind::Overflow:
      case Kind::Borrow: def(u.dst, 1); break;
      case Kind::Jump:
      case Kind::BranchIfZero:
      case Kind::BrOption:
      case Kind::PushFrame:
      case Kind::PopFrame:
      case Kind::SetLv:
      case Kind::StageWrite:
      case Kind::Trap: break;
    }
    if (!ok) return false;
  }
  return true;
}

/// ntHasSideEffects[i]: does non-terminal i contribute phase-B statements
/// through any option, transitively? Used to prune BrOption/PushFrame
/// scaffolding for the (common) effect-free operands.
std::vector<bool> computeNtSideEffects(const Machine& m) {
  std::vector<bool> has(m.nonTerminals.size(), false);
  // Fixed point over the (acyclic in practice, but don't assume) nt graph.
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < m.nonTerminals.size(); ++i) {
      if (has[i]) continue;
      for (const NtOption& opt : m.nonTerminals[i].options) {
        bool h = !opt.sideEffects.empty();
        for (const Param& p : opt.params)
          if (p.kind == ParamKind::NonTerminal && has[p.index]) h = true;
        if (h) {
          has[i] = true;
          changed = true;
          break;
        }
      }
    }
  }
  return has;
}

}  // namespace

UopTable::UopTable(const Machine& machine) {
  ConstPool pool;
  std::vector<bool> ntSide = computeNtSideEffects(machine);
  byFieldOp_.resize(machine.fields.size());
  for (std::size_t f = 0; f < machine.fields.size(); ++f) {
    const Field& field = machine.fields[f];
    byFieldOp_[f].resize(field.operations.size());
    for (std::size_t o = 0; o < field.operations.size(); ++o) {
      const Operation& op = field.operations[o];
      OpPrograms& progs = byFieldOp_[f][o];
      Compiler(machine, ntSide, pool, progs.action)
          .compileStmts(op.action, op.params);
      Compiler sfx(machine, ntSide, pool, progs.sideEffects);
      sfx.compileStmts(op.sideEffects, op.params);
      sfx.compileOptionSideEffects(op.params);
    }
  }

  // The pool size is now final: renumber so pool constants occupy registers
  // [0, poolSize) of the shared scratch file and each program's locals
  // follow. Tagged const references resolve to their pool register.
  constPool_ = std::move(pool.values);
  const std::uint32_t poolSize = std::uint32_t(constPool_.size());
  for (auto& row : byFieldOp_) {
    for (OpPrograms& progs : row) {
      for (Program* p : {&progs.action, &progs.sideEffects}) {
        for (Uop& u : p->code)
          forEachRegOperand(u, [&](std::uint32_t& r) {
            r = (r & kConstTag) ? (r & ~kConstTag) : r + poolSize;
          });
        p->numRegs += poolSize;
        p->narrow = isNarrow(machine, constPool_, *p);
      }
    }
  }
}

std::uint64_t UopTable::totalUops() const {
  std::uint64_t n = 0;
  for (const auto& row : byFieldOp_)
    for (const OpPrograms& p : row)
      n += p.action.code.size() + p.sideEffects.code.size();
  return n;
}

std::string toString(const Program& p) {
  static constexpr const char* kNames[] = {
      "move",  "ldparam", "read", "readelem", "slice", "unary", "binary",
      "cat2",  "zext",    "sext", "trunc",    "itof",  "ftoi",  "carry",
      "ovf",   "borrow",  "jump", "brz",      "bropt", "push",  "pop",
      "setlv", "stage",   "trap"};
  std::string out;
  for (std::size_t i = 0; i < p.code.size(); ++i) {
    const Uop& u = p.code[i];
    out += cat(i, ": ", kNames[std::size_t(u.kind)]);
    switch (u.kind) {
      case Kind::Unary: out += cat(" ", rtl::unOpName(rtl::UnOp(u.op))); break;
      case Kind::Binary:
        out += cat(" ", rtl::binOpName(rtl::BinOp(u.op)));
        break;
      case Kind::Trap: out += cat(" \"", p.traps[u.a], "\""); break;
      default: break;
    }
    out += cat(" dst=", u.dst, " a=", u.a == kNoReg ? -1 : std::int64_t(u.a),
               " b=", u.b, " hi=", u.hi, " lo=", u.lo, "\n");
  }
  return out;
}

}  // namespace isdl::sim::uop

// --- dispatch loop -----------------------------------------------------------

namespace isdl::sim {

void ExecEngine::setUopTable(const uop::UopTable* table) {
  uops_ = table;
  // Preload the shared constant pool into the low scratch registers (both
  // register files). They are never written by programs, so this survives
  // every issue; growth in execProgram (resize) only appends above them.
  // Pool constants wider than 64 bits get a placeholder narrow entry: only
  // non-narrow programs can reference them, and those run on the wide loop.
  scratch_.clear();
  nscratch_.clear();
  if (table) {
    scratch_.assign(table->constPool().begin(), table->constPool().end());
    nscratch_.reserve(scratch_.size());
    for (const BitVector& c : scratch_)
      nscratch_.push_back(
          {c.width() <= 64 ? c.toUint64() : 0, c.width()});
  }
}

/// Executes one compiled program against the engine's state. Storage reads
/// and staged writes go through the same readLoc / stageWrite as the
/// interpreter, so hazard probing, forwarding, stall attribution, write
/// conflicts, and XTRACE hooks behave identically in both engines.
void ExecEngine::execProgram(const uop::Program& prog,
                             const std::vector<DecodedParam>& dparams,
                             unsigned latency, unsigned stallCost) {
  using uop::Kind;
  if (scratch_.size() < prog.numRegs) scratch_.resize(prog.numRegs);
  if (lvSlots_.size() < prog.numLvSlots) lvSlots_.resize(prog.numLvSlots);
  frames_.clear();
  frames_.push_back(&dparams);

  BitVector* regs = scratch_.data();
  const uop::Uop* code = prog.code.data();
  const std::uint32_t n = std::uint32_t(prog.code.size());
  for (std::uint32_t pc = 0; pc < n;) {
    const uop::Uop& u = code[pc];
    switch (u.kind) {
      case Kind::Move: regs[u.dst] = regs[u.a]; ++pc; break;
      case Kind::LoadParam:
        regs[u.dst] = (*frames_.back())[u.a].encoded;
        ++pc;
        break;
      case Kind::ReadStorage: {
        BitVector tmp;
        regs[u.dst] = readLocRef(u.a, 0, tmp);
        ++pc;
        break;
      }
      case Kind::ReadElem: {
        BitVector tmp;
        regs[u.dst] = readLocRef(u.a, regs[u.b].toUint64(), tmp);
        ++pc;
        break;
      }
      case Kind::Slice: regs[u.dst] = regs[u.a].slice(u.hi, u.lo); ++pc; break;
      case Kind::Unary:
        regs[u.dst] = rtl::applyUnOp(rtl::UnOp(u.op), regs[u.a]);
        ++pc;
        break;
      case Kind::Binary:
        regs[u.dst] = rtl::applyBinOp(rtl::BinOp(u.op), regs[u.a], regs[u.b]);
        ++pc;
        break;
      case Kind::Concat2:
        regs[u.dst] = regs[u.a].concat(regs[u.b]);
        ++pc;
        break;
      case Kind::ZExt: regs[u.dst] = regs[u.a].zext(u.hi); ++pc; break;
      case Kind::SExt: regs[u.dst] = regs[u.a].sext(u.hi); ++pc; break;
      case Kind::Trunc: regs[u.dst] = regs[u.a].trunc(u.hi); ++pc; break;
      case Kind::IToF:
        regs[u.dst] = rtl::intToFloat(regs[u.a], u.hi);
        ++pc;
        break;
      case Kind::FToI:
        regs[u.dst] = rtl::floatToInt(regs[u.a], u.hi);
        ++pc;
        break;
      case Kind::Carry:
        regs[u.dst] =
            BitVector(1, regs[u.a].addWithCarry(regs[u.b], false).carryOut);
        ++pc;
        break;
      case Kind::Overflow:
        regs[u.dst] =
            BitVector(1, regs[u.a].addWithCarry(regs[u.b], false).overflow);
        ++pc;
        break;
      case Kind::Borrow:
        // Borrow out of a-b == NOT carry out of a + ~b + 1.
        regs[u.dst] = BitVector(
            1, !regs[u.a].addWithCarry(regs[u.b].not_(), true).carryOut);
        ++pc;
        break;
      case Kind::Jump: pc = u.a; break;
      case Kind::BranchIfZero: pc = regs[u.a].isZero() ? u.b : pc + 1; break;
      case Kind::BrOption:
        pc = prog.tables[u.b]
                       [std::size_t((*frames_.back())[u.a].ntOption)];
        break;
      case Kind::PushFrame:
        frames_.push_back(&(*frames_.back())[u.a].sub);
        ++pc;
        break;
      case Kind::PopFrame: frames_.pop_back(); ++pc; break;
      case Kind::SetLv: {
        ResolvedLv& lv = lvSlots_[u.dst];
        lv.si = u.a;
        lv.elem = u.b == uop::kNoReg ? 0 : regs[u.b].toUint64();
        if (lv.elem >= machine_.storages[u.a].depth)
          throw rtl::EvalError(cat("write to ", machine_.storages[u.a].name,
                                   "[", lv.elem, "] is out of range"));
        lv.hasSlice = (u.flags & 1) != 0;
        lv.hi = u.hi;
        lv.lo = u.lo;
        ++pc;
        break;
      }
      case Kind::StageWrite:
        stageWrite(lvSlots_[u.dst], regs[u.a], latency, stallCost);
        ++pc;
        break;
      case Kind::Trap: throw rtl::EvalError(prog.traps[u.a]);
    }
  }
}

// --- narrow dispatch loop ----------------------------------------------------
//
// Same program format, but registers are (masked uint64_t, width) pairs: no
// BitVector construction, assignment, or destruction anywhere in the loop
// except at the architectural boundary (storage reads and staged writes).
// Every helper replicates the corresponding BitVector / rtl::applyBinOp
// semantics exactly — division by zero yields all-ones (quotient) or the
// dividend (remainder), shifts saturate at the operand width, float ops
// round-trip through IEEE bits, float->int clamps like the DSP converters.
// The differential suites (uop_test, fuzz_diff_test) pin this equivalence.

namespace {

using NReg = ExecEngine::NarrowReg;

inline std::uint64_t maskOf(std::uint32_t w) {
  return w >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << w) - 1;
}

inline std::int64_t signedOf(std::uint64_t v, std::uint32_t w) {
  if (w >= 64) return std::int64_t(v);
  return std::int64_t(v << (64 - w)) >> (64 - w);
}

inline double narrowBitsToDouble(std::uint64_t v, std::uint32_t w) {
  if (w == 32) return double(std::bit_cast<float>(std::uint32_t(v)));
  return std::bit_cast<double>(v);
}

inline std::uint64_t doubleToNarrowBits(double d, std::uint32_t w) {
  if (w == 32) return std::bit_cast<std::uint32_t>(float(d));
  return std::bit_cast<std::uint64_t>(d);
}

NReg narrowFloatBinOp(rtl::BinOp op, NReg a, NReg b) {
  using rtl::BinOp;
  double x = narrowBitsToDouble(a.v, a.w);
  double y = narrowBitsToDouble(b.v, b.w);
  switch (op) {
    case BinOp::FAdd: return {doubleToNarrowBits(x + y, a.w), a.w};
    case BinOp::FSub: return {doubleToNarrowBits(x - y, a.w), a.w};
    case BinOp::FMul: return {doubleToNarrowBits(x * y, a.w), a.w};
    case BinOp::FDiv: return {doubleToNarrowBits(x / y, a.w), a.w};
    case BinOp::FEq: return {x == y ? 1u : 0u, 1};
    case BinOp::FLt: return {x < y ? 1u : 0u, 1};
    case BinOp::FLe: return {x <= y ? 1u : 0u, 1};
    default: throw rtl::EvalError("not a floating-point operator");
  }
}

NReg narrowBinOp(rtl::BinOp op, NReg a, NReg b) {
  using rtl::BinOp;
  const std::uint64_t m = maskOf(a.w);
  switch (op) {
    case BinOp::Add: return {(a.v + b.v) & m, a.w};
    case BinOp::Sub: return {(a.v - b.v) & m, a.w};
    case BinOp::Mul: return {(a.v * b.v) & m, a.w};
    case BinOp::UDiv: return {b.v ? a.v / b.v : m, a.w};
    case BinOp::URem: return {b.v ? a.v % b.v : a.v, a.w};
    case BinOp::SDiv: {
      if (!b.v) return {m, a.w};
      // Magnitude division like BitVector::sdiv (also dodges the
      // INT64_MIN / -1 trap of native signed division at width 64).
      bool negA = signedOf(a.v, a.w) < 0, negB = signedOf(b.v, b.w) < 0;
      std::uint64_t q = ((negA ? 0 - a.v : a.v) & m) /
                        ((negB ? 0 - b.v : b.v) & m);
      return {(negA != negB ? 0 - q : q) & m, a.w};
    }
    case BinOp::SRem: {
      if (!b.v) return {a.v, a.w};
      bool negA = signedOf(a.v, a.w) < 0, negB = signedOf(b.v, b.w) < 0;
      std::uint64_t r = ((negA ? 0 - a.v : a.v) & m) %
                        ((negB ? 0 - b.v : b.v) & m);
      return {(negA ? 0 - r : r) & m, a.w};  // takes the dividend's sign
    }
    case BinOp::And: return {a.v & b.v, a.w};
    case BinOp::Or: return {a.v | b.v, a.w};
    case BinOp::Xor: return {a.v ^ b.v, a.w};
    case BinOp::Shl: {
      std::uint64_t amt = b.v > a.w ? a.w : b.v;
      return {amt >= a.w ? 0 : (a.v << amt) & m, a.w};
    }
    case BinOp::LShr: {
      std::uint64_t amt = b.v > a.w ? a.w : b.v;
      return {amt >= a.w ? 0 : a.v >> amt, a.w};
    }
    case BinOp::AShr: {
      std::uint64_t amt = b.v > a.w ? a.w : b.v;
      std::int64_t s = signedOf(a.v, a.w);
      if (amt >= a.w) return {s < 0 ? m : 0, a.w};
      return {std::uint64_t(s >> amt) & m, a.w};
    }
    case BinOp::Eq: return {a.v == b.v ? 1u : 0u, 1};
    case BinOp::Ne: return {a.v != b.v ? 1u : 0u, 1};
    case BinOp::ULt: return {a.v < b.v ? 1u : 0u, 1};
    case BinOp::ULe: return {a.v <= b.v ? 1u : 0u, 1};
    case BinOp::UGt: return {a.v > b.v ? 1u : 0u, 1};
    case BinOp::UGe: return {a.v >= b.v ? 1u : 0u, 1};
    case BinOp::SLt:
      return {signedOf(a.v, a.w) < signedOf(b.v, b.w) ? 1u : 0u, 1};
    case BinOp::SLe:
      return {signedOf(a.v, a.w) <= signedOf(b.v, b.w) ? 1u : 0u, 1};
    case BinOp::SGt:
      return {signedOf(a.v, a.w) > signedOf(b.v, b.w) ? 1u : 0u, 1};
    case BinOp::SGe:
      return {signedOf(a.v, a.w) >= signedOf(b.v, b.w) ? 1u : 0u, 1};
    case BinOp::LogAnd: return {a.v && b.v ? 1u : 0u, 1};
    case BinOp::LogOr: return {a.v || b.v ? 1u : 0u, 1};
    case BinOp::FAdd: case BinOp::FSub: case BinOp::FMul: case BinOp::FDiv:
    case BinOp::FEq: case BinOp::FLt: case BinOp::FLe:
      return narrowFloatBinOp(op, a, b);
  }
  throw rtl::EvalError("bad binary operator");
}

NReg narrowUnOp(rtl::UnOp op, NReg a) {
  using rtl::UnOp;
  const std::uint64_t m = maskOf(a.w);
  switch (op) {
    case UnOp::LogNot: return {a.v == 0 ? 1u : 0u, 1};
    case UnOp::BitNot: return {~a.v & m, a.w};
    case UnOp::Neg: return {(0 - a.v) & m, a.w};
    case UnOp::RedAnd: return {a.v == m ? 1u : 0u, 1};
    case UnOp::RedOr: return {a.v != 0 ? 1u : 0u, 1};
    case UnOp::RedXor: return {std::uint64_t(std::popcount(a.v)) & 1u, 1};
  }
  throw rtl::EvalError("bad unary operator");
}

}  // namespace

void ExecEngine::execProgramNarrow(const uop::Program& prog,
                                   const std::vector<DecodedParam>& dparams,
                                   unsigned latency, unsigned stallCost) {
  using uop::Kind;
  if (nscratch_.size() < prog.numRegs) nscratch_.resize(prog.numRegs);
  if (lvSlots_.size() < prog.numLvSlots) lvSlots_.resize(prog.numLvSlots);
  frames_.clear();
  frames_.push_back(&dparams);

  NReg* regs = nscratch_.data();
  const uop::Uop* code = prog.code.data();
  const std::uint32_t n = std::uint32_t(prog.code.size());
  for (std::uint32_t pc = 0; pc < n;) {
    const uop::Uop& u = code[pc];
    switch (u.kind) {
      case Kind::Move: regs[u.dst] = regs[u.a]; ++pc; break;
      case Kind::LoadParam: {
        const BitVector& enc = (*frames_.back())[u.a].encoded;
        regs[u.dst] = {enc.toUint64(), enc.width()};
        ++pc;
        break;
      }
      case Kind::ReadStorage: {
        BitVector tmp;
        const BitVector& t = readLocRef(u.a, 0, tmp);
        regs[u.dst] = {t.toUint64(), t.width()};
        ++pc;
        break;
      }
      case Kind::ReadElem: {
        BitVector tmp;
        const BitVector& t = readLocRef(u.a, regs[u.b].v, tmp);
        regs[u.dst] = {t.toUint64(), t.width()};
        ++pc;
        break;
      }
      case Kind::Slice:
        regs[u.dst] = {(regs[u.a].v >> u.lo) & maskOf(u.hi - u.lo + 1u),
                       std::uint32_t(u.hi - u.lo + 1u)};
        ++pc;
        break;
      case Kind::Unary:
        regs[u.dst] = narrowUnOp(rtl::UnOp(u.op), regs[u.a]);
        ++pc;
        break;
      case Kind::Binary:
        regs[u.dst] = narrowBinOp(rtl::BinOp(u.op), regs[u.a], regs[u.b]);
        ++pc;
        break;
      case Kind::Concat2:
        regs[u.dst] = {(regs[u.a].v << regs[u.b].w) | regs[u.b].v,
                       regs[u.a].w + regs[u.b].w};
        ++pc;
        break;
      case Kind::ZExt: regs[u.dst] = {regs[u.a].v, u.hi}; ++pc; break;
      case Kind::SExt:
        regs[u.dst] = {
            std::uint64_t(signedOf(regs[u.a].v, regs[u.a].w)) & maskOf(u.hi),
            u.hi};
        ++pc;
        break;
      case Kind::Trunc:
        regs[u.dst] = {regs[u.a].v & maskOf(u.hi), u.hi};
        ++pc;
        break;
      case Kind::IToF:
        regs[u.dst] = {
            doubleToNarrowBits(double(signedOf(regs[u.a].v, regs[u.a].w)),
                               u.hi),
            u.hi};
        ++pc;
        break;
      case Kind::FToI: {
        double d = narrowBitsToDouble(regs[u.a].v, regs[u.a].w);
        std::uint64_t r = 0;
        if (!std::isnan(d)) {
          // Clamp like rtl::floatToInt (common DSP converter behaviour).
          double lo = -std::ldexp(1.0, int(u.hi) - 1);
          double hi = std::ldexp(1.0, int(u.hi) - 1) - 1.0;
          if (d < lo) d = lo;
          if (d > hi) d = hi;
          r = std::uint64_t(std::int64_t(d)) & maskOf(u.hi);
        }
        regs[u.dst] = {r, u.hi};
        ++pc;
        break;
      }
      case Kind::Carry: {
        unsigned __int128 t =
            (unsigned __int128)(regs[u.a].v) + regs[u.b].v;
        regs[u.dst] = {std::uint64_t(t >> regs[u.a].w) & 1u, 1};
        ++pc;
        break;
      }
      case Kind::Overflow: {
        const NReg a = regs[u.a], b = regs[u.b];
        bool aNeg = signedOf(a.v, a.w) < 0, bNeg = signedOf(b.v, b.w) < 0;
        bool rNeg = signedOf((a.v + b.v) & maskOf(a.w), a.w) < 0;
        regs[u.dst] = {(aNeg == bNeg) && (rNeg != aNeg) ? 1u : 0u, 1};
        ++pc;
        break;
      }
      case Kind::Borrow:
        regs[u.dst] = {regs[u.a].v < regs[u.b].v ? 1u : 0u, 1};
        ++pc;
        break;
      case Kind::Jump: pc = u.a; break;
      case Kind::BranchIfZero: pc = regs[u.a].v == 0 ? u.b : pc + 1; break;
      case Kind::BrOption:
        pc = prog.tables[u.b]
                       [std::size_t((*frames_.back())[u.a].ntOption)];
        break;
      case Kind::PushFrame:
        frames_.push_back(&(*frames_.back())[u.a].sub);
        ++pc;
        break;
      case Kind::PopFrame: frames_.pop_back(); ++pc; break;
      case Kind::SetLv: {
        ResolvedLv& lv = lvSlots_[u.dst];
        lv.si = u.a;
        lv.elem = u.b == uop::kNoReg ? 0 : regs[u.b].v;
        if (lv.elem >= machine_.storages[u.a].depth)
          throw rtl::EvalError(cat("write to ", machine_.storages[u.a].name,
                                   "[", lv.elem, "] is out of range"));
        lv.hasSlice = (u.flags & 1) != 0;
        lv.hi = u.hi;
        lv.lo = u.lo;
        ++pc;
        break;
      }
      case Kind::StageWrite:
        stageWrite(lvSlots_[u.dst], BitVector(regs[u.a].w, regs[u.a].v),
                   latency, stallCost);
        ++pc;
        break;
      case Kind::Trap: throw rtl::EvalError(prog.traps[u.a]);
    }
  }
}

}  // namespace isdl::sim
