#include "sim/disasm.h"

#include "support/strings.h"

namespace isdl::sim {

Disassembler::Disassembler(const SignatureTable& sigs)
    : sigs_(&sigs), machine_(&sigs.machine()) {}

namespace {

/// Accumulates option extras into an operation's effective costs/timing.
void addOptionExtras(const NtOption& opt, DecodedOp& op) {
  op.effCycle += opt.extraCosts.cycle;
  op.effStall += opt.extraCosts.stall;
  op.effSize += opt.extraCosts.size;
  op.effLatency += opt.extraTiming.latency;
  op.effUsage += opt.extraTiming.usage;
}

}  // namespace

bool Disassembler::decodeNtValue(unsigned ntIndex, const BitVector& value,
                                 DecodedParam& out,
                                 std::string* error) const {
  const NonTerminal& nt = machine_->nonTerminals[ntIndex];
  for (std::size_t o = 0; o < nt.options.size(); ++o) {
    const Signature& sig = sigs_->ntOption(ntIndex, o);
    if (!sig.matches(value)) continue;
    out.ntOption = static_cast<int>(o);
    const NtOption& opt = nt.options[o];
    out.sub.clear();
    out.sub.reserve(opt.params.size());
    for (std::size_t p = 0; p < opt.params.size(); ++p) {
      DecodedParam dp;
      dp.encoded = sig.extractParam(static_cast<unsigned>(p), value);
      if (opt.params[p].kind == ParamKind::NonTerminal) {
        if (!decodeNtValue(opt.params[p].index, dp.encoded, dp, error))
          return false;
      }
      out.sub.push_back(std::move(dp));
    }
    return true;
  }
  if (error)
    *error = cat("no option of non-terminal '", nt.name,
                 "' matches return value ", value.toHexString());
  return false;
}

bool Disassembler::decodeParams(const Signature& sig,
                                const std::vector<Param>& params,
                                const BitVector& word,
                                std::vector<DecodedParam>& out,
                                std::string* error) const {
  out.clear();
  out.reserve(params.size());
  for (std::size_t p = 0; p < params.size(); ++p) {
    DecodedParam dp;
    dp.encoded = sig.extractParam(static_cast<unsigned>(p), word);
    if (params[p].kind == ParamKind::NonTerminal) {
      if (!decodeNtValue(params[p].index, dp.encoded, dp, error))
        return false;
    } else if (machine_->tokens[params[p].index].kind == TokenKind::Enum) {
      // Enum values must name a member; a hole in the value space makes the
      // instruction illegal.
      const TokenDef& tok = machine_->tokens[params[p].index];
      if (!tok.memberSyntax(dp.encoded.toUint64())) {
        if (error)
          *error = cat("value ", dp.encoded.toUint64(),
                       " is not a member of token '", tok.name, "'");
        return false;
      }
    }
    out.push_back(std::move(dp));
  }
  return true;
}

std::optional<DecodedInstruction> Disassembler::decodeAt(
    const std::vector<BitVector>& memory, std::uint64_t addr,
    std::string* error) const {
  if (addr >= memory.size()) {
    if (error) *error = cat("address ", addr, " outside instruction memory");
    return std::nullopt;
  }
  const unsigned wordWidth = machine_->wordWidth;
  const unsigned maxWords = machine_->maxSizeWords();

  // Assemble the widest possible instruction image; words past the end of
  // memory read as zero (their bits are only consulted by multi-word
  // operations, which then simply fail to match).
  BitVector image(maxWords * wordWidth);
  for (unsigned w = 0; w < maxWords; ++w) {
    if (addr + w < memory.size())
      image.insertSlice((w + 1) * wordWidth - 1, w * wordWidth,
                        memory[addr + w]);
  }

  DecodedInstruction inst;
  inst.address = addr;
  inst.ops.resize(machine_->fields.size());
  unsigned maxCycles = 1;
  unsigned maxSize = 1;

  for (std::size_t f = 0; f < machine_->fields.size(); ++f) {
    const Field& field = machine_->fields[f];
    bool matched = false;
    for (std::size_t o = 0; o < field.operations.size(); ++o) {
      const Signature& sig = sigs_->operation(static_cast<unsigned>(f),
                                              static_cast<unsigned>(o));
      if (!sig.matches(image)) continue;
      const Operation& op = field.operations[o];
      DecodedOp dop;
      dop.opIndex = static_cast<unsigned>(o);
      std::string perr;
      if (!decodeParams(sig, op.params, image, dop.params, &perr)) {
        if (error)
          *error = cat("field '", field.name, "', operation '", op.name,
                       "': ", perr);
        return std::nullopt;
      }
      dop.effCycle = op.costs.cycle;
      dop.effStall = op.costs.stall;
      dop.effSize = op.costs.size;
      dop.effLatency = op.timing.latency;
      dop.effUsage = op.timing.usage;
      for (std::size_t p = 0; p < op.params.size(); ++p) {
        if (op.params[p].kind == ParamKind::NonTerminal &&
            dop.params[p].ntOption >= 0) {
          addOptionExtras(machine_->nonTerminals[op.params[p].index]
                              .options[dop.params[p].ntOption],
                          dop);
        }
      }
      maxCycles = std::max(maxCycles, dop.effCycle);
      maxSize = std::max(maxSize, dop.effSize);
      inst.ops[f] = std::move(dop);
      matched = true;
      break;  // the match is unique for a decodeable assembly function
    }
    if (!matched) {
      if (error)
        *error = cat("illegal instruction at ", addr, ": no operation of "
                     "field '", field.name, "' matches ",
                     image.toHexString());
      return std::nullopt;
    }
  }

  if (addr + maxSize > memory.size()) {
    if (error)
      *error = cat("instruction at ", addr, " (", maxSize,
                   " words) runs past the end of instruction memory");
    return std::nullopt;
  }
  inst.sizeWords = maxSize;
  inst.cycles = maxCycles;
  return inst;
}

DecodedProgram Disassembler::decodeProgram(const std::vector<BitVector>& memory,
                                           std::uint64_t programWords) const {
  DecodedProgram prog;
  std::uint64_t n = std::min<std::uint64_t>(programWords, memory.size());
  prog.byAddress.resize(n);
  for (std::uint64_t addr = 0; addr < n; ++addr) {
    if (auto inst = decodeAt(memory, addr)) {
      prog.byAddress[addr] = std::move(*inst);
    } else {
      prog.byAddress[addr].sizeWords = 0;  // undecodable slot
    }
  }
  return prog;
}

// --- rendering -----------------------------------------------------------------

std::string Disassembler::renderParam(const Param& p,
                                      const DecodedParam& dp) const {
  if (p.kind == ParamKind::NonTerminal) {
    const NonTerminal& nt = machine_->nonTerminals[p.index];
    const NtOption& opt = nt.options[dp.ntOption];
    return renderSyntax(opt.syntax, opt.params, dp.sub);
  }
  const TokenDef& tok = machine_->tokens[p.index];
  if (tok.kind == TokenKind::Enum) {
    if (auto syntax = tok.memberSyntax(dp.encoded.toUint64())) return *syntax;
    return cat("<bad:", dp.encoded.toUint64(), ">");
  }
  if (tok.isSigned) return std::to_string(dp.encoded.toInt64());
  return dp.encoded.toUnsignedDecimalString();
}

std::string Disassembler::renderSyntax(
    const std::vector<SyntaxItem>& syntax, const std::vector<Param>& params,
    const std::vector<DecodedParam>& dps) const {
  // Pieces are joined with single spaces, except that commas attach to the
  // preceding piece ("add R1, R2" rather than "add R1 , R2").
  std::string out;
  for (const auto& item : syntax) {
    std::string piece = item.isLiteral
                            ? item.literal
                            : renderParam(params[item.paramIndex],
                                          dps[item.paramIndex]);
    if (piece.empty()) continue;
    if (piece == ",") {
      out += ",";
    } else {
      if (!out.empty()) out += ' ';
      out += piece;
    }
  }
  return out;
}

std::string Disassembler::renderOp(unsigned field, const DecodedOp& op) const {
  const Operation& o = machine_->fields[field].operations[op.opIndex];
  std::string operands = renderSyntax(o.syntax, o.params, op.params);
  return operands.empty() ? o.name : cat(o.name, " ", operands);
}

std::string Disassembler::render(const DecodedInstruction& inst) const {
  std::vector<std::string> parts;
  for (std::size_t f = 0; f < inst.ops.size(); ++f)
    parts.push_back(renderOp(static_cast<unsigned>(f), inst.ops[f]));
  if (parts.size() == 1) return parts[0];
  return "{ " + join(parts, " | ") + " }";
}

}  // namespace isdl::sim
