// The generated disassembler (paper §3.3.2, Figure 4). Matches each field's
// operation signatures against the instruction word, recovers parameter
// values by reversing their bit encodings, and recurses into non-terminal
// return values. Used off-line at program-load time to build the decoded
// program cache, and by the assembler tests for round-tripping.

#ifndef ISDL_SIM_DISASM_H
#define ISDL_SIM_DISASM_H

#include <optional>
#include <string>

#include "sim/decoded.h"
#include "sim/signature.h"

namespace isdl::sim {

class Disassembler {
 public:
  explicit Disassembler(const SignatureTable& sigs);

  /// Decodes the instruction whose first word is memory[addr]. `memory` is
  /// the instruction-memory image. Returns std::nullopt and fills `error`
  /// if any field has no matching operation (an illegal instruction) or the
  /// instruction runs off the end of memory.
  std::optional<DecodedInstruction> decodeAt(
      const std::vector<BitVector>& memory, std::uint64_t addr,
      std::string* error = nullptr) const;

  /// Off-line disassembly of a whole program image (paper §3.1): attempts to
  /// decode at every word address in [0, programWords). Addresses that fail
  /// to decode get an empty slot; executing one is a runtime error. This is
  /// deliberately address-exhaustive so any control flow within the program
  /// region hits the cache.
  DecodedProgram decodeProgram(const std::vector<BitVector>& memory,
                               std::uint64_t programWords) const;

  /// Renders a decoded instruction back to assembly text,
  /// e.g. "{ add R1, R2, R3 | mnop }".
  std::string render(const DecodedInstruction& inst) const;

  /// Renders a single operation slot, e.g. "add R1, R2, R3".
  std::string renderOp(unsigned field, const DecodedOp& op) const;

 private:
  const SignatureTable* sigs_;
  const Machine* machine_;

  bool decodeParams(const Signature& sig, const std::vector<Param>& params,
                    const BitVector& word, std::vector<DecodedParam>& out,
                    std::string* error) const;
  bool decodeNtValue(unsigned ntIndex, const BitVector& value,
                     DecodedParam& out, std::string* error) const;

  std::string renderParam(const Param& p, const DecodedParam& dp) const;
  std::string renderSyntax(const std::vector<SyntaxItem>& syntax,
                           const std::vector<Param>& params,
                           const std::vector<DecodedParam>& dps) const;
};

}  // namespace isdl::sim

#endif  // ISDL_SIM_DISASM_H
