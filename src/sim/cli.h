// Command-line / batch interface of the XSIM simulator (paper §3.1: "a
// command-line interface with full batch-file support" plus "attached
// commands" dispatched at breakpoints). The paper's Tcl/Tk GUI is
// deliberately not reproduced — the CLI exposes every capability the GUI
// wraps (see DESIGN.md substitution 3).
//
// Command set:
//   asm <file>                 assemble <file> and load the program
//   run [maxcycles]            run to a stop condition
//   step [n]                   execute n instructions (default 1)
//   break <addr> [cmd...]      set a breakpoint; optional attached command
//                              executed (as a CLI line) when it is hit
//   delete <addr>              remove a breakpoint
//   x <storage> [index]        examine state ("x RF 3", "x PC")
//   set <storage> [index] <v>  write state
//   disasm <addr> [count]      disassemble from an address
//   monitor <storage> [index]  print every change of the given state
//   trace <file>|off           write the execution address trace to a file
//   trace start <file>         record issue/stall/write-back events; written
//                              as Chrome trace-event JSON (chrome://tracing,
//                              Perfetto) by `trace stop` or on exit
//   trace stop                 stop recording and write the trace file
//   stats                      cycle/instruction/stall/utilization report
//   engine [uop|interp]        select (or show) the execution engine: the
//                              micro-op compiled core or the tree-walking
//                              interpreter (bit-identical, see sim/uop.h)
//   profile [<file>]           enable heatmap profiling; with a file, the
//                              metrics JSON is dumped there on exit
//   profile dump [<file>]      write the metrics JSON now (default: stdout)
//   profile off                disable profiling
//   reset                      reset state and reload the program
//   echo <text>                print text
//   # comment / ; comment
//   quit

#ifndef ISDL_SIM_CLI_H
#define ISDL_SIM_CLI_H

#include <fstream>
#include <iosfwd>
#include <memory>

#include "sim/xsim.h"

namespace isdl::sim {

class Cli {
 public:
  Cli(Xsim& sim, std::ostream& out);
  ~Cli();

  /// Executes one command line. Returns false when the script should stop
  /// (quit command).
  bool execute(const std::string& line);

  /// Runs a batch script, one command per line. Returns the number of
  /// command errors encountered.
  unsigned runScript(std::istream& script);
  unsigned runScript(const std::string& scriptText);

  unsigned errorCount() const { return errors_; }

 private:
  Xsim& sim_;
  std::ostream& out_;
  Assembler assembler_;
  unsigned errors_ = 0;
  std::map<std::uint64_t, std::string> attachedCommands_;
  std::vector<int> monitorHandles_;
  std::unique_ptr<std::ofstream> traceFile_;
  std::string chromeTracePath_;  ///< armed by `trace start`, empty when off
  std::string profilePath_;     ///< armed by `profile <file>`, dumped on exit

  void error(const std::string& message);
  bool parseStorageRef(const std::vector<std::string>& words, std::size_t at,
                       int& storageIndex, std::uint64_t& element,
                       std::size_t& consumed);
  void printStats();
  void stopChromeTrace();
  void dumpProfile(const std::string& path);
  /// Dump-on-exit: flushes an armed Chrome trace and/or profile dump.
  void flushObservability();
};

}  // namespace isdl::sim

#endif  // ISDL_SIM_CLI_H
