#include "sim/core.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/uop.h"
#include "support/strings.h"

namespace isdl::sim {

using rtl::EvalError;

/// Evaluation context for one operation (or, recursively, one selected
/// non-terminal option). Parameter reads resolve token values directly and
/// evaluate non-terminal option `value` expressions in a child context;
/// storage reads go through the engine's pending-write overlay.
class ExecEngine::OpContext final : public rtl::EvalContext {
 public:
  OpContext(const ExecEngine& eng, const std::vector<Param>& params,
            const std::vector<DecodedParam>& dparams)
      : eng_(eng), params_(&params), dparams_(&dparams) {}

  const std::vector<Param>& params() const { return *params_; }
  const std::vector<DecodedParam>& dparams() const { return *dparams_; }
  const ExecEngine& engine() const { return eng_; }

  BitVector paramValue(unsigned i) const override {
    const Param& p = (*params_)[i];
    const DecodedParam& dp = (*dparams_)[i];
    if (p.kind == ParamKind::Token) return dp.encoded;
    const NonTerminal& nt = eng_.machine_.nonTerminals[p.index];
    const NtOption& opt = nt.options[dp.ntOption];
    if (!opt.value)
      throw EvalError(cat("non-terminal '", nt.name,
                          "' option has no value but was read"));
    OpContext child(eng_, opt.params, dp.sub);
    return rtl::evalExpr(*opt.value, child);
  }

  BitVector readStorage(unsigned si) const override {
    return eng_.readLoc(si, 0);
  }

  BitVector readElement(unsigned si, const BitVector& index) const override {
    return eng_.readLoc(si, index.toUint64());
  }

 private:
  const ExecEngine& eng_;
  const std::vector<Param>* params_;
  const std::vector<DecodedParam>* dparams_;
};

ExecEngine::ExecEngine(const Machine& machine, State& state)
    : machine_(machine),
      state_(state),
      pendingBySi_(machine.storages.size(), 0),
      fieldBusyUntil_(machine.fields.size(), 0) {}

void ExecEngine::reset() {
  pending_.clear();
  std::fill(pendingBySi_.begin(), pendingBySi_.end(), 0);
  stagedLocal_.clear();
  std::fill(fieldBusyUntil_.begin(), fieldBusyUntil_.end(), 0);
  cycle_ = 0;
  seq_ = 0;
  instrId_ = 0;
  pcCommitted_ = false;
}

const BitVector& ExecEngine::readLocRef(unsigned si, std::uint64_t elem,
                                        BitVector& tmp) const {
  if (heat_) heat_->countRead(si, elem);
  const BitVector& sv = state_.read(si, elem);
  if (pendingBySi_[si] == 0) return sv;  // nothing in flight for this storage
  const BitVector* v = &sv;
  for (const auto& p : pending_) {
    if (p.si != si || p.elem != elem) continue;
    if (phaseB_) {
      // Side effects read the same pre-cycle state as the actions ("after"
      // orders the WRITES, not the reads — this matches the hardware model,
      // where flag logic computes from operands in parallel with the ALU).
      // Writes still in flight from EARLIER instructions are forwarded:
      // phase A already charged any stall they warranted.
      if (p.instrId != instrId_) {
        tmp = p.hasSlice ? v->withSlice(p.hi, p.lo, p.value) : p.value;
        v = &tmp;
      }
    } else if (p.stallCost == 0 || p.instrId == instrId_) {
      // Full bypass (Stall == 0) and this instruction's own staged values.
      tmp = p.hasSlice ? v->withSlice(p.hi, p.lo, p.value) : p.value;
      v = &tmp;
    } else {
      std::uint64_t needed = p.commitCycle + 1 - cycle_;
      if (needed > requiredStall_) {
        requiredStall_ = needed;
        stallStorage_ = p.si;  // the producer the interlock waits on
      }
    }
  }
  return *v;
}

BitVector ExecEngine::readLoc(unsigned si, std::uint64_t elem) const {
  BitVector tmp;
  return readLocRef(si, elem, tmp);
}

void ExecEngine::insertPending(Pending&& p) {
  // Keep the queue sorted by (commitCycle, seq) — retirement order — so
  // commitUpTo pops a prefix instead of stable_sorting the whole vector.
  // seq increases monotonically, so equal commit cycles insert at the end of
  // their run and later writes win deterministically.
  ++pendingBySi_[p.si];
  // Common case: staging order already matches retirement order (equal
  // latencies), so the new entry appends.
  if (pending_.empty() || pending_.back().commitCycle <= p.commitCycle) {
    pending_.push_back(std::move(p));
    return;
  }
  auto it = std::upper_bound(pending_.begin(), pending_.end(), p,
                             [](const Pending& a, const Pending& b) {
                               if (a.commitCycle != b.commitCycle)
                                 return a.commitCycle < b.commitCycle;
                               return a.seq < b.seq;
                             });
  pending_.insert(it, std::move(p));
}

void ExecEngine::commitUpTo(std::uint64_t cycleInclusive) {
  // pending_ is sorted by (commitCycle, seq): retire the due prefix.
  if (pending_.empty() || pending_.front().commitCycle > cycleInclusive)
    return;
  std::size_t i = 0;
  for (; i < pending_.size(); ++i) {
    const Pending& p = pending_[i];
    if (p.commitCycle > cycleInclusive) break;
    --pendingBySi_[p.si];
    if (p.hasSlice)
      state_.writeSlice(p.si, p.elem, p.hi, p.lo, p.value, p.commitCycle);
    else
      state_.write(p.si, p.elem, p.value, p.commitCycle);
    if (trace_)
      trace_->record({.kind = obs::EventKind::WriteBack,
                      .field = 0,
                      .op = 0,
                      .storage = p.si,
                      .elem = p.elem,
                      .cycle = p.commitCycle,
                      .dur = 1,
                      .addr = p.instrId});
    if (static_cast<int>(p.si) == machine_.pcIndex) pcCommitted_ = true;
  }
  pending_.erase(pending_.begin(), pending_.begin() + i);
}

void ExecEngine::advanceTo(std::uint64_t newCycle) {
  if (newCycle > cycle_) {
    commitUpTo(newCycle - 1);
    cycle_ = newCycle;
  }
}

void ExecEngine::stageWrite(const ResolvedLv& lv, BitVector value,
                            unsigned latency, unsigned stallCost) {
  Pending p;
  p.si = lv.si;
  p.elem = lv.elem;
  p.hasSlice = lv.hasSlice;
  p.hi = lv.hi;
  p.lo = lv.lo;
  p.value = std::move(value);
  p.commitCycle = cycle_ + latency - 1;
  p.stallCost = stallCost;
  p.instrId = instrId_;
  p.seq = seq_++;

  // Two statements of the same instruction phase driving the same bits is
  // write contention, whatever their latencies — one functional unit's
  // write port cannot carry both (and the flow-through hardware model
  // would resolve the race differently than latency ordering would).
  auto overlaps = [&](const Pending& q) {
    if (q.si != p.si || q.elem != p.elem) return false;
    unsigned pHi = p.hasSlice ? p.hi : machine_.storages[p.si].width - 1;
    unsigned pLo = p.hasSlice ? p.lo : 0;
    unsigned qHi = q.hasSlice ? q.hi : pHi;
    unsigned qLo = q.hasSlice ? q.lo : 0;
    return pLo <= qHi && qLo <= pHi;
  };
  // Cross-instruction write-after-write races are legal (the later
  // instruction wins, enforced by commit order); only two statements of the
  // same instruction phase driving the same bits are a description bug.
  for (const auto& q : stagedLocal_)
    if (overlaps(q))
      throw EvalError(cat("write conflict: two RTL statements write ",
                          machine_.storages[p.si].name, "[", p.elem,
                          "] in the same cycle"));
  stagedLocal_.push_back(std::move(p));
}

ExecEngine::ResolvedLv ExecEngine::resolveLvalue(const rtl::Lvalue& lv,
                                                 const OpContext& ctx) const {
  if (lv.isParam) {
    const Param& p = ctx.params()[lv.paramIndex];
    const DecodedParam& dp = ctx.dparams()[lv.paramIndex];
    const NonTerminal& nt = machine_.nonTerminals[p.index];
    const NtOption& opt = nt.options[dp.ntOption];
    if (!opt.lvalue)
      throw EvalError(cat("non-terminal '", nt.name,
                          "' option has no lvalue but was written"));
    OpContext child(*this, opt.params, dp.sub);
    return resolveLvalue(*opt.lvalue, child);
  }
  ResolvedLv r;
  r.si = lv.storageIndex;
  r.elem = lv.index ? rtl::evalExpr(*lv.index, ctx).toUint64() : 0;
  if (r.elem >= machine_.storages[r.si].depth)
    throw EvalError(cat("write to ", machine_.storages[r.si].name, "[",
                        r.elem, "] is out of range"));
  r.hasSlice = lv.hasSlice;
  r.hi = lv.sliceHi;
  r.lo = lv.sliceLo;
  return r;
}

void ExecEngine::execStmts(const std::vector<rtl::StmtPtr>& stmts,
                           const OpContext& ctx, unsigned latency,
                           unsigned stallCost) {
  for (const auto& stmt : stmts) {
    switch (stmt->kind) {
      case rtl::StmtKind::Assign: {
        ResolvedLv lv = resolveLvalue(stmt->dest, ctx);
        BitVector value = rtl::evalExpr(*stmt->value, ctx);
        stageWrite(lv, std::move(value), latency, stallCost);
        break;
      }
      case rtl::StmtKind::If: {
        BitVector cond = rtl::evalExpr(*stmt->cond, ctx);
        const auto& branch = cond.isZero() ? stmt->elseStmts : stmt->thenStmts;
        execStmts(branch, ctx, latency, stallCost);
        break;
      }
    }
  }
}

void ExecEngine::execOptionSideEffects(const OpContext& ctx, unsigned latency,
                                       unsigned stallCost) {
  // Side effects contributed by selected non-terminal options (e.g. a
  // post-increment addressing mode), recursively.
  for (std::size_t i = 0; i < ctx.params().size(); ++i) {
    const Param& p = ctx.params()[i];
    if (p.kind != ParamKind::NonTerminal) continue;
    const DecodedParam& dp = ctx.dparams()[i];
    const NtOption& opt = machine_.nonTerminals[p.index].options[dp.ntOption];
    OpContext child(*this, opt.params, dp.sub);
    execStmts(opt.sideEffects, child, latency, stallCost);
    execOptionSideEffects(child, latency, stallCost);
  }
}

ExecEngine::IssueInfo ExecEngine::issue(const DecodedInstruction& inst) {
  IssueInfo info;
  ++instrId_;

  // Structural hazards: every functional unit the instruction touches must
  // be free (Usage timing, paper §2.1.3).
  std::uint64_t busy = cycle_;
  std::size_t busiestField = 0;
  for (std::size_t f = 0; f < inst.ops.size(); ++f)
    if (fieldBusyUntil_[f] > busy) {
      busy = fieldBusyUntil_[f];
      busiestField = f;
    }
  if (busy > cycle_) {
    info.structStallCycles = busy - cycle_;
    if (statsSink_)
      statsSink_->structStallsByField[busiestField] += busy - cycle_;
    if (trace_)
      trace_->record({.kind = obs::EventKind::StructStall,
                      .field = static_cast<std::uint16_t>(busiestField),
                      .op = 0,
                      .storage = 0,
                      .elem = 0,
                      .cycle = cycle_,
                      .dur = static_cast<std::uint32_t>(busy - cycle_),
                      .addr = inst.address});
    advanceTo(busy);
  }

  const bool useUops = uops_ != nullptr;

  // Interpreter path only: per-field evaluation contexts are invariant
  // across the phase-A hazard-retry loop, so they are hoisted and a retry
  // redoes only the evaluation itself. The uop path has no per-issue
  // allocations at all.
  std::vector<OpContext> ctxs;
  if (!useUops) {
    ctxs.reserve(inst.ops.size());
    for (std::size_t f = 0; f < inst.ops.size(); ++f)
      ctxs.emplace_back(
          *this, machine_.fields[f].operations[inst.ops[f].opIndex].params,
          inst.ops[f].params);
  }

  try {
    // Phase A with hazard-probe retry: evaluate all actions against the
    // pre-cycle state; a read of a location with a pending interlocked write
    // records the stall needed, and the whole evaluation is redone after
    // advancing (the state view changes once the write retires).
    for (;;) {
      if (cycle_ > 0) commitUpTo(cycle_ - 1);
      requiredStall_ = 0;
      phaseB_ = false;
      stagedLocal_.clear();
      for (std::size_t f = 0; f < inst.ops.size(); ++f) {
        const DecodedOp& dop = inst.ops[f];
        if (useUops) {
          const uop::Program& prog =
              uops_->at(unsigned(f), dop.opIndex).action;
          if (!prog.empty()) {
            if (prog.narrow)
              execProgramNarrow(prog, dop.params, dop.effLatency,
                                dop.effStall);
            else
              execProgram(prog, dop.params, dop.effLatency, dop.effStall);
          }
        } else {
          execStmts(machine_.fields[f].operations[dop.opIndex].action,
                    ctxs[f], dop.effLatency, dop.effStall);
        }
      }
      if (requiredStall_ == 0) break;
      info.dataStallCycles += requiredStall_;
      if (statsSink_)
        statsSink_->dataStallsByStorage[stallStorage_] += requiredStall_;
      if (trace_)
        trace_->record({.kind = obs::EventKind::DataStall,
                        .field = 0,
                        .op = 0,
                        .storage = stallStorage_,
                        .elem = 0,
                        .cycle = cycle_,
                        .dur = static_cast<std::uint32_t>(requiredStall_),
                        .addr = inst.address});
      stagedLocal_.clear();
      advanceTo(cycle_ + requiredStall_);
    }

    // Publish phase-A writes, then run phase B (side effects observe them).
    for (auto& w : stagedLocal_) insertPending(std::move(w));
    stagedLocal_.clear();
    phaseB_ = true;
    for (std::size_t f = 0; f < inst.ops.size(); ++f) {
      const DecodedOp& dop = inst.ops[f];
      if (useUops) {
        const uop::Program& prog =
            uops_->at(unsigned(f), dop.opIndex).sideEffects;
        if (!prog.empty()) {
          if (prog.narrow)
            execProgramNarrow(prog, dop.params, dop.effLatency, dop.effStall);
          else
            execProgram(prog, dop.params, dop.effLatency, dop.effStall);
        }
      } else {
        execStmts(machine_.fields[f].operations[dop.opIndex].sideEffects,
                  ctxs[f], dop.effLatency, dop.effStall);
        execOptionSideEffects(ctxs[f], dop.effLatency, dop.effStall);
      }
    }
    for (auto& w : stagedLocal_) insertPending(std::move(w));
    stagedLocal_.clear();
    phaseB_ = false;
  } catch (const EvalError& e) {
    stagedLocal_.clear();
    phaseB_ = false;
    info.ok = false;
    info.error = e.what();
    return info;
  }

  // Record issue slots (nop slots are elided — an idle field is visible as
  // a gap in its trace row).
  if (trace_) {
    for (std::size_t f = 0; f < inst.ops.size(); ++f) {
      if (static_cast<int>(inst.ops[f].opIndex) == machine_.fields[f].nopIndex)
        continue;
      trace_->record({.kind = obs::EventKind::Issue,
                      .field = static_cast<std::uint16_t>(f),
                      .op = inst.ops[f].opIndex,
                      .storage = 0,
                      .elem = 0,
                      .cycle = cycle_,
                      .dur = inst.cycles,
                      .addr = inst.address});
    }
  }

  // Occupy functional units.
  for (std::size_t f = 0; f < inst.ops.size(); ++f)
    fieldBusyUntil_[f] = cycle_ + inst.ops[f].effUsage;

  // Advance through the instruction's cycle window, retiring writes that
  // fall inside it and tracking PC commits (branch taken).
  pcCommitted_ = false;
  commitUpTo(cycle_ + inst.cycles - 1);
  cycle_ += inst.cycles;
  info.pcCommitted = pcCommitted_;
  return info;
}

void ExecEngine::drain() {
  commitUpTo(~std::uint64_t{0});
}

}  // namespace isdl::sim
