#include "sim/state.h"

#include <algorithm>

#include "support/strings.h"

namespace isdl::sim {

int Monitors::add(unsigned storageIndex, std::optional<std::uint64_t> element,
                  Callback callback) {
  int handle = nextHandle_++;
  watches_.push_back({handle, storageIndex, element, std::move(callback)});
  return handle;
}

void Monitors::remove(int handle) {
  std::erase_if(watches_, [&](const Watch& w) { return w.handle == handle; });
}

void Monitors::fire(const WriteEvent& event) const {
  if (observer_) observer_(event);
  for (const auto& w : watches_) {
    if (w.storageIndex != event.storageIndex) continue;
    if (w.element && *w.element != event.element) continue;
    w.callback(event);
  }
}

State::State(const Machine& machine) : machine_(&machine) {
  values_.reserve(machine.storages.size());
  for (const auto& st : machine.storages) {
    values_.emplace_back(st.depth, BitVector(st.width));
  }
}

void State::reset() {
  // In place: widths never change, so zeroing beats reconstructing (resets
  // run once per measured benchmark iteration and exploration candidate).
  for (auto& storage : values_)
    for (auto& v : storage) v.zeroFill();
}

void State::throwRangeError(unsigned si, std::uint64_t element) const {
  throw rtl::EvalError(cat("access to ", machine_->storages[si].name, "[",
                           element, "] is out of range (depth ",
                           values_[si].size(), ")"));
}

void State::write(unsigned si, std::uint64_t element, const BitVector& value,
                  std::uint64_t cycle) {
  checkRange(si, element);
  BitVector& slot = values_[si][element];
  if (slot == value) return;
  if (!monitors_.empty()) {
    WriteEvent ev{si, element, cycle, slot, value};
    slot = value;
    monitors_.fire(ev);
  } else {
    slot = value;
  }
}

void State::writeSlice(unsigned si, std::uint64_t element, unsigned hi,
                       unsigned lo, const BitVector& value,
                       std::uint64_t cycle) {
  checkRange(si, element);
  write(si, element, values_[si][element].withSlice(hi, lo, value), cycle);
}

std::uint64_t State::pc() const {
  return read(static_cast<unsigned>(machine_->pcIndex)).toUint64();
}

void State::setPc(std::uint64_t value, std::uint64_t cycle) {
  unsigned pcIdx = static_cast<unsigned>(machine_->pcIndex);
  write(pcIdx, 0, BitVector(machine_->storages[pcIdx].width, value), cycle);
}

}  // namespace isdl::sim
