#include "sim/signature.h"

#include <algorithm>

#include "support/strings.h"

namespace isdl::sim {

Signature::Signature(unsigned widthBits, std::size_t numParams,
                     const std::vector<EncodeAssign>& encode)
    : width_(widthBits),
      careMask_(widthBits == 0 ? BitVector() : BitVector(widthBits)),
      constBits_(widthBits == 0 ? BitVector() : BitVector(widthBits)),
      paramMask_(widthBits == 0 ? BitVector() : BitVector(widthBits)),
      paramBits_(numParams) {
  // First pass: find each parameter's full encoded width so the bit maps can
  // be sized (assignments may arrive in any order and slice any sub-range).
  std::vector<unsigned> paramWidths(numParams, 0);
  for (const auto& ea : encode) {
    if (ea.src == EncodeAssign::Src::Param) {
      paramWidths[ea.paramIndex] =
          std::max(paramWidths[ea.paramIndex], ea.hi - ea.lo + 1);
    } else if (ea.src == EncodeAssign::Src::ParamSlice) {
      paramWidths[ea.paramIndex] =
          std::max(paramWidths[ea.paramIndex], ea.paramHi + 1);
    }
  }
  for (std::size_t p = 0; p < numParams; ++p)
    paramBits_[p].assign(paramWidths[p], ~0u);

  for (const auto& ea : encode) {
    switch (ea.src) {
      case EncodeAssign::Src::Const:
        for (unsigned b = ea.lo; b <= ea.hi; ++b) {
          careMask_.setBit(b, true);
          constBits_.setBit(b, ea.constValue.bit(b - ea.lo));
        }
        break;
      case EncodeAssign::Src::Param:
        for (unsigned b = ea.lo; b <= ea.hi; ++b) {
          paramMask_.setBit(b, true);
          paramBits_[ea.paramIndex][b - ea.lo] = b;
        }
        break;
      case EncodeAssign::Src::ParamSlice:
        for (unsigned k = ea.paramLo; k <= ea.paramHi; ++k) {
          unsigned instBit = ea.lo + (k - ea.paramLo);
          paramMask_.setBit(instBit, true);
          paramBits_[ea.paramIndex][k] = instBit;
        }
        break;
    }
  }
}

bool Signature::matches(const BitVector& word) const {
  if (width_ == 0) return true;
  // word may be wider; compare only our bits.
  for (unsigned b = 0; b < width_; ++b) {
    if (careMask_.bit(b) && word.bit(b) != constBits_.bit(b)) return false;
  }
  return true;
}

void Signature::assemble(BitVector& word,
                         const std::vector<BitVector>& paramValues) const {
  for (unsigned b = 0; b < width_; ++b)
    if (careMask_.bit(b)) word.setBit(b, constBits_.bit(b));
  for (std::size_t p = 0; p < paramBits_.size(); ++p) {
    const BitVector& v = paramValues[p];
    for (unsigned k = 0; k < paramBits_[p].size(); ++k) {
      unsigned instBit = paramBits_[p][k];
      if (instBit != ~0u) word.setBit(instBit, v.bit(k));
    }
  }
}

BitVector Signature::extractParam(unsigned p, const BitVector& word) const {
  const auto& bits = paramBits_[p];
  BitVector v(static_cast<unsigned>(bits.size()));
  for (unsigned k = 0; k < bits.size(); ++k)
    if (bits[k] != ~0u) v.setBit(k, word.bit(bits[k]));
  return v;
}

std::string Signature::toString() const {
  std::string s;
  s.reserve(width_);
  for (unsigned b = width_; b-- > 0;) {
    if (careMask_.bit(b)) {
      s += constBits_.bit(b) ? '1' : '0';
    } else if (paramMask_.bit(b)) {
      char c = 'x';
      for (std::size_t p = 0; p < paramBits_.size(); ++p) {
        for (unsigned instBit : paramBits_[p]) {
          if (instBit == b) {
            c = char('a' + (p % 26));
            break;
          }
        }
        if (c != 'x') break;
      }
      s += c;
    } else {
      s += 'x';
    }
  }
  return s;
}

bool distinguishable(const Signature& a, const Signature& b) {
  unsigned overlap = std::min(a.widthBits(), b.widthBits());
  for (unsigned bit = 0; bit < overlap; ++bit) {
    if (a.careMask().bit(bit) && b.careMask().bit(bit) &&
        a.constBits().bit(bit) != b.constBits().bit(bit))
      return true;
  }
  return false;
}

SignatureTable::SignatureTable(const Machine& machine, DiagnosticEngine& diags)
    : machine_(&machine) {
  opSigs_.reserve(machine.fields.size());
  for (const auto& field : machine.fields) {
    std::vector<Signature> sigs;
    sigs.reserve(field.operations.size());
    for (const auto& op : field.operations) {
      sigs.emplace_back(op.costs.size * machine.wordWidth, op.params.size(),
                        op.encode);
    }
    // Decodability: every pair of operations in a field must be
    // distinguishable by constant bits (paper footnote 4: the match is
    // unique for a decodeable assembly function).
    for (std::size_t i = 0; i < sigs.size(); ++i) {
      for (std::size_t j = i + 1; j < sigs.size(); ++j) {
        if (!distinguishable(sigs[i], sigs[j])) {
          diags.error(field.operations[j].loc,
                      cat("operations '", field.name, ".",
                          field.operations[i].name, "' and '", field.name,
                          ".", field.operations[j].name,
                          "' are not distinguishable by any constant "
                          "instruction bit; the assembly function is not "
                          "decodeable"));
          valid_ = false;
        }
      }
    }
    opSigs_.push_back(std::move(sigs));
  }

  ntSigs_.reserve(machine.nonTerminals.size());
  for (const auto& nt : machine.nonTerminals) {
    std::vector<Signature> sigs;
    sigs.reserve(nt.options.size());
    for (const auto& opt : nt.options)
      sigs.emplace_back(nt.returnWidth, opt.params.size(), opt.encode);
    if (nt.options.size() > 1) {
      for (std::size_t i = 0; i < sigs.size(); ++i) {
        for (std::size_t j = i + 1; j < sigs.size(); ++j) {
          if (!distinguishable(sigs[i], sigs[j])) {
            diags.error(nt.loc,
                        cat("options ", i, " and ", j, " of non-terminal '",
                            nt.name,
                            "' are not distinguishable by any constant "
                            "return-value bit"));
            valid_ = false;
          }
        }
      }
    }
    ntSigs_.push_back(std::move(sigs));
  }
}

}  // namespace isdl::sim
