#include "testing/shrink.h"

#include <filesystem>
#include <fstream>

#include "isdl/parser.h"
#include "isdl/sema.h"
#include "sim/assembler.h"
#include "support/strings.h"

namespace isdl::testing {

namespace {

/// The shrink predicate: does this candidate still diverge? Any failure to
/// parse, check, assemble or build (a candidate the front end rejects) is
/// "no" — the shrinker only keeps candidates that are complete repros.
struct Predicate {
  const ShrinkOptions& opts;
  unsigned runs = 0;
  std::string lastDivergence;

  bool diverges(const MachineSpec& spec,
                const std::vector<std::string>& lines) {
    if (runs >= opts.maxOracleRuns) return false;
    ++runs;
    DiagnosticEngine diags;
    auto m = parseIsdl(emitIsdl(spec), diags);
    if (!m || !checkMachine(*m, diags)) return false;
    try {
      DifferentialOracle oracle(*m, opts.oracle);
      sim::Assembler assembler(oracle.signatures());
      DiagnosticEngine adiags;
      auto prog = assembler.assemble(join(lines, "\n") + "\n", adiags);
      if (!prog) return false;
      OracleReport rep = oracle.run(*prog);
      if (rep.ok()) return false;
      lastDivergence = rep.summary();
      return true;
    } catch (const std::exception&) {
      return false;
    }
  }
};

/// Delta-debugs the instruction lines (the final halt line is pinned):
/// removes chunks in halving sizes, rescanning until a fixpoint.
void shrinkProgram(const MachineSpec& spec, std::vector<std::string>& lines,
                   Predicate& pred) {
  if (lines.size() < 2) return;
  std::vector<std::string> body(lines.begin(), lines.end() - 1);
  const std::string halt = lines.back();

  for (std::size_t chunk = std::max<std::size_t>(1, body.size() / 2);;
       chunk /= 2) {
    for (std::size_t i = 0; i + chunk <= body.size();) {
      std::vector<std::string> trial;
      trial.insert(trial.end(), body.begin(), body.begin() + i);
      trial.insert(trial.end(), body.begin() + i + chunk, body.end());
      trial.push_back(halt);
      if (pred.diverges(spec, trial)) {
        trial.pop_back();
        body = std::move(trial);
      } else {
        i += chunk;
      }
    }
    if (chunk == 1) break;
  }

  lines = std::move(body);
  lines.push_back(halt);
}

bool mentions(const OpSpec& op, std::string_view needle) {
  for (const auto& st : op.action)
    if (st.find(needle) != std::string::npos) return true;
  for (const auto& st : op.sideEffects)
    if (st.find(needle) != std::string::npos) return true;
  return false;
}

bool anyOp(const MachineSpec& s, bool (*f)(const OpSpec&)) {
  for (const auto& field : s.fields)
    for (const auto& op : field.ops)
      if (f(op)) return true;
  return false;
}

/// Drops constraints that reference an operation name no longer present.
void pruneConstraints(MachineSpec& s) {
  auto known = [&](const std::string& ref) {
    for (const auto& f : s.fields)
      for (const auto& op : f.ops)
        if (ref == cat(f.name, ".", op.name)) return true;
    return false;
  };
  std::erase_if(s.constraints, [&](const ConstraintSpec& c) {
    return !known(c.a) || !known(c.b);
  });
}

/// One pass of machine-feature drops; returns true if anything was removed.
bool shrinkMachineOnce(MachineSpec& spec,
                       const std::vector<std::string>& lines,
                       Predicate& pred) {
  bool changed = false;

  for (std::size_t c = 0; c < spec.constraints.size();) {
    MachineSpec trial = spec;
    trial.constraints.erase(trial.constraints.begin() + c);
    if (pred.diverges(trial, lines)) {
      spec = std::move(trial);
      changed = true;
    } else {
      ++c;
    }
  }

  // Whole fields, last first (field 0 holds the halt operation and stays).
  for (std::size_t f = spec.fields.size(); f-- > 1;) {
    MachineSpec trial = spec;
    trial.fields.erase(trial.fields.begin() + f);
    pruneConstraints(trial);
    if (pred.diverges(trial, lines)) {
      spec = std::move(trial);
      changed = true;
    }
  }

  // Individual operations (nop and halt stay).
  for (std::size_t f = 0; f < spec.fields.size(); ++f) {
    for (std::size_t o = 0; o < spec.fields[f].ops.size();) {
      const OpSpec& op = spec.fields[f].ops[o];
      if (op.name == "nop" || op.isHalt) {
        ++o;
        continue;
      }
      MachineSpec trial = spec;
      trial.fields[f].ops.erase(trial.fields[f].ops.begin() + o);
      pruneConstraints(trial);
      if (pred.diverges(trial, lines)) {
        spec = std::move(trial);
        changed = true;
      } else {
        ++o;
      }
    }
  }

  // Side effects, one operation at a time.
  for (std::size_t f = 0; f < spec.fields.size(); ++f) {
    for (std::size_t o = 0; o < spec.fields[f].ops.size(); ++o) {
      if (spec.fields[f].ops[o].sideEffects.empty()) continue;
      MachineSpec trial = spec;
      trial.fields[f].ops[o].sideEffects.clear();
      if (pred.diverges(trial, lines)) {
        spec = std::move(trial);
        changed = true;
      }
    }
  }

  // Optional machine features, once nothing references them.
  auto tryFeature = [&](MachineSpec trial) {
    if (pred.diverges(trial, lines)) {
      spec = std::move(trial);
      changed = true;
    }
  };
  auto usesType = [&](const char* type) {
    for (const auto& f : spec.fields)
      for (const auto& op : f.ops)
        for (const auto& p : op.params)
          if (p.type == type) return true;
    return false;
  };
  if (spec.hasNonTerminal && !usesType("SRC")) {
    MachineSpec trial = spec;
    trial.hasNonTerminal = false;
    tryFeature(std::move(trial));
  }
  if (spec.simmWidth && !usesType("SIMM")) {
    MachineSpec trial = spec;
    trial.simmWidth = 0;
    tryFeature(std::move(trial));
  }
  if (spec.ccWidth &&
      !anyOp(spec, [](const OpSpec& op) { return mentions(op, "CARRY"); })) {
    MachineSpec trial = spec;
    trial.ccWidth = 0;
    trial.hasCarryAlias = false;
    tryFeature(std::move(trial));
  }
  if (spec.hasAcc &&
      !anyOp(spec, [](const OpSpec& op) { return mentions(op, "ACC"); })) {
    MachineSpec trial = spec;
    trial.hasAcc = false;
    tryFeature(std::move(trial));
  }
  if (spec.reg2Depth && !usesType("REG2") &&
      !anyOp(spec, [](const OpSpec& op) { return mentions(op, "RF2"); })) {
    MachineSpec trial = spec;
    trial.reg2Depth = 0;
    tryFeature(std::move(trial));
  }
  return changed;
}

}  // namespace

ShrinkResult shrinkFailure(const MachineSpec& spec,
                           const std::vector<std::string>& program,
                           const ShrinkOptions& opts) {
  ShrinkResult r;
  r.spec = spec;
  r.program = program;

  Predicate pred{opts, 0, {}};
  if (!pred.diverges(r.spec, r.program)) {
    r.oracleRuns = pred.runs;
    return r;  // not reproducible — return the input untouched
  }
  r.reproduced = true;
  r.divergence = pred.lastDivergence;

  shrinkProgram(r.spec, r.program, pred);
  while (shrinkMachineOnce(r.spec, r.program, pred)) {
  }
  shrinkProgram(r.spec, r.program, pred);  // feature drops may free lines

  r.divergence = pred.lastDivergence;
  r.oracleRuns = pred.runs;
  return r;
}

std::string renderRepro(const ShrinkResult& r) {
  std::string out;
  out += "# isdl-fuzz repro\n";
  out += cat("# seed: ", r.spec.seed, "\n");
  out += cat("# replay: isdl-fuzz --seed ", r.spec.seed,
             "  (or ISDL_FUZZ_SEED=", r.spec.seed, " in the test suite)\n");
  out += "#\n# divergence:\n";
  for (const auto& line : split(r.divergence, '\n'))
    out += cat("#   ", line, "\n");
  out += "\n# --- machine ------------------------------------------------\n";
  out += emitIsdl(r.spec);
  out += "\n# --- program ------------------------------------------------\n";
  for (const auto& line : r.program) out += cat(line, "\n");
  return out;
}

std::string writeRepro(const std::string& corpusDir, const ShrinkResult& r) {
  std::error_code ec;
  std::filesystem::create_directories(corpusDir, ec);
  std::string path = cat(corpusDir, "/seed-", r.spec.seed, ".repro.txt");
  std::ofstream out(path);
  if (!out) return "";
  out << renderRepro(r);
  return out.good() ? path : "";
}

}  // namespace isdl::testing
