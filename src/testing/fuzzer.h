// The conformance fuzz loop (ISDL-FUZZ part 5): glue over machinegen,
// programgen, oracle and shrink.
//
// Machines are generated from per-index seeds derived from one master seed
// (splitmix64 mixing), so results are deterministic and independent of the
// worker count — `--jobs 8` finds exactly the failures `--jobs 1` finds.
// Every failure carries its machine seed; replaying is
//
//   isdl-fuzz --seed <seed> --machines 1
//
// and the gtest property suites honour the same ISDL_FUZZ_SEED environment
// override (seedFromEnv), so one command reproduces any CI failure.

#ifndef ISDL_TESTING_FUZZER_H
#define ISDL_TESTING_FUZZER_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "testing/machinegen.h"
#include "testing/oracle.h"
#include "testing/shrink.h"

namespace isdl::testing {

struct FuzzConfig {
  std::uint64_t seed = 1;     ///< master seed (see seedFromEnv)
  double budgetSeconds = 0;   ///< wall-clock budget; 0 = exactly `machines`
  std::uint64_t machines = 25;     ///< machine count when no budget is set
  unsigned programsPerMachine = 4;
  unsigned programLength = 25;     ///< instructions per program (pre-halt)
  unsigned jobs = 1;               ///< worker threads; 0 = all hardware
  bool checkHardware = true;       ///< include the gatesim leg
  bool shrink = true;              ///< delta-debug failures
  std::string corpusDir;           ///< write repro files here ("" = don't)
  std::ostream* log = nullptr;     ///< progress / failure lines (optional)
  std::uint64_t maxCycles = 100000;
  MachineGenOptions gen;
};

/// One confirmed divergence, shrunk if FuzzConfig::shrink was set.
struct FuzzFailure {
  std::uint64_t machineSeed = 0;   ///< seed that regenerates the machine
  std::uint64_t machineIndex = 0;  ///< index under the master seed
  std::string divergence;          ///< oracle summary (original failure)
  ShrinkResult shrunk;             ///< minimal repro (== original if !shrink)
  std::string reproPath;           ///< corpus file, "" if not written
};

struct FuzzOutcome {
  std::uint64_t machines = 0;   ///< machine descriptions generated
  std::uint64_t pairs = 0;      ///< (machine, program) pairs compared
  std::uint64_t halted = 0;     ///< pairs that ran to the halt operation
  std::uint64_t trapped = 0;    ///< pairs stopped by an RTL trap
  std::uint64_t hardwareChecked = 0;  ///< pairs compared against gatesim
  std::uint64_t generatorErrors = 0;  ///< generated source the front end
                                      ///< rejected (always a bug)
  std::vector<FuzzFailure> failures;  ///< sorted by machineIndex

  bool ok() const { return failures.empty() && generatorErrors == 0; }
};

/// Reads ISDL_FUZZ_SEED from the environment; returns `fallback` when unset
/// or unparsable. Test suites call this so CI failures replay locally.
std::uint64_t seedFromEnv(std::uint64_t fallback);

/// splitmix64-mixes a lane index into a master seed (deterministic per-lane
/// streams regardless of worker scheduling).
std::uint64_t mixSeed(std::uint64_t seed, std::uint64_t lane);

/// Runs the fuzz loop. Per-pair obs counters (fuzz/pairs, fuzz/halted,
/// fuzz/divergence/*, ...) are merged into `registry` when given.
FuzzOutcome runFuzz(const FuzzConfig& cfg, obs::Registry* registry = nullptr);

}  // namespace isdl::testing

#endif  // ISDL_TESTING_FUZZER_H
