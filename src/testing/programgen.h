// Random program generation for conformance fuzzing (ISDL-FUZZ part 2).
//
// Two generators, exercising two different layers of the toolchain:
//
//   * randomEncodedProgram assembles instruction words directly through the
//     signature tables (sim/signature.h). It can reach operand patterns the
//     assembler's syntax never produces, so it is the widest net for the
//     execution engines. (Moved here from tests/fuzz_diff_test.cpp so gtest
//     and the isdl-fuzz driver share one generator.)
//
//   * randomAssemblyProgram renders assembly-source text from the machine's
//     own syntax tables — field-qualified mnemonics, enum spellings, decimal
//     immediates, non-terminal option syntax — so the assembler's lexing and
//     longest-match paths are fuzzed alongside the engines. The result is
//     retargeted per machine automatically: whatever the generated (or
//     hand-written) description declares is what gets rendered.
//
// Both generators exclude control-flow operations (anything assigning the
// PC), respect `never` constraints, and reject cross-field encoding
// conflicts, so every emitted program is assembleable and runs straight
// through to the terminating halt instruction.

#ifndef ISDL_TESTING_PROGRAMGEN_H
#define ISDL_TESTING_PROGRAMGEN_H

#include <random>
#include <string>
#include <vector>

#include "isdl/model.h"
#include "sim/xsim.h"

namespace isdl::testing {

/// True if the operation's action or side effects assign the program counter
/// (such operations are excluded from random straight-line programs).
bool operationTouchesPc(const Machine& m, const Operation& op);

/// The bare operation name of the machine's designated halt operation (from
/// optional-info `halt_operation = "F.op"`), or "" if none is declared.
std::string haltOperationName(const Machine& m);

/// Builds a random straight-line program: `length` instructions made of
/// randomly chosen non-control operations with random operands, then halt.
/// Instructions are assembled per-field via signatures, so every operand
/// pattern (not just assembler-reachable ones) is exercised.
sim::AssembledProgram randomEncodedProgram(const Machine& m,
                                           const sim::SignatureTable& sigs,
                                           std::mt19937& rng, unsigned length);

/// Builds a random program as assembly-source lines; the last line is the
/// halt instruction (omitted if the machine declares none). Bundles with
/// more than one field render as `{ F0.op ... | F1.op ... }`; mnemonics are
/// always field-qualified. Fields may be omitted only when they have a nop.
std::vector<std::string> randomAssemblyProgram(const Machine& m,
                                               const sim::SignatureTable& sigs,
                                               std::mt19937_64& rng,
                                               unsigned length);

}  // namespace isdl::testing

#endif  // ISDL_TESTING_PROGRAMGEN_H
