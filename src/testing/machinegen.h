// Grammar-driven random ISDL machine generator (ISDL-FUZZ part 1).
//
// The paper's two generated backends — the GENSIM simulator and the HGEN
// hardware model — are mutual oracles *for whatever description they are fed*.
// The bundled archs exercise a tiny fixed slice of the language, so this
// generator samples the description space instead: randomized storage
// widths/depths/latencies, VLIW field counts, token and non-terminal shapes,
// operation actions drawn from the RTL expression grammar, and constraints.
//
// Generation happens in two steps so failures can be shrunk structurally:
//   randomMachineSpec(rng)  ->  MachineSpec   (a feature-level description)
//   emitIsdl(spec)          ->  ISDL source   (rendered text)
// The emitted text goes through the real front end (lexer, parser, sema,
// signature table), so the generator also fuzzes width inference and the
// decoder-signature paths — and it is constructed to always be sema-clean:
// any front-end rejection of generated source is itself a reportable bug.
//
// Layout invariant: each field owns a contiguous region of the instruction
// word (opcode bits on top, parameters packed below), regions are disjoint,
// and opcodes within a field are distinct — which makes every description
// decodable and bundle assembly conflict-free by construction.

#ifndef ISDL_TESTING_MACHINEGEN_H
#define ISDL_TESTING_MACHINEGEN_H

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace isdl::testing {

/// One formal parameter of a generated operation.
struct ParamSpec {
  std::string name;
  std::string type;  ///< token or non-terminal name ("REG", "IMM", "SRC", ...)
};

/// One generated operation. Action/side-effect bodies are stored as rendered
/// RTL statement text (one statement per entry); the encoding is derived
/// from `opcode` plus the parameter list when the machine is emitted.
struct OpSpec {
  std::string name;
  std::uint64_t opcode = 0;  ///< within-field opcode value (distinct per op)
  std::vector<ParamSpec> params;
  std::vector<std::string> action;
  std::vector<std::string> sideEffects;
  unsigned cycle = 1, stall = 0, size = 1;
  unsigned latency = 1, usage = 1;
  bool isHalt = false;      ///< the designated halt operation (field 0)
  bool touchesPc = false;   ///< writes PC (excluded from random programs)
};

/// One VLIW field. `opcodeBits` is fixed at generation time so dropping
/// operations during shrinking never re-encodes the survivors.
struct FieldSpec {
  std::string name;
  unsigned opcodeBits = 4;
  std::vector<OpSpec> ops;  ///< ops[0] is always the nop
};

/// `never a & b;` between two field-qualified operation names ("F0.add").
struct ConstraintSpec {
  std::string a, b;
};

/// A feature-level machine description: everything emitIsdl needs, and the
/// granularity at which the shrinker (shrink.h) removes machine features.
struct MachineSpec {
  std::uint64_t seed = 0;  ///< RNG seed this spec was generated from
  std::string name = "FUZZ";

  unsigned regWidth = 16;   ///< RF element width (all ALU expressions)
  unsigned regDepth = 8;    ///< RF locations (power of two)
  unsigned dmWidth = 16;    ///< data-memory width (<= regWidth)
  unsigned dmDepth = 32;    ///< data-memory locations (power of two)
  unsigned imemDepth = 256; ///< instruction-memory locations
  unsigned pcWidth = 16;
  unsigned ccWidth = 0;     ///< control register (0 = absent)
  bool hasCarryAlias = false;  ///< alias CARRY = CC[0:0]
  bool hasAcc = false;         ///< plain register ACC width regWidth
  unsigned reg2Depth = 0;      ///< second register file RF2 (0 = absent)

  unsigned immWidth = 8;    ///< unsigned immediate token IMM
  unsigned simmWidth = 0;   ///< signed immediate token SIMM (0 = absent)
  bool hasNonTerminal = false;  ///< SRC (register | "#" immediate) operand

  std::vector<FieldSpec> fields;
  std::vector<ConstraintSpec> constraints;
};

/// Options bounding the sampled description space.
struct MachineGenOptions {
  unsigned maxFields = 3;        ///< 1..3 VLIW fields
  unsigned maxOpsPerField = 5;   ///< non-nop operations per field
  unsigned maxConstraints = 2;
  unsigned maxExprDepth = 3;     ///< RTL expression nesting in actions
};

/// Samples a random machine spec. Deterministic in `rng`'s state.
MachineSpec randomMachineSpec(std::mt19937_64& rng,
                              const MachineGenOptions& opts = {});

/// Renders the spec as ISDL source text (always sema-clean by construction).
std::string emitIsdl(const MachineSpec& spec);

}  // namespace isdl::testing

#endif  // ISDL_TESTING_MACHINEGEN_H
