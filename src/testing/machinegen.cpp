#include "testing/machinegen.h"

#include <algorithm>

#include "isdl/sema.h"
#include "support/strings.h"

namespace isdl::testing {

namespace {

using isdl::addressBits;

/// Uniform integer in [lo, hi].
unsigned pick(std::mt19937_64& rng, unsigned lo, unsigned hi) {
  return lo + unsigned(rng() % (hi - lo + 1));
}

bool coin(std::mt19937_64& rng, unsigned percent) {
  return rng() % 100 < percent;
}

template <typename T>
T choose(std::mt19937_64& rng, std::initializer_list<T> xs) {
  auto it = xs.begin();
  std::advance(it, rng() % xs.size());
  return *it;
}

/// Renders random RTL expressions of a fixed width from a pool of atoms
/// (parameter reads, storage reads, sized constants). Everything is emitted
/// with explicit zext/sext/trunc conversions, so the result always passes
/// the strict width discipline of sema.
class ExprGen {
 public:
  ExprGen(std::mt19937_64& rng, unsigned width, std::vector<std::string> atoms,
          unsigned maxDepth)
      : rng_(rng), width_(width), atoms_(std::move(atoms)),
        maxDepth_(maxDepth) {}

  std::string atom() {
    // A sized constant is always available even with an empty atom pool.
    if (atoms_.empty() || coin(rng_, 20))
      return cat(width_, "'d", rng_() & ((width_ >= 64) ? ~0ull
                                         : ((1ull << width_) - 1)));
    return atoms_[rng_() % atoms_.size()];
  }

  std::string expr(unsigned depth = 0) {
    if (depth >= maxDepth_ || coin(rng_, 30)) return atom();
    switch (rng_() % 8) {
      case 0:
      case 1:
      case 2: {  // plain binary ALU op
        const char* op = choose(rng_, {"+", "-", "&", "|", "^", "*"});
        return cat("(", expr(depth + 1), " ", op, " ", expr(depth + 1), ")");
      }
      case 3: {  // shift by a small sized constant
        const char* op = choose(rng_, {"<<", ">>", ">>>"});
        unsigned amt = pick(rng_, 1, std::min(7u, width_ - 1));
        return cat("(", expr(depth + 1), " ", op, " 3'd", amt, ")");
      }
      case 4:  // bitwise not
        return cat("(~", expr(depth + 1), ")");
      case 5: {  // comparison-steered ternary
        const char* cmp = choose(rng_, {"==", "!=", "<", "<=", ">", ">="});
        return cat("((", expr(depth + 1), " ", cmp, " ", expr(depth + 1),
                   ") ? ", expr(depth + 1), " : ", expr(depth + 1), ")");
      }
      case 6: {  // slice of an atom, zero-extended back to width
        unsigned hi = pick(rng_, 0, width_ - 1);
        unsigned lo = pick(rng_, 0, hi);
        return cat("zext(", atom(), "[", hi, ":", lo, "], ", width_, ")");
      }
      default:  // truncate-and-extend round trip (exercises width inference)
      {
        unsigned w = pick(rng_, 1, width_);
        return cat("zext(trunc(", expr(depth + 1), ", ", w, "), ", width_,
                   ")");
      }
    }
  }

  /// A 1-bit condition.
  std::string cond() {
    const char* cmp = choose(rng_, {"==", "!=", "<", ">="});
    return cat("(", expr(1), " ", cmp, " ", expr(1), ")");
  }

 private:
  std::mt19937_64& rng_;
  unsigned width_;
  std::vector<std::string> atoms_;
  unsigned maxDepth_;
};

/// Random costs/timing for one operation. Latency-2 results pair with a
/// non-zero stall budget (the ILS's interlock), usage-2 units create
/// structural hazards — both feed the stall-accounting comparison.
void randomCosts(std::mt19937_64& rng, OpSpec& op) {
  op.cycle = pick(rng, 1, 2);
  op.latency = coin(rng, 25) ? 2 : 1;
  op.stall = op.latency > 1 ? 1 : 0;
  op.usage = coin(rng, 20) ? 2 : 1;
}

}  // namespace

MachineSpec randomMachineSpec(std::mt19937_64& rng,
                              const MachineGenOptions& opts) {
  MachineSpec s;
  s.regWidth = choose(rng, {8u, 12u, 16u, 24u, 32u});
  s.regDepth = choose(rng, {4u, 8u, 16u});
  s.dmWidth = std::min(s.regWidth, choose(rng, {8u, 12u, 16u, 24u, 32u}));
  s.dmDepth = choose(rng, {16u, 32u, 64u});
  s.imemDepth = choose(rng, {128u, 256u});
  s.pcWidth = std::max(pick(rng, 8, 16), addressBits(s.imemDepth));
  s.ccWidth = coin(rng, 60) ? pick(rng, 1, 4) : 0;
  s.hasCarryAlias = s.ccWidth > 0;
  s.immWidth = pick(rng, 4, std::min(8u, s.regWidth));
  s.simmWidth = coin(rng, 50) ? pick(rng, 4, std::min(8u, s.regWidth)) : 0;
  s.hasNonTerminal = coin(rng, 60);

  unsigned numFields = pick(rng, 1, std::max(1u, opts.maxFields));
  s.reg2Depth = numFields >= 2 ? choose(rng, {4u, 8u}) : 0;
  s.hasAcc = numFields >= 3 || coin(rng, 40);

  const unsigned rw = s.regWidth;
  const unsigned regBits = addressBits(s.regDepth);
  const unsigned dmBits = addressBits(s.dmDepth);

  // Atom pools per parameter shape, filled as parameters are declared.
  auto immAtom = [&](const std::string& p, bool sgn) {
    return cat(sgn ? "sext(" : "zext(", p, ", ", rw, ")");
  };

  for (unsigned f = 0; f < numFields; ++f) {
    FieldSpec field;
    field.name = cat("F", f);
    OpSpec nop;
    nop.name = "nop";
    field.ops.push_back(std::move(nop));

    unsigned numOps = pick(rng, 1, std::max(1u, opts.maxOpsPerField));
    std::uint64_t opcode = 1;
    for (unsigned o = 0; o < numOps; ++o) {
      OpSpec op;
      op.opcode = opcode++;
      randomCosts(rng, op);

      // Destination storage is partitioned per field (F0 -> RF, F1 -> RF2,
      // F2 -> ACC) so bundled fields never race on the same write port —
      // same-cycle overlapping writes are a description bug the engine traps
      // on, and we want most generated programs to reach the hardware
      // comparison rather than stop at a trap.
      std::string dest;
      std::vector<std::string> atoms;
      if (f == 0) {
        op.params.push_back({"d", "REG"});
        dest = "RF[d]";
        op.params.push_back({"a", "REG"});
        atoms.push_back("RF[a]");
        if (coin(rng, 70)) {
          op.params.push_back({"b", "REG"});
          atoms.push_back("RF[b]");
        }
      } else if (f == 1) {
        op.params.push_back({"d", "REG2"});
        dest = "RF2[d]";
        op.params.push_back({"a", "REG2"});
        atoms.push_back("RF2[a]");
        if (coin(rng, 60)) {
          op.params.push_back({"b", "REG"});
          atoms.push_back("RF[b]");
        }
      } else {
        dest = "ACC";
        atoms.push_back("ACC");
        if (coin(rng, 70)) {
          op.params.push_back({"a", "REG2"});
          atoms.push_back("RF2[a]");
        }
        if (coin(rng, 50)) {
          op.params.push_back({"b", "REG"});
          atoms.push_back("RF[b]");
        }
      }
      if (s.hasAcc && f == 0 && coin(rng, 30)) atoms.push_back("ACC");
      if (coin(rng, 40)) {
        if (s.simmWidth && coin(rng, 50)) {
          op.params.push_back({"i", "SIMM"});
          atoms.push_back(immAtom("i", true));
        } else {
          op.params.push_back({"i", "IMM"});
          atoms.push_back(immAtom("i", false));
        }
      }
      if (f == 0 && s.hasNonTerminal && coin(rng, 40)) {
        op.params.push_back({"s", "SRC"});
        atoms.push_back("s");
      }
      // A fixed register element read, for variety.
      if (coin(rng, 25))
        atoms.push_back(cat("RF[", regBits, "'d", rng() % s.regDepth, "]"));

      ExprGen gen(rng, rw, atoms, opts.maxExprDepth);
      unsigned shape = unsigned(rng() % 10);
      if (f == 0 && shape < 2) {
        // Load: RF[d] <- DM[RF[a] address], with explicit width conversion.
        op.name = cat("ld", o);
        std::string addr = cat("RF[a][", dmBits - 1, ":0]");
        std::string val = cat("DM[", addr, "]");
        if (s.dmWidth < rw) val = cat("zext(", val, ", ", rw, ")");
        op.action.push_back(cat("RF[d] <- ", val, ";"));
        op.latency = 2;
        op.stall = 1;
      } else if (f == 0 && shape == 2) {
        // Store: DM[RF[a] address] <- RF[b or a].
        op.name = cat("st", o);
        std::string addr = cat("RF[a][", dmBits - 1, ":0]");
        std::string val = op.params.size() > 2 && op.params[2].name == "b"
                              ? "RF[b]"
                              : "RF[a]";
        if (s.dmWidth < rw) val = cat("trunc(", val, ", ", s.dmWidth, ")");
        op.action.push_back(cat("DM[", addr, "] <- ", val, ";"));
        op.params.erase(op.params.begin());  // no destination register
      } else if (f == 0 && shape == 3 && coin(rng, 60)) {
        // Branch: compare-and-set PC. Excluded from random programs
        // (touchesPc) but still exercises decode/datapath generation.
        op.name = cat("br", o);
        op.params = {{"a", "REG"}, {"b", "REG"}, {"t", "IMM"}};
        op.action.push_back(cat("if (RF[a] == RF[b]) { PC <- zext(t, ",
                                s.pcWidth, "); }"));
        op.cycle = 2;
        op.latency = 1;  // PC writes are immediate: no delayed-result timing
        op.stall = 0;
        op.usage = 1;
        op.touchesPc = true;
      } else if (shape < 6) {
        // Straight ALU assignment.
        op.name = cat("alu", o);
        op.action.push_back(cat(dest, " <- ", gen.expr(), ";"));
      } else {
        // Conditional assignment, optionally with an else branch.
        op.name = cat("sel", o);
        if (coin(rng, 50)) {
          op.action.push_back(cat("if ", gen.cond(), " { ", dest, " <- ",
                                  gen.expr(), "; } else { ", dest, " <- ",
                                  gen.expr(), "; }"));
        } else {
          op.action.push_back(
              cat("if ", gen.cond(), " { ", dest, " <- ", gen.expr(), "; }"));
        }
      }

      // Carry side effect (field 0 only: CC has a single write port).
      if (f == 0 && s.hasCarryAlias && !op.touchesPc && coin(rng, 30)) {
        const char* fn = choose(rng, {"carry", "borrow", "overflow"});
        op.sideEffects.push_back(
            cat("CARRY <- ", fn, "(", gen.atom(), ", ", gen.atom(), ");"));
      }
      field.ops.push_back(std::move(op));
    }

    if (f == 0) {
      OpSpec halt;
      halt.name = "halt";
      halt.isHalt = true;
      field.ops.push_back(std::move(halt));
    }

    // Opcode bits: enough for every allocated opcode, plus the halt slot.
    std::uint64_t maxCode = 0;
    for (auto& op : field.ops) maxCode = std::max(maxCode, op.opcode);
    field.opcodeBits = std::max(2u, addressBits(maxCode + 2));
    if (f == 0) {
      // Halt takes the all-ones opcode, guaranteed distinct from the rest.
      field.ops.back().opcode = (1ull << field.opcodeBits) - 1;
    }
    s.fields.push_back(std::move(field));
  }

  // Random `never` constraints between non-nop, non-halt ops of two fields.
  if (s.fields.size() >= 2) {
    unsigned n = pick(rng, 0, opts.maxConstraints);
    for (unsigned c = 0; c < n; ++c) {
      unsigned fa = unsigned(rng() % s.fields.size());
      unsigned fb = unsigned(rng() % s.fields.size());
      if (fa == fb) continue;
      auto pickOp = [&](const FieldSpec& fs) -> const OpSpec* {
        std::vector<const OpSpec*> eligible;
        for (auto& op : fs.ops)
          if (op.name != "nop" && !op.isHalt) eligible.push_back(&op);
        if (eligible.empty()) return nullptr;
        return eligible[rng() % eligible.size()];
      };
      const OpSpec* oa = pickOp(s.fields[fa]);
      const OpSpec* ob = pickOp(s.fields[fb]);
      if (!oa || !ob) continue;
      ConstraintSpec cs{cat(s.fields[fa].name, ".", oa->name),
                        cat(s.fields[fb].name, ".", ob->name)};
      bool dup = false;
      for (auto& existing : s.constraints)
        if ((existing.a == cs.a && existing.b == cs.b) ||
            (existing.a == cs.b && existing.b == cs.a))
          dup = true;
      if (!dup) s.constraints.push_back(std::move(cs));
    }
  }
  return s;
}

// --- rendering -----------------------------------------------------------------

namespace {

unsigned paramEncWidth(const MachineSpec& s, const ParamSpec& p) {
  if (p.type == "REG") return addressBits(s.regDepth);
  if (p.type == "REG2") return addressBits(s.reg2Depth);
  if (p.type == "IMM") return s.immWidth;
  if (p.type == "SIMM") return s.simmWidth;
  // SRC non-terminal return width: tag bit + the wider of its two payloads.
  return 1 + std::max(addressBits(s.regDepth), s.immWidth);
}

/// Region width a field needs: opcode bits plus its widest parameter list.
unsigned fieldRegionWidth(const MachineSpec& s, const FieldSpec& f) {
  unsigned maxParams = 0;
  for (const auto& op : f.ops) {
    unsigned sum = 0;
    for (const auto& p : op.params) sum += paramEncWidth(s, p);
    maxParams = std::max(maxParams, sum);
  }
  return f.opcodeBits + maxParams;
}

}  // namespace

std::string emitIsdl(const MachineSpec& s) {
  // Disjoint per-field bit regions, field 0 topmost.
  std::vector<unsigned> regionHi(s.fields.size());
  unsigned wordWidth = 0;
  for (const auto& f : s.fields) wordWidth += fieldRegionWidth(s, f);
  {
    unsigned hi = wordWidth - 1;
    for (std::size_t f = 0; f < s.fields.size(); ++f) {
      regionHi[f] = hi;
      hi -= fieldRegionWidth(s, s.fields[f]);
    }
  }

  std::string out;
  out += cat("machine ", s.name, " {\n");
  out += cat("  section format { word_width = ", wordWidth, "; }\n\n");

  out += "  section storage {\n";
  out += cat("    instruction_memory IM width ", wordWidth, " depth ",
             s.imemDepth, ";\n");
  out += cat("    data_memory DM width ", s.dmWidth, " depth ", s.dmDepth,
             ";\n");
  out += cat("    register_file RF width ", s.regWidth, " depth ", s.regDepth,
             ";\n");
  if (s.reg2Depth)
    out += cat("    register_file RF2 width ", s.regWidth, " depth ",
               s.reg2Depth, ";\n");
  if (s.hasAcc) out += cat("    register ACC width ", s.regWidth, ";\n");
  if (s.ccWidth) out += cat("    control_register CC width ", s.ccWidth, ";\n");
  out += cat("    program_counter PC width ", s.pcWidth, ";\n");
  if (s.hasCarryAlias) out += "    alias CARRY = CC[0:0];\n";
  out += "  }\n\n";

  out += "  section global_definitions {\n";
  out += cat("    token REG enum width ", addressBits(s.regDepth),
             " prefix \"R\" range 0 .. ", s.regDepth - 1, ";\n");
  if (s.reg2Depth)
    out += cat("    token REG2 enum width ", addressBits(s.reg2Depth),
               " prefix \"Q\" range 0 .. ", s.reg2Depth - 1, ";\n");
  out += cat("    token IMM immediate unsigned width ", s.immWidth, ";\n");
  if (s.simmWidth)
    out += cat("    token SIMM immediate signed width ", s.simmWidth, ";\n");
  if (s.hasNonTerminal) {
    unsigned k = addressBits(s.regDepth);
    unsigned w = 1 + std::max(k, s.immWidth);
    auto pad = [&](unsigned used) {
      // Zero-fill between the tag bit and the payload, when the payload is
      // narrower than the widest option's.
      if (w - 1 > used)
        return cat("$$[", w - 2, ":", used, "] = ", w - 1 - used, "'d0; ");
      return std::string();
    };
    out += cat("    nonterminal SRC returns width ", w, " {\n");
    out += cat("      option reg(r: REG) {\n        syntax r;\n",
               "        encode { $$[", w - 1, "] = 0; ", pad(k), "$$[", k - 1,
               ":0] = r; }\n        value { RF[r] }\n      }\n");
    out += cat("      option imm(i: IMM) {\n        syntax \"#\" i;\n",
               "        encode { $$[", w - 1, "] = 1; ", pad(s.immWidth),
               "$$[", s.immWidth - 1, ":0] = i; }\n        value { zext(i, ",
               s.regWidth, ") }\n      }\n");
    out += "    }\n";
  }
  out += "  }\n\n";

  out += "  section instruction_set {\n";
  for (std::size_t f = 0; f < s.fields.size(); ++f) {
    const FieldSpec& field = s.fields[f];
    out += cat("    field ", field.name, " {\n");
    for (const auto& op : field.ops) {
      out += cat("      operation ", op.name, "(");
      for (std::size_t p = 0; p < op.params.size(); ++p)
        out += cat(p ? ", " : "", op.params[p].name, ": ", op.params[p].type);
      out += ") {\n";

      unsigned hi = regionHi[f];
      out += cat("        encode { inst[", hi, ":", hi - field.opcodeBits + 1,
                 "] = ", field.opcodeBits, "'d", op.opcode, ";");
      unsigned cursor = hi - field.opcodeBits;
      for (const auto& p : op.params) {
        unsigned w = paramEncWidth(s, p);
        out += cat(" inst[", cursor, ":", cursor - w + 1, "] = ", p.name, ";");
        cursor -= w;
      }
      out += " }\n";

      if (!op.action.empty()) {
        out += "        action {";
        for (const auto& stmt : op.action) out += cat(" ", stmt);
        out += " }\n";
      }
      for (const auto& se : op.sideEffects)
        out += cat("        side_effect { ", se, " }\n");
      if (op.cycle != 1 || op.stall != 0)
        out += cat("        costs { cycle = ", op.cycle, "; stall = ",
                   op.stall, "; }\n");
      if (op.latency != 1 || op.usage != 1)
        out += cat("        timing { latency = ", op.latency, "; usage = ",
                   op.usage, "; }\n");
      out += "      }\n";
    }
    out += "    }\n";
  }
  out += "  }\n\n";

  if (!s.constraints.empty()) {
    out += "  section constraints {\n";
    for (const auto& c : s.constraints)
      out += cat("    never ", c.a, " & ", c.b, ";\n");
    out += "  }\n\n";
  }

  out += "  section optional {\n";
  out += cat("    halt_operation = \"", s.fields[0].name, ".halt\";\n");
  out += cat("    description = \"generated conformance-fuzz machine (seed ",
             s.seed, ")\";\n");
  out += "  }\n}\n";
  return out;
}

}  // namespace isdl::testing
