// The differential oracle (ISDL-FUZZ part 3).
//
// The paper's central claim — GENSIM's simulator and HGEN's hardware model
// are two independent backends of one ISDL description — makes the backends
// mutual oracles. This header packages that check as a reusable comparator
// shared by the gtest suites (fuzz_diff_test, cosim_test) and the isdl-fuzz
// driver:
//
//   interp engine  ==  uop engine     exact: stop reason/message, cycles,
//                                     stall attribution, all storage bits
//   interp engine  ==  gatesim(HGEN)  on halting runs: all storage bits,
//                                     retired instructions, and the cycle
//                                     identity  xsim cycles ==
//                                       hw cycle_count + data + struct stalls
//
// Runtime traps (RuntimeError) skip the hardware comparison: the hardware
// model has no trap architecture, but the two software engines must still
// agree on the trap and everything leading up to it.

#ifndef ISDL_TESTING_ORACLE_H
#define ISDL_TESTING_ORACLE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/datapath.h"
#include "isdl/model.h"
#include "obs/registry.h"
#include "sim/xsim.h"

namespace isdl::testing {

struct OracleOptions {
  std::uint64_t maxCycles = 100000;
  bool checkHardware = true;   ///< include the HGEN->netlist->gatesim leg
  bool applySharing = true;    ///< run resource sharing on the hardware model
  obs::Registry* registry = nullptr;  ///< divergence counters (optional)
};

/// Outcome of one (machine, program) comparison. Each divergence is one
/// human-readable line; empty means all engines agreed.
struct OracleReport {
  sim::StopReason reason = sim::StopReason::MaxCycles;  ///< interp's stop
  bool hardwareChecked = false;
  std::vector<std::string> divergences;

  bool ok() const { return divergences.empty(); }
  std::string summary() const;  ///< divergences joined with newlines
};

/// Per-machine oracle: builds both engines (and, lazily, the hardware model)
/// once, then compares any number of programs. The Machine must outlive the
/// oracle.
class DifferentialOracle {
 public:
  explicit DifferentialOracle(const Machine& m, OracleOptions opts = {});
  ~DifferentialOracle();

  OracleReport run(const sim::AssembledProgram& prog);

  const sim::SignatureTable& signatures() const { return uop_.signatures(); }
  const Machine& machine() const { return *m_; }

 private:
  const Machine* m_;
  OracleOptions opts_;
  sim::Xsim uop_;
  sim::Xsim interp_;
  std::unique_ptr<hw::HwModel> model_;  ///< built on first halting run
};

// --- comparator pieces (also used directly by the gtest suites) -------------

/// Appends a line per storage location where the two engines' final
/// architectural state differs.
void compareFinalState(const Machine& m, const sim::Xsim& a,
                       const sim::Xsim& b, const char* aName,
                       const char* bName, std::vector<std::string>& out);

/// Appends a line per differing cycle/instruction/stall-attribution stat.
void compareStats(const sim::Stats& a, const sim::Stats& b, const char* aName,
                  const char* bName, std::vector<std::string>& out);

/// Runs `prog` on the hardware model and appends a line per mismatch against
/// the (already run and drained) reference simulator: storage bits, retired
/// instructions, the cycle identity, and the illegal-decode net.
void compareWithHardware(const Machine& m, const sim::Xsim& ref,
                         const hw::HwModel& model,
                         const sim::AssembledProgram& prog,
                         std::uint64_t maxCycles,
                         std::vector<std::string>& out);

}  // namespace isdl::testing

#endif  // ISDL_TESTING_ORACLE_H
