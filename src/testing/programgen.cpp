#include "testing/programgen.h"

#include <functional>

#include "support/strings.h"

namespace isdl::testing {

bool operationTouchesPc(const Machine& m, const Operation& op) {
  bool touches = false;
  auto scan = [&](const rtl::Stmt& s, auto&& self) -> void {
    if (s.kind == rtl::StmtKind::Assign) {
      if (!s.dest.isParam &&
          static_cast<int>(s.dest.storageIndex) == m.pcIndex)
        touches = true;
      return;
    }
    for (const auto& t : s.thenStmts) self(*t, self);
    for (const auto& t : s.elseStmts) self(*t, self);
  };
  for (const auto& s : op.action) scan(*s, scan);
  for (const auto& s : op.sideEffects) scan(*s, scan);
  return touches;
}

std::string haltOperationName(const Machine& m) {
  auto it = m.optionalInfo.find("halt_operation");
  if (it == m.optionalInfo.end()) return "";
  return it->second.substr(it->second.find('.') + 1);
}

sim::AssembledProgram randomEncodedProgram(const Machine& m,
                                           const sim::SignatureTable& sigs,
                                           std::mt19937& rng,
                                           unsigned length) {
  const std::string haltOpName = haltOperationName(m);

  // Random encoded value for one parameter (recursing into non-terminals).
  std::function<BitVector(const Param&)> randomParam =
      [&](const Param& p) -> BitVector {
    if (p.kind == ParamKind::Token) {
      const TokenDef& tok = m.tokens[p.index];
      if (tok.kind == TokenKind::Enum) {
        const TokenMember& member = tok.members[rng() % tok.members.size()];
        return BitVector(tok.width, member.value);
      }
      return BitVector(tok.width, rng());
    }
    const NonTerminal& nt = m.nonTerminals[p.index];
    unsigned o = unsigned(rng() % nt.options.size());
    const NtOption& opt = nt.options[o];
    std::vector<BitVector> sub;
    for (const auto& q : opt.params) sub.push_back(randomParam(q));
    BitVector ret(nt.returnWidth);
    sigs.ntOption(p.index, o).assemble(ret, sub);
    return ret;
  };

  sim::AssembledProgram prog;
  const unsigned wordWidth = m.wordWidth;
  for (unsigned i = 0; i < length; ++i) {
    // Retry until a constraint-satisfying, conflict-free combination lands.
    for (int attempt = 0; attempt < 100; ++attempt) {
      std::vector<int> choice(m.fields.size());
      bool ok = true;
      for (std::size_t f = 0; f < m.fields.size() && ok; ++f) {
        for (int tries = 0; tries < 50; ++tries) {
          int o = int(rng() % m.fields[f].operations.size());
          const Operation& op = m.fields[f].operations[o];
          if (op.name == haltOpName || operationTouchesPc(m, op) ||
              op.costs.size != 1)
            continue;
          choice[f] = o;
          goto fieldDone;
        }
        ok = false;
      fieldDone:;
      }
      if (!ok || !m.satisfiesConstraints(choice)) continue;

      // Paint, rejecting cross-field bit conflicts.
      BitVector word(wordWidth);
      BitVector painted(wordWidth);
      bool conflict = false;
      for (std::size_t f = 0; f < m.fields.size() && !conflict; ++f) {
        const Operation& op = m.fields[f].operations[choice[f]];
        const sim::Signature& sig =
            sigs.operation(unsigned(f), unsigned(choice[f]));
        BitVector mask = sig.careMask().or_(sig.paramMask());
        if (!mask.and_(painted).isZero()) {
          conflict = true;
          break;
        }
        std::vector<BitVector> params;
        for (const auto& p : op.params) params.push_back(randomParam(p));
        sig.assemble(word, params);
        painted = painted.or_(mask);
      }
      if (conflict) continue;
      prog.words.push_back(word);
      break;
    }
  }
  // Terminate: assemble the halt instruction via nops + halt op.
  {
    BitVector word(wordWidth);
    for (std::size_t f = 0; f < m.fields.size(); ++f) {
      int o = m.fields[f].nopIndex;
      for (std::size_t k = 0; k < m.fields[f].operations.size(); ++k)
        if (m.fields[f].operations[k].name == haltOpName)
          o = static_cast<int>(k);
      if (o < 0) continue;
      sigs.operation(unsigned(f), unsigned(o)).assemble(word, {});
    }
    prog.words.push_back(word);
  }
  return prog;
}

namespace {

/// Renders one parameter value as assembly text (recursing through
/// non-terminal option syntax). Atoms are space-separated; the assembler's
/// lexer re-tokenizes, so spacing is free.
std::string renderParam(const Machine& m, const Param& p,
                        std::mt19937_64& rng) {
  if (p.kind == ParamKind::Token) {
    const TokenDef& tok = m.tokens[p.index];
    if (tok.kind == TokenKind::Enum)
      return tok.members[rng() % tok.members.size()].syntax;
    // Immediate: any value in the token's literal range, rendered decimal.
    const unsigned w = tok.width >= 64 ? 63 : tok.width;
    const std::uint64_t mask = (std::uint64_t(1) << w) - 1;
    std::uint64_t bits = rng() & mask;
    if (tok.isSigned) {
      std::int64_t v = std::int64_t(bits << (64 - w)) >> (64 - w);
      return std::to_string(v);
    }
    return std::to_string(bits);
  }
  const NonTerminal& nt = m.nonTerminals[p.index];
  const NtOption& opt = nt.options[rng() % nt.options.size()];
  std::vector<std::string> atoms;
  for (const auto& item : opt.syntax)
    atoms.push_back(item.isLiteral
                        ? item.literal
                        : renderParam(m, opt.params[item.paramIndex], rng));
  return join(atoms, " ");
}

/// Renders one operation instance: field-qualified mnemonic + operands.
std::string renderOperation(const Machine& m, unsigned f, const Operation& op,
                            std::mt19937_64& rng) {
  std::string out = cat(m.fields[f].name, ".", op.name);
  for (const auto& item : op.syntax) {
    out += ' ';
    out += item.isLiteral ? item.literal
                          : renderParam(m, op.params[item.paramIndex], rng);
  }
  return out;
}

}  // namespace

std::vector<std::string> randomAssemblyProgram(const Machine& m,
                                               const sim::SignatureTable& sigs,
                                               std::mt19937_64& rng,
                                               unsigned length) {
  const std::string haltOpName = haltOperationName(m);

  // Eligible (non-control, single-word, non-halt) operations per field.
  std::vector<std::vector<unsigned>> eligible(m.fields.size());
  int haltField = -1, haltOp = -1;
  for (std::size_t f = 0; f < m.fields.size(); ++f) {
    for (std::size_t o = 0; o < m.fields[f].operations.size(); ++o) {
      const Operation& op = m.fields[f].operations[o];
      if (op.name == haltOpName) {
        haltField = int(f);
        haltOp = int(o);
        continue;
      }
      if (operationTouchesPc(m, op) || op.costs.size != 1) continue;
      eligible[f].push_back(unsigned(o));
    }
  }

  std::vector<std::string> lines;
  for (unsigned i = 0; i < length; ++i) {
    for (int attempt = 0; attempt < 100; ++attempt) {
      // Pick a subset of fields (70% each); fields without a nop cannot be
      // omitted in assembly, so they are always included when possible.
      std::vector<int> choice(m.fields.size(), -1);
      unsigned included = 0;
      for (std::size_t f = 0; f < m.fields.size(); ++f) {
        if (eligible[f].empty()) continue;
        bool mustInclude = m.fields[f].nopIndex < 0;
        if (!mustInclude && rng() % 10 >= 7) continue;
        choice[f] = int(eligible[f][rng() % eligible[f].size()]);
        ++included;
      }
      if (included == 0) continue;
      if (!m.satisfiesConstraints(choice)) continue;

      // Reject cross-field encoding conflicts (absent fields contribute
      // their nop's bits, exactly as the assembler will place them).
      BitVector painted(m.wordWidth);
      bool conflict = false;
      for (std::size_t f = 0; f < m.fields.size() && !conflict; ++f) {
        int o = choice[f] >= 0 ? choice[f] : m.fields[f].nopIndex;
        if (o < 0) continue;
        const sim::Signature& sig = sigs.operation(unsigned(f), unsigned(o));
        BitVector mask = sig.careMask().or_(sig.paramMask());
        if (!mask.and_(painted).isZero())
          conflict = true;
        else
          painted = painted.or_(mask);
      }
      if (conflict) continue;

      std::vector<std::string> slots;
      for (std::size_t f = 0; f < m.fields.size(); ++f)
        if (choice[f] >= 0)
          slots.push_back(renderOperation(
              m, unsigned(f), m.fields[f].operations[choice[f]], rng));
      lines.push_back(slots.size() == 1
                          ? slots[0]
                          : cat("{ ", join(slots, " | "), " }"));
      break;
    }
  }
  if (haltField >= 0)
    lines.push_back(renderOperation(
        m, unsigned(haltField),
        m.fields[haltField].operations[unsigned(haltOp)], rng));
  return lines;
}

}  // namespace isdl::testing
