#include "testing/fuzzer.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <ostream>

#include "explore/pool.h"
#include "isdl/parser.h"
#include "isdl/sema.h"
#include "sim/assembler.h"
#include "support/strings.h"
#include "testing/programgen.h"

namespace isdl::testing {

std::uint64_t seedFromEnv(std::uint64_t fallback) {
  const char* env = std::getenv("ISDL_FUZZ_SEED");
  if (!env || !*env) return fallback;
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 0);
  if (end == env || *end != '\0') return fallback;
  return v;
}

std::uint64_t mixSeed(std::uint64_t seed, std::uint64_t lane) {
  // splitmix64 finalizer over seed+lane: cheap, well-distributed, and
  // deterministic per lane regardless of scheduling.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (lane + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

/// Everything one machine index produced; merged in index order so the
/// outcome is independent of worker scheduling.
struct MachineResult {
  bool ran = false;
  std::uint64_t pairs = 0, halted = 0, trapped = 0, hardwareChecked = 0;
  bool generatorError = false;
  std::vector<FuzzFailure> failures;
};

MachineResult fuzzOneMachine(const FuzzConfig& cfg, std::uint64_t index,
                             obs::Registry* registry, std::mutex& logMu) {
  MachineResult res;
  res.ran = true;

  // Index 0 uses the master seed verbatim so the logged replay command
  // (`isdl-fuzz --seed <machineSeed> --machines 1`) regenerates exactly the
  // machine that failed.
  const std::uint64_t machineSeed =
      index == 0 ? cfg.seed : mixSeed(cfg.seed, index);
  std::mt19937_64 rng(machineSeed);
  MachineSpec spec = randomMachineSpec(rng, cfg.gen);
  spec.seed = machineSeed;
  spec.name = cat("FUZZ", index);

  auto logLine = [&](const std::string& line) {
    if (!cfg.log) return;
    std::lock_guard<std::mutex> lock(logMu);
    *cfg.log << line << "\n";
  };

  const std::string source = emitIsdl(spec);
  DiagnosticEngine diags;
  auto machine = parseIsdl(source, diags);
  if (!machine || !checkMachine(*machine, diags)) {
    res.generatorError = true;
    logLine(cat("[isdl-fuzz] seed ", machineSeed,
                ": generated description rejected by the front end:\n",
                diags.dump()));
    return res;
  }

  OracleOptions oopts;
  oopts.maxCycles = cfg.maxCycles;
  oopts.checkHardware = cfg.checkHardware;
  oopts.registry = registry;

  try {
    DifferentialOracle oracle(*machine, oopts);
    sim::Assembler assembler(oracle.signatures());

    for (unsigned p = 0; p < cfg.programsPerMachine; ++p) {
      std::mt19937_64 prng(mixSeed(machineSeed, p + 1));
      std::vector<std::string> lines = randomAssemblyProgram(
          *machine, oracle.signatures(), prng, cfg.programLength);

      DiagnosticEngine adiags;
      auto prog = assembler.assemble(join(lines, "\n") + "\n", adiags);
      if (!prog) {
        res.generatorError = true;
        logLine(cat("[isdl-fuzz] seed ", machineSeed, " program ", p,
                    ": generated program rejected by the assembler:\n",
                    adiags.dump()));
        continue;
      }

      OracleReport rep = oracle.run(*prog);
      ++res.pairs;
      if (rep.reason == sim::StopReason::Halted) ++res.halted;
      if (rep.reason == sim::StopReason::RuntimeError) ++res.trapped;
      if (rep.hardwareChecked) ++res.hardwareChecked;
      if (rep.ok()) continue;

      FuzzFailure fail;
      fail.machineSeed = machineSeed;
      fail.machineIndex = index;
      fail.divergence = rep.summary();
      if (cfg.shrink) {
        ShrinkOptions sopts;
        sopts.oracle = oopts;
        sopts.oracle.registry = nullptr;  // don't count shrink runs as pairs
        fail.shrunk = shrinkFailure(spec, lines, sopts);
      } else {
        fail.shrunk.spec = spec;
        fail.shrunk.program = lines;
        fail.shrunk.divergence = fail.divergence;
        fail.shrunk.reproduced = true;
      }
      if (!cfg.corpusDir.empty())
        fail.reproPath = writeRepro(cfg.corpusDir, fail.shrunk);
      logLine(cat("[isdl-fuzz] DIVERGENCE seed ", machineSeed, " (",
                  fail.shrunk.program.size(), "-line repro",
                  fail.reproPath.empty() ? ""
                                         : cat(", saved to ", fail.reproPath),
                  "):\n", fail.shrunk.divergence));
      res.failures.push_back(std::move(fail));
      break;  // further programs on this machine would re-find the same bug
    }
  } catch (const std::exception& e) {
    // Building tools from a generated description must never throw.
    res.generatorError = true;
    logLine(cat("[isdl-fuzz] seed ", machineSeed,
                ": tool construction threw: ", e.what()));
  }
  return res;
}

}  // namespace

FuzzOutcome runFuzz(const FuzzConfig& cfg, obs::Registry* registry) {
  FuzzOutcome out;
  explore::WorkerPool pool(cfg.jobs);
  const unsigned jobs = pool.jobs();
  std::mutex logMu;

  std::vector<obs::Registry> workerRegs(jobs);

  const auto start = std::chrono::steady_clock::now();
  auto expired = [&] {
    if (cfg.budgetSeconds <= 0) return false;
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= cfg.budgetSeconds;
  };

  std::uint64_t nextIndex = 0;
  bool done = false;
  while (!done) {
    // One batch of machine indices per join; the budget is re-checked per
    // task, so a batch never overshoots by more than the in-flight work.
    std::uint64_t batch;
    if (cfg.budgetSeconds > 0) {
      batch = std::max<std::uint64_t>(jobs * 2, 8);
      if (expired()) break;
    } else {
      batch = cfg.machines - std::min(cfg.machines, nextIndex);
      done = true;
      if (batch == 0) break;
    }

    std::vector<MachineResult> results(batch);
    const std::uint64_t base = nextIndex;
    pool.forEach(batch, [&](std::size_t i, unsigned worker) {
      if (expired()) return;
      results[i] =
          fuzzOneMachine(cfg, base + i, &workerRegs[worker], logMu);
    });
    nextIndex += batch;

    for (auto& r : results) {
      if (!r.ran) continue;
      ++out.machines;
      out.pairs += r.pairs;
      out.halted += r.halted;
      out.trapped += r.trapped;
      out.hardwareChecked += r.hardwareChecked;
      if (r.generatorError) ++out.generatorErrors;
      for (auto& f : r.failures) out.failures.push_back(std::move(f));
    }
  }

  std::sort(out.failures.begin(), out.failures.end(),
            [](const FuzzFailure& a, const FuzzFailure& b) {
              return a.machineIndex < b.machineIndex;
            });
  if (registry)
    for (const auto& reg : workerRegs) registry->merge(reg);
  return out;
}

}  // namespace isdl::testing
