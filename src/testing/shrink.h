// Test-case shrinking (ISDL-FUZZ part 4).
//
// A raw fuzz failure is a ~25-instruction program on a machine with several
// fields, tokens, constraints and side effects — far more than the bug
// needs. shrinkFailure() reduces it in two phases while preserving "the
// oracle still diverges":
//
//   1. delta-debug the program: remove instruction lines in halving chunk
//      sizes until no single line can go (the halt line stays pinned);
//   2. shrink machine features: drop constraints, whole fields, operations,
//      side effects, the non-terminal, the condition-code register and the
//      accumulator — each drop re-validated through the full front end, so
//      a shrunk machine is always a real, sema-clean description.
//
// Opcodes are fixed in the MachineSpec at generation time, so dropping an
// operation never re-encodes the survivors — the surviving program lines
// keep meaning the same bits, which is what makes phase 2 converge.
//
// The result renders as a self-contained repro file (seed, divergence,
// machine source, program) written into the corpus directory.

#ifndef ISDL_TESTING_SHRINK_H
#define ISDL_TESTING_SHRINK_H

#include <string>
#include <vector>

#include "testing/machinegen.h"
#include "testing/oracle.h"

namespace isdl::testing {

struct ShrinkOptions {
  OracleOptions oracle;
  unsigned maxOracleRuns = 2000;  ///< hard budget on predicate evaluations
};

struct ShrinkResult {
  MachineSpec spec;                  ///< shrunk machine (emitIsdl to render)
  std::vector<std::string> program;  ///< shrunk assembly lines (incl. halt)
  std::string divergence;            ///< oracle summary of the shrunk repro
  unsigned oracleRuns = 0;           ///< predicate evaluations spent
  bool reproduced = false;  ///< false: the input did not diverge to begin with
};

/// Shrinks a diverging (machine, program) pair. `program` is assembly-source
/// lines whose last line is the halt instruction. Runs the oracle with the
/// ambient fault-injection state, so call it under the same flags that
/// produced the failure.
ShrinkResult shrinkFailure(const MachineSpec& spec,
                           const std::vector<std::string>& program,
                           const ShrinkOptions& opts = {});

/// Renders a self-contained repro file: seed + replay command + divergence +
/// machine source + program.
std::string renderRepro(const ShrinkResult& r);

/// Writes renderRepro() into `corpusDir/seed-<seed>.repro.txt` (creating the
/// directory); returns the path, or "" if the write failed.
std::string writeRepro(const std::string& corpusDir, const ShrinkResult& r);

}  // namespace isdl::testing

#endif  // ISDL_TESTING_SHRINK_H
