// isdl-fuzz: standalone conformance-fuzzing driver (ISSUE 5 tentpole).
//
//   isdl-fuzz --budget 60s --jobs 0         # fuzz for a minute, all cores
//   isdl-fuzz --machines 50 --seed 7        # exactly 50 machines, seeded
//   isdl-fuzz --seed <seed> --machines 1    # replay one failure
//
// Each generated machine is run through the full toolchain: front end,
// assembler, interp engine, uop engine, HGEN->netlist->gatesim. Any
// divergence is shrunk to a minimal repro and written into the corpus
// directory with its seed. Exit status: 0 = clean, 1 = divergence or
// generator error, 2 = usage error.
//
// Hidden test hook: ISDL_FUZZ_INJECT_FAULT=1 (or --inject-fault) breaks the
// uop compiler's `+` lowering on purpose, to prove the oracle catches and
// shrinks real bugs (see sim/uop.h setTestFaultInjection).

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "sim/uop.h"
#include "testing/fuzzer.h"

namespace {

void usage(std::ostream& os) {
  os << "usage: isdl-fuzz [options]\n"
        "  --budget <secs>[s|m]   wall-clock budget (e.g. 30s, 2m)\n"
        "  --machines <n>         machine count when no budget (default 25)\n"
        "  --programs <n>         programs per machine (default 4)\n"
        "  --length <n>           instructions per program (default 25)\n"
        "  --jobs <n>             worker threads, 0 = all cores (default 1)\n"
        "  --seed <n>             master seed (default 1; env ISDL_FUZZ_SEED"
        " overrides)\n"
        "  --corpus <dir>         repro directory (default tests/corpus)\n"
        "  --no-corpus            do not write repro files\n"
        "  --no-hw                skip the gatesim leg\n"
        "  --no-shrink            report failures unshrunk\n"
        "  --quiet                suppress per-failure logging\n";
}

bool parseU64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 0);
  return end != s && *end == '\0';
}

/// "30", "30s", "2m" -> seconds.
bool parseBudget(const char* s, double& out) {
  char* end = nullptr;
  out = std::strtod(s, &end);
  if (end == s || out < 0) return false;
  if (*end == 's' && end[1] == '\0') return true;
  if (*end == 'm' && end[1] == '\0') {
    out *= 60;
    return true;
  }
  return *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  isdl::testing::FuzzConfig cfg;
  cfg.seed = isdl::testing::seedFromEnv(1);
  cfg.corpusDir = "tests/corpus";
  cfg.log = &std::cerr;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "isdl-fuzz: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    std::uint64_t n = 0;
    if (arg == "--budget") {
      if (!parseBudget(value(), cfg.budgetSeconds)) {
        std::cerr << "isdl-fuzz: bad --budget\n";
        return 2;
      }
    } else if (arg == "--machines" && parseU64(value(), n)) {
      cfg.machines = n;
    } else if (arg == "--programs" && parseU64(value(), n)) {
      cfg.programsPerMachine = unsigned(n);
    } else if (arg == "--length" && parseU64(value(), n)) {
      cfg.programLength = unsigned(n);
    } else if (arg == "--jobs" && parseU64(value(), n)) {
      cfg.jobs = unsigned(n);
    } else if (arg == "--seed" && parseU64(value(), n)) {
      cfg.seed = n;  // --seed wins over ISDL_FUZZ_SEED (it is more explicit)
    } else if (arg == "--corpus") {
      cfg.corpusDir = value();
    } else if (arg == "--no-corpus") {
      cfg.corpusDir.clear();
    } else if (arg == "--no-hw") {
      cfg.checkHardware = false;
    } else if (arg == "--no-shrink") {
      cfg.shrink = false;
    } else if (arg == "--quiet") {
      cfg.log = nullptr;
    } else if (arg == "--inject-fault") {
      isdl::sim::uop::setTestFaultInjection(true);
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "isdl-fuzz: unknown or malformed option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
  }
  const char* injectEnv = std::getenv("ISDL_FUZZ_INJECT_FAULT");
  if (injectEnv && std::strcmp(injectEnv, "0") != 0 && *injectEnv)
    isdl::sim::uop::setTestFaultInjection(true);

  isdl::obs::Registry registry;
  isdl::testing::FuzzOutcome out = isdl::testing::runFuzz(cfg, &registry);

  std::cout << "isdl-fuzz: " << out.machines << " machines, " << out.pairs
            << " pairs (" << out.halted << " halted, " << out.trapped
            << " trapped, " << out.hardwareChecked << " hardware-checked), "
            << out.failures.size() << " divergences, " << out.generatorErrors
            << " generator errors [seed " << cfg.seed << "]\n";
  for (const auto& f : out.failures) {
    std::cout << "  seed " << f.machineSeed << ": "
              << f.shrunk.program.size() << "-line repro";
    if (!f.reproPath.empty()) std::cout << " -> " << f.reproPath;
    std::cout << "\n";
  }
  return out.ok() ? 0 : 1;
}
