#include "testing/oracle.h"

#include "hw/sharing.h"
#include "support/strings.h"
#include "synth/gatesim.h"

namespace isdl::testing {

std::string OracleReport::summary() const { return join(divergences, "\n"); }

void compareFinalState(const Machine& m, const sim::Xsim& a,
                       const sim::Xsim& b, const char* aName,
                       const char* bName, std::vector<std::string>& out) {
  for (std::size_t si = 0; si < m.storages.size(); ++si) {
    const StorageDef& st = m.storages[si];
    for (std::uint64_t e = 0; e < st.depth; ++e) {
      BitVector va = a.state().read(unsigned(si), e);
      BitVector vb = b.state().read(unsigned(si), e);
      if (va == vb) continue;
      std::string loc = st.depth > 1 ? cat(st.name, "[", e, "]") : st.name;
      out.push_back(cat(loc, ": ", aName, "=", va.toHexString(), " ", bName,
                        "=", vb.toHexString()));
    }
  }
}

void compareStats(const sim::Stats& a, const sim::Stats& b, const char* aName,
                  const char* bName, std::vector<std::string>& out) {
  auto cmp = [&](const char* what, std::uint64_t va, std::uint64_t vb) {
    if (va != vb)
      out.push_back(cat(what, ": ", aName, "=", va, " ", bName, "=", vb));
  };
  cmp("cycles", a.cycles, b.cycles);
  cmp("instructions", a.instructions, b.instructions);
  cmp("data stall cycles", a.dataStallCycles, b.dataStallCycles);
  cmp("struct stall cycles", a.structStallCycles, b.structStallCycles);
  if (a.dataStallsByStorage != b.dataStallsByStorage)
    out.push_back(cat("data stall attribution by storage differs (", aName,
                      " vs ", bName, ")"));
  if (a.structStallsByField != b.structStallsByField)
    out.push_back(cat("struct stall attribution by field differs (", aName,
                      " vs ", bName, ")"));
}

void compareWithHardware(const Machine& m, const sim::Xsim& ref,
                         const hw::HwModel& model,
                         const sim::AssembledProgram& prog,
                         std::uint64_t maxCycles,
                         std::vector<std::string>& out) {
  synth::GateSim gs(model.netlist);
  gs.loadMemory(model.storage[m.imemIndex].mem, prog.words);
  int dmIndex = -1;
  for (std::size_t si = 0; si < m.storages.size(); ++si)
    if (m.storages[si].kind == StorageKind::DataMemory)
      dmIndex = static_cast<int>(si);
  for (const auto& [addr, value] : prog.dataInit) {
    if (dmIndex < 0) break;
    gs.pokeMemory(model.storage[dmIndex].mem, addr, value);
  }
  if (!gs.runUntil(model.haltedReg, maxCycles)) {
    out.push_back(cat("hardware model did not halt within ", maxCycles,
                      " cycles (xsim halted after ", ref.stats().cycles, ")"));
    return;
  }

  for (std::size_t si = 0; si < m.storages.size(); ++si) {
    const StorageDef& st = m.storages[si];
    const auto& map = model.storage[si];
    for (std::uint64_t e = 0; e < st.depth; ++e) {
      BitVector hw =
          map.isMem ? gs.peekMemory(map.mem, e) : gs.peekNet(map.reg);
      BitVector sw = ref.state().read(unsigned(si), e);
      if (hw == sw) continue;
      std::string loc = st.depth > 1 ? cat(st.name, "[", e, "]") : st.name;
      out.push_back(cat(loc, ": hw=", hw.toHexString(),
                        " xsim=", sw.toHexString()));
    }
  }

  std::uint64_t hwInstrs = gs.peekNet(model.instrCountReg).toUint64();
  if (hwInstrs != ref.stats().instructions)
    out.push_back(cat("retired instructions: hw=", hwInstrs,
                      " xsim=", ref.stats().instructions));

  // The cycle identity: the hardware model charges each instruction's static
  // Cycle cost; XSIM adds the ILS's dynamic stalls on top.
  std::uint64_t hwCycles = gs.peekNet(model.cycleCountReg).toUint64();
  std::uint64_t expect = hwCycles + ref.stats().dataStallCycles +
                         ref.stats().structStallCycles;
  if (ref.stats().cycles != expect)
    out.push_back(cat("cycle identity: xsim cycles=", ref.stats().cycles,
                      " != hw cycle_count=", hwCycles, " + stalls=",
                      expect - hwCycles));

  if (gs.peekNet(model.illegalNet).toUint64())
    out.push_back("hardware decoder flagged an illegal instruction");
}

DifferentialOracle::DifferentialOracle(const Machine& m, OracleOptions opts)
    : m_(&m), opts_(opts), uop_(m), interp_(m) {
  interp_.setUopEnabled(false);
}

DifferentialOracle::~DifferentialOracle() = default;

OracleReport DifferentialOracle::run(const sim::AssembledProgram& prog) {
  OracleReport rep;
  auto bump = [&](const char* name) {
    if (opts_.registry) ++opts_.registry->counter(name);
  };
  bump("fuzz/pairs");

  std::string err;
  if (!uop_.loadProgram(prog, &err) || !interp_.loadProgram(prog, &err)) {
    rep.divergences.push_back(cat("program failed to load: ", err));
    bump("fuzz/divergence/load");
    return rep;
  }

  sim::RunResult ri = interp_.run(opts_.maxCycles);
  sim::RunResult ru = uop_.run(opts_.maxCycles);
  rep.reason = ri.reason;

  // Leg 1: the two software engines, exactly — traps included.
  std::size_t before = rep.divergences.size();
  if (ru.reason != ri.reason || ru.message != ri.message) {
    rep.divergences.push_back(
        cat("stop: uop=", sim::stopReasonName(ru.reason),
            ru.message.empty() ? "" : cat(" (", ru.message, ")"),
            " interp=", sim::stopReasonName(ri.reason),
            ri.message.empty() ? "" : cat(" (", ri.message, ")")));
  }
  uop_.drainPipeline();
  interp_.drainPipeline();
  compareStats(uop_.stats(), interp_.stats(), "uop", "interp",
               rep.divergences);
  compareFinalState(*m_, uop_, interp_, "uop", "interp", rep.divergences);
  if (rep.divergences.size() != before) bump("fuzz/divergence/engine");

  if (ri.reason == sim::StopReason::RuntimeError) bump("fuzz/trapped");
  if (ri.reason == sim::StopReason::Halted) bump("fuzz/halted");

  // Leg 2: the generated hardware model, on clean halting runs only.
  if (opts_.checkHardware && ri.reason == sim::StopReason::Halted) {
    if (!model_) {
      model_ = std::make_unique<hw::HwModel>(
          hw::buildDatapath(*m_, uop_.signatures()));
      if (opts_.applySharing) hw::shareResources(*model_, *m_);
    }
    before = rep.divergences.size();
    compareWithHardware(*m_, interp_, *model_, prog, opts_.maxCycles,
                        rep.divergences);
    rep.hardwareChecked = true;
    bump("fuzz/hw_checked");
    if (rep.divergences.size() != before) bump("fuzz/divergence/hardware");
  }

  if (!rep.ok()) bump("fuzz/divergent_pairs");
  return rep;
}

}  // namespace isdl::testing
