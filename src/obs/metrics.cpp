#include "obs/metrics.h"

#include <ostream>

#include "obs/json.h"

namespace isdl::obs {

void StorageHeatmap::configure(const std::vector<std::uint64_t>& depths) {
  reads.assign(depths.size(), {});
  writes.assign(depths.size(), {});
  for (std::size_t si = 0; si < depths.size(); ++si) {
    reads[si].assign(depths[si], 0);
    writes[si].assign(depths[si], 0);
  }
}

void StorageHeatmap::clear() {
  for (auto& v : reads) v.assign(v.size(), 0);
  for (auto& v : writes) v.assign(v.size(), 0);
}

void MetricsReport::writeJson(std::ostream& out, bool pretty) const {
  JsonWriter w(out, pretty);
  writeJson(w);
  out << "\n";
}

void MetricsReport::writeJson(JsonWriter& w, bool includeWallClock) const {
  w.beginObject();
  w.field("arch", arch);
  w.field("cycles", cycles);
  w.field("instructions", instructions);
  w.key("stalls").beginObject();
  w.field("data_cycles", dataStallCycles);
  w.field("struct_cycles", structStallCycles);
  w.field("fraction", stallFraction());
  w.key("data_by_producer").beginObject();
  for (const auto& s : dataStallsByProducer) w.field(s.producer, s.cycles);
  w.endObject();
  w.key("struct_by_field").beginObject();
  for (const auto& s : structStallsByField) w.field(s.producer, s.cycles);
  w.endObject();
  w.endObject();  // stalls

  w.key("op_counts").beginObject();
  for (const auto& oc : opCounts) w.field(oc.field + "." + oc.op, oc.count);
  w.endObject();

  w.key("field_utilization").beginObject();
  for (const auto& u : utilization) w.field(u.field, u.usefulInstructions);
  w.endObject();

  w.key("storage_heatmaps").beginObject();
  for (const auto& h : heatmaps) {
    w.key(h.storage).beginObject();
    w.key("reads").beginArray();
    for (std::uint64_t r : h.reads) w.value(r);
    w.endArray();
    w.key("writes").beginArray();
    for (std::uint64_t x : h.writes) w.value(x);
    w.endArray();
    w.endObject();
  }
  w.endObject();

  w.key("counters").beginObject();
  for (const auto& [name, value] : counters) {
    if (!includeWallClock && name.size() >= 3 &&
        name.compare(name.size() - 3, 3, "_ns") == 0)
      continue;
    w.field(name, value);
  }
  w.endObject();
  w.endObject();
}

}  // namespace isdl::obs
