// XTRACE counter/timer registry. Counters have hierarchical slash-separated
// names ("sim/stalls/data", "explore/eval/sim_ns"). Registration resolves a
// name to a stable Counter& once, under a mutex; after that the hot path is
// a single relaxed atomic add — lock-free, and free of any name hashing or
// map lookup, so instrumented code can bump counters inside inner loops.
//
// Timers are counters in nanoseconds: ScopedTimer adds the elapsed wall
// clock of a scope to its cell on destruction. The export (snapshot or
// metrics JSON) is flat-keyed and sorted, so the slash hierarchy is
// preserved lexically.

#ifndef ISDL_OBS_REGISTRY_H
#define ISDL_OBS_REGISTRY_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace isdl::obs {

/// One counter cell. Stable address for the registry's lifetime.
class Counter {
 public:
  void add(std::uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  Counter& operator++() {
    add(1);
    return *this;
  }
  std::uint64_t get() const { return v_.load(std::memory_order_relaxed); }
  void set(std::uint64_t n) { v_.store(n, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Accumulates the wall-clock nanoseconds of a scope into a Counter.
class ScopedTimer {
 public:
  explicit ScopedTimer(Counter& cell)
      : cell_(cell), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start_);
    cell_.add(static_cast<std::uint64_t>(ns.count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Counter& cell_;
  std::chrono::steady_clock::time_point start_;
};

class Registry {
 public:
  /// Resolves (creating on first use) the counter named `name`. The returned
  /// reference stays valid for the registry's lifetime.
  Counter& counter(std::string_view name);

  /// Times the enclosing scope into counter `name` (unit: nanoseconds; by
  /// convention the name ends in "_ns").
  ScopedTimer time(std::string_view name) { return ScopedTimer(counter(name)); }

  /// All counters, sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

  /// Zeroes every registered counter (handles stay valid).
  void reset();

  /// Adds every counter of `other` into this registry (creating cells on
  /// first sight). This is the cross-thread aggregation path: parallel
  /// workers each own a private Registry (zero contention on the hot path)
  /// and the coordinator merges them after the join barrier, instead of all
  /// workers sharing one registry's name-resolution mutex. `other` is
  /// snapshotted first, so merging a registry into itself doubles it rather
  /// than deadlocking.
  void merge(const Registry& other);
  /// Same, from an already-snapshotted counter list (e.g. the `counters`
  /// section of a MetricsReport produced on another thread).
  void merge(const std::vector<std::pair<std::string, std::uint64_t>>& counters);

  /// `{"name": value, ...}` sorted by name.
  void writeJson(std::ostream& out, bool pretty = true) const;

 private:
  mutable std::mutex mu_;
  std::deque<Counter> cells_;  ///< deque: growth never moves existing cells
  std::map<std::string, Counter*, std::less<>> byName_;
};

}  // namespace isdl::obs

#endif  // ISDL_OBS_REGISTRY_H
