// XTRACE structured metrics: the machine-readable form of the paper's
// "performance measurements and utilization statistics" (Figure 1). A
// MetricsReport is what one simulation run produces for its consumers — the
// exploration driver scores candidates from it, the CLI `profile` command
// dumps it, and the bench harness embeds it — all through the same JSON
// schema (see docs/OBSERVABILITY.md).

#ifndef ISDL_OBS_METRICS_H
#define ISDL_OBS_METRICS_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace isdl::obs {

class JsonWriter;

/// Per-storage access counts: reads[si][elem] / writes[si][elem]. Reads are
/// counted at every architectural read the core performs; writes at every
/// value-changing commit (the write side rides the Monitors hook, which
/// dedups no-change writes). The core holds a nullable pointer to one of
/// these, so a disabled heatmap costs one branch per access.
struct StorageHeatmap {
  std::vector<std::vector<std::uint64_t>> reads;
  std::vector<std::vector<std::uint64_t>> writes;

  void configure(const std::vector<std::uint64_t>& depths);
  void clear();
  bool configured() const { return !reads.empty(); }

  void countRead(unsigned si, std::uint64_t elem) { ++reads[si][elem]; }
  void countWrite(unsigned si, std::uint64_t elem) { ++writes[si][elem]; }
};

struct MetricsReport {
  std::string arch;

  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t dataStallCycles = 0;
  std::uint64_t structStallCycles = 0;

  struct OpCount {
    std::string field, op;
    std::uint64_t count = 0;
  };
  std::vector<OpCount> opCounts;  ///< nonzero entries only

  struct FieldUtilization {
    std::string field;
    std::uint64_t usefulInstructions = 0;  ///< issued something besides nop
  };
  std::vector<FieldUtilization> utilization;

  struct StallSource {
    std::string producer;  ///< storage (data) or field (structural) name
    std::uint64_t cycles = 0;
  };
  std::vector<StallSource> dataStallsByProducer;
  std::vector<StallSource> structStallsByField;

  struct Heat {
    std::string storage;
    std::vector<std::uint64_t> reads, writes;  ///< indexed by element
  };
  std::vector<Heat> heatmaps;  ///< storages with any traffic only

  /// Free-form registry counters ("sim/runs", "explore/eval/sim_ns", ...).
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  double stallFraction() const {
    std::uint64_t stalls = dataStallCycles + structStallCycles;
    return cycles ? double(stalls) / double(cycles) : 0.0;
  }

  void writeJson(std::ostream& out, bool pretty = true) const;
  /// Emits the report as one value into an in-progress JSON document. With
  /// `includeWallClock = false`, registry counters named `*_ns` (wall-clock
  /// timers, nondeterministic by nature) are omitted so the emitted JSON is
  /// a pure function of the simulated run — the exploration summary relies
  /// on this to be byte-identical between serial and parallel evaluation.
  void writeJson(JsonWriter& w, bool includeWallClock = true) const;
};

}  // namespace isdl::obs

#endif  // ISDL_OBS_METRICS_H
