// Minimal streaming JSON writer — the one serializer behind every XTRACE
// export (metrics JSON, Chrome trace-event JSON, BENCH_*.json). Emits
// syntactically valid JSON by construction: commas and colons are inserted
// from a nesting stack, strings are escaped per RFC 8259, and non-finite
// doubles degrade to null (JSON has no NaN/Inf).

#ifndef ISDL_OBS_JSON_H
#define ISDL_OBS_JSON_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace isdl::obs {

/// Escapes `s` for use inside a JSON string literal (no surrounding quotes).
std::string jsonEscape(std::string_view s);

class JsonWriter {
 public:
  /// `pretty` inserts newlines and two-space indentation; compact otherwise.
  explicit JsonWriter(std::ostream& out, bool pretty = true);

  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Emits an object key; the next value/begin* call is its value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& valueNull();

  /// key(k) + value(v) in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  /// True once every container opened has been closed.
  bool done() const { return stack_.empty() && wroteTop_; }

 private:
  struct Level {
    bool isObject = false;
    bool first = true;
    bool expectValue = false;  ///< a key was written, value pending
  };

  std::ostream& out_;
  bool pretty_;
  bool wroteTop_ = false;
  std::vector<Level> stack_;

  void beforeValue();
  void indent();
};

}  // namespace isdl::obs

#endif  // ISDL_OBS_JSON_H
