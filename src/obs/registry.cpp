#include "obs/registry.h"

#include <ostream>

#include "obs/json.h"

namespace isdl::obs {

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = byName_.find(name);
  if (it != byName_.end()) return *it->second;
  cells_.emplace_back();
  Counter* cell = &cells_.back();
  byName_.emplace(std::string(name), cell);
  return *cell;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(byName_.size());
  for (const auto& [name, cell] : byName_) out.emplace_back(name, cell->get());
  return out;
}

void Registry::merge(const Registry& other) { merge(other.snapshot()); }

void Registry::merge(
    const std::vector<std::pair<std::string, std::uint64_t>>& counters) {
  for (const auto& [name, value] : counters) counter(name).add(value);
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& cell : cells_) cell.set(0);
}

void Registry::writeJson(std::ostream& out, bool pretty) const {
  JsonWriter w(out, pretty);
  w.beginObject();
  for (const auto& [name, value] : snapshot()) w.field(name, value);
  w.endObject();
}

}  // namespace isdl::obs
