#include "obs/trace.h"

#include <ostream>

#include "obs/json.h"

namespace isdl::obs {

TraceBuffer::TraceBuffer(std::size_t capacity)
    : events_(capacity ? capacity : 1) {}

void TraceBuffer::clear() {
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

namespace {

const std::string& nameOr(const std::vector<std::string>& names,
                          std::size_t i, const std::string& fallback) {
  return i < names.size() ? names[i] : fallback;
}

}  // namespace

void writeChromeTrace(std::ostream& out, const TraceBuffer& buf,
                      const NameTable& names) {
  static const std::string kUnknown = "?";
  JsonWriter w(out, /*pretty=*/false);
  w.beginObject();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").beginArray();

  auto meta = [&](int pid, int tid, std::string_view what,
                  std::string_view name) {
    w.beginObject();
    w.field("name", what).field("ph", "M").field("pid", pid).field("tid", tid);
    w.key("args").beginObject().field("name", name).endObject();
    w.endObject();
  };

  // Row layout: pid 0 = the core (one tid per field + one stall row),
  // pid 1 = storage write-backs (one tid per storage).
  meta(0, -1, "process_name", names.machine.empty() ? "core" : names.machine);
  for (std::size_t f = 0; f < names.fields.size(); ++f)
    meta(0, static_cast<int>(f), "thread_name", "field " + names.fields[f]);
  const int stallTid = static_cast<int>(names.fields.size());
  meta(0, stallTid, "thread_name", "stalls");
  meta(1, -1, "process_name", "storage write-backs");
  for (std::size_t s = 0; s < names.storages.size(); ++s)
    meta(1, static_cast<int>(s), "thread_name", names.storages[s]);

  buf.forEach([&](const TraceEvent& e) {
    w.beginObject();
    switch (e.kind) {
      case EventKind::Issue: {
        static const std::vector<std::string> kNoOps;
        const auto& ops =
            e.field < names.ops.size() ? names.ops[e.field] : kNoOps;
        w.field("name", nameOr(ops, e.op, kUnknown));
        w.field("cat", "issue").field("ph", "X");
        w.field("ts", e.cycle).field("dur", std::uint64_t{e.dur});
        w.field("pid", 0).field("tid", int(e.field));
        w.key("args").beginObject().field("addr", e.addr).endObject();
        break;
      }
      case EventKind::DataStall: {
        w.field("name",
                "data stall (" +
                    nameOr(names.storages, e.storage, kUnknown) + ")");
        w.field("cat", "stall").field("ph", "X");
        w.field("ts", e.cycle).field("dur", std::uint64_t{e.dur});
        w.field("pid", 0).field("tid", stallTid);
        w.key("args")
            .beginObject()
            .field("producer", nameOr(names.storages, e.storage, kUnknown))
            .endObject();
        break;
      }
      case EventKind::StructStall: {
        w.field("name",
                "struct stall (" +
                    nameOr(names.fields, e.field, kUnknown) + ")");
        w.field("cat", "stall").field("ph", "X");
        w.field("ts", e.cycle).field("dur", std::uint64_t{e.dur});
        w.field("pid", 0).field("tid", stallTid);
        w.key("args")
            .beginObject()
            .field("busy_field", nameOr(names.fields, e.field, kUnknown))
            .endObject();
        break;
      }
      case EventKind::WriteBack: {
        w.field("name", nameOr(names.storages, e.storage, kUnknown) + "[" +
                            std::to_string(e.elem) + "]");
        w.field("cat", "writeback").field("ph", "i").field("s", "t");
        w.field("ts", e.cycle);
        w.field("pid", 1).field("tid", int(e.storage));
        break;
      }
    }
    w.endObject();
  });

  w.endArray();
  w.field("droppedEvents", buf.dropped());
  w.endObject();
  out << "\n";
}

}  // namespace isdl::obs
