#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace isdl::obs {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& out, bool pretty)
    : out_(out), pretty_(pretty) {}

void JsonWriter::indent() {
  if (!pretty_) return;
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void JsonWriter::beforeValue() {
  if (stack_.empty()) {
    wroteTop_ = true;
    return;
  }
  Level& top = stack_.back();
  if (top.expectValue) {
    // Value follows its key on the same line.
    top.expectValue = false;
    return;
  }
  if (!top.first) out_ << ',';
  top.first = false;
  indent();
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  out_ << '{';
  stack_.push_back({true, true, false});
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) indent();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  out_ << '[';
  stack_.push_back({false, true, false});
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) indent();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  Level& top = stack_.back();
  if (!top.first) out_ << ',';
  top.first = false;
  indent();
  out_ << '"' << jsonEscape(k) << (pretty_ ? "\": " : "\":");
  top.expectValue = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  beforeValue();
  out_ << '"' << jsonEscape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  beforeValue();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  beforeValue();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  beforeValue();
  if (!std::isfinite(v)) {
    out_ << "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  beforeValue();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::valueNull() {
  beforeValue();
  out_ << "null";
  return *this;
}

}  // namespace isdl::obs
