// XTRACE event tracer: a bounded ring buffer of fixed-size per-instruction
// events (issue, write-back, stall attribution) recorded by the simulator
// core. The buffer is allocated only when tracing is enabled; the core holds
// a nullable pointer, so a disabled trace costs one predictable branch per
// instrumentation site. When the ring fills, the oldest events are
// overwritten (and counted), so a trace of the *end* of a long run is always
// available — the usual thing one wants when a program misbehaves.
//
// The exporter emits Chrome trace-event JSON (the `chrome://tracing` /
// Perfetto "JSON Array Format"): one timeline row ("tid") per VLIW field,
// issue slots as complete ("X") events with the architectural cycle as the
// microsecond timestamp, stalls as complete events attributed to their
// producer, and write-backs as instant ("i") events on the storage row.

#ifndef ISDL_OBS_TRACE_H
#define ISDL_OBS_TRACE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace isdl::obs {

enum class EventKind : std::uint8_t {
  Issue,        ///< one field executed one operation
  WriteBack,    ///< a staged write retired to architectural state
  DataStall,    ///< RAW interlock bubble; `storage` is the producer location
  StructStall,  ///< busy-functional-unit bubble; `field` is the busy unit
};

struct TraceEvent {
  EventKind kind = EventKind::Issue;
  std::uint16_t field = 0;   ///< issuing/busy field (Issue, StructStall)
  std::uint32_t op = 0;      ///< operation index within the field (Issue)
  std::uint32_t storage = 0; ///< storage index (WriteBack, DataStall)
  std::uint64_t elem = 0;    ///< storage element (WriteBack)
  std::uint64_t cycle = 0;   ///< start cycle
  std::uint32_t dur = 1;     ///< duration in cycles
  std::uint64_t addr = 0;    ///< instruction-memory address (Issue)
};

class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 1 << 16);

  void record(const TraceEvent& e) {
    events_[head_] = e;
    if (++head_ == events_.size()) head_ = 0;
    if (size_ < events_.size())
      ++size_;
    else
      ++dropped_;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return events_.size(); }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const { return dropped_; }
  void clear();

  /// Visits retained events oldest-first.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    std::size_t start = (head_ + events_.size() - size_) % events_.size();
    for (std::size_t i = 0; i < size_; ++i)
      fn(events_[(start + i) % events_.size()]);
  }

 private:
  std::vector<TraceEvent> events_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Names needed to render numeric event ids; filled by the simulator from
/// its Machine so obs stays independent of the ISDL model.
struct NameTable {
  std::string machine;
  std::vector<std::string> fields;
  std::vector<std::vector<std::string>> ops;  ///< [field][opIndex]
  std::vector<std::string> storages;
};

/// Writes the buffer as Chrome trace-event JSON (loadable in
/// chrome://tracing and https://ui.perfetto.dev). One simulated cycle maps
/// to one microsecond of trace time.
void writeChromeTrace(std::ostream& out, const TraceBuffer& buf,
                      const NameTable& names);

}  // namespace isdl::obs

#endif  // ISDL_OBS_TRACE_H
