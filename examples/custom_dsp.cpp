// Bring up a brand-new architecture from scratch: write the ISDL text
// inline, get all the tools for free, and debug a program interactively
// through the batch command interface (breakpoints with attached commands,
// state monitors, disassembly) — the workflow of paper §3.1.
//
// The machine is a tiny saturating 16-bit "VOLUME" DSP: one accumulator,
// a coefficient register file, and multiply-accumulate with an immediate
// shift — small enough to read in one screen, complete enough to exercise
// every ISDL section.
//
// Build & run:  ./build/examples/custom_dsp

#include <cstdio>
#include <iostream>

#include "isdl/parser.h"
#include "sim/cli.h"

using namespace isdl;

namespace {

const char* kVolumeIsdl = R"ISDL(
machine VOLUME {
  section format { word_width = 16; }

  section storage {
    instruction_memory IM width 16 depth 256;
    data_memory DM width 16 depth 128;
    register_file CR width 16 depth 4;   # coefficients
    register ACC width 32;
    register_file AR width 7 depth 2;    # sample pointers
    program_counter PC width 8;
    alias ACCHI = ACC[31:16];
  }

  section global_definitions {
    token CREG enum width 2 prefix "C" range 0 .. 3;
    token PTR enum width 1 prefix "P" range 0 .. 1;
    token U7 immediate unsigned width 7;
    token S8 immediate signed width 8;

    # A sample source: memory through a pointer, optionally post-increment.
    nonterminal SAMPLE returns width 2 {
      option ind(p: PTR) {
        syntax "(" p ")";
        encode { $$[1] = 0; $$[0] = p; }
        value { DM[AR[p]] }
      }
      option postinc(p: PTR) {
        syntax "(" p ")" "+";
        encode { $$[1] = 1; $$[0] = p; }
        value { DM[AR[p]] }
        side_effect { AR[p] <- AR[p] + 7'd1; }
      }
    }
  }

  section instruction_set {
    field EX {
      operation nop() { encode { inst[15:12] = 4'd0; } }
      operation lptr(p: PTR, a: U7) {
        encode { inst[15:12] = 4'd1; inst[11] = p; inst[6:0] = a; }
        action { AR[p] <- a; }
      }
      operation lcoef(c: CREG, v: S8) {
        encode { inst[15:12] = 4'd2; inst[11:10] = c; inst[7:0] = v; }
        action { CR[c] <- sext(v, 16); }
      }
      operation clr() {
        encode { inst[15:12] = 4'd3; }
        action { ACC <- 32'd0; }
      }
      operation mac(c: CREG, s: SAMPLE) {
        encode { inst[15:12] = 4'd4; inst[11:10] = c; inst[9:8] = s; }
        action { ACC <- ACC + sext(CR[c], 32) * sext(s, 32); }
        side_effect { }
      }
      operation sat(p: PTR) {
        # Store the accumulator's high half through a pointer, saturating.
        encode { inst[15:12] = 4'd5; inst[11] = p; }
        action {
          DM[AR[p]] <- sgt(ACC, 32'd32767) ? 16'd32767 :
                       (slt(ACC, 0 - 32'd32768) ? 16'd32768 : ACC[15:0]);
        }
      }
      operation loop(d: CREG, t: U7) {
        # Decrement CR[d]; branch while non-zero.
        encode { inst[15:12] = 4'd6; inst[11:10] = d; inst[6:0] = t; }
        action {
          CR[d] <- CR[d] - 16'd1;
          if (CR[d] != 16'd1) { PC <- zext(t, 8); }
        }
        costs { cycle = 2; }
      }
      operation halt() { encode { inst[15:12] = 4'd15; } }
    }
  }

  section optional {
    halt_operation = "EX.halt";
    description = "16-bit saturating volume/MAC demo DSP";
  }
}
)ISDL";

const char* kVolumeApp = R"(
; Scale 8 samples at DM[0..7] by coefficient C0 = 3, write saturated
; results to DM[64..71].
.dm 0 100
.dm 1 -200
.dm 2 30000
.dm 3 -30000
.dm 4 17000
.dm 5 1
.dm 6 0
.dm 7 -1
        lcoef C0, 3
        lcoef C1, 8        ; loop counter
        lptr P0, 0
        lptr P1, 64
loop:   clr
        mac C0, (P0)+
        sat P1
        lptr P1, 64        ; resets the output pointer every iteration (bug!)
        loop C1, loop
        halt
)";

}  // namespace

int main() {
  auto machine = parseAndCheckIsdl(kVolumeIsdl);
  std::printf("brought up machine '%s': %zu operations, %zu non-terminal\n\n",
              machine->name.c_str(), machine->fields[0].operations.size(),
              machine->nonTerminals.size());

  sim::Xsim xsim(*machine);
  sim::Assembler assembler(xsim.signatures());

  // The kernel needs P1 to advance; VOLUME has no pointer add, so we write
  // the output pointer per iteration — a deliberate wart that the debugging
  // session below finds with a monitor. (An exploration iteration would add
  // a post-increment store; see examples/explore.cpp for that loop.)
  std::string app = kVolumeApp;
  DiagnosticEngine diags;
  auto prog = assembler.assemble(app, diags);
  if (!prog) {
    std::printf("assembly failed:\n%s", diags.dump().c_str());
    return 1;
  }
  std::string err;
  if (!xsim.loadProgram(*prog, &err)) {
    std::printf("%s\n", err.c_str());
    return 1;
  }

  // Drive the whole debug session through the batch interface.
  sim::Cli cli(xsim, std::cout);
  cli.runScript(R"(
echo --- disassembly of the kernel ---
disasm 0 10
echo --- watch the accumulator and output pointer ---
monitor ACC
monitor AR 1
break 6 echo [attached] about-to-saturate
run
echo --- first saturated sample ---
x DM 64
run
x DM 64
stats
)");

  std::printf("\n(note: every DM[64] write lands on the same address — the "
              "AR[1] monitor above shows the\npointer never advancing; the "
              "fix is a post-increment store option, one ISDL line away)\n");
  return 0;
}
