// xsim: the standalone retargetable simulator executable — what GENSIM
// "generates" for an architecture (paper §3.3: the executable is specific to
// an architecture but loads any program for it).
//
// Usage:
//   xsim (--arch spam|spam2|srep|tdsp | --isdl FILE) [--asm FILE]
//        [--script FILE | --run] [--dump-isdl] [--no-uop]
//
// --no-uop falls back from the micro-op compiled core to the tree-walking
// interpreter (same results, slower; see src/sim/uop.h). Also switchable at
// run time with the `engine` CLI command.
//
// With --script (or on a terminal with neither --script nor --run), commands
// come from the batch interface (see src/sim/cli.h: run, step, break, x,
// set, disasm, monitor, trace, stats, ...). --run assembles, runs to halt
// and prints statistics. --dump-isdl prints the machine description text.
//
// Examples:
//   ./build/examples/xsim --arch srep --dump-isdl > srep.isdl
//   echo 'li R1, 7
//         halt' > t.s
//   ./build/examples/xsim --arch srep --asm t.s --run
//   ./build/examples/xsim --isdl srep.isdl --asm t.s --script debug.cmds

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "archs/archs.h"
#include "isdl/parser.h"
#include "sim/cli.h"

using namespace isdl;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: xsim (--arch spam|spam2|srep|tdsp | --isdl FILE)\n"
               "            [--asm FILE] [--script FILE | --run] "
               "[--dump-isdl] [--no-uop]\n");
  return 2;
}

std::string readFile(const char* path, bool* ok) {
  std::ifstream f(path);
  *ok = bool(f);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  const char* archName = nullptr;
  const char* isdlPath = nullptr;
  const char* asmPath = nullptr;
  const char* scriptPath = nullptr;
  bool runToHalt = false;
  bool dumpIsdl = false;
  bool noUop = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--arch") && i + 1 < argc) archName = argv[++i];
    else if (!std::strcmp(argv[i], "--isdl") && i + 1 < argc)
      isdlPath = argv[++i];
    else if (!std::strcmp(argv[i], "--asm") && i + 1 < argc)
      asmPath = argv[++i];
    else if (!std::strcmp(argv[i], "--script") && i + 1 < argc)
      scriptPath = argv[++i];
    else if (!std::strcmp(argv[i], "--run")) runToHalt = true;
    else if (!std::strcmp(argv[i], "--dump-isdl")) dumpIsdl = true;
    else if (!std::strcmp(argv[i], "--no-uop")) noUop = true;
    else return usage();
  }

  std::string isdlText;
  if (archName) {
    if (!std::strcmp(archName, "spam")) isdlText = archs::spamIsdl();
    else if (!std::strcmp(archName, "spam2")) isdlText = archs::spam2Isdl();
    else if (!std::strcmp(archName, "srep")) isdlText = archs::srepIsdl();
    else if (!std::strcmp(archName, "tdsp")) isdlText = archs::tdspIsdl();
    else return usage();
  } else if (isdlPath) {
    bool ok;
    isdlText = readFile(isdlPath, &ok);
    if (!ok) {
      std::fprintf(stderr, "cannot open '%s'\n", isdlPath);
      return 1;
    }
  } else {
    return usage();
  }

  if (dumpIsdl) {
    std::fputs(isdlText.c_str(), stdout);
    return 0;
  }

  std::unique_ptr<Machine> machine;
  try {
    machine = parseAndCheckIsdl(isdlText);
  } catch (const IsdlError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  sim::Xsim xsim(*machine);
  if (noUop) xsim.setUopEnabled(false);
  sim::Cli cli(xsim, std::cout);
  std::printf("xsim for machine '%s'\n", machine->name.c_str());

  if (asmPath) {
    bool ok;
    std::string src = readFile(asmPath, &ok);
    if (!ok) {
      std::fprintf(stderr, "cannot open '%s'\n", asmPath);
      return 1;
    }
    sim::Assembler assembler(xsim.signatures());
    DiagnosticEngine diags;
    auto prog = assembler.assemble(src, diags);
    if (!prog) {
      std::fprintf(stderr, "assembly failed:\n%s", diags.dump().c_str());
      return 1;
    }
    std::string err;
    if (!xsim.loadProgram(*prog, &err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 1;
    }
    std::printf("loaded %zu words from %s\n", prog->words.size(), asmPath);
  }

  if (runToHalt) {
    cli.runScript("run\nstats\n");
    return cli.errorCount() ? 1 : 0;
  }
  if (scriptPath) {
    std::ifstream script(scriptPath);
    if (!script) {
      std::fprintf(stderr, "cannot open '%s'\n", scriptPath);
      return 1;
    }
    cli.runScript(script);
    return cli.errorCount() ? 1 : 0;
  }

  // Interactive: read commands from stdin.
  std::string line;
  while (std::printf("xsim> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (!cli.execute(line)) break;
  }
  return 0;
}
