// Quickstart: the whole methodology in one page.
//
//   1. describe a processor in ISDL (here: the bundled SREP scalar RISC),
//   2. GENSIM gives you an assembler + cycle-accurate, bit-true simulator,
//   3. run a program, read performance statistics and architectural state,
//   4. HGEN gives you the synthesizable hardware model and its costs.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "archs/archs.h"
#include "hw/hgen.h"
#include "sim/xsim.h"

using namespace isdl;

int main() {
  // --- 1. the machine description ------------------------------------------
  auto machine = archs::loadSrep();  // parse + semantic checks; throws on error
  std::printf("machine: %s (%s)\n", machine->name.c_str(),
              machine->optionalInfo.at("description").c_str());

  // --- 2. generated tools ----------------------------------------------------
  sim::Xsim xsim(*machine);  // assembler, disassembler, ILS: all retargeted
  sim::Assembler assembler(xsim.signatures());

  const char* app = R"(
        li R0, 0
        li R1, 20       ; n
        li R2, 0        ; fib(0)
        li R3, 1        ; fib(1)
        li R8, 1
loop:   add R4, R2, R3
        add R2, R3, R0
        add R3, R4, R0
        sub R1, R1, R8
        bne R1, R0, loop
        li R5, 0
        st R5, R2       ; DM[0] = fib(20)
        halt
)";
  DiagnosticEngine diags;
  auto prog = assembler.assemble(app, diags);
  if (!prog) {
    std::printf("assembly failed:\n%s", diags.dump().c_str());
    return 1;
  }

  // --- 3. simulate -----------------------------------------------------------
  std::string err;
  if (!xsim.loadProgram(*prog, &err)) {
    std::printf("load failed: %s\n", err.c_str());
    return 1;
  }
  sim::RunResult r = xsim.run(100000);
  xsim.drainPipeline();
  std::printf("stopped: %s after %llu cycles, %llu instructions\n",
              sim::stopReasonName(r.reason),
              (unsigned long long)xsim.stats().cycles,
              (unsigned long long)xsim.stats().instructions);

  int dm = machine->findStorage("DM");
  std::printf("fib(20) = %llu (expected 6765)\n",
              (unsigned long long)xsim.state().read(dm, 0).toUint64());

  // Disassemble the loop body back out of instruction memory.
  std::printf("\nloop body, disassembled from the binary:\n");
  for (std::uint64_t a = 5; a <= 9; ++a)
    std::printf("  %llu: %s\n", (unsigned long long)a,
                xsim.disassembler()
                    .render(xsim.decodedProgram().byAddress[a])
                    .c_str());

  // --- 4. hardware model ------------------------------------------------------
  hw::HgenOutput hgen = hw::runHgen(*machine, xsim.signatures());
  std::printf("\nhardware model: %.2f ns cycle, %.0f grid cells, %zu lines "
              "of Verilog\n",
              hgen.stats.cycleNs, hgen.stats.dieSizeGridCells,
              hgen.stats.verilogLines);
  std::printf("application runtime: %llu cycles x %.2f ns = %.2f us\n",
              (unsigned long long)xsim.stats().cycles, hgen.stats.cycleNs,
              double(xsim.stats().cycles) * hgen.stats.cycleNs / 1000.0);
  return 0;
}
