// HGEN demo: generate the synthesizable-Verilog hardware model for any of
// the bundled architectures, print the silicon-compiler report, and verify
// the model by gate-level co-simulation against the ILS.
//
// Build & run:  ./build/examples/hwgen [spam|spam2|srep|tdsp] [out.v]

#include <cstdio>
#include <cstring>
#include <fstream>

#include "archs/archs.h"
#include "hw/hgen.h"
#include "sim/xsim.h"
#include "synth/gatesim.h"

using namespace isdl;

int main(int argc, char** argv) {
  const char* which = argc > 1 ? argv[1] : "srep";
  std::unique_ptr<Machine> machine;
  const char* app = nullptr;
  std::uint64_t budget = 0;
  if (!std::strcmp(which, "spam")) {
    machine = archs::loadSpam();
    app = archs::spamBenchmarks()[0].source;
    budget = archs::spamBenchmarks()[0].maxCycles;
  } else if (!std::strcmp(which, "spam2")) {
    machine = archs::loadSpam2();
    app = archs::spam2Benchmarks()[0].source;
    budget = archs::spam2Benchmarks()[0].maxCycles;
  } else if (!std::strcmp(which, "tdsp")) {
    machine = archs::loadTdsp();
    app = archs::tdspBenchmarks()[0].source;
    budget = archs::tdspBenchmarks()[0].maxCycles;
  } else {
    machine = archs::loadSrep();
    app = archs::srepBenchmarks()[0].source;
    budget = archs::srepBenchmarks()[0].maxCycles;
  }

  sim::Xsim xsim(*machine);
  hw::HgenOutput out = hw::runHgen(*machine, xsim.signatures());

  std::printf("HGEN report for %s\n", machine->name.c_str());
  std::printf("  netlist nodes      %zu (%zu memories)\n",
              out.model.netlist.nodes.size(),
              out.model.netlist.memories.size());
  std::printf("  resource sharing   %zu units -> %zu (%zu cliques, %zu "
              "muxes)\n",
              out.stats.sharing.unitsBefore, out.stats.sharing.unitsAfter,
              out.stats.sharing.cliquesUsed, out.stats.sharing.muxesAdded);
  std::printf("  cycle length       %.2f ns\n", out.stats.cycleNs);
  std::printf("  die size           %.0f grid cells (logic %.0f, flops "
              "%.0f, RAM %.0f)\n",
              out.stats.dieSizeGridCells, out.stats.area.logicArea,
              out.stats.area.flopArea, out.stats.area.ramArea);
  std::printf("  Verilog            %zu lines\n", out.stats.verilogLines);
  std::printf("  synthesis time     %.3f s (hgen %.3f, silicon %.3f)\n",
              out.stats.synthesisSeconds, out.stats.toolSeconds,
              out.stats.siliconSeconds);

  const char* path = argc > 2 ? argv[2] : nullptr;
  if (path) {
    std::ofstream f(path);
    f << out.verilog;
    std::printf("  wrote %s\n", path);
  }

  // Gate-level co-simulation check: run a benchmark on the ILS and on the
  // generated model; architectural memory must agree.
  sim::Assembler assembler(xsim.signatures());
  DiagnosticEngine diags;
  auto prog = assembler.assemble(app, diags);
  if (!prog) {
    std::printf("assembly failed:\n%s", diags.dump().c_str());
    return 1;
  }
  std::string err;
  if (!xsim.loadProgram(*prog, &err)) {
    std::printf("%s\n", err.c_str());
    return 1;
  }
  xsim.run(budget);
  xsim.drainPipeline();

  synth::GateSim gs(out.model.netlist);
  gs.loadMemory(out.model.storage[machine->imemIndex].mem, prog->words);
  for (std::size_t si = 0; si < machine->storages.size(); ++si)
    if (machine->storages[si].kind == StorageKind::DataMemory)
      for (const auto& [addr, value] : prog->dataInit)
        gs.pokeMemory(out.model.storage[si].mem, addr, value);
  if (!gs.runUntil(out.model.haltedReg, budget)) {
    std::printf("co-simulation: hardware model did not halt!\n");
    return 1;
  }

  bool match = true;
  for (std::size_t si = 0; si < machine->storages.size(); ++si) {
    const StorageDef& st = machine->storages[si];
    const auto& map = out.model.storage[si];
    if (!map.isMem) continue;
    for (std::uint64_t e = 0; e < st.depth && match; ++e)
      if (!(gs.peekMemory(map.mem, e) ==
            xsim.state().read(static_cast<unsigned>(si), e)))
        match = false;
  }
  std::printf("\nco-simulation vs ILS on '%s': %s (%llu hardware clocks, "
              "%llu architectural cycles)\n",
              which, match ? "state matches bit for bit" : "MISMATCH",
              (unsigned long long)gs.clocks(),
              (unsigned long long)gs.peekNet(out.model.cycleCountReg)
                  .toUint64());
  return match ? 0 : 1;
}
