// Architecture exploration by iterative improvement (the paper's Figure 1),
// end to end: starting from a deliberately unbalanced SPAM-family variant,
// the driver evaluates neighbours (ILS cycle counts + HGEN physical costs),
// accepts improvements of the area-delay product, and stops at a local
// optimum.
//
// Build & run:  ./build/examples/explore [--jobs N]
//
//   --jobs N   shard each iteration's candidate evaluations across N worker
//              threads (0 = all hardware threads; default 1 = serial). The
//              trajectory and the JSON summary are identical for any N —
//              only wall clock changes.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "explore/pool.h"
#include "explore/spamfamily.h"

using namespace isdl;
using namespace isdl::explore;

int main(int argc, char** argv) {
  EvaluateOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      options.jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      options.jobs = static_cast<unsigned>(std::atoi(argv[i] + 7));
    } else {
      std::fprintf(stderr, "usage: %s [--jobs N]\n", argv[0]);
      return 2;
    }
  }

  std::printf("Architecture exploration by iterative improvement\n");
  std::printf("  search space: SPAM family, aluUnits in 1..4, moveUnits in "
              "0..3\n");
  std::printf("  workload:     64-element integer dot product (regenerated "
              "per candidate)\n");
  std::printf("  objective:    runtime x die size\n");
  std::printf("  jobs:         %u evaluation worker%s\n\n",
              effectiveJobs(options.jobs),
              effectiveJobs(options.jobs) == 1 ? "" : "s");

  ExplorationDriver driver(options);
  Candidate start = makeSpamVariant({1, 2});
  std::printf("start: %s\n\n", start.name.c_str());

  auto result = driver.run(start, spamFamilyGenerator,
                           ExplorationDriver::areaDelayObjective, 10);

  std::printf("%4s  %-12s %10s %12s %14s  %s\n", "iter", "candidate",
              "cycles", "die size", "objective", "");
  for (const auto& step : result.history) {
    if (step.failed) {
      std::printf("%4u  %-12s (failed: %s)\n", step.iteration,
                  step.candidateName.c_str(), step.error.c_str());
      continue;
    }
    std::printf("%4u  %-12s %10llu %12.0f %14.4g  %s\n", step.iteration,
                step.candidateName.c_str(),
                (unsigned long long)step.cycles, step.dieSize, step.objective,
                step.accepted ? "<-- accepted" : "");
  }

  std::printf("\nconverged after %u iterations\n", result.iterations);
  std::printf("best candidate: %s\n", result.best.name.c_str());
  std::printf("  cycles      %llu\n",
              (unsigned long long)result.bestEval.cycles);
  std::printf("  cycle       %.2f ns\n", result.bestEval.cycleNs);
  std::printf("  die size    %.0f grid cells\n",
              result.bestEval.dieSizeGridCells);
  std::printf("  runtime     %.2f us\n", result.bestEval.runtimeUs());

  std::printf("\nfield utilization of the best candidate:\n");
  const auto& metrics = result.bestEval.metrics;
  for (const auto& u : metrics.utilization)
    std::printf("  field %s: %llu of %llu instructions\n", u.field.c_str(),
                (unsigned long long)u.usefulInstructions,
                (unsigned long long)metrics.instructions);

  std::printf("\nstall attribution of the best candidate (%.1f%% of cycles "
              "are stalls):\n", 100.0 * metrics.stallFraction());
  for (const auto& s : metrics.dataStallsByProducer)
    std::printf("  data stalls waiting on %s: %llu cycles\n",
                s.producer.c_str(), (unsigned long long)s.cycles);
  for (const auto& s : metrics.structStallsByField)
    std::printf("  struct stalls on busy %s: %llu cycles\n",
                s.producer.c_str(), (unsigned long long)s.cycles);
  if (metrics.dataStallsByProducer.empty() &&
      metrics.structStallsByField.empty())
    std::printf("  (none)\n");

  const char* jsonPath = "explore_metrics.json";
  std::ofstream json(jsonPath);
  if (json) {
    result.writeJson(json);
    std::printf("\nwrote the exploration trajectory and the best candidate's "
                "metrics to %s\n", jsonPath);
  }
  return 0;
}
