// Ablation: state-monitor overhead.
//
// §3.3.1 routes every state access through the monitor hooks. The
// implementation fires callbacks only on actual changes and skips the event
// machinery entirely when no watch is registered — this harness measures
// the cost of (a) the always-present hook path, (b) an armed watch on a hot
// register, and (c) a watch on a cold location.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace isdl;
using namespace isdl::bench;

struct Rig {
  std::unique_ptr<Machine> machine;
  std::unique_ptr<sim::Xsim> xsim;

  Rig() {
    machine = archs::loadSrep();
    xsim = std::make_unique<sim::Xsim>(*machine);
    auto prog = assembleOrDie(xsim->signatures(),
                              archs::srepBenchmarks()[1].source);
    std::string err;
    if (!xsim->loadProgram(prog, &err)) throw IsdlError(err);
  }

  double instrPerSec() {
    std::uint64_t insts = 0;
    // Warm caches/allocator before timing: monitor overhead is small, so
    // cold-start noise would otherwise dominate the comparison.
    for (int i = 0; i < 3; ++i) {
      xsim->reset();
      xsim->run(1'000'000);
    }
    auto [iters, secs] = timeLoop(
        [&] {
          xsim->reset();
          xsim->run(1'000'000);
          insts = xsim->stats().instructions;
        },
        1.0);
    return double(iters) * double(insts) / secs;
  }
};

void BM_NoMonitors(benchmark::State& state) {
  Rig rig;
  for (auto _ : state) {
    rig.xsim->reset();
    rig.xsim->run(1'000'000);
  }
}
BENCHMARK(BM_NoMonitors);

void BM_HotMonitor(benchmark::State& state) {
  Rig rig;
  int rf = rig.machine->findStorage("RF");
  std::uint64_t hits = 0;
  rig.xsim->monitors().add(static_cast<unsigned>(rf), 9u,
                           [&](const sim::WriteEvent&) { ++hits; });
  for (auto _ : state) {
    rig.xsim->reset();
    rig.xsim->run(1'000'000);
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_HotMonitor);

void printSummary(ResultSink& sink) {
  Rig plain;
  double base = plain.instrPerSec();

  Rig hot;
  int rf = hot.machine->findStorage("RF");
  std::uint64_t hits = 0;
  // R9 is the dot-product accumulator: written every iteration.
  hot.xsim->monitors().add(static_cast<unsigned>(rf), 9u,
                           [&](const sim::WriteEvent&) { ++hits; });
  double hotRate = hot.instrPerSec();

  Rig cold;
  int dm = cold.machine->findStorage("DM");
  cold.xsim->monitors().add(static_cast<unsigned>(dm), 999u,
                            [&](const sim::WriteEvent&) { ++hits; });
  double coldRate = cold.instrPerSec();

  std::printf("\nAblation: monitor-hook overhead (paper section 3.3.1)\n");
  printRule();
  std::printf("  no monitors:            %12.0f instructions/sec (1.00x)\n",
              base);
  std::printf("  hot watch (accumulator): %11.0f instructions/sec (%.2fx)\n",
              hotRate, base / hotRate);
  std::printf("  cold watch (DM[999]):    %11.0f instructions/sec (%.2fx)\n\n",
              coldRate, base / coldRate);
  sink.add("no_monitors_inst_per_sec", base);
  sink.add("hot_watch_inst_per_sec", hotRate);
  sink.add("cold_watch_inst_per_sec", coldRate);
  sink.add("hot_watch_overhead_x", base / hotRate);
  sink.add("cold_watch_overhead_x", base / coldRate);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ResultSink sink("abl_monitors");
  printSummary(sink);
  return 0;
}
