// Figure 5 reproduction: the resource-sharing algorithm.
//
// The figure is the matrix/maximal-clique pseudo-code; this harness runs the
// implemented pass over every built-in architecture and reports the numbers
// the algorithm is about: shareable operator nodes, maximal cliques found,
// units instantiated, muxes added, and the die-size effect versus the naive
// scheme of §4.1.1 — with and without the constraint refinement (rule R4).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "hw/sharing.h"

namespace {

using namespace isdl;
using namespace isdl::bench;

void BM_ShareResourcesSpam(benchmark::State& state) {
  auto machine = archs::loadSpam();
  DiagnosticEngine diags;
  sim::SignatureTable sigs(*machine, diags);
  for (auto _ : state) {
    hw::HwModel model = hw::buildDatapath(*machine, sigs);
    hw::SharingReport report = hw::shareResources(model, *machine);
    benchmark::DoNotOptimize(report.unitsAfter);
  }
}
BENCHMARK(BM_ShareResourcesSpam)->Unit(benchmark::kMillisecond);

void printFigure5(ResultSink& sink) {
  std::printf("\nFigure 5: resource sharing — compatibility matrix + maximal "
              "cliques\n");
  printRule('-', 100);
  std::printf("%-8s %9s %9s %9s %8s %7s  %14s %14s %9s\n", "Arch", "nodes",
              "cliques", "units", "merged", "muxes", "naive area",
              "shared area", "saved");
  printRule('-', 100);

  struct Row {
    const char* name;
    std::unique_ptr<Machine> (*loader)();
  };
  Row rows[] = {
      {"SREP", archs::loadSrep},
      {"TDSP", archs::loadTdsp},
      {"SPAM2", archs::loadSpam2},
      {"SPAM", archs::loadSpam},
  };
  for (const Row& row : rows) {
    auto machine = row.loader();
    DiagnosticEngine diags;
    sim::SignatureTable sigs(*machine, diags);

    hw::HgenOptions naiveOpts;
    naiveOpts.share = false;
    hw::HgenOutput naive = hw::runHgen(*machine, sigs, naiveOpts);
    hw::HgenOutput shared = hw::runHgen(*machine, sigs);

    const auto& rep = shared.stats.sharing;
    double savedPct = 100.0 * (naive.stats.area.logicArea -
                               shared.stats.area.logicArea) /
                      naive.stats.area.logicArea;
    std::printf("%-8s %9zu %9zu %9zu %8zu %7zu  %14.0f %14.0f %8.1f%%\n",
                row.name, rep.shareableNodes, rep.maximalCliques,
                rep.unitsAfter, rep.unitsBefore - rep.unitsAfter,
                rep.muxesAdded, naive.stats.area.logicArea,
                shared.stats.area.logicArea, savedPct);
    std::string k(row.name);
    sink.add(k + "/shareable_nodes", double(rep.shareableNodes));
    sink.add(k + "/maximal_cliques", double(rep.maximalCliques));
    sink.add(k + "/units_after", double(rep.unitsAfter));
    sink.add(k + "/muxes_added", double(rep.muxesAdded));
    sink.add(k + "/naive_logic_area", naive.stats.area.logicArea);
    sink.add(k + "/shared_logic_area", shared.stats.area.logicArea);
    sink.add(k + "/area_saved_pct", savedPct);
  }
  printRule('-', 100);

  // Rule R4 ablation: constraint-informed cross-field sharing (the paper's
  // §4.1.1 bus example).
  std::printf("\nConstraint refinement (rule R4) on SPAM: the shared "
              "integer-multiplier array (U0..U2)\nand the indexed-address "
              "adder borrowed from U1 exist only as constraints — without\n"
              "them the naive scheme of section 4.1.1 duplicates the units:\n");
  auto machine = archs::loadSpam();
  DiagnosticEngine diags;
  sim::SignatureTable sigs(*machine, diags);
  hw::HgenOptions noCon;
  noCon.useConstraints = false;
  hw::HgenOutput with = hw::runHgen(*machine, sigs);
  hw::HgenOutput without = hw::runHgen(*machine, sigs, noCon);
  std::printf("  with constraints:    %zu cliques, logic area %.0f\n",
              with.stats.sharing.cliquesUsed, with.stats.area.logicArea);
  std::printf("  without constraints: %zu cliques, logic area %.0f\n\n",
              without.stats.sharing.cliquesUsed,
              without.stats.area.logicArea);
  sink.add("SPAM/r4_with_constraints_logic_area", with.stats.area.logicArea);
  sink.add("SPAM/r4_without_constraints_logic_area",
           without.stats.area.logicArea);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ResultSink sink("fig5_sharing");
  printFigure5(sink);
  return 0;
}
