// Figure 3 reproduction: "Operation Signatures".
//
// The figure shows the signature images of three operations — constants,
// parameter bits (a/b/c...) and don't-cares (x). This harness prints exactly
// that rendering for the operations of SREP's EX field and SPAM's U0 field,
// and benchmarks signature-table construction (the per-description,
// generation-time cost of the approach).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace isdl;
using namespace isdl::bench;

template <std::unique_ptr<Machine> (*Loader)()>
void BM_BuildSignatureTable(benchmark::State& state) {
  auto machine = Loader();
  for (auto _ : state) {
    DiagnosticEngine diags;
    sim::SignatureTable sigs(*machine, diags);
    benchmark::DoNotOptimize(sigs.valid());
  }
}
BENCHMARK(BM_BuildSignatureTable<archs::loadSpam>);
BENCHMARK(BM_BuildSignatureTable<archs::loadSrep>);

void printSignatures(const Machine& machine, unsigned field,
                     unsigned maxOps) {
  DiagnosticEngine diags;
  sim::SignatureTable sigs(machine, diags);
  const Field& f = machine.fields[field];
  std::printf("%s field %s (msb first; 0/1 constants, letters parameter "
              "bits, x don't care):\n",
              machine.name.c_str(), f.name.c_str());
  for (std::size_t o = 0; o < f.operations.size() && o < maxOps; ++o) {
    const auto& sig = sigs.operation(field, static_cast<unsigned>(o));
    std::printf("  %-6s %s\n", f.operations[o].name.c_str(),
                sig.toString().c_str());
  }
  std::printf("\n");
}

void printFigure3() {
  std::printf("\nFigure 3: operation signatures\n");
  printRule();
  auto srep = archs::loadSrep();
  printSignatures(*srep, 0, 6);
  auto spam = archs::loadSpam();
  printSignatures(*spam, 0, 4);
  // Non-terminal option signatures (footnote 2: options carry the same
  // six-part structure, so they get signatures too).
  auto tdsp = archs::loadTdsp();
  DiagnosticEngine diags;
  sim::SignatureTable sigs(*tdsp, diags);
  std::printf("TDSP non-terminal SRC option signatures (over the 4-bit "
              "return value):\n");
  for (unsigned o = 0; o < 3; ++o)
    std::printf("  option %u: %s\n", o, sigs.ntOption(0, o).toString().c_str());
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printFigure3();

  ResultSink sink("fig3_signatures");
  struct Row {
    const char* arch;
    std::unique_ptr<Machine> (*loader)();
  } rows[] = {{"SPAM", archs::loadSpam}, {"SREP", archs::loadSrep}};
  for (const Row& row : rows) {
    auto machine = row.loader();
    auto [iters, seconds] = timeLoop([&] {
      DiagnosticEngine diags;
      sim::SignatureTable sigs(*machine, diags);
      benchmark::DoNotOptimize(sigs.valid());
    });
    sink.add(std::string(row.arch) + "/sigtable_builds_per_sec",
             double(iters) / seconds);
  }
  return 0;
}
