// Parallel exploration speedup: wall clock of the Figure-1 loop on the SPAM
// family as a function of --jobs. The paper's premise is that simulator
// throughput bounds how much of the design space an exploration can cover;
// sharding each iteration's neighbourhood across host threads multiplies
// that budget without changing a single result (the driver's deterministic
// merge — tests/explore_parallel_test.cpp proves byte-identical JSON).
//
// Writes BENCH_explore_parallel.json: per-jobs wall clock, speedup vs. the
// serial run, and the host's hardware concurrency (the speedup ceiling — on
// a 1-core container every row is ~1.0x, on a 4-core CI runner jobs=4
// approaches the core count because candidate evaluations are pure CPU).

#include <benchmark/benchmark.h>

#include <thread>

#include "bench_util.h"
#include "explore/pool.h"
#include "explore/spamfamily.h"

namespace {

using namespace isdl;
using namespace isdl::bench;
using namespace isdl::explore;

ExplorationDriver::Result runExploration(unsigned jobs) {
  EvaluateOptions options;
  options.jobs = jobs;
  ExplorationDriver driver(options);
  return driver.run(makeSpamVariant({1, 2}), spamFamilyGenerator,
                    ExplorationDriver::areaDelayObjective, 8);
}

// The whole-neighbourhood shard: all 16 points of the SPAM search space as
// one batch, the widest parallel section the family offers.
double evaluateAllVariantsSeconds(unsigned jobs) {
  std::vector<Candidate> candidates;
  for (unsigned alu = 1; alu <= 4; ++alu)
    for (unsigned mov = 0; mov <= 3; ++mov)
      candidates.push_back(makeSpamVariant({alu, mov}));
  WorkerPool pool(jobs);
  auto start = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> cycles(candidates.size());
  pool.forEach(candidates.size(), [&](std::size_t i, unsigned) {
    Evaluation ev = evaluateIsdl(candidates[i].isdlSource,
                                 candidates[i].appSource);
    if (!ev.ok) throw IsdlError("bench candidate failed: " + ev.error);
    cycles[i] = ev.cycles;
  });
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void BM_ExplorationLoopJobs(benchmark::State& state) {
  unsigned jobs = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    auto result = runExploration(jobs);
    benchmark::DoNotOptimize(result.iterations);
  }
}
BENCHMARK(BM_ExplorationLoopJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void printSpeedupTable(ResultSink& sink) {
  unsigned hw = effectiveJobs(0);
  std::printf("\nParallel exploration: wall clock vs. --jobs "
              "(host has %u hardware thread%s)\n", hw, hw == 1 ? "" : "s");
  std::printf("Workload: SPAM-family Figure-1 loop (iterative improvement "
              "from alu1_mov2) and the\nfull 16-candidate neighbourhood "
              "evaluated as one batch. Identical results at every\njobs "
              "value; only wall clock moves.\n");
  printRule();
  std::printf("%6s %16s %10s %18s %10s\n", "jobs", "full loop ms", "speedup",
              "16-cand batch ms", "speedup");
  printRule();

  const unsigned jobCounts[] = {1, 2, 4, 8};
  double loopBase = 0, batchBase = 0;
  std::string baselineBest;
  for (unsigned jobs : jobCounts) {
    // Best-of-3 wall clock: evaluation is deterministic, the host is not.
    double loopSec = 1e30, batchSec = 1e30;
    std::string best;
    for (int rep = 0; rep < 3; ++rep) {
      auto start = std::chrono::steady_clock::now();
      auto result = runExploration(jobs);
      double sec = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
      if (sec < loopSec) loopSec = sec;
      best = result.best.name;
      batchSec = std::min(batchSec, evaluateAllVariantsSeconds(jobs));
    }
    if (baselineBest.empty()) baselineBest = best;
    if (best != baselineBest)
      throw IsdlError("parallel exploration diverged: jobs=" +
                      std::to_string(jobs) + " found " + best +
                      " instead of " + baselineBest);
    if (jobs == 1) {
      loopBase = loopSec;
      batchBase = batchSec;
    }
    std::printf("%6u %16.1f %9.2fx %18.1f %9.2fx\n", jobs, loopSec * 1e3,
                loopBase / loopSec, batchSec * 1e3, batchBase / batchSec);
    std::string prefix = "jobs" + std::to_string(jobs);
    sink.add(prefix + "/loop_ms", loopSec * 1e3);
    sink.add(prefix + "/loop_speedup", loopBase / loopSec);
    sink.add(prefix + "/batch16_ms", batchSec * 1e3);
    sink.add(prefix + "/batch16_speedup", batchBase / batchSec);
  }
  printRule();
  sink.add("hardware_threads", hw);
  sink.note("best", baselineBest);
  sink.note("determinism", "all jobs values converged on the same candidate");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ResultSink sink("explore_parallel");
  printSpeedupTable(sink);
  return 0;
}
