// Table 1 reproduction: "Simulation Speeds for XSIM vs Hardware Model".
//
// Paper (Sun Ultra 30/300, Verilog-XL):
//     Model                  Speed (cycles/sec)   Speedup
//     XSIM (ILS) Simulator        370,000           421x
//     Synthesizable Verilog           879             1x
//
// We measure the generated XSIM simulator against the netlist simulation
// of the HGEN hardware model (the Verilog-XL substitute; see DESIGN.md) on
// the SPAM dot-product kernel, and verify the paper's claim that the ratio
// is roughly architecture-independent by repeating on SPAM2 and SREP.
//
// XSIM has two execution engines (sim/uop.h): the micro-op compiled core
// (default) and the tree-walking interpreter it replaced. Both are measured;
// the headline `xsim_cycles_per_sec` key is the uop engine, and
// `uop_speedup_vs_interp` records the compiled core's gain (docs/PERFORMANCE.md
// explains how to read the JSON).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace isdl;
using namespace isdl::bench;

void xsimSpamDot(benchmark::State& state, bool uop) {
  auto machine = archs::loadSpam();
  sim::Xsim xsim(*machine);
  xsim.setUopEnabled(uop);
  auto prog = assembleOrDie(xsim.signatures(),
                            archs::spamBenchmarks()[0].source);
  std::string err;
  if (!xsim.loadProgram(prog, &err)) throw IsdlError(err);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    xsim.reset();
    xsim.run(archs::spamBenchmarks()[0].maxCycles);
    cycles = xsim.stats().cycles;
  }
  state.counters["cycles_per_sec"] = benchmark::Counter(
      double(cycles) * double(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_XsimSpamDot(benchmark::State& state) { xsimSpamDot(state, true); }
BENCHMARK(BM_XsimSpamDot)->Unit(benchmark::kMillisecond);

void BM_XsimInterpSpamDot(benchmark::State& state) {
  xsimSpamDot(state, false);
}
BENCHMARK(BM_XsimInterpSpamDot)->Unit(benchmark::kMillisecond);

void BM_HwModelSpamDot(benchmark::State& state) {
  auto machine = archs::loadSpam();
  sim::Xsim xsim(*machine);
  auto prog = assembleOrDie(xsim.signatures(),
                            archs::spamBenchmarks()[0].source);
  hw::HgenOutput hgen = hw::runHgen(*machine, xsim.signatures());
  int dm = -1;
  for (std::size_t si = 0; si < machine->storages.size(); ++si)
    if (machine->storages[si].kind == StorageKind::DataMemory)
      dm = static_cast<int>(si);
  synth::GateSim gs(hgen.model.netlist);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    gs.reset();
    gs.loadMemory(hgen.model.storage[machine->imemIndex].mem, prog.words);
    for (const auto& [addr, value] : prog.dataInit)
      gs.pokeMemory(hgen.model.storage[dm].mem, addr, value);
    gs.runUntil(hgen.model.haltedReg, archs::spamBenchmarks()[0].maxCycles);
    cycles = gs.peekNet(hgen.model.cycleCountReg).toUint64();
  }
  state.counters["cycles_per_sec"] = benchmark::Counter(
      double(cycles) * double(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HwModelSpamDot)->Unit(benchmark::kMillisecond);

void printTable1(ResultSink& sink) {
  struct Row {
    const char* arch;
    std::unique_ptr<Machine> (*loader)();
    const char* source;
    std::uint64_t budget;
  };
  std::vector<archs::Benchmark> spamB = archs::spamBenchmarks();
  std::vector<archs::Benchmark> spam2B = archs::spam2Benchmarks();
  std::vector<archs::Benchmark> srepB = archs::srepBenchmarks();
  Row rows[] = {
      {"SPAM", archs::loadSpam, spamB[0].source, spamB[0].maxCycles},
      {"SPAM2", archs::loadSpam2, spam2B[0].source, spam2B[0].maxCycles},
      {"SREP", archs::loadSrep, srepB[1].source, srepB[1].maxCycles},
  };

  std::printf("\nTable 1: Simulation Speeds for XSIM vs Hardware Model\n");
  std::printf("(paper: XSIM 370,000 cycles/sec, Verilog model 879, "
              "speedup 421x on SPAM)\n");
  printRule();
  std::printf("%-8s %-28s %18s %10s\n", "Arch", "Model", "Speed (cycles/sec)",
              "Speedup");
  printRule();
  for (const Row& row : rows) {
    auto machine = row.loader();
    double ils = xsimCyclesPerSec(*machine, row.source, row.budget);
    double interp =
        xsimCyclesPerSec(*machine, row.source, row.budget, /*uop=*/false);
    double hwm = hwModelCyclesPerSec(*machine, row.source, row.budget);
    std::printf("%-8s %-28s %18.0f %9.0fx\n", row.arch,
                "XSIM (ILS, uop engine)", ils, ils / hwm);
    std::printf("%-8s %-28s %18.0f %9.0fx\n", row.arch,
                "XSIM (ILS, interpreter)", interp, interp / hwm);
    std::printf("%-8s %-28s %18.0f %9.0fx\n", row.arch,
                "Synthesizable model (netlist)", hwm, 1.0);
    sink.add(std::string(row.arch) + "/xsim_cycles_per_sec", ils);
    sink.add(std::string(row.arch) + "/xsim_uop_cycles_per_sec", ils);
    sink.add(std::string(row.arch) + "/xsim_interp_cycles_per_sec", interp);
    sink.add(std::string(row.arch) + "/uop_speedup_vs_interp", ils / interp);
    sink.add(std::string(row.arch) + "/hw_model_cycles_per_sec", hwm);
    sink.add(std::string(row.arch) + "/speedup", ils / hwm);
  }
  printRule();
  std::printf("Shape check: the ILS is orders of magnitude faster than the "
              "netlist, the ratio is similar across architectures, and the "
              "uop engine beats the interpreter it replaced.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ResultSink sink("table1_sim_speed");
  sink.note("paper", "XSIM 370000 cycles/sec, Verilog model 879, 421x");
  printTable1(sink);
  return 0;
}
