// Ablation: off-line vs on-the-fly disassembly.
//
// The paper (§3.1) claims XSIM "performs disassembly off-line to improve
// speed". This harness quantifies the claim: executing from the decoded
// program cache versus re-decoding every instruction before executing it
// (what an on-the-fly simulator would do each time through a loop).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace isdl;
using namespace isdl::bench;

struct Rig {
  std::unique_ptr<Machine> machine;
  std::unique_ptr<sim::Xsim> xsim;
  sim::AssembledProgram prog;

  Rig() {
    machine = archs::loadSrep();
    xsim = std::make_unique<sim::Xsim>(*machine);
    prog = assembleOrDie(xsim->signatures(),
                         archs::srepBenchmarks()[1].source);
    std::string err;
    if (!xsim->loadProgram(prog, &err)) throw IsdlError(err);
  }
};

void BM_OfflineDisasmExecution(benchmark::State& state) {
  Rig rig;
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    rig.xsim->reset();
    rig.xsim->run(1'000'000);
    instructions = rig.xsim->stats().instructions;
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(instructions));
}
BENCHMARK(BM_OfflineDisasmExecution);

void BM_OnTheFlyDisasmExecution(benchmark::State& state) {
  Rig rig;
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    rig.xsim->reset();
    // Re-decode the current instruction before every step — the work an
    // on-the-fly simulator repeats each time around a loop.
    for (;;) {
      auto inst = rig.xsim->disassembler().decodeAt(rig.prog.words,
                                                    rig.xsim->state().pc());
      benchmark::DoNotOptimize(inst.has_value());
      auto r = rig.xsim->step();
      if (r.reason != sim::StopReason::MaxInstructions) break;
    }
    instructions = rig.xsim->stats().instructions;
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(instructions));
}
BENCHMARK(BM_OnTheFlyDisasmExecution);

void printSummary(ResultSink& sink) {
  Rig rig;
  std::uint64_t insts = 0;
  auto [offIters, offSecs] = timeLoop([&] {
    rig.xsim->reset();
    rig.xsim->run(1'000'000);
    insts = rig.xsim->stats().instructions;
  });
  double offline = double(offIters) * double(insts) / offSecs;
  auto [onIters, onSecs] = timeLoop([&] {
    rig.xsim->reset();
    for (;;) {
      auto inst = rig.xsim->disassembler().decodeAt(rig.prog.words,
                                                    rig.xsim->state().pc());
      benchmark::DoNotOptimize(inst.has_value());
      if (rig.xsim->step().reason != sim::StopReason::MaxInstructions) break;
    }
  });
  double onTheFly = double(onIters) * double(insts) / onSecs;

  std::printf("\nAblation: off-line disassembly (paper section 3.1)\n");
  printRule();
  std::printf("  off-line (decoded cache):   %12.0f instructions/sec\n",
              offline);
  std::printf("  on-the-fly (decode + exec): %12.0f instructions/sec\n",
              onTheFly);
  std::printf("  off-line speedup:           %12.2fx\n\n",
              offline / onTheFly);
  sink.add("offline_inst_per_sec", offline);
  sink.add("on_the_fly_inst_per_sec", onTheFly);
  sink.add("offline_speedup", offline / onTheFly);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ResultSink sink("abl_offline_disasm");
  printSummary(sink);
  return 0;
}
