// Ablation: interpreted XSIM vs generated compiled-code simulator — the
// speedup the paper's §6.2 future work predicts ("Additional speedups can be
// obtained by a move to compiled-code simulators").
//
// The generated C++ is compiled with the host compiler at bench time; if no
// compiler is available the comparison is skipped with a note.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "bench_util.h"
#include "sim/codegen.h"

namespace {

using namespace isdl;
using namespace isdl::bench;

void BM_InterpretedSrepDot(benchmark::State& state) {
  auto machine = archs::loadSrep();
  sim::Xsim xsim(*machine);
  auto prog = assembleOrDie(xsim.signatures(),
                            archs::srepBenchmarks()[1].source);
  std::string err;
  if (!xsim.loadProgram(prog, &err)) throw IsdlError(err);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    xsim.reset();
    xsim.run(1'000'000);
    cycles = xsim.stats().cycles;
  }
  state.counters["cycles_per_sec"] = benchmark::Counter(
      double(cycles) * double(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpretedSrepDot);

void printSummary(ResultSink& sink) {
  std::printf("\nAblation: interpreted vs compiled-code simulation "
              "(paper section 6.2)\n");
  printRule();
  if (std::system("c++ --version > /dev/null 2>&1") != 0) {
    std::printf("  (no host C++ compiler; compiled-code row skipped)\n\n");
    sink.note("skipped", "no host C++ compiler");
    return;
  }

  struct Row {
    const char* arch;
    std::unique_ptr<Machine> (*loader)();
    const char* source;
  };
  Row rows[] = {
      {"SREP", archs::loadSrep, archs::srepBenchmarks()[1].source},
      {"SPAM", archs::loadSpam, archs::spamBenchmarks()[0].source},
  };
  std::printf("%-8s %-24s %18s %10s\n", "Arch", "Simulator",
              "Speed (cycles/sec)", "Speedup");
  printRule();
  for (const Row& row : rows) {
    auto machine = row.loader();
    double interp = xsimCyclesPerSec(*machine, row.source, 1'000'000);

    // Generate, compile and time the compiled-code simulator with enough
    // repeats to measure meaningfully.
    sim::Xsim xsim(*machine);
    auto prog = assembleOrDie(xsim.signatures(), row.source);
    sim::CodegenOptions opts;
    opts.repeats = 2000;
    std::string source = sim::generateCompiledSim(*machine, xsim.signatures(),
                                                  prog, opts);
    {
      std::ofstream f("abl_compiled_sim.gen.cpp");
      f << source;
    }
    if (std::system("c++ -O2 -std=c++17 -o abl_compiled_sim.gen.bin "
                    "abl_compiled_sim.gen.cpp 2> /dev/null") != 0) {
      std::printf("%-8s %-24s %18s\n", row.arch, "compiled-code",
                  "(compile failed)");
      continue;
    }
    if (std::system("./abl_compiled_sim.gen.bin > abl_compiled_sim.out") !=
        0) {
      std::printf("%-8s %-24s %18s\n", row.arch, "compiled-code",
                  "(run failed)");
      continue;
    }
    std::ifstream out("abl_compiled_sim.out");
    std::string word;
    std::uint64_t cycles = 0;
    double seconds = 0;
    while (out >> word) {
      if (word == "cycles") out >> cycles;
      else if (word == "seconds") out >> seconds;
      else {
        std::string skip;
        std::getline(out, skip);
      }
    }
    double compiled = seconds > 0 ? double(cycles) / seconds : 0;
    std::printf("%-8s %-24s %18.0f %9.1fx\n", row.arch, "XSIM (interpreted)",
                interp, 1.0);
    std::printf("%-8s %-24s %18.0f %9.1fx\n", row.arch,
                "compiled-code (generated)", compiled, compiled / interp);
    std::string k(row.arch);
    sink.add(k + "/interpreted_cycles_per_sec", interp);
    sink.add(k + "/compiled_cycles_per_sec", compiled);
    sink.add(k + "/compiled_speedup", compiled / interp);
    std::remove("abl_compiled_sim.gen.cpp");
    std::remove("abl_compiled_sim.gen.bin");
    std::remove("abl_compiled_sim.out");
  }
  printRule();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ResultSink sink("abl_compiled_sim");
  printSummary(sink);
  return 0;
}
