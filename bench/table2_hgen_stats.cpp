// Table 2 reproduction: "Hardware Synthesis Statistics".
//
// Paper (Synopsys + LSI 10K):
//     Processor  Cycle (nsec)  Lines of Verilog  Die size (grid cells)  Synth time (s)
//     SPAM           ...             ...                 ...                ...
//     SPAM2          ...             ...                 ...                ...
//
// We run HGEN plus the quick silicon compiler (synth/) for both processors
// and print the same four columns. Absolute values come from the synthetic
// cell library (see synth/celllib.h); the paper's shape — SPAM larger and
// slower-clocked than SPAM2, synthesis time dominated by the silicon
// compiler — is the reproduced claim.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace isdl;
using namespace isdl::bench;

template <std::unique_ptr<Machine> (*Loader)()>
void BM_RunHgen(benchmark::State& state) {
  auto machine = Loader();
  DiagnosticEngine diags;
  sim::SignatureTable sigs(*machine, diags);
  for (auto _ : state) {
    hw::HgenOutput out = hw::runHgen(*machine, sigs);
    benchmark::DoNotOptimize(out.stats.dieSizeGridCells);
  }
}
BENCHMARK(BM_RunHgen<archs::loadSpam>)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RunHgen<archs::loadSpam2>)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RunHgen<archs::loadSrep>)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RunHgen<archs::loadTdsp>)->Unit(benchmark::kMillisecond);

void printTable2(ResultSink& sink) {
  struct Row {
    const char* name;
    std::unique_ptr<Machine> (*loader)();
  };
  Row rows[] = {
      {"SPAM", archs::loadSpam},
      {"SPAM2", archs::loadSpam2},
      {"SREP", archs::loadSrep},
      {"TDSP", archs::loadTdsp},
  };
  std::printf("\nTable 2: Hardware Synthesis Statistics\n");
  std::printf("(paper reports SPAM and SPAM2; SREP/TDSP added for scale)\n");
  printRule();
  std::printf("%-8s %12s %10s %22s %14s\n", "Processor", "Cycle (ns)",
              "Verilog", "Die size (grid cells)", "Synth time (s)");
  printRule();
  for (const Row& row : rows) {
    auto machine = row.loader();
    DiagnosticEngine diags;
    sim::SignatureTable sigs(*machine, diags);
    hw::HgenOutput out = hw::runHgen(*machine, sigs);
    std::printf("%-8s %12.2f %10zu %22.0f %14.3f\n", row.name,
                out.stats.cycleNs, out.stats.verilogLines,
                out.stats.dieSizeGridCells, out.stats.synthesisSeconds);
    std::string k(row.name);
    sink.add(k + "/cycle_ns", out.stats.cycleNs);
    sink.add(k + "/verilog_lines", double(out.stats.verilogLines));
    sink.add(k + "/die_size_grid_cells", out.stats.dieSizeGridCells);
    sink.add(k + "/synthesis_seconds", out.stats.synthesisSeconds);
  }
  printRule();
  std::printf("Breakdown for SPAM (logic / flops / RAM grid cells, tool vs "
              "silicon-compiler seconds):\n");
  {
    auto machine = archs::loadSpam();
    DiagnosticEngine diags;
    sim::SignatureTable sigs(*machine, diags);
    hw::HgenOutput out = hw::runHgen(*machine, sigs);
    std::printf("  logic %.0f  flops %.0f  ram %.0f   |  hgen %.3fs  "
                "silicon %.3fs\n",
                out.stats.area.logicArea, out.stats.area.flopArea,
                out.stats.area.ramArea, out.stats.toolSeconds,
                out.stats.siliconSeconds);
    std::printf("  sharing: %zu shareable units -> %zu after merging (%zu "
                "cliques instantiated)\n\n",
                out.stats.sharing.unitsBefore, out.stats.sharing.unitsAfter,
                out.stats.sharing.cliquesUsed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ResultSink sink("table2_hgen_stats");
  sink.note("paper", "Synopsys + LSI 10K; SPAM larger and slower-clocked "
                     "than SPAM2");
  printTable2(sink);
  return 0;
}
