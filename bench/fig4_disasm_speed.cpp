// Figure 4 reproduction: the disassembly algorithm.
//
// The figure gives the pseudo-code (match constant signature parts per
// field, reverse the parameter encodings, recurse into non-terminals); the
// paper's performance note is footnote 4 — "the number of matches ... grows
// linearly with the size of the ISDL description". This harness measures
// per-instruction decode cost on each architecture and shows it tracks the
// operation count, and benchmarks the whole-program off-line pass.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace isdl;
using namespace isdl::bench;

struct Setup {
  std::unique_ptr<Machine> machine;
  std::unique_ptr<DiagnosticEngine> diags;
  std::unique_ptr<sim::SignatureTable> sigs;
  std::unique_ptr<sim::Disassembler> disasm;
  sim::AssembledProgram prog;
};

Setup makeSetup(std::unique_ptr<Machine> (*loader)(), const char* source) {
  Setup s;
  s.machine = loader();
  s.diags = std::make_unique<DiagnosticEngine>();
  s.sigs = std::make_unique<sim::SignatureTable>(*s.machine, *s.diags);
  s.disasm = std::make_unique<sim::Disassembler>(*s.sigs);
  s.prog = assembleOrDie(*s.sigs, source);
  return s;
}

void BM_DecodeProgramSpam(benchmark::State& state) {
  Setup s = makeSetup(archs::loadSpam, archs::spamBenchmarks()[0].source);
  for (auto _ : state) {
    auto decoded = s.disasm->decodeProgram(s.prog.words, s.prog.words.size());
    benchmark::DoNotOptimize(decoded.byAddress.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          std::int64_t(s.prog.words.size()));
}
BENCHMARK(BM_DecodeProgramSpam);

void BM_DecodeOneInstruction(benchmark::State& state) {
  Setup s = makeSetup(archs::loadSrep, archs::srepBenchmarks()[1].source);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    auto inst = s.disasm->decodeAt(s.prog.words, addr);
    benchmark::DoNotOptimize(inst.has_value());
    addr = (addr + 1) % s.prog.words.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodeOneInstruction);

void printFigure4(ResultSink& sink) {
  std::printf("\nFigure 4: disassembly algorithm — decode cost vs "
              "description size\n");
  printRule();
  std::printf("%-8s %10s %12s %22s %20s\n", "Arch", "fields",
              "operations", "decode rate (inst/s)", "ns per instruction");
  printRule();
  struct Row {
    const char* name;
    std::unique_ptr<Machine> (*loader)();
    const char* source;
  };
  Row rows[] = {
      {"SREP", archs::loadSrep, archs::srepBenchmarks()[1].source},
      {"TDSP", archs::loadTdsp, archs::tdspBenchmarks()[0].source},
      {"SPAM2", archs::loadSpam2, archs::spam2Benchmarks()[0].source},
      {"SPAM", archs::loadSpam, archs::spamBenchmarks()[0].source},
  };
  for (const Row& row : rows) {
    Setup s = makeSetup(row.loader, row.source);
    std::size_t nops = 0;
    for (const auto& f : s.machine->fields) nops += f.operations.size();
    std::uint64_t decoded = 0;
    auto [iters, seconds] = timeLoop([&] {
      auto d = s.disasm->decodeProgram(s.prog.words, s.prog.words.size());
      decoded = d.byAddress.size();
    });
    double rate = double(iters) * double(decoded) / seconds;
    std::printf("%-8s %10zu %12zu %22.0f %20.1f\n", row.name,
                s.machine->fields.size(), nops, rate, 1e9 / rate);
    sink.add(std::string(row.name) + "/operations", double(nops));
    sink.add(std::string(row.name) + "/decode_inst_per_sec", rate);
    sink.add(std::string(row.name) + "/ns_per_instruction", 1e9 / rate);
  }
  printRule();
  std::printf("Shape check: per-instruction decode time grows with the "
              "operation count (linear matches),\nnot with program size — "
              "the off-line pass is O(program x description).\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ResultSink sink("fig4_disasm_speed");
  printFigure4(sink);
  return 0;
}
