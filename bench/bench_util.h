// Shared helpers for the benchmark/reproduction harnesses. Each bench binary
// regenerates one table or figure of the paper: google-benchmark micro-
// measurements first, then the paper-shaped summary table printed from
// direct wall-clock measurements.

#ifndef ISDL_BENCH_BENCH_UTIL_H
#define ISDL_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "archs/archs.h"
#include "hw/hgen.h"
#include "obs/json.h"
#include "sim/xsim.h"
#include "synth/gatesim.h"

namespace isdl::bench {

/// Funnel for measured bench results. Every fig/table bench records the
/// numbers it prints here too; the destructor writes them as
/// `BENCH_<name>.json` in the working directory, so a run of the bench
/// binaries leaves a machine-readable trajectory next to the console tables
/// (schema: docs/OBSERVABILITY.md).
class ResultSink {
 public:
  explicit ResultSink(std::string name) : name_(std::move(name)) {}

  void add(std::string key, double value) {
    numbers_.emplace_back(std::move(key), value);
  }
  void note(std::string key, std::string value) {
    notes_.emplace_back(std::move(key), std::move(value));
  }

  std::string path() const { return "BENCH_" + name_ + ".json"; }

  ~ResultSink() {
    std::ofstream out(path());
    if (!out) return;  // read-only cwd: keep the console output authoritative
    obs::JsonWriter w(out, /*pretty=*/true);
    w.beginObject();
    w.field("bench", name_);
    w.key("results").beginObject();
    for (const auto& [key, value] : numbers_) w.field(key, value);
    w.endObject();
    w.key("notes").beginObject();
    for (const auto& [key, value] : notes_) w.field(key, value);
    w.endObject();
    w.endObject();
    out << "\n";
    std::printf("results written to %s\n", path().c_str());
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> numbers_;
  std::vector<std::pair<std::string, std::string>> notes_;
};

/// Assembles `source` for `machine`; aborts on error (bench inputs are the
/// repo's own benchmarks, so failure is a bug).
inline sim::AssembledProgram assembleOrDie(const sim::SignatureTable& sigs,
                                           const char* source) {
  sim::Assembler assembler(sigs);
  DiagnosticEngine diags;
  auto prog = assembler.assemble(source, diags);
  if (!prog) throw IsdlError("bench program failed to assemble:\n" +
                             diags.dump());
  return *prog;
}

/// Runs `fn` repeatedly until ~`minSeconds` of wall clock accumulate;
/// returns (iterations, seconds).
inline std::pair<std::uint64_t, double> timeLoop(
    const std::function<void()>& fn, double minSeconds = 0.4) {
  using clock = std::chrono::steady_clock;
  std::uint64_t iters = 0;
  auto start = clock::now();
  double elapsed = 0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < minSeconds);
  return {iters, elapsed};
}

/// XSIM simulation speed in architectural cycles per second on `source`.
/// `uop` selects the micro-op compiled core (default) or the tree-walking
/// interpreter fallback (sim/uop.h) — Table 1 reports both.
inline double xsimCyclesPerSec(const Machine& machine, const char* source,
                               std::uint64_t maxCycles, bool uop = true) {
  sim::Xsim xsim(machine);
  xsim.setUopEnabled(uop);
  sim::AssembledProgram prog = assembleOrDie(xsim.signatures(), source);
  std::string err;
  if (!xsim.loadProgram(prog, &err)) throw IsdlError(err);
  std::uint64_t cyclesPerRun = 0;
  auto [iters, seconds] = timeLoop([&] {
    xsim.reset();
    auto r = xsim.run(maxCycles);
    if (r.reason != sim::StopReason::Halted)
      throw IsdlError("bench program did not halt: " + r.message);
    cyclesPerRun = xsim.stats().cycles;
  });
  return double(iters) * double(cyclesPerRun) / seconds;
}

/// Hardware-model (netlist) simulation speed in architectural cycles per
/// second on the same program — the paper's "Synthesizable Verilog" row.
inline double hwModelCyclesPerSec(const Machine& machine, const char* source,
                                  std::uint64_t maxClocks,
                                  bool share = true) {
  sim::Xsim xsim(machine);  // for signatures + assembler only
  sim::AssembledProgram prog = assembleOrDie(xsim.signatures(), source);
  hw::HgenOptions opts;
  opts.share = share;
  hw::HgenOutput hgen = hw::runHgen(machine, xsim.signatures(), opts);

  int dmIndex = -1;
  for (std::size_t si = 0; si < machine.storages.size(); ++si)
    if (machine.storages[si].kind == StorageKind::DataMemory)
      dmIndex = static_cast<int>(si);

  synth::GateSim gs(hgen.model.netlist);
  std::uint64_t archCyclesPerRun = 0;
  auto [iters, seconds] = timeLoop(
      [&] {
        gs.reset();
        gs.loadMemory(hgen.model.storage[machine.imemIndex].mem, prog.words);
        if (dmIndex >= 0)
          for (const auto& [addr, value] : prog.dataInit)
            gs.pokeMemory(hgen.model.storage[dmIndex].mem, addr, value);
        if (!gs.runUntil(hgen.model.haltedReg, maxClocks))
          throw IsdlError("hardware model did not halt");
        archCyclesPerRun = gs.peekNet(hgen.model.cycleCountReg).toUint64();
      },
      0.8);
  return double(iters) * double(archCyclesPerRun) / seconds;
}

inline void printRule(char c = '-', int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace isdl::bench

#endif  // ISDL_BENCH_BENCH_UTIL_H
