// Figure 1 reproduction: "Architecture Exploration by Iterative Improvement".
//
// The figure is the methodology loop itself; this harness runs it end to end
// on the SPAM architecture family (see explore/spamfamily.h) and prints the
// loop's trajectory: every candidate evaluated per iteration, its cycle
// count, cycle length, die size and the area-delay objective, plus which
// candidate was accepted. The loop terminates when no neighbour improves —
// the paper's "process repeated until no further improvements can be made".

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "explore/spamfamily.h"

namespace {

using namespace isdl;
using namespace isdl::bench;
using namespace isdl::explore;

void BM_EvaluateCandidate(benchmark::State& state) {
  Candidate cand = makeSpamVariant({2, 0});
  for (auto _ : state) {
    Evaluation ev = evaluateIsdl(cand.isdlSource, cand.appSource);
    benchmark::DoNotOptimize(ev.cycles);
  }
}
BENCHMARK(BM_EvaluateCandidate)->Unit(benchmark::kMillisecond);

void BM_FullExplorationLoop(benchmark::State& state) {
  for (auto _ : state) {
    ExplorationDriver driver;
    auto result = driver.run(makeSpamVariant({1, 2}), spamFamilyGenerator,
                             ExplorationDriver::areaDelayObjective, 8);
    benchmark::DoNotOptimize(result.iterations);
  }
}
BENCHMARK(BM_FullExplorationLoop)->Unit(benchmark::kMillisecond);

void printFigure1(ResultSink& sink) {
  std::printf("\nFigure 1: architecture exploration by iterative improvement\n");
  std::printf("Search space: SPAM family (ALU units x move units); workload: "
              "64-element dot product;\nobjective: runtime x die size "
              "(area-delay product). Start: alu1_mov2 (over-provisioned in\n"
              "moves, under-provisioned in ALUs).\n");
  printRule();
  std::printf("%4s  %-12s %10s %10s %12s %14s  %s\n", "iter", "candidate",
              "cycles", "cycle ns", "die size", "runtime*area", "");
  printRule();

  ExplorationDriver driver;
  auto result = driver.run(makeSpamVariant({1, 2}), spamFamilyGenerator,
                           ExplorationDriver::areaDelayObjective, 8);
  for (const auto& step : result.history) {
    if (step.failed) {
      std::printf("%4u  %-12s %s\n", step.iteration,
                  step.candidateName.c_str(), "(evaluation failed)");
      continue;
    }
    std::printf("%4u  %-12s %10llu %10.2f %12.0f %14.3g  %s\n",
                step.iteration, step.candidateName.c_str(),
                static_cast<unsigned long long>(step.cycles),
                step.runtimeUs * 1000.0 / double(step.cycles),
                step.dieSize, step.objective,
                step.accepted ? "<-- accepted" : "");
  }
  printRule();
  std::printf("Converged after %u iterations; best = %s "
              "(cycles %llu, die %.0f grid cells, runtime %.2f us)\n\n",
              result.iterations, result.best.name.c_str(),
              static_cast<unsigned long long>(result.bestEval.cycles),
              result.bestEval.dieSizeGridCells, result.bestEval.runtimeUs());

  sink.note("best", result.best.name);
  sink.add("iterations", result.iterations);
  sink.add("candidates_evaluated", double(result.history.size()));
  sink.add("best/cycles", double(result.bestEval.cycles));
  sink.add("best/die_size_grid_cells", result.bestEval.dieSizeGridCells);
  sink.add("best/runtime_us", result.bestEval.runtimeUs());
  sink.add("best/stall_fraction", result.bestEval.metrics.stallFraction());

  // The full trajectory, through the same schema explore itself exports.
  std::ofstream json("BENCH_fig1_exploration.trajectory.json");
  if (json) result.writeJson(json);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ResultSink sink("fig1_exploration");
  printFigure1(sink);
  return 0;
}
